"""Tests for the DataGuide / lower-bound baselines and unification."""

import pytest

from repro.dom.node import Element
from repro.schema.dataguide import build_dataguide
from repro.schema.frequent import mine_frequent_paths
from repro.schema.lowerbound import build_lower_bound_schema
from repro.schema.majority import MajoritySchema
from repro.schema.paths import extract_paths
from repro.schema.unify import jaccard, unify_same_label, unify_similar_siblings


def tree(spec):
    tag, kids = spec
    e = Element(tag)
    for k in kids:
        e.append_child(tree(k))
    return e


def corpus(*specs):
    return [extract_paths(tree(s)) for s in specs]


@pytest.fixture()
def docs():
    return corpus(
        ("r", [("a", [("x", [])]), ("b", [])]),
        ("r", [("a", [])]),
        ("r", [("a", []), ("rare", [])]),
    )


class TestDataGuide:
    def test_contains_every_observed_path(self, docs):
        guide = build_dataguide(docs)
        assert guide.contains_path(("r", "rare"))
        assert guide.contains_path(("r", "a", "x"))

    def test_is_upper_bound_of_majority(self, docs):
        guide = build_dataguide(docs)
        majority = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(docs, sup_threshold=0.5)
        )
        assert majority.paths() <= guide.paths()

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            build_dataguide([])


class TestLowerBound:
    def test_contains_only_universal_paths(self, docs):
        lower = build_lower_bound_schema(docs)
        assert lower.paths() == {("r",), ("r", "a")}

    def test_is_lower_bound_of_majority(self, docs):
        lower = build_lower_bound_schema(docs)
        majority = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(docs, sup_threshold=0.5)
        )
        assert lower.paths() <= majority.paths()

    def test_disjoint_corpus_rejected(self):
        disjoint = corpus(("r", []), ("q", []))
        with pytest.raises(ValueError):
            build_lower_bound_schema(disjoint)

    def test_sandwich_property(self, docs):
        """lower bound <= majority <= DataGuide at any threshold."""
        lower = build_lower_bound_schema(docs).paths()
        guide = build_dataguide(docs).paths()
        for threshold in (0.2, 0.5, 0.8):
            majority = MajoritySchema.from_frequent_paths(
                mine_frequent_paths(docs, sup_threshold=threshold)
            ).paths()
            assert lower <= majority <= guide


class TestUnify:
    def test_jaccard(self):
        assert jaccard({"a", "b"}, {"a", "b"}) == 1.0
        assert jaccard({"a"}, {"b"}) == 0.0
        assert jaccard(set(), set()) == 1.0
        assert jaccard({"a", "b"}, {"b", "c"}) == pytest.approx(1 / 3)

    def test_same_label_unification(self):
        docs = corpus(
            ("r", [("s", [("d", [("x", [])])]), ("t", [("d", [("y", [])])])]),
            ("r", [("s", [("d", [("x", [])])]), ("t", [("d", [("y", [])])])]),
        )
        schema = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(docs, sup_threshold=0.5)
        )
        merged = unify_same_label(schema)
        assert merged == 1
        d_under_s = schema.root.children["s"].children["d"]
        d_under_t = schema.root.children["t"].children["d"]
        assert set(d_under_s.children) == {"x", "y"}
        assert set(d_under_t.children) == {"x", "y"}

    def test_similar_siblings_unified(self):
        docs = corpus(
            ("r", [("s", [("a", []), ("b", []), ("c", [])]),
                   ("t", [("a", []), ("b", []), ("d", [])])]),
            ("r", [("s", [("a", []), ("b", []), ("c", [])]),
                   ("t", [("a", []), ("b", []), ("d", [])])]),
        )
        schema = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(docs, sup_threshold=0.5)
        )
        count = unify_similar_siblings(schema, threshold=0.5)
        assert count == 1
        assert set(schema.root.children["s"].children) == {"a", "b", "c", "d"}
        assert set(schema.root.children["t"].children) == {"a", "b", "c", "d"}

    def test_dissimilar_siblings_untouched(self):
        docs = corpus(
            ("r", [("s", [("a", [])]), ("t", [("z", [])])]),
            ("r", [("s", [("a", [])]), ("t", [("z", [])])]),
        )
        schema = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(docs, sup_threshold=0.5)
        )
        assert unify_similar_siblings(schema, threshold=0.5) == 0

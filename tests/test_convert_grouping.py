"""Tests for the grouping rule (Section 2.3.2)."""

from repro.convert.config import ConversionConfig
from repro.convert.grouping_rule import GROUP_TAG, apply_grouping_rule, is_group
from repro.dom.node import Element, Text


def element_tags(parent):
    return [c.tag for c in parent.element_children()]


def build(*tags):
    root = Element("body")
    for tag in tags:
        root.append_child(Element(tag))
    return root


class TestBasicGrouping:
    def test_siblings_between_leaders_sink_under_left_leader(self):
        root = build("h2", "ul", "p", "h2", "ul")
        created = apply_grouping_rule(root)
        assert created == 2
        assert element_tags(root) == ["h2", "h2"]
        first_group = root.element_children()[0].element_children()[-1]
        assert first_group.tag == GROUP_TAG
        assert element_tags(first_group) == ["ul", "p"]

    def test_siblings_right_of_last_leader_grouped(self):
        root = build("h2", "ul")
        # one leader is below the min_group_leaders threshold
        assert apply_grouping_rule(root) == 0
        root = build("h2", "ul", "h2", "ul", "p")
        apply_grouping_rule(root)
        last_group = root.element_children()[1].element_children()[-1]
        assert element_tags(last_group) == ["ul", "p"]

    def test_siblings_before_first_leader_untouched(self):
        root = build("p", "h2", "ul", "h2", "ul")
        apply_grouping_rule(root)
        assert element_tags(root)[0] == "p"

    def test_empty_gap_creates_no_group(self):
        root = build("h2", "h2", "ul")
        apply_grouping_rule(root)
        first_leader = root.element_children()[0]
        assert first_leader.children == []

    def test_text_nodes_are_grouped_too(self):
        root = Element("body")
        root.append_child(Element("b"))
        root.append_child(Text("content"))
        root.append_child(Element("b"))
        apply_grouping_rule(root)
        group = root.element_children()[0].element_children()[0]
        assert group.tag == GROUP_TAG
        assert isinstance(group.children[0], Text)


class TestWeights:
    def test_higher_weight_tag_wins_at_same_level(self):
        # h2 (95) outranks p (55): the p's must be grouped under h2s.
        root = build("h2", "p", "p", "h2", "p", "p")
        apply_grouping_rule(root)
        assert element_tags(root) == ["h2", "h2"]

    def test_lower_weight_handled_next_level_down(self):
        # After h2-grouping, the GROUP contains repeated p's (weight 55)
        # and em's (weight 25); the rule visits the group and applies
        # p-grouping inside it, sinking each em under its p.
        root = build("h2", "p", "em", "p", "em", "h2")
        apply_grouping_rule(root)
        group = root.element_children()[0].element_children()[0]
        assert element_tags(group) == ["p", "p"]
        inner = group.element_children()[0].element_children()[0]
        assert inner.tag == GROUP_TAG
        assert element_tags(inner) == ["em"]

    def test_non_group_tags_never_lead(self):
        root = build("table", "ul", "table", "ul")
        assert apply_grouping_rule(root) == 0

    def test_custom_min_leaders(self):
        config = ConversionConfig(min_group_leaders=1)
        root = build("h2", "ul")
        assert apply_grouping_rule(root, config) == 1


class TestHelpers:
    def test_is_group(self):
        assert is_group(Element(GROUP_TAG))
        assert not is_group(Element("div"))
        assert not is_group(Text("x"))

"""Property-based tests for :class:`PathAccumulator` (hypothesis).

The engine's correctness rests on ``merge`` being a commutative monoid
over path statistics: any chunking of a corpus, merged in any grouping,
must equal the single-pass accumulation.  Counters are exact integers;
position sums are floats, so re-associated additions are compared with
``pytest.approx``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dom.node import Element
from repro.schema.accumulator import PathAccumulator
from repro.schema.frequent import mine_frequent_paths
from repro.schema.paths import extract_paths

tag_names = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def element_trees(draw, max_depth=3, max_children=3):
    """Random small element trees (same shape as test_properties.py)."""

    def build(depth):
        element = Element(draw(tag_names))
        if depth < max_depth:
            for _ in range(draw(st.integers(0, max_children))):
                element.append_child(build(depth + 1))
        return element

    return build(0)


document_paths = st.builds(extract_paths, element_trees())
corpora = st.lists(document_paths, min_size=0, max_size=8)


def assert_equivalent(a: PathAccumulator, b: PathAccumulator) -> None:
    """Exact on counters, approx on re-associated float position sums."""
    assert a.document_count == b.document_count
    assert a.doc_frequency == b.doc_frequency
    assert a.multiplicity_docs == b.multiplicity_docs
    assert set(a.position_sum) == set(b.position_sum)
    for path, value in a.position_sum.items():
        assert b.position_sum[path] == pytest.approx(value)


class TestMonoidLaws:
    @given(corpora)
    def test_identity(self, docs):
        acc = PathAccumulator.from_documents(docs)
        empty = PathAccumulator()
        assert acc.merge(empty) == acc
        assert empty.merge(acc) == acc

    @given(corpora, corpora)
    def test_commutative(self, left, right):
        a = PathAccumulator.from_documents(left)
        b = PathAccumulator.from_documents(right)
        # IEEE addition commutes exactly, so equality is exact here.
        assert a.merge(b) == b.merge(a)

    @given(corpora, corpora, corpora)
    @settings(max_examples=50)
    def test_associative(self, one, two, three):
        a = PathAccumulator.from_documents(one)
        b = PathAccumulator.from_documents(two)
        c = PathAccumulator.from_documents(three)
        assert_equivalent(a.merge(b).merge(c), a.merge(b.merge(c)))

    @given(corpora, corpora)
    def test_merge_is_pure(self, left, right):
        a = PathAccumulator.from_documents(left)
        b = PathAccumulator.from_documents(right)
        a_before, b_before = a.copy(), b.copy()
        a.merge(b)
        assert a == a_before
        assert b == b_before


class TestPartitionEquivalence:
    @given(corpora, st.integers(min_value=1, max_value=4))
    def test_chunked_merge_equals_single_pass(self, docs, chunk_size):
        """Any document partition, merged in order, equals one pass."""
        whole = PathAccumulator.from_documents(docs)
        merged = PathAccumulator()
        for start in range(0, len(docs), chunk_size):
            merged.update(
                PathAccumulator.from_documents(docs[start : start + chunk_size])
            )
        assert_equivalent(merged, whole)

    @given(corpora, st.integers(min_value=1, max_value=4))
    @settings(max_examples=40)
    def test_mining_agrees_across_representations(self, docs, chunk_size):
        """Frequent paths from merged chunks == from the document list."""
        merged = PathAccumulator()
        for start in range(0, len(docs), chunk_size):
            merged.update(
                PathAccumulator.from_documents(docs[start : start + chunk_size])
            )
        from_list = mine_frequent_paths(docs, sup_threshold=0.5)
        from_acc = mine_frequent_paths(merged, sup_threshold=0.5)
        assert from_acc.paths == from_list.paths
        assert from_acc.nodes_explored == from_list.nodes_explored
        assert from_acc.nodes_counted == from_list.nodes_counted


class TestStatisticsAgreement:
    @given(corpora)
    @settings(max_examples=50)
    def test_support_and_positions_match_document_lists(self, docs):
        """Accumulator queries equal the list-based implementations."""
        from repro.schema.ordering import average_child_positions
        from repro.schema.repetition import multiplicity_fraction, presence_fraction

        acc = PathAccumulator.from_documents(docs)
        paths = {path for doc in docs for path in doc.paths}
        for path in paths:
            assert acc.presence_fraction(path) == pytest.approx(
                presence_fraction(docs, path)
            )
            for threshold in (2, 3):
                assert acc.multiplicity_fraction(
                    path, rep_threshold=threshold
                ) == pytest.approx(
                    multiplicity_fraction(docs, path, rep_threshold=threshold)
                )
            parent, label = path[:-1], path[-1]
            if parent:
                expected = average_child_positions(docs, parent, [label])[label]
                assert acc.avg_position(path) == pytest.approx(expected)

"""Tests for character-reference decoding."""

import pytest

from repro.htmlparse.entities import (
    _CACHE_LIMIT,
    _DECODE_CACHE,
    _decode_entities_slow,
    decode_entities,
)


class TestNamedEntities:
    def test_core_entities(self):
        assert decode_entities("&amp;&lt;&gt;&quot;") == '&<>"'

    def test_nbsp_becomes_space(self):
        assert decode_entities("a&nbsp;b") == "a b"

    def test_missing_semicolon_tolerated(self):
        assert decode_entities("AT&amp T") == "AT& T"

    def test_unknown_entity_left_verbatim(self):
        assert decode_entities("&frobnicate;") == "&frobnicate;"

    def test_case_fallback(self):
        assert decode_entities("&AMP;") == "&"

    def test_typographic_entities(self):
        assert decode_entities("&ldquo;hi&rdquo;") == "“hi”"
        assert decode_entities("&mdash;") == "—"


class TestNumericEntities:
    def test_decimal(self):
        assert decode_entities("&#65;") == "A"

    def test_hexadecimal(self):
        assert decode_entities("&#x41;&#X42;") == "AB"

    def test_out_of_range_left_verbatim(self):
        assert decode_entities("&#1114112;") == "&#1114112;"

    def test_zero_left_verbatim(self):
        assert decode_entities("&#0;") == "&#0;"


class TestEdgeCases:
    def test_no_ampersand_fast_path(self):
        text = "plain text"
        assert decode_entities(text) is text

    def test_bare_ampersand_kept(self):
        assert decode_entities("fish & chips") == "fish & chips"

    def test_adjacent_entities(self):
        assert decode_entities("&lt;&lt;") == "<<"


class TestTruncatedReferences:
    """References cut off at end of input (no terminating semicolon)."""

    def test_truncated_decimal_decodes(self):
        assert decode_entities("&#65") == "A"

    def test_truncated_hex_decodes(self):
        assert decode_entities("&#x41") == "A"
        assert decode_entities("&#X41") == "A"

    def test_bare_hash_kept_verbatim(self):
        # '&#' has no digits: not reference-shaped, stays untouched.
        assert decode_entities("&#") == "&#"

    def test_bare_hex_prefix_is_a_failed_decimal(self):
        # '&#x' matches the numeric shape ('x' is a hex-alphabet char)
        # but int('x', 10) fails, so it stays verbatim.
        assert decode_entities("&#x") == "&#x"

    def test_hex_digits_without_x_kept_verbatim(self):
        # '&#6f' parses as a decimal body with a hex letter: int('6f',
        # 10) fails and the lexeme survives verbatim.
        assert decode_entities("&#6f") == "&#6f"

    def test_truncated_named_decodes(self):
        assert decode_entities("&amp") == "&"
        assert decode_entities("x&nbsp") == "x "


class TestFastSlowAgreement:
    """The split-based decoder and the sub-callback oracle agree."""

    SAMPLES = [
        "",
        "plain",
        "&",
        "&&&",
        "&amp;&amp&AMP;&aMp;",
        "&#65;&#65&#x41;&#x41&#&#x&#6f&#0;&#1114112;",
        "a&bogus;b&bogus c&frobnicate123;",
        "/cgi?a=1&amp;b=2&amp;c=3",
        "&nbsp;&middot;&copy;&euro;&eacute;",
        "tail&",
        "&;",
        "&#xZZ;",
        "mixed &lt;tag&gt; &#38; more&hellip;",
    ]

    @pytest.mark.parametrize("text", SAMPLES)
    def test_agreement(self, text):
        assert decode_entities(text) == _decode_entities_slow(text)


class TestDecodeCache:
    def test_seeded_with_named_entities(self):
        assert _DECODE_CACHE["&amp;"] == "&"
        assert _DECODE_CACHE["&amp"] == "&"

    def test_warms_on_new_lexemes(self):
        # A lexeme nobody else uses: decoding it populates the table.
        lexeme = "&zzcachewarm123;"
        _DECODE_CACHE.pop(lexeme, None)
        if len(_DECODE_CACHE) < _CACHE_LIMIT:
            assert decode_entities(lexeme) == lexeme
            assert _DECODE_CACHE.get(lexeme) == lexeme
            _DECODE_CACHE.pop(lexeme, None)

    def test_cache_result_is_correct_on_repeat(self):
        # Second decode of the same lexeme comes from the cache and must
        # equal the oracle's answer.
        text = "&eacute;&eacute;"
        assert decode_entities(text) == _decode_entities_slow(text) == "éé"

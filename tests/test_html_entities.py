"""Tests for character-reference decoding."""

from repro.htmlparse.entities import decode_entities


class TestNamedEntities:
    def test_core_entities(self):
        assert decode_entities("&amp;&lt;&gt;&quot;") == '&<>"'

    def test_nbsp_becomes_space(self):
        assert decode_entities("a&nbsp;b") == "a b"

    def test_missing_semicolon_tolerated(self):
        assert decode_entities("AT&amp T") == "AT& T"

    def test_unknown_entity_left_verbatim(self):
        assert decode_entities("&frobnicate;") == "&frobnicate;"

    def test_case_fallback(self):
        assert decode_entities("&AMP;") == "&"

    def test_typographic_entities(self):
        assert decode_entities("&ldquo;hi&rdquo;") == "“hi”"
        assert decode_entities("&mdash;") == "—"


class TestNumericEntities:
    def test_decimal(self):
        assert decode_entities("&#65;") == "A"

    def test_hexadecimal(self):
        assert decode_entities("&#x41;&#X42;") == "AB"

    def test_out_of_range_left_verbatim(self):
        assert decode_entities("&#1114112;") == "&#1114112;"

    def test_zero_left_verbatim(self):
        assert decode_entities("&#0;") == "&#0;"


class TestEdgeCases:
    def test_no_ampersand_fast_path(self):
        text = "plain text"
        assert decode_entities(text) is text

    def test_bare_ampersand_kept(self):
        assert decode_entities("fish & chips") == "fish & chips"

    def test_adjacent_entities(self):
        assert decode_entities("&lt;&lt;") == "<<"

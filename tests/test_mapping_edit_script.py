"""Tests for approximate edit scripts."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dom.node import Element
from repro.mapping.edit_script import (
    EditOp,
    approximate_edit_script,
    script_cost,
)
from repro.mapping.tree_edit import tree_edit_distance


def tree(spec):
    tag, kids = spec
    e = Element(tag)
    for k in kids:
        e.append_child(tree(k))
    return e


class TestScripts:
    def test_identical_trees_empty_script(self):
        a = tree(("r", [("a", []), ("b", [("c", [])])]))
        b = tree(("r", [("a", []), ("b", [("c", [])])]))
        assert approximate_edit_script(a, b) == []

    def test_root_relabel(self):
        steps = approximate_edit_script(tree(("a", [])), tree(("b", [])))
        assert len(steps) == 1
        assert steps[0].op is EditOp.RELABEL

    def test_single_insert(self):
        a = tree(("r", [("a", [])]))
        b = tree(("r", [("a", []), ("b", [])]))
        steps = approximate_edit_script(a, b)
        assert [s.op for s in steps] == [EditOp.INSERT]
        assert steps[0].path == ("r", "b")

    def test_single_delete(self):
        a = tree(("r", [("a", []), ("b", [])]))
        b = tree(("r", [("a", [])]))
        steps = approximate_edit_script(a, b)
        assert [s.op for s in steps] == [EditOp.DELETE]

    def test_subtree_costs_size(self):
        a = tree(("r", []))
        b = tree(("r", [("x", [("y", []), ("z", [])])]))
        steps = approximate_edit_script(a, b)
        assert script_cost(steps) == 3
        assert all(s.op is EditOp.INSERT for s in steps)

    def test_lone_mismatch_becomes_relabel(self):
        a = tree(("r", [("a", []), ("x", []), ("b", [])]))
        b = tree(("r", [("a", []), ("y", []), ("b", [])]))
        steps = approximate_edit_script(a, b)
        assert script_cost(steps) == 1
        assert steps[0].op is EditOp.RELABEL

    def test_nested_changes_located_by_path(self):
        a = tree(("r", [("edu", [("d", [])])]))
        b = tree(("r", [("edu", [("d", []), ("gpa", [])])]))
        steps = approximate_edit_script(a, b)
        assert steps[0].path == ("r", "edu", "gpa")


class TestUpperBoundInvariant:
    tag_names = st.sampled_from(["a", "b", "c"])

    @st.composite
    def trees(draw, max_depth=3):
        def build(depth):
            e = Element(draw(TestUpperBoundInvariant.tag_names))
            if depth < max_depth:
                for _ in range(draw(st.integers(0, 3))):
                    e.append_child(build(depth + 1))
            return e

        return build(0)

    @given(trees(), trees())
    @settings(max_examples=60)
    def test_script_cost_upper_bounds_distance(self, a, b):
        steps = approximate_edit_script(a, b)
        assert script_cost(steps) >= tree_edit_distance(a, b)

    @given(trees())
    @settings(max_examples=30)
    def test_self_script_empty(self, a):
        assert approximate_edit_script(a, a) == []

"""Failure-injection and adversarial-input tests across the stack."""

import pytest

from repro.concepts.concept import Concept
from repro.concepts.knowledge import KnowledgeBase
from repro.convert.pipeline import DocumentConverter
from repro.dom.node import Element
from repro.htmlparse.parser import parse_html
from repro.htmlparse.tidy import tidy


class TestAdversarialHtml:
    def test_deeply_nested_divs(self):
        html = "<div>" * 3000 + "deep" + "</div>" * 3000
        doc = parse_html(html)
        assert "deep" in doc.inner_text()
        tidy(doc)

    def test_thousands_of_siblings(self):
        html = "<ul>" + "<li>x</li>" * 5000 + "</ul>"
        doc = parse_html(html)
        body = doc.element_children()[-1]
        ul = body.element_children()[0]
        assert len(ul.element_children()) == 5000

    def test_huge_attribute_value(self):
        html = f'<p title="{"v" * 100_000}">x</p>'
        doc = parse_html(html)
        p = doc.element_children()[-1].element_children()[0]
        assert len(p.attrs["title"]) == 100_000

    def test_null_bytes_and_controls(self):
        doc = parse_html("<p>a\x00b\x01c</p>")
        assert doc.tag == "html"

    def test_angle_bracket_storm(self):
        doc = parse_html("<<<>>><<p>>x<</p>>")
        assert "x" in doc.inner_text()

    def test_tag_name_case_storm(self):
        doc = parse_html("<DiV><uL><Li>x</LI></Ul></dIv>")
        body = doc.element_children()[-1]
        assert body.element_children()[0].tag == "div"

    def test_attribute_quote_confusion(self):
        doc = parse_html("""<a href="x' title='y">t</a>""")
        assert doc.tag == "html"

    def test_bare_script_injection_is_inert_text(self):
        doc = parse_html("<script>alert('<h1>not a heading</h1>')</script><p>x</p>")
        body = doc.element_children()[-1]
        tags = [c.tag for c in body.element_children()]
        assert "h1" not in tags


class TestConverterRobustness:
    def test_empty_string(self, converter):
        result = converter.convert("")
        assert result.root.tag == "RESUME"

    def test_text_only_document(self, converter):
        result = converter.convert("just some plain words, no markup at all")
        assert result.root.tag == "RESUME"
        # Text is preserved somewhere.
        from repro.dom.treeops import iter_elements

        vals = " ".join(el.get_val() for el in iter_elements(result.root))
        assert "plain words" in vals

    def test_markup_only_document(self, converter):
        result = converter.convert("<div><span></span></div><hr><br>")
        assert result.root.children == []

    def test_non_topic_document(self, converter):
        result = converter.convert(
            "<html><body><h1>Pasta Recipes</h1><p>Boil water. Add salt."
            "</p></body></html>"
        )
        assert result.root.tag == "RESUME"

    def test_giant_flat_document(self, converter):
        html = "<body>" + "<p>University of Testing, B.S., 1999</p>" * 500 + "</body>"
        result = converter.convert(html)
        assert result.concept_node_count >= 500

    def test_single_concept_kb(self):
        kb = KnowledgeBase("thing", [Concept("thing")])
        converter = DocumentConverter(kb)
        result = converter.convert("<p>a thing here</p>")
        assert result.root.tag == "THING"

    def test_converter_is_reusable_and_stateless(self, converter):
        html = "<h2>Education</h2><p>B.S., 1999</p>"
        first = converter.convert(html)
        second = converter.convert(html)
        from repro.dom.treeops import deep_equal

        assert deep_equal(first.root, second.root)


class TestMapperRobustness:
    def test_conform_against_recursive_hand_dtd_terminates(self):
        """A hand-written DTD with a required cycle must not hang."""
        from repro.mapping.conform import conform_document
        from repro.schema.dtd import DTD

        dtd = DTD.parse(
            "<!ELEMENT a ((#PCDATA), b)>\n<!ELEMENT b ((#PCDATA), a)>"
        )
        root = Element("A")
        result = conform_document(root, dtd)
        assert result.inserted >= 1  # b synthesized once, then guarded

    def test_repository_with_unsatisfiable_dtd_raises_cleanly(self):
        from repro.mapping.repository import XMLRepository
        from repro.schema.dtd import DTD

        dtd = DTD.parse(
            "<!ELEMENT a ((#PCDATA), b)>\n<!ELEMENT b ((#PCDATA), a)>"
        )
        repo = XMLRepository(dtd)
        with pytest.raises(AssertionError):
            repo.insert(Element("A"))

    def test_tree_edit_on_degenerate_chains(self):
        from repro.mapping.tree_edit import tree_edit_distance

        def chain(n, tag):
            root = Element(tag)
            node = root
            for _ in range(n):
                node = node.append_child(Element(tag))
            return root

        assert tree_edit_distance(chain(50, "a"), chain(50, "a")) == 0
        assert tree_edit_distance(chain(50, "a"), chain(49, "a")) == 1


class TestMinerRobustness:
    def test_empty_corpus(self):
        from repro.schema.frequent import mine_frequent_paths

        result = mine_frequent_paths([], sup_threshold=0.5)
        assert result.paths == set()

    def test_single_node_documents(self):
        from repro.schema.frequent import mine_frequent_paths
        from repro.schema.paths import extract_paths

        docs = [extract_paths(Element("r")) for _ in range(3)]
        result = mine_frequent_paths(docs, sup_threshold=0.5)
        assert result.paths == {("r",)}

    def test_threshold_edges(self):
        from repro.schema.frequent import mine_frequent_paths
        from repro.schema.paths import extract_paths

        root = Element("r")
        root.append_child(Element("x"))
        docs = [extract_paths(root)]
        everything = mine_frequent_paths(docs, sup_threshold=0.0)
        assert ("r", "x") in everything.paths
        nothing_above_one = mine_frequent_paths(docs, sup_threshold=1.0)
        assert ("r", "x") in nothing_above_one.paths  # single doc: support 1

"""Tests for the university-directory domain (Section 5's other broad topic)."""

import random

import pytest

from repro.convert.pipeline import DocumentConverter
from repro.corpus.university import (
    DirectoryCorpusGenerator,
    build_university_knowledge_base,
    render_directory,
    sample_directory,
)
from repro.dom.treeops import deep_equal, iter_elements


@pytest.fixture(scope="module")
def univ_kb():
    return build_university_knowledge_base()


@pytest.fixture(scope="module")
def univ_converter(univ_kb):
    return DocumentConverter(univ_kb)


class TestDomain:
    def test_kb_shape(self, univ_kb):
        assert len(univ_kb) == 9
        assert univ_kb.get("phone").first_match("(530) 752-1234")
        assert univ_kb.get("office").first_match("Room 3051")
        assert univ_kb.get("office").first_match("2063 Kemper Hall")

    def test_sampling_deterministic(self):
        assert sample_directory(random.Random(2)) == sample_directory(random.Random(2))

    def test_generator_deterministic(self):
        a = DirectoryCorpusGenerator(seed=4).generate_one(1)
        b = DirectoryCorpusGenerator(seed=4).generate_one(1)
        assert a.html == b.html
        assert deep_equal(a.ground_truth, b.ground_truth)

    def test_rendering_contains_entries(self):
        data = sample_directory(random.Random(3))
        html = render_directory(data, random.Random(3))
        for entry in data.entries:
            assert entry.email in html

    def test_ground_truth_uses_only_kb_tags(self, univ_kb):
        doc = DirectoryCorpusGenerator(seed=4).generate_one(0)
        tags = {el.tag for el in iter_elements(doc.ground_truth)}
        assert tags <= univ_kb.concept_tags()


class TestConversion:
    def test_accuracy(self, univ_converter):
        from repro.evaluation.accuracy import evaluate_accuracy

        docs = DirectoryCorpusGenerator(seed=4).generate(12)
        pairs = [
            (univ_converter.convert(d.html).root, d.ground_truth) for d in docs
        ]
        report = evaluate_accuracy(pairs)
        assert report.accuracy > 88.0

    def test_faculty_records_recovered(self, univ_converter):
        from repro.dom.path import find_all

        doc = DirectoryCorpusGenerator(seed=4).generate_one(0)
        result = univ_converter.convert(doc.html)
        faculty = find_all(result.root, "DIRECTORY/FACULTY")
        assert len(faculty) == len(doc.data.entries)
        emails = find_all(result.root, "DIRECTORY/FACULTY//EMAIL")
        assert len(emails) == len(doc.data.entries)

    def test_schema_and_dtd(self, univ_converter, univ_kb):
        from repro.schema.dtd import derive_dtd
        from repro.schema.frequent import mine_frequent_paths
        from repro.schema.majority import MajoritySchema
        from repro.schema.paths import extract_paths

        docs = DirectoryCorpusGenerator(seed=4).generate(15)
        documents = [
            extract_paths(univ_converter.convert(d.html).root) for d in docs
        ]
        schema = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(
                documents,
                sup_threshold=0.4,
                constraints=univ_kb.constraints,
                candidate_labels=univ_kb.concept_tags(),
            )
        )
        dtd = derive_dtd(schema, documents)
        assert dtd.root_name == "directory"
        assert "faculty" in dtd.elements
        faculty = dtd.element("faculty")
        assert faculty.particles  # entries carry structure

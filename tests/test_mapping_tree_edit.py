"""Tests for the Zhang--Shasha tree edit distance."""

import pytest

from repro.dom.node import Element, Text
from repro.mapping.tree_edit import (
    tree_distance_normalized,
    tree_edit_distance,
)


def tree(spec):
    tag, kids = spec
    e = Element(tag)
    for k in kids:
        e.append_child(tree(k))
    return e


class TestKnownDistances:
    def test_identical_trees(self):
        a = tree(("r", [("a", []), ("b", [("c", [])])]))
        b = tree(("r", [("a", []), ("b", [("c", [])])]))
        assert tree_edit_distance(a, b) == 0

    def test_single_relabel(self):
        a = tree(("r", [("a", [])]))
        b = tree(("r", [("x", [])]))
        assert tree_edit_distance(a, b) == 1

    def test_single_insert(self):
        a = tree(("r", [("a", [])]))
        b = tree(("r", [("a", []), ("b", [])]))
        assert tree_edit_distance(a, b) == 1

    def test_single_delete(self):
        a = tree(("r", [("a", []), ("b", [])]))
        b = tree(("r", [("a", [])]))
        assert tree_edit_distance(a, b) == 1

    def test_leaf_vs_chain(self):
        a = tree(("r", []))
        b = tree(("r", [("a", [("b", [])])]))
        assert tree_edit_distance(a, b) == 2

    def test_classic_zhang_shasha_example(self):
        # The f(d(a c(b)) e) vs f(c(d(a b)) e) example: distance 2.
        a = tree(("f", [("d", [("a", []), ("c", [("b", [])])]), ("e", [])]))
        b = tree(("f", [("c", [("d", [("a", []), ("b", [])])]), ("e", [])]))
        assert tree_edit_distance(a, b) == 2

    def test_completely_different(self):
        a = tree(("a", [("b", [])]))
        b = tree(("x", [("y", [("z", [])])]))
        assert tree_edit_distance(a, b) == 3  # 2 relabels + 1 insert

    def test_order_sensitivity(self):
        """Ordered trees: swapping children costs edits."""
        a = tree(("r", [("a", []), ("b", [])]))
        b = tree(("r", [("b", []), ("a", [])]))
        assert tree_edit_distance(a, b) == 2


class TestMetricProperties:
    CASES = [
        tree(("r", [("a", []), ("b", [])])),
        tree(("r", [("a", [("x", [])])])),
        tree(("q", [("a", []), ("b", []), ("c", [])])),
    ]

    def test_symmetry(self):
        for a in self.CASES:
            for b in self.CASES:
                assert tree_edit_distance(a, b) == tree_edit_distance(b, a)

    def test_identity(self):
        for a in self.CASES:
            assert tree_edit_distance(a, a) == 0

    def test_triangle_inequality(self):
        cases = self.CASES
        for a in cases:
            for b in cases:
                for c in cases:
                    ab = tree_edit_distance(a, b)
                    bc = tree_edit_distance(b, c)
                    ac = tree_edit_distance(a, c)
                    assert ac <= ab + bc


class TestOptions:
    def test_text_nodes_excluded_by_default(self):
        a = tree(("r", []))
        b = tree(("r", []))
        b.append_child(Text("words"))
        assert tree_edit_distance(a, b) == 0
        assert tree_edit_distance(a, b, include_text=True) == 1

    def test_custom_cost_function(self):
        def cheap_relabel(x, y):
            if x is None or y is None:
                return 1.0
            return 0.0 if x == y else 0.1

        a = tree(("r", [("a", [])]))
        b = tree(("r", [("x", [])]))
        assert tree_edit_distance(a, b, cost=cheap_relabel) == pytest.approx(0.1)

    def test_normalized_in_unit_interval(self):
        a = tree(("r", [("a", []), ("b", [])]))
        b = tree(("x", [("y", [("z", [("w", [])])])]))
        value = tree_distance_normalized(a, b)
        assert 0 < value <= 1.0

    def test_text_root_is_single_node(self):
        # A bare Text root annotates as one "#text" node, so comparing it
        # with a single element is one relabel.
        assert tree_edit_distance(Text("x"), Element("r")) == 1


class TestScale:
    def test_moderate_trees_complete(self):
        import random

        rng = random.Random(5)

        def random_tree(n):
            nodes = [Element("n0")]
            for i in range(1, n):
                parent = rng.choice(nodes)
                child = Element(f"n{rng.randint(0, 5)}")
                parent.append_child(child)
                nodes.append(child)
            return nodes[0]

        a, b = random_tree(60), random_tree(60)
        d = tree_edit_distance(a, b)
        assert 0 <= d <= 120

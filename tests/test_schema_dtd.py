"""Tests for DTD derivation (Section 3.3): ordering, repetition, rendering."""

import pytest

from repro.dom.node import Element
from repro.schema.dtd import (
    DTD,
    ContentParticle,
    DTDElement,
    Multiplicity,
    derive_dtd,
)
from repro.schema.frequent import mine_frequent_paths
from repro.schema.majority import MajoritySchema
from repro.schema.paths import extract_paths
from repro.schema.repetition import is_repetitive, multiplicity_fraction


def tree(spec):
    tag, kids = spec
    e = Element(tag)
    for k in kids:
        e.append_child(tree(k))
    return e


def corpus(*specs):
    return [extract_paths(tree(s)) for s in specs]


def schema_for(docs, sup=0.5):
    return MajoritySchema.from_frequent_paths(
        mine_frequent_paths(docs, sup_threshold=sup)
    )


class TestMultiplicity:
    def test_combine_repetition_wins(self):
        assert Multiplicity.ONE.combine(Multiplicity.PLUS) is Multiplicity.PLUS

    def test_combine_optional_wins(self):
        assert Multiplicity.ONE.combine(Multiplicity.OPTIONAL) is Multiplicity.OPTIONAL

    def test_combine_both_gives_star(self):
        assert Multiplicity.PLUS.combine(Multiplicity.OPTIONAL) is Multiplicity.STAR
        assert Multiplicity.STAR.combine(Multiplicity.ONE) is Multiplicity.STAR

    def test_combine_identity(self):
        assert Multiplicity.ONE.combine(Multiplicity.ONE) is Multiplicity.ONE


class TestRepetitionRule:
    def test_rep_threshold_semantics(self):
        # 3+ same-label siblings in most documents -> repetitive.
        docs = corpus(
            ("r", [("e", [("d", []), ("d", []), ("d", [])])]),
            ("r", [("e", [("d", []), ("d", []), ("d", []), ("d", [])])]),
            ("r", [("e", [("d", [])])]),
        )
        path = ("r", "e", "d")
        assert multiplicity_fraction(docs, path, rep_threshold=3) == pytest.approx(2 / 3)
        assert is_repetitive(docs, path)

    def test_below_mult_threshold_not_repetitive(self):
        docs = corpus(
            ("r", [("e", [("d", []), ("d", []), ("d", [])])]),
            ("r", [("e", [("d", [])])]),
            ("r", [("e", [("d", [])])]),
        )
        assert not is_repetitive(docs, ("r", "e", "d"))

    def test_rep_threshold_must_exceed_one(self):
        docs = corpus(("r", [("e", [])]))
        with pytest.raises(ValueError):
            is_repetitive(docs, ("r", "e"), rep_threshold=1)

    def test_only_containing_documents_vote(self):
        docs = corpus(
            ("r", [("e", [("d", []), ("d", []), ("d", [])])]),
            ("r", [("x", [])]),  # does not contain the path at all
        )
        assert multiplicity_fraction(docs, ("r", "e", "d"), rep_threshold=3) == 1.0


class TestOrderingRule:
    def test_children_ordered_by_average_position(self):
        docs = corpus(
            ("r", [("a", []), ("b", []), ("c", [])]),
            ("r", [("a", []), ("c", []), ("b", [])]),
            ("r", [("a", []), ("b", []), ("c", [])]),
        )
        dtd = derive_dtd(schema_for(docs), docs)
        assert [p.name for p in dtd.element("r").particles] == ["a", "b", "c"]

    def test_majority_order_wins(self):
        docs = corpus(
            ("r", [("b", []), ("a", [])]),
            ("r", [("b", []), ("a", [])]),
            ("r", [("a", []), ("b", [])]),
        )
        dtd = derive_dtd(schema_for(docs), docs)
        assert [p.name for p in dtd.element("r").particles] == ["b", "a"]


class TestDerivation:
    def test_repetitive_marked_plus(self):
        docs = corpus(
            ("r", [("e", [("d", []), ("d", []), ("d", [])]), ("c", [])]),
            ("r", [("e", [("d", []), ("d", []), ("d", [])]), ("c", [])]),
        )
        dtd = derive_dtd(schema_for(docs), docs)
        d_particle = dtd.element("e").particle_for("d")
        assert d_particle.multiplicity is Multiplicity.PLUS
        c_particle = dtd.element("r").particle_for("c")
        assert c_particle.multiplicity is Multiplicity.ONE

    def test_leaf_elements_are_pcdata(self):
        docs = corpus(("r", [("c", [])]), ("r", [("c", [])]))
        dtd = derive_dtd(schema_for(docs), docs)
        assert dtd.element("c").is_leaf()
        assert dtd.element("c").render() == "<!ELEMENT c (#PCDATA)>"

    def test_names_lowercased_by_default(self):
        docs = corpus(("R", [("C", [])]), ("R", [("C", [])]))
        dtd = derive_dtd(schema_for(docs), docs)
        assert "r" in dtd.elements and "c" in dtd.elements

    def test_lowercase_disabled(self):
        docs = corpus(("R", [("C", [])]), ("R", [("C", [])]))
        dtd = derive_dtd(schema_for(docs), docs, lowercase_names=False)
        assert "R" in dtd.elements

    def test_optional_extension(self):
        docs = corpus(
            ("r", [("a", []), ("b", [])]),
            ("r", [("a", []), ("b", [])]),
            ("r", [("a", [])]),
        )
        dtd = derive_dtd(schema_for(docs), docs, optional_threshold=0.9)
        assert dtd.element("r").particle_for("b").multiplicity is Multiplicity.OPTIONAL
        assert dtd.element("r").particle_for("a").multiplicity is Multiplicity.ONE

    def test_same_name_under_two_parents_unified(self):
        docs = corpus(
            ("r", [("a", [("d", [("x", [])])]), ("b", [("d", [("y", [])])])]),
            ("r", [("a", [("d", [("x", [])])]), ("b", [("d", [("y", [])])])]),
        )
        dtd = derive_dtd(schema_for(docs), docs)
        d_children = {p.name for p in dtd.element("d").particles}
        assert d_children == {"x", "y"}


class TestRendering:
    def test_paper_style_rendering(self):
        docs = corpus(
            ("resume", [("contact", []), ("education", [("degree", []), ("degree", []), ("degree", [])])]),
            ("resume", [("contact", []), ("education", [("degree", []), ("degree", []), ("degree", [])])]),
        )
        dtd = derive_dtd(schema_for(docs), docs)
        text = dtd.render()
        assert "<!ELEMENT resume ((#PCDATA), contact, education)>" in text
        assert "<!ELEMENT education ((#PCDATA), degree+)>" in text
        assert "<!ELEMENT degree (#PCDATA)>" in text

    def test_root_rendered_first(self):
        docs = corpus(("r", [("z", []), ("a", [])]), ("r", [("z", []), ("a", [])]))
        dtd = derive_dtd(schema_for(docs), docs)
        assert dtd.render().splitlines()[0].startswith("<!ELEMENT r ")

    def test_element_count(self):
        docs = corpus(("r", [("a", []), ("b", [])]), ("r", [("a", []), ("b", [])]))
        assert derive_dtd(schema_for(docs), docs).element_count() == 3


class TestParsing:
    def test_round_trip(self):
        docs = corpus(
            ("r", [("e", [("d", []), ("d", []), ("d", [])]), ("c", [])]),
            ("r", [("e", [("d", []), ("d", []), ("d", [])]), ("c", [])]),
        )
        original = derive_dtd(schema_for(docs), docs)
        parsed = DTD.parse(original.render())
        assert parsed.root_name == "r"
        assert set(parsed.elements) == set(original.elements)
        assert (
            parsed.element("e").particle_for("d").multiplicity
            is Multiplicity.PLUS
        )

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            DTD.parse("not a dtd at all")

    def test_manual_declaration(self):
        dtd = DTD("root")
        dtd.declare(
            DTDElement("root", [ContentParticle("kid", Multiplicity.STAR)])
        )
        assert "kid*" in dtd.render()

    def test_declare_unifies(self):
        dtd = DTD("root")
        dtd.declare(DTDElement("e", [ContentParticle("a")]))
        dtd.declare(DTDElement("e", [ContentParticle("a", Multiplicity.PLUS), ContentParticle("b")]))
        element = dtd.element("e")
        assert element.particle_for("a").multiplicity is Multiplicity.PLUS
        assert element.particle_for("b") is not None

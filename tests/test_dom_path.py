"""Tests for slash-path queries."""

from repro.dom.node import Element
from repro.dom.path import find_all, find_first


def build():
    root = Element("resume")
    edu = root.append_child(Element("education"))
    d1 = edu.append_child(Element("date"))
    d1.append_child(Element("degree"))
    d2 = edu.append_child(Element("date"))
    exp = root.append_child(Element("experience"))
    exp.append_child(Element("date"))
    return root, edu, d1, d2, exp


class TestExactPaths:
    def test_single_step_matches_context(self):
        root, *_ = build()
        assert find_all(root, "resume") == [root]

    def test_two_steps(self):
        root, edu, *_ = build()
        assert find_all(root, "resume/education") == [edu]

    def test_three_steps_multiple_matches(self):
        root, edu, d1, d2, exp = build()
        assert find_all(root, "resume/education/date") == [d1, d2]

    def test_wrong_root_no_match(self):
        root, *_ = build()
        assert find_all(root, "cv/education") == []

    def test_wildcard_step(self):
        root, edu, d1, d2, exp = build()
        assert find_all(root, "resume/*/date") == [d1, d2, exp.children[0]]

    def test_find_first(self):
        root, edu, d1, *_ = build()
        assert find_first(root, "resume/education/date") is d1
        assert find_first(root, "resume/nothing") is None


class TestDescendantPaths:
    def test_double_slash_from_root(self):
        root, edu, d1, d2, exp = build()
        dates = find_all(root, "//date")
        assert len(dates) == 3

    def test_double_slash_mid_path(self):
        root, edu, d1, d2, exp = build()
        degrees = find_all(root, "resume//degree")
        assert len(degrees) == 1

    def test_double_slash_no_duplicates(self):
        root, *_ = build()
        dates = find_all(root, "//education//degree")
        assert len(dates) == 1

"""Tests for tree traversals and structural operations."""

from repro.dom.node import Element, Text
from repro.dom.treeops import (
    clone,
    count_elements,
    deep_equal,
    find_elements,
    first_element,
    iter_elements,
    iter_postorder,
    iter_preorder,
    tree_depth,
    tree_signature,
    tree_size,
)


def sample():
    #      root
    #     /    \
    #    a      b
    #   / \      \
    #  c  "t"     d
    root = Element("root")
    a = root.append_child(Element("a"))
    c = a.append_child(Element("c"))
    t = a.append_child(Text("t"))
    b = root.append_child(Element("b"))
    d = b.append_child(Element("d"))
    return root, a, b, c, d, t


class TestTraversal:
    def test_preorder_order(self):
        root, a, b, c, d, t = sample()
        assert list(iter_preorder(root)) == [root, a, c, t, b, d]

    def test_postorder_children_before_parent(self):
        root, a, b, c, d, t = sample()
        order = list(iter_postorder(root))
        assert order.index(c) < order.index(a)
        assert order.index(d) < order.index(b)
        assert order[-1] is root

    def test_postorder_full_sequence(self):
        root, a, b, c, d, t = sample()
        assert list(iter_postorder(root)) == [c, t, a, d, b, root]

    def test_iter_elements_skips_text(self):
        root, *_ = sample()
        assert all(isinstance(n, Element) for n in iter_elements(root))
        assert len(list(iter_elements(root))) == 5

    def test_postorder_survives_deep_tree(self):
        # 10000-deep chain: must not hit the recursion limit.
        root = Element("n0")
        node = root
        for i in range(1, 10_000):
            node = node.append_child(Element(f"n{i}"))
        assert sum(1 for _ in iter_postorder(root)) == 10_000


class TestMeasures:
    def test_tree_size_counts_all_nodes(self):
        root, *_ = sample()
        assert tree_size(root) == 6

    def test_tree_depth(self):
        root, *_ = sample()
        assert tree_depth(root) == 2
        assert tree_depth(Element("leaf")) == 0

    def test_count_elements_with_and_without_tag(self):
        root, *_ = sample()
        assert count_elements(root) == 5
        assert count_elements(root, "a") == 1
        assert count_elements(root, "zzz") == 0


class TestCloneAndEquality:
    def test_clone_is_deep_and_detached(self):
        root, a, *_ = sample()
        copy = clone(a)
        assert copy.parent is None
        assert deep_equal(copy, a)
        assert copy is not a
        assert copy.children[0] is not a.children[0]

    def test_clone_copies_attrs(self):
        e = Element("e", {"val": "x"})
        assert clone(e).attrs == {"val": "x"}
        c = clone(e)
        c.attrs["val"] = "y"
        assert e.attrs["val"] == "x"

    def test_deep_equal_detects_tag_difference(self):
        assert not deep_equal(Element("a"), Element("b"))

    def test_deep_equal_detects_attr_difference(self):
        assert not deep_equal(Element("a", {"val": "1"}), Element("a"))
        assert deep_equal(
            Element("a", {"val": "1"}), Element("a"), compare_attrs=False
        )

    def test_deep_equal_detects_child_count(self):
        a = Element("a", children=[Element("x")])
        b = Element("a")
        assert not deep_equal(a, b)

    def test_text_vs_element_not_equal(self):
        assert not deep_equal(Text("a"), Element("a"))


class TestSignature:
    def test_leaf_signature_is_tag(self):
        assert tree_signature(Element("x")) == "x"

    def test_nested_signature(self):
        root, *_ = sample()
        assert tree_signature(root) == "root(a(c,#text),b(d))"

    def test_signature_with_val(self):
        e = Element("x")
        e.set_val("v")
        assert tree_signature(e, include_val=True) == "x[v]"


class TestSearch:
    def test_find_elements(self):
        root, a, b, c, d, t = sample()
        found = find_elements(root, lambda el: el.tag in ("c", "d"))
        assert found == [c, d]

    def test_first_element_returns_none_when_absent(self):
        root, *_ = sample()
        assert first_element(root, lambda el: el.tag == "zzz") is None

    def test_first_element_preorder(self):
        root, a, *_ = sample()
        assert first_element(root, lambda el: True) is root

"""Tests for the logical-error metric (Figure 4)."""

import pytest

from repro.dom.node import Element
from repro.evaluation.accuracy import (
    AccuracyReport,
    count_logical_errors,
    evaluate_accuracy,
)


def tree(spec):
    tag, kids = spec
    e = Element(tag)
    for k in kids:
        e.append_child(tree(k))
    return e


class TestSingleDocument:
    def test_identical_trees_zero_errors(self):
        a = tree(("R", [("A", [("X", [])]), ("B", [])]))
        b = tree(("R", [("A", [("X", [])]), ("B", [])]))
        assert count_logical_errors(a, b).errors == 0

    def test_moved_group_is_one_error(self):
        """A group of siblings under the wrong parent = 1 logical error."""
        extracted = tree(("R", [("A", [("X", []), ("X", [])]), ("B", [])]))
        truth = tree(("R", [("A", []), ("B", [("X", []), ("X", [])])]))
        assert count_logical_errors(extracted, truth).errors == 1

    def test_flat_vs_nested_record_is_one_error(self):
        """Four fields nested under a leader instead of flat: the four
        move together from the leader to the section = 1 error."""
        extracted = tree(
            ("R", [("C", [("A", [("L", []), ("P", []), ("E", [])])])])
        )
        truth = tree(("R", [("C", [("A", []), ("L", []), ("P", []), ("E", [])])]))
        assert count_logical_errors(extracted, truth).errors == 1

    def test_spurious_group_is_one_error(self):
        extracted = tree(("R", [("A", [("JUNK", [])])]))
        truth = tree(("R", [("A", [])]))
        assert count_logical_errors(extracted, truth).errors == 1

    def test_missing_group_is_one_error(self):
        extracted = tree(("R", [("A", [])]))
        truth = tree(("R", [("A", [("X", [])])]))
        assert count_logical_errors(extracted, truth).errors == 1

    def test_run_of_same_label_is_one_group(self):
        """Five DATE siblings = one group edge, not five."""
        extracted = tree(("R", [("E", [("D", [])] * 5)]))
        truth = tree(("R", [("E", [])]))
        assert count_logical_errors(extracted, truth).errors == 1

    def test_two_independent_moves_two_errors(self):
        extracted = tree(("R", [("A", [("X", [])]), ("B", [("Y", [])])]))
        truth = tree(("R", [("A", [("Y", [])]), ("B", [("X", [])])]))
        assert count_logical_errors(extracted, truth).errors == 2

    def test_node_counts_reported(self):
        extracted = tree(("R", [("A", []), ("B", [])]))
        truth = tree(("R", [("A", [])]))
        result = count_logical_errors(extracted, truth)
        assert result.extracted_nodes == 3
        assert result.truth_nodes == 2

    def test_error_percentage(self):
        extracted = tree(("R", [("A", [])] + [("B", [])]))
        truth = tree(("R", [("A", [])]))
        result = count_logical_errors(extracted, truth)
        assert result.error_percentage == pytest.approx(100.0 / 3)

    def test_empty_extraction_against_empty_truth(self):
        result = count_logical_errors(Element("R"), Element("R"))
        assert result.errors == 0
        assert result.error_percentage == 0.0


class TestReport:
    def make_report(self, error_pcts):
        report = AccuracyReport()
        for i, pct in enumerate(error_pcts):
            # fabricate documents with 100 nodes and pct errors
            from repro.evaluation.accuracy import DocumentErrors

            report.documents.append(
                DocumentErrors(
                    doc_id=i,
                    errors=int(pct),
                    extracted_nodes=100,
                    truth_nodes=100,
                    surplus_paths=0,
                    deficit_paths=0,
                )
            )
        return report

    def test_averages(self):
        report = self.make_report([5, 10, 15])
        assert report.avg_errors_per_document == 10.0
        assert report.avg_error_percentage == pytest.approx(10.0)
        assert report.accuracy == pytest.approx(90.0)

    def test_histogram_bands(self):
        report = self.make_report([1, 5, 9, 13, 17, 21])
        hist = dict(report.histogram())
        assert hist["0-4"] == 1
        assert hist["4-8"] == 1
        assert hist["8-12"] == 1
        assert hist["12-16"] == 1
        assert hist["16-20"] == 1
        assert hist["20-24"] == 1

    def test_histogram_overflow_band(self):
        report = self.make_report([50])
        hist = dict(report.histogram())
        assert hist[">24"] == 1

    def test_empty_report(self):
        report = AccuracyReport()
        assert report.avg_errors_per_document == 0.0
        assert report.avg_error_percentage == 0.0

    def test_evaluate_accuracy_wires_pairs(self):
        a = tree(("R", [("A", [])]))
        b = tree(("R", [("A", [])]))
        report = evaluate_accuracy([(a, b), (a, b)])
        assert report.document_count == 2
        assert report.avg_errors_per_document == 0.0


class TestEndToEndAccuracy:
    def test_corpus_accuracy_in_paper_band(self, converter, kb):
        """The headline reproduction: ~90% accuracy on 50 documents."""
        from repro.corpus.generator import ResumeCorpusGenerator

        docs = ResumeCorpusGenerator(seed=1966).generate(50)
        pairs = [(converter.convert(d.html).root, d.ground_truth) for d in docs]
        report = evaluate_accuracy(pairs)
        # Paper: 9.2% error, 90.8% accuracy.  Accept a generous band;
        # the benchmark prints the exact numbers.
        assert 4.0 <= report.avg_error_percentage <= 16.0
        assert report.avg_concept_nodes_per_document > 30

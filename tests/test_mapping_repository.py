"""Tests for the XML repository."""

import pytest

from repro.dom.node import Element
from repro.mapping.repository import XMLRepository
from repro.schema.dtd import DTD

DTD_TEXT = """
<!ELEMENT resume ((#PCDATA), contact, education+)>
<!ELEMENT contact (#PCDATA)>
<!ELEMENT education ((#PCDATA), degree)>
<!ELEMENT degree (#PCDATA)>
"""


@pytest.fixture()
def repo():
    return XMLRepository(DTD.parse(DTD_TEXT))


def conforming_doc(degree="B.S."):
    root = Element("RESUME")
    root.append_child(Element("CONTACT"))
    edu = root.append_child(Element("EDUCATION"))
    d = edu.append_child(Element("DEGREE"))
    d.set_val(degree)
    return root


def broken_doc():
    root = Element("RESUME")
    root.append_child(Element("EDUCATION"))  # missing contact and degree
    return root


class TestInsertion:
    def test_conforming_inserted_unchanged(self, repo):
        result = repo.insert(conforming_doc())
        assert result is not None
        assert result.total_operations == 0
        assert len(repo) == 1
        assert repo.stats.conforming_on_arrival == 1

    def test_broken_repaired_on_insert(self, repo):
        result = repo.insert(broken_doc())
        assert result is not None
        assert result.total_operations > 0
        assert repo.stats.repaired == 1
        assert len(repo) == 1

    def test_repair_budget_rejects(self):
        repo = XMLRepository(DTD.parse(DTD_TEXT), max_repair_operations=0)
        assert repo.insert(broken_doc()) is None
        assert repo.stats.rejected == 1
        assert len(repo) == 0

    def test_repair_rate(self, repo):
        repo.insert(conforming_doc())
        repo.insert(broken_doc())
        assert repo.stats.repair_rate == 0.5

    def test_total_repair_operations_accumulate(self, repo):
        repo.insert(broken_doc())
        repo.insert(broken_doc())
        assert repo.stats.total_repair_operations >= 2


class TestQuerying:
    def test_query_across_documents(self, repo):
        repo.insert(conforming_doc("B.S."))
        repo.insert(conforming_doc("M.S."))
        degrees = repo.query("RESUME/EDUCATION/DEGREE")
        assert len(degrees) == 2

    def test_values(self, repo):
        repo.insert(conforming_doc("B.S."))
        repo.insert(conforming_doc("M.S."))
        assert repo.values("RESUME/EDUCATION/DEGREE") == ["B.S.", "M.S."]

    def test_export_serializes_all(self, repo):
        repo.insert(conforming_doc())
        exported = repo.export()
        assert len(exported) == 1
        assert exported[0].startswith("<?xml")

"""Metrics registry: counters/gauges/histograms, exports, merging.

The histogram bucket-edge tests pin the Prometheus ``le`` convention
(a value equal to a bound falls in that bound's bucket); the exposition
tests check the text format against both the repo's own validator and
hand-written expectations.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import SECONDS_BUCKETS, MetricsRegistry
from repro.obs.validate import validate_prometheus_text


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert registry.value("jobs_total") == 5.0

    def test_labelsets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("rule_seconds_total", rule="parse").inc(1.5)
        registry.counter("rule_seconds_total", rule="tidy").inc(0.5)
        assert registry.value("rule_seconds_total", rule="parse") == 1.5
        assert registry.value("rule_seconds_total", rule="tidy") == 0.5
        assert len(registry.find("rule_seconds_total")) == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("c", a="1", b="2").inc()
        registry.counter("c", b="2", a="1").inc()
        assert registry.value("c", a="1", b="2") == 2.0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)


class TestGauge:
    def test_set_and_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth")
        gauge.set(3)
        gauge.max(2)
        assert registry.value("queue_depth") == 3.0
        gauge.max(7)
        assert registry.value("queue_depth") == 7.0


class TestHistogramBucketEdges:
    def test_value_on_bound_falls_in_that_bucket(self):
        """Prometheus ``le`` is inclusive: observe(0.01) lands in the
        le="0.01" bucket, not the next one up."""
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.01, 0.1, 1.0))
        histogram.observe(0.01)
        assert histogram.bucket_counts == [1, 0, 0, 0]

    def test_value_just_above_bound_falls_in_next(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.01, 0.1, 1.0))
        histogram.observe(0.010001)
        assert histogram.bucket_counts == [0, 1, 0, 0]

    def test_value_above_top_bound_goes_to_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.01, 0.1, 1.0))
        histogram.observe(50.0)
        assert histogram.bucket_counts == [0, 0, 0, 1]

    def test_cumulative_counts_are_monotone_and_end_at_total(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        cumulative = histogram.cumulative_counts()
        assert cumulative == [2, 3, 4, 5]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(106.0)

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 0.5))

    def test_default_seconds_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        assert tuple(histogram.bounds) == SECONDS_BUCKETS


class TestPrometheusExposition:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("repro_docs_total").inc(50)
        registry.counter("repro_rule_seconds_total", rule="parse").inc(0.25)
        registry.gauge("repro_workers").set(4)
        histogram = registry.histogram("repro_chunk_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_exposition_passes_validator(self):
        text = self.build().render_prometheus()
        assert validate_prometheus_text(text) == []

    def test_type_lines_and_samples(self):
        lines = self.build().render_prometheus().splitlines()
        assert "# TYPE repro_docs_total counter" in lines
        assert "# TYPE repro_workers gauge" in lines
        assert "# TYPE repro_chunk_seconds histogram" in lines
        assert "repro_docs_total 50" in lines
        assert 'repro_rule_seconds_total{rule="parse"} 0.25' in lines
        assert "repro_workers 4" in lines

    def test_histogram_series_cumulative_with_inf(self):
        lines = self.build().render_prometheus().splitlines()
        assert 'repro_chunk_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_chunk_seconds_bucket{le="1.0"} 2' in lines
        assert 'repro_chunk_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_chunk_seconds_count 3" in lines
        assert any(line.startswith("repro_chunk_seconds_sum ") for line in lines)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert r'c{path="a\"b\\c\nd"} 1' in text
        assert validate_prometheus_text(text) == []


class TestJsonRoundTrip:
    def test_round_trip_preserves_all_series(self):
        registry = TestPrometheusExposition().build()
        clone = MetricsRegistry.from_json(json.loads(registry.render_json()))
        assert clone.value("repro_docs_total") == 50
        assert clone.value("repro_rule_seconds_total", rule="parse") == 0.25
        assert clone.value("repro_workers") == 4
        histogram = clone.histogram("repro_chunk_seconds", buckets=(0.1, 1.0))
        assert histogram.bucket_counts == [1, 1, 1]
        assert clone.render_prometheus() == registry.render_prometheus()


class TestMerge:
    def test_counters_and_histograms_add_gauges_overwrite(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.counter("docs").inc(2)
        right.counter("docs").inc(3)
        left.gauge("workers").set(1)
        right.gauge("workers").set(8)
        left.histogram("h", buckets=(1.0,)).observe(0.5)
        right.histogram("h", buckets=(1.0,)).observe(2.0)
        left.merge(right)
        assert left.value("docs") == 5
        assert left.value("workers") == 8
        assert left.histogram("h", buckets=(1.0,)).bucket_counts == [1, 1]


class TestValidation:
    def test_bad_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name!")

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

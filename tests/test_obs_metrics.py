"""Metrics registry: counters/gauges/histograms, exports, merging.

The histogram bucket-edge tests pin the Prometheus ``le`` convention
(a value equal to a bound falls in that bound's bucket); the exposition
tests check the text format against both the repo's own validator and
hand-written expectations.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.export import load_metrics, write_metrics
from repro.obs.metrics import SECONDS_BUCKETS, MetricsRegistry
from repro.obs.validate import validate_prometheus_text


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(4)
        assert registry.value("jobs_total") == 5.0

    def test_labelsets_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("rule_seconds_total", rule="parse").inc(1.5)
        registry.counter("rule_seconds_total", rule="tidy").inc(0.5)
        assert registry.value("rule_seconds_total", rule="parse") == 1.5
        assert registry.value("rule_seconds_total", rule="tidy") == 0.5
        assert len(registry.find("rule_seconds_total")) == 2

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        registry.counter("c", a="1", b="2").inc()
        registry.counter("c", b="2", a="1").inc()
        assert registry.value("c", a="1", b="2") == 2.0

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)


class TestGauge:
    def test_set_and_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth")
        gauge.set(3)
        gauge.max(2)
        assert registry.value("queue_depth") == 3.0
        gauge.max(7)
        assert registry.value("queue_depth") == 7.0


class TestHistogramBucketEdges:
    def test_value_on_bound_falls_in_that_bucket(self):
        """Prometheus ``le`` is inclusive: observe(0.01) lands in the
        le="0.01" bucket, not the next one up."""
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.01, 0.1, 1.0))
        histogram.observe(0.01)
        assert histogram.bucket_counts == [1, 0, 0, 0]

    def test_value_just_above_bound_falls_in_next(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.01, 0.1, 1.0))
        histogram.observe(0.010001)
        assert histogram.bucket_counts == [0, 1, 0, 0]

    def test_value_above_top_bound_goes_to_inf(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.01, 0.1, 1.0))
        histogram.observe(50.0)
        assert histogram.bucket_counts == [0, 0, 0, 1]

    def test_cumulative_counts_are_monotone_and_end_at_total(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        cumulative = histogram.cumulative_counts()
        assert cumulative == [2, 3, 4, 5]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(106.0)

    def test_unsorted_buckets_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 0.5))

    def test_default_seconds_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h")
        assert tuple(histogram.bounds) == SECONDS_BUCKETS


class TestPrometheusExposition:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("repro_docs_total").inc(50)
        registry.counter("repro_rule_seconds_total", rule="parse").inc(0.25)
        registry.gauge("repro_workers").set(4)
        histogram = registry.histogram("repro_chunk_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        return registry

    def test_exposition_passes_validator(self):
        text = self.build().render_prometheus()
        assert validate_prometheus_text(text) == []

    def test_type_lines_and_samples(self):
        lines = self.build().render_prometheus().splitlines()
        assert "# TYPE repro_docs_total counter" in lines
        assert "# TYPE repro_workers gauge" in lines
        assert "# TYPE repro_chunk_seconds histogram" in lines
        assert "repro_docs_total 50" in lines
        assert 'repro_rule_seconds_total{rule="parse"} 0.25' in lines
        assert "repro_workers 4" in lines

    def test_histogram_series_cumulative_with_inf(self):
        lines = self.build().render_prometheus().splitlines()
        assert 'repro_chunk_seconds_bucket{le="0.1"} 1' in lines
        assert 'repro_chunk_seconds_bucket{le="1.0"} 2' in lines
        assert 'repro_chunk_seconds_bucket{le="+Inf"} 3' in lines
        assert "repro_chunk_seconds_count 3" in lines
        assert any(line.startswith("repro_chunk_seconds_sum ") for line in lines)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert r'c{path="a\"b\\c\nd"} 1' in text
        assert validate_prometheus_text(text) == []

    def test_label_escape_order_backslash_first(self):
        """Backslash must escape before quote/newline, or the inserted
        escape backslashes would themselves be doubled."""
        registry = MetricsRegistry()
        registry.counter("c", path="\\n").inc()
        text = registry.render_prometheus()
        # A literal backslash + n: escaped backslash then literal n,
        # NOT a doubly-escaped newline.
        assert 'c{path="\\\\n"} 1' in text
        assert validate_prometheus_text(text) == []

    def test_label_values_with_braces_pass_validator(self):
        """Label paths like ``resume{2}`` carry braces; the sample
        regex must parse quoted values, not just scan for ``}``."""
        registry = MetricsRegistry()
        registry.counter("c", path="resume{2}.name", doc="a}b{c").inc()
        text = registry.render_prometheus()
        assert validate_prometheus_text(text) == []


class TestHelpText:
    def test_help_line_emitted_before_type(self):
        registry = MetricsRegistry()
        registry.describe("repro_docs_total", "Documents converted.")
        registry.counter("repro_docs_total").inc(3)
        lines = registry.render_prometheus().splitlines()
        help_index = lines.index("# HELP repro_docs_total Documents converted.")
        type_index = lines.index("# TYPE repro_docs_total counter")
        assert help_index == type_index - 1
        assert validate_prometheus_text(registry.render_prometheus()) == []

    def test_help_text_escapes_backslash_and_newline(self):
        registry = MetricsRegistry()
        registry.describe("c", 'multi\nline \\ with "quotes"')
        registry.counter("c").inc()
        text = registry.render_prometheus()
        # Backslash and newline escaped; double quotes left alone (the
        # 0.0.4 format only escapes quotes in label values).
        assert '# HELP c multi\\nline \\\\ with "quotes"' in text
        assert validate_prometheus_text(text) == []

    def test_help_survives_json_round_trip_and_merge(self):
        registry = MetricsRegistry()
        registry.describe("docs", "Total docs.")
        registry.counter("docs").inc(2)
        clone = MetricsRegistry.from_json(json.loads(registry.render_json()))
        assert clone.help_text("docs") == "Total docs."
        assert clone.render_prometheus() == registry.render_prometheus()
        other = MetricsRegistry()
        other.counter("docs").inc(1)
        other.merge(registry)
        assert other.help_text("docs") == "Total docs."

    def test_first_description_wins(self):
        registry = MetricsRegistry()
        registry.describe("docs", "first")
        registry.describe("docs", "second")
        assert registry.help_text("docs") == "first"


class TestJsonRoundTrip:
    def test_round_trip_preserves_all_series(self):
        registry = TestPrometheusExposition().build()
        clone = MetricsRegistry.from_json(json.loads(registry.render_json()))
        assert clone.value("repro_docs_total") == 50
        assert clone.value("repro_rule_seconds_total", rule="parse") == 0.25
        assert clone.value("repro_workers") == 4
        histogram = clone.histogram("repro_chunk_seconds", buckets=(0.1, 1.0))
        assert histogram.bucket_counts == [1, 1, 1]
        assert clone.render_prometheus() == registry.render_prometheus()


class TestMerge:
    def test_counters_and_histograms_add_gauges_overwrite(self):
        left = MetricsRegistry()
        right = MetricsRegistry()
        left.counter("docs").inc(2)
        right.counter("docs").inc(3)
        left.gauge("workers").set(1)
        right.gauge("workers").set(8)
        left.histogram("h", buckets=(1.0,)).observe(0.5)
        right.histogram("h", buckets=(1.0,)).observe(2.0)
        left.merge(right)
        assert left.value("docs") == 5
        assert left.value("workers") == 8
        assert left.histogram("h", buckets=(1.0,)).bucket_counts == [1, 1]


class TestGaugeMergeModes:
    def merge_pair(self, mode, left_value, right_value):
        left, right = MetricsRegistry(), MetricsRegistry()
        left.gauge("g", merge=mode).set(left_value)
        right.gauge("g", merge=mode).set(right_value)
        left.merge(right)
        return left.value("g")

    def test_last_writer_wins_default(self):
        assert self.merge_pair("last", 9, 2) == 2

    def test_max_keeps_high_water_mark(self):
        """A worker's peak queue depth must survive merging a later,
        quieter chunk -- last-writer-wins understates it."""
        assert self.merge_pair("max", 9, 2) == 9
        assert self.merge_pair("max", 2, 9) == 9

    def test_min_keeps_low_water_mark(self):
        assert self.merge_pair("min", 9, 2) == 2
        assert self.merge_pair("min", 2, 9) == 2

    def test_sum_accumulates(self):
        assert self.merge_pair("sum", 9, 2) == 11

    def test_merge_into_fresh_registry_adopts_value(self):
        """First contribution always lands verbatim, whatever the mode
        (a fresh gauge's 0.0 must not win a min merge)."""
        for mode in ("last", "max", "min", "sum"):
            held = MetricsRegistry()
            incoming = MetricsRegistry()
            incoming.gauge("g", merge=mode).set(7)
            held.merge(incoming)
            assert held.value("g") == 7, mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().gauge("g", merge="average")

    def test_conflicting_reregistration_rejected(self):
        registry = MetricsRegistry()
        registry.gauge("g", merge="max")
        with pytest.raises(ValueError):
            registry.gauge("g", merge="sum")
        # None means "don't care" and returns the existing gauge.
        assert registry.gauge("g").merge_mode == "max"

    def test_merge_mode_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.gauge("peak", merge="max").set(5)
        registry.gauge("plain").set(3)
        clone = MetricsRegistry.from_json(json.loads(registry.render_json()))
        assert clone.gauge("peak").merge_mode == "max"
        assert clone.gauge("plain").merge_mode == "last"


class TestHistogramQuantile:
    def build(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        return histogram

    def test_empty_histogram_is_zero(self):
        assert self.build().quantile(0.5) == 0.0

    def test_interpolates_within_bucket(self):
        histogram = self.build()
        for _ in range(10):
            histogram.observe(0.5)  # all in the (0.1, 1.0] bucket
        # Rank midpoint interpolates linearly across the bucket.
        assert 0.1 < histogram.quantile(0.5) <= 1.0

    def test_first_bucket_interpolates_from_zero(self):
        histogram = self.build()
        histogram.observe(0.05)
        assert 0.0 < histogram.quantile(0.5) <= 0.1

    def test_inf_bucket_returns_largest_finite_bound(self):
        histogram = self.build()
        histogram.observe(1000.0)
        assert histogram.quantile(0.99) == 10.0

    def test_spread_observations(self):
        histogram = self.build()
        for value in (0.05, 0.5, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.quantile(0.0) <= 0.1
        assert 0.1 < histogram.quantile(0.5) <= 1.0
        assert 1.0 < histogram.quantile(1.0) <= 10.0


class TestLoadMetrics:
    def build(self):
        registry = MetricsRegistry()
        registry.counter("docs_total").inc(12)
        registry.counter("rule_seconds_total", rule="parse").inc(0.5)
        registry.gauge("workers").set(4)
        registry.gauge("peak_queue", merge="max").set(7)
        registry.histogram("chunk_seconds", buckets=(0.01, 0.1, 1.0)).observe(0.05)
        registry.histogram("custom", buckets=(2.0, 4.0)).observe(3.0)
        return registry

    def test_json_round_trip_via_files(self, tmp_path):
        registry = self.build()
        target = tmp_path / "nested" / "m.json"  # parents created
        write_metrics(registry, target)
        clone = load_metrics(target)
        assert clone.value("docs_total") == 12
        assert clone.value("rule_seconds_total", rule="parse") == 0.5
        assert clone.value("workers") == 4
        assert clone.gauge("peak_queue").merge_mode == "max"
        assert clone.histogram(
            "chunk_seconds", buckets=(0.01, 0.1, 1.0)
        ).bucket_counts == [0, 1, 0, 0]
        assert clone.histogram("custom", buckets=(2.0, 4.0)).count == 1
        assert clone.render_prometheus() == registry.render_prometheus()

    def test_prometheus_suffixes_rejected(self, tmp_path):
        registry = self.build()
        for suffix in (".prom", ".txt"):
            target = tmp_path / f"m{suffix}"
            write_metrics(registry, target)
            with pytest.raises(ValueError):
                load_metrics(target)


class TestValidation:
    def test_bad_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("bad name!")

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gen_corpus_defaults(self):
        args = build_parser().parse_args(["gen-corpus"])
        assert args.count == 50
        assert args.seed == 1966

    def test_discover_thresholds(self):
        args = build_parser().parse_args(["discover", "a.xml", "--sup", "0.7"])
        assert args.sup == 0.7
        assert args.files == ["a.xml"]


class TestCommands:
    def test_gen_corpus_writes_files(self, tmp_path):
        out = tmp_path / "corpus"
        assert main(["gen-corpus", "--count", "3", "--out", str(out)]) == 0
        files = sorted(out.glob("*.html"))
        assert len(files) == 3
        assert "<html>" in files[0].read_text()

    def test_html2xml_converts(self, tmp_path):
        corpus = tmp_path / "corpus"
        main(["gen-corpus", "--count", "2", "--out", str(corpus)])
        xml_out = tmp_path / "xml"
        files = [str(p) for p in sorted(corpus.glob("*.html"))]
        assert main(["html2xml", *files, "--out", str(xml_out)]) == 0
        xml_files = sorted(xml_out.glob("*.xml"))
        assert len(xml_files) == 2
        assert "<RESUME" in xml_files[0].read_text()

    def test_discover_pipeline(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(["gen-corpus", "--count", "8", "--out", str(corpus)])
        xml_out = tmp_path / "xml"
        files = [str(p) for p in sorted(corpus.glob("*.html"))]
        main(["html2xml", *files, "--out", str(xml_out)])
        capsys.readouterr()
        xml_files = [str(p) for p in sorted(xml_out.glob("*.xml"))]
        assert main(["discover", *xml_files, "--sup", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "<!ELEMENT resume" in out
        assert "RESUME" in out

    def test_discover_empty_input_fails(self, tmp_path):
        empty = tmp_path / "empty.xml"
        empty.write_text("")
        assert main(["discover", str(empty)]) == 1

    def test_evaluate_prints_paper_table(self, capsys):
        assert main(["evaluate", "--docs", "10"]) == 0
        out = capsys.readouterr().out
        assert "accuracy %" in out
        assert "90.8" in out  # the paper column

    def test_discover_with_patterns_flag(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(["gen-corpus", "--count", "6", "--out", str(corpus)])
        xml_out = tmp_path / "xml"
        files = [str(p) for p in sorted(corpus.glob("*.html"))]
        main(["html2xml", *files, "--out", str(xml_out)])
        capsys.readouterr()
        xml_files = [str(p) for p in sorted(xml_out.glob("*.xml"))]
        assert main(["discover", *xml_files, "--patterns"]) == 0
        assert "<!ELEMENT resume" in capsys.readouterr().out

    def test_integrate_and_inspect(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(["gen-corpus", "--count", "8", "--out", str(corpus)])
        xml_out = tmp_path / "xml"
        files = [str(p) for p in sorted(corpus.glob("*.html"))]
        main(["html2xml", *files, "--out", str(xml_out)])
        xml_files = [str(p) for p in sorted(xml_out.glob("*.xml"))]
        store = tmp_path / "store"
        assert main(["integrate", *xml_files, "--out", str(store)]) == 0
        assert (store / "manifest.json").exists()
        capsys.readouterr()
        assert main(["inspect", str(store), "--query", "RESUME//DEGREE"]) == 0
        out = capsys.readouterr().out
        assert "8 documents" in out
        assert "<!ELEMENT resume" in out

    def test_crawl_reports_metrics(self, capsys, tmp_path):
        out_dir = tmp_path / "crawled"
        assert (
            main(
                [
                    "crawl",
                    "--resumes", "5",
                    "--noise", "15",
                    "--out", str(out_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "precision" in out
        assert len(list(out_dir.glob("*.xml"))) == 5

"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_gen_corpus_defaults(self):
        args = build_parser().parse_args(["gen-corpus"])
        assert args.count == 50
        assert args.seed == 1966

    def test_discover_thresholds(self):
        args = build_parser().parse_args(["discover", "a.xml", "--sup", "0.7"])
        assert args.sup == 0.7
        assert args.files == ["a.xml"]

    def test_convert_corpus_defaults(self):
        args = build_parser().parse_args(["convert-corpus", "--generate", "10"])
        assert args.generate == 10
        assert args.max_workers == 0
        assert args.chunk_size == 0  # 0 = adaptive sizing
        assert not args.discover


class TestCommands:
    def test_gen_corpus_writes_files(self, tmp_path):
        out = tmp_path / "corpus"
        assert main(["gen-corpus", "--count", "3", "--out", str(out)]) == 0
        files = sorted(out.glob("*.html"))
        assert len(files) == 3
        assert "<html>" in files[0].read_text()

    def test_html2xml_converts(self, tmp_path):
        corpus = tmp_path / "corpus"
        main(["gen-corpus", "--count", "2", "--out", str(corpus)])
        xml_out = tmp_path / "xml"
        files = [str(p) for p in sorted(corpus.glob("*.html"))]
        assert main(["html2xml", *files, "--out", str(xml_out)]) == 0
        xml_files = sorted(xml_out.glob("*.xml"))
        assert len(xml_files) == 2
        assert "<RESUME" in xml_files[0].read_text()

    def test_convert_corpus_without_input_fails(self, capsys):
        assert main(["convert-corpus"]) == 2

    def test_convert_corpus_generated(self, tmp_path, capsys):
        out = tmp_path / "xml"
        assert (
            main(
                ["convert-corpus", "--generate", "6", "--out", str(out),
                 "--max-workers", "2", "--chunk-size", "3", "--discover"]
            )
            == 0
        )
        assert len(sorted(out.glob("*.xml"))) == 6
        printed = capsys.readouterr().out
        assert "docs/sec" in printed
        assert "instance" in printed  # per-rule timing table
        assert "<!ELEMENT resume" in printed

    def test_convert_corpus_matches_html2xml(self, tmp_path, capsys):
        """The engine subcommand writes the same XML as the serial one."""
        corpus = tmp_path / "corpus"
        main(["gen-corpus", "--count", "4", "--out", str(corpus)])
        files = [str(p) for p in sorted(corpus.glob("*.html"))]
        serial_out, engine_out = tmp_path / "serial", tmp_path / "engine"
        main(["html2xml", *files, "--out", str(serial_out)])
        assert main(
            ["convert-corpus", *files, "--out", str(engine_out),
             "--max-workers", "2", "--chunk-size", "2"]
        ) == 0
        serial_files = sorted(serial_out.glob("*.xml"))
        engine_files = sorted(engine_out.glob("*.xml"))
        assert [p.name for p in serial_files] == [p.name for p in engine_files]
        for serial_file, engine_file in zip(serial_files, engine_files):
            assert serial_file.read_text() == engine_file.read_text()

    def test_discover_pipeline(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(["gen-corpus", "--count", "8", "--out", str(corpus)])
        xml_out = tmp_path / "xml"
        files = [str(p) for p in sorted(corpus.glob("*.html"))]
        main(["html2xml", *files, "--out", str(xml_out)])
        capsys.readouterr()
        xml_files = [str(p) for p in sorted(xml_out.glob("*.xml"))]
        assert main(["discover", *xml_files, "--sup", "0.4"]) == 0
        out = capsys.readouterr().out
        assert "<!ELEMENT resume" in out
        assert "RESUME" in out

    def test_discover_empty_input_fails(self, tmp_path):
        empty = tmp_path / "empty.xml"
        empty.write_text("")
        assert main(["discover", str(empty)]) == 1

    def test_evaluate_prints_paper_table(self, capsys):
        assert main(["evaluate", "--docs", "10"]) == 0
        out = capsys.readouterr().out
        assert "accuracy %" in out
        assert "90.8" in out  # the paper column

    def test_discover_with_patterns_flag(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(["gen-corpus", "--count", "6", "--out", str(corpus)])
        xml_out = tmp_path / "xml"
        files = [str(p) for p in sorted(corpus.glob("*.html"))]
        main(["html2xml", *files, "--out", str(xml_out)])
        capsys.readouterr()
        xml_files = [str(p) for p in sorted(xml_out.glob("*.xml"))]
        assert main(["discover", *xml_files, "--patterns"]) == 0
        assert "<!ELEMENT resume" in capsys.readouterr().out

    def test_integrate_and_inspect(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(["gen-corpus", "--count", "8", "--out", str(corpus)])
        xml_out = tmp_path / "xml"
        files = [str(p) for p in sorted(corpus.glob("*.html"))]
        main(["html2xml", *files, "--out", str(xml_out)])
        xml_files = [str(p) for p in sorted(xml_out.glob("*.xml"))]
        store = tmp_path / "store"
        assert main(["integrate", *xml_files, "--out", str(store)]) == 0
        assert (store / "manifest.json").exists()
        capsys.readouterr()
        assert main(["inspect", str(store), "--query", "RESUME//DEGREE"]) == 0
        out = capsys.readouterr().out
        assert "8 documents" in out
        assert "<!ELEMENT resume" in out

    def test_convert_corpus_prints_quantile_tables(self, capsys):
        assert main(["convert-corpus", "--generate", "5", "--quiet",
                     "--max-workers", "1", "--chunk-size", "2"]) == 0
        out = capsys.readouterr().out
        assert "Per-stage latency quantiles" in out
        assert "p95 ms" in out
        assert "Slowest documents" in out

    def test_run_intelligence_artifacts_round_trip(self, tmp_path, capsys):
        """convert-corpus writes a Chrome trace and a ledger record,
        both of which validate-obs accepts and report/runs render."""
        chrome = tmp_path / "trace-chrome.json"
        ledger = tmp_path / "runs.jsonl"
        assert main(
            ["convert-corpus", "--generate", "6", "--max-workers", "2",
             "--chunk-size", "3", "--quiet",
             "--trace-chrome", str(chrome), "--runlog", str(ledger)]
        ) == 0
        assert main(
            ["validate-obs", "--chrome", str(chrome), "--runlog", str(ledger)]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "Run report" in out
        assert "Per-stage latency quantiles" in out
        assert main(["runs", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "Run ledger (1 records" in out
        assert "no comparable history" in out

    def test_report_missing_run_fails(self, tmp_path):
        ledger = tmp_path / "runs.jsonl"
        ledger.write_text("")
        assert main(["report", str(ledger)]) == 1

    def test_runs_check_flags_synthetic_slowdown(self, tmp_path, capsys):
        """Three identical records pass --check; appending a 25% slower
        clone fails it."""
        record = {
            "run_id": "r", "config_fingerprint": "cfg", "workers": 2,
            "time_iso": "2026-01-01T00:00:00Z", "documents": 10,
            "documents_failed": 0, "docs_per_second": 100.0,
            "stage_quantiles": {},
        }
        ledger = tmp_path / "runs.jsonl"
        lines = [dict(record, run_id=f"r{i}") for i in range(3)]
        ledger.write_text(
            "\n".join(json.dumps(line) for line in lines) + "\n"
        )
        assert main(["runs", str(ledger), "--check"]) == 0
        slow = dict(record, run_id="slow", docs_per_second=75.0)
        with ledger.open("a") as handle:
            handle.write(json.dumps(slow) + "\n")
        assert main(["runs", str(ledger), "--check"]) == 1
        assert "REGRESSION: docs_per_second" in capsys.readouterr().err
        # Without --check regressions are reported but don't fail.
        assert main(["runs", str(ledger)]) == 0

    def test_runs_bench_mode(self, tmp_path, capsys):
        baseline = {"engine": {"docs_per_sec": 100.0}}
        current = {"engine": {"docs_per_sec": 70.0}}
        base_path = tmp_path / "base.json"
        cur_path = tmp_path / "cur.json"
        base_path.write_text(json.dumps(baseline))
        cur_path.write_text(json.dumps(current))
        assert main(["runs", "--bench-current", str(base_path),
                     "--bench-baseline", str(base_path), "--check"]) == 0
        assert main(["runs", "--bench-current", str(cur_path),
                     "--bench-baseline", str(base_path), "--check"]) == 1
        assert "dropped 30%" in capsys.readouterr().err

    def test_runs_without_ledger_or_bench_fails(self):
        assert main(["runs"]) == 2

    def test_crawl_reports_metrics(self, capsys, tmp_path):
        out_dir = tmp_path / "crawled"
        assert (
            main(
                [
                    "crawl",
                    "--resumes", "5",
                    "--noise", "15",
                    "--out", str(out_dir),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "precision" in out
        assert len(list(out_dir.glob("*.xml"))) == 5


class TestEvolve:
    def test_parser_nested_subcommands(self):
        args = build_parser().parse_args(
            ["evolve", "fold", "state", "--generate", "5",
             "--style", "table", "--repository", "repo"]
        )
        assert args.evolve_command == "fold"
        assert args.state == "state"
        assert args.generate == 5
        assert args.style == ["table"]
        assert args.repository == "repo"

    def test_init_then_status(self, tmp_path, capsys):
        state = tmp_path / "state"
        assert main(["evolve", "init", str(state), "--sup", "0.5"]) == 0
        assert main(["evolve", "init", str(state)]) == 1  # already there
        assert main(["evolve", "status", str(state)]) == 0
        out = capsys.readouterr().out
        assert "schema version" in out
        assert "sup=0.5" in out

    def test_fold_requires_init(self, tmp_path, capsys):
        assert main(
            ["evolve", "fold", str(tmp_path / "none"), "--generate", "2"]
        ) == 1

    def test_fold_without_input_fails(self, tmp_path):
        state = tmp_path / "state"
        main(["evolve", "init", str(state)])
        assert main(["evolve", "fold", str(state)]) == 2

    def test_unknown_style_rejected(self, tmp_path):
        state = tmp_path / "state"
        main(["evolve", "init", str(state)])
        with pytest.raises(SystemExit):
            main(["evolve", "fold", str(state), "--generate", "2",
                  "--style", "no-such-style"])

    def test_fold_publish_rollback_cycle(self, tmp_path, capsys):
        state = tmp_path / "state"
        repo = tmp_path / "repo"
        ledger = tmp_path / "runs.jsonl"
        main(["evolve", "init", str(state)])
        assert main(
            ["evolve", "fold", str(state), "--generate", "6",
             "--seed", "5", "--max-workers", "1",
             "--repository", str(repo), "--runlog", str(ledger)]
        ) == 0
        out = capsys.readouterr().out
        assert "version bumped to 1" in out
        assert "published repository version v0001" in out
        # Refolding the same corpus: no bump, but a new repository
        # version is still published with the extra documents.
        assert main(
            ["evolve", "fold", str(state), "--generate", "6",
             "--seed", "5", "--max-workers", "1",
             "--repository", str(repo)]
        ) == 0
        out = capsys.readouterr().out
        assert "version unchanged at 1" in out
        assert main(["evolve", "rollback", "--repository", str(repo)]) == 0
        assert "v0001" in capsys.readouterr().out
        records = [
            json.loads(line)
            for line in ledger.read_text().splitlines() if line
        ]
        assert records[0]["kind"] == "evolution"
        assert records[0]["schema_version"] == 1
        assert records[0]["bumped"] is True

    def test_rollback_without_history_fails(self, tmp_path, capsys):
        assert main(
            ["evolve", "rollback", "--repository", str(tmp_path / "repo")]
        ) == 1

    def test_migrate_noop_when_current(self, tmp_path, capsys):
        state = tmp_path / "state"
        repo = tmp_path / "repo"
        main(["evolve", "init", str(state)])
        main(["evolve", "fold", str(state), "--generate", "4",
              "--max-workers", "1", "--repository", str(repo)])
        capsys.readouterr()
        assert main(
            ["evolve", "migrate", str(state), "--repository", str(repo),
             "--max-workers", "1"]
        ) == 0
        assert "nothing to migrate" in capsys.readouterr().out

    def test_convert_corpus_checkpoint_and_fold_into(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        state = tmp_path / "state"
        assert main(
            ["convert-corpus", "--generate", "4", "--max-workers", "1",
             "--quiet", "--checkpoint-dir", str(ckpt),
             "--fold-into", str(state)]
        ) == 0
        out = capsys.readouterr().out
        assert "checkpointed delta #1" in out
        assert "version bumped to 1" in out
        assert (ckpt / "snapshot.bin").exists()
        assert (state / "state.json").exists()

    def test_gen_corpus_single_style(self, tmp_path):
        out = tmp_path / "corpus"
        assert main(
            ["gen-corpus", "--count", "3", "--out", str(out),
             "--style", "table"]
        ) == 0
        for page in out.glob("*.html"):
            assert "<table" in page.read_text().lower()

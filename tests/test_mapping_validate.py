"""Tests for DTD conformance validation."""

import pytest

from repro.dom.node import Element
from repro.mapping.validate import (
    ViolationKind,
    conforms,
    validate_document,
)
from repro.schema.dtd import DTD

DTD_TEXT = """
<!ELEMENT resume ((#PCDATA), contact, education+)>
<!ELEMENT contact (#PCDATA)>
<!ELEMENT education ((#PCDATA), degree, date?)>
<!ELEMENT degree (#PCDATA)>
<!ELEMENT date (#PCDATA)>
"""


@pytest.fixture()
def dtd():
    return DTD.parse(DTD_TEXT)


def doc(*edu_counts_with_degree):
    root = Element("RESUME")
    root.append_child(Element("CONTACT"))
    for has_degree in edu_counts_with_degree:
        edu = root.append_child(Element("EDUCATION"))
        if has_degree:
            edu.append_child(Element("DEGREE"))
    return root


def kinds(violations):
    return {v.kind for v in violations}


class TestConformance:
    def test_conforming_document(self, dtd):
        assert conforms(doc(True), dtd)
        assert conforms(doc(True, True, True), dtd)

    def test_optional_child_may_be_present(self, dtd):
        d = doc(True)
        d.element_children()[1].append_child(Element("DATE"))
        assert conforms(d, dtd)

    def test_wrong_root(self, dtd):
        violations = validate_document(Element("CV"), dtd)
        assert kinds(violations) == {ViolationKind.WRONG_ROOT}

    def test_missing_required_child(self, dtd):
        d = doc(False)  # education without degree
        violations = validate_document(d, dtd)
        assert ViolationKind.MISSING_CHILD in kinds(violations)

    def test_missing_repetitive_child(self, dtd):
        root = Element("RESUME")
        root.append_child(Element("CONTACT"))
        violations = validate_document(root, dtd)  # no education at all
        assert ViolationKind.MISSING_CHILD in kinds(violations)

    def test_unexpected_child(self, dtd):
        d = doc(True)
        d.append_child(Element("HOBBIES"))
        violations = validate_document(d, dtd)
        assert ViolationKind.UNEXPECTED_CHILD in kinds(violations)

    def test_too_many_occurrences(self, dtd):
        d = doc(True)
        d.insert_child(0, Element("CONTACT"))
        violations = validate_document(d, dtd)
        assert ViolationKind.TOO_MANY in kinds(violations)

    def test_wrong_order(self, dtd):
        root = Element("RESUME")
        root.append_child(Element("EDUCATION")).append_child(Element("DEGREE"))
        root.append_child(Element("CONTACT"))
        violations = validate_document(root, dtd)
        assert ViolationKind.WRONG_ORDER in kinds(violations)

    def test_interleaved_runs_rejected(self, dtd):
        root = Element("RESUME")
        root.append_child(Element("CONTACT"))
        root.append_child(Element("EDUCATION")).append_child(Element("DEGREE"))
        root.append_child(Element("CONTACT"))
        violations = validate_document(root, dtd)
        assert ViolationKind.WRONG_ORDER in kinds(violations) or (
            ViolationKind.TOO_MANY in kinds(violations)
        )

    def test_violation_paths_locate_problems(self, dtd):
        d = doc(False)
        violations = validate_document(d, dtd)
        assert any(v.path == ("resume", "education") for v in violations)

    def test_case_sensitive_mode(self, dtd):
        d = doc(True)
        assert not conforms(d, dtd, lowercase=False)  # tags are upper-case

    def test_nested_validation_recurses(self, dtd):
        d = doc(True)
        d.element_children()[1].element_children()[0].append_child(
            Element("SURPRISE")
        )
        violations = validate_document(d, dtd)
        assert ViolationKind.UNEXPECTED_CHILD in kinds(violations)

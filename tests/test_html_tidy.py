"""Tests for the Tidy-style cleanser."""

from repro.dom.node import Element, Text
from repro.htmlparse.parser import body_of, parse_html
from repro.htmlparse.tidy import tidy


def tidied(source):
    doc = parse_html(source)
    tidy(doc)
    return body_of(doc)


def tags(element):
    return [c.tag for c in element.element_children()]


class TestHeadingRepair:
    def test_block_moved_out_of_heading(self):
        b = tidied("<h2>Title<p>para</p></h2>")
        assert tags(b) == ["h2", "p"]

    def test_nested_heading_moved_out(self):
        b = tidied("<h1>Big<h2>Small</h2></h1>")
        assert tags(b) == ["h1", "h2"]

    def test_inline_stays_inside_heading(self):
        b = tidied("<h2><b>Bold title</b></h2>")
        h2 = b.element_children()[0]
        assert tags(h2) == ["b"]


class TestOrphanWrapping:
    def test_orphan_li_wrapped_in_ul(self):
        b = tidied("<div><li>a</li><li>b</li></div>")
        div = b.element_children()[0]
        assert tags(div) == ["ul"]
        assert len(div.element_children()[0].element_children()) == 2

    def test_orphan_dt_dd_wrapped_in_dl(self):
        b = tidied("<div><dt>t</dt><dd>d</dd></div>")
        div = b.element_children()[0]
        assert tags(div) == ["dl"]

    def test_orphan_tr_wrapped_in_table(self):
        b = tidied("<div><tr><td>x</td></tr></div>")
        div = b.element_children()[0]
        assert tags(div) == ["table"]

    def test_li_inside_ul_untouched(self):
        b = tidied("<ul><li>a</li></ul>")
        ul = b.element_children()[0]
        assert tags(ul) == ["li"]

    def test_separate_runs_get_separate_wrappers(self):
        b = tidied("<div><li>a</li><p>x</p><li>b</li></div>")
        div = b.element_children()[0]
        assert tags(div) == ["ul", "p", "ul"]


class TestInlineCleanup:
    def test_empty_inline_removed(self):
        b = tidied("<p><b></b>text</p>")
        p = b.element_children()[0]
        assert tags(p) == []

    def test_doubled_bold_collapsed(self):
        b = tidied("<p><b><b>x</b></b></p>")
        p = b.element_children()[0]
        assert tags(p) == ["b"]
        assert tags(p.element_children()[0]) == []

    def test_nonempty_inline_kept(self):
        b = tidied("<p><b>x</b></p>")
        assert tags(b.element_children()[0]) == ["b"]


class TestWhitespace:
    def test_runs_collapsed(self):
        b = tidied("<p>a   b\n\t c</p>")
        p = b.element_children()[0]
        assert p.text_children()[0].text == "a b c"

    def test_pre_preserved(self):
        b = tidied("<pre>a   b</pre>")
        pre = b.element_children()[0]
        assert pre.text_children()[0].text == "a   b"

    def test_tidy_returns_root(self):
        doc = parse_html("<p>x</p>")
        assert tidy(doc) is doc


class TestIdempotence:
    def test_double_tidy_stable(self):
        from repro.dom.treeops import deep_equal, clone

        doc = parse_html("<h2>T<p>p</p></h2><div><li>a<li>b</div><p><b><b>x</b></b></p>")
        tidy(doc)
        snapshot = clone(doc)
        tidy(doc)
        assert deep_equal(doc, snapshot)

"""Tests for the Tidy-style cleanser, under both implementations.

Every behavioral test runs twice -- once through the single-snapshot
fast path and once through the six-traversal legacy path -- so a fix
that lands in only one implementation fails loudly here before the
differential suites ever see it.
"""

import pytest

from repro.dom.node import Element, Text
from repro.htmlparse.parser import body_of, parse_html
from repro.htmlparse.tidy import tidy


@pytest.fixture(params=[True, False], ids=["fast", "legacy"])
def fast(request):
    return request.param


def tidied(source, fast=True):
    doc = parse_html(source)
    tidy(doc, fast=fast)
    return body_of(doc)


def tags(element):
    return [c.tag for c in element.element_children()]


class TestHeadingRepair:
    def test_block_moved_out_of_heading(self, fast):
        b = tidied("<h2>Title<p>para</p></h2>", fast)
        assert tags(b) == ["h2", "p"]

    def test_nested_heading_moved_out(self, fast):
        b = tidied("<h1>Big<h2>Small</h2></h1>", fast)
        assert tags(b) == ["h1", "h2"]

    def test_inline_stays_inside_heading(self, fast):
        b = tidied("<h2><b>Bold title</b></h2>", fast)
        h2 = b.element_children()[0]
        assert tags(h2) == ["b"]


class TestOrphanWrapping:
    def test_orphan_li_wrapped_in_ul(self, fast):
        b = tidied("<div><li>a</li><li>b</li></div>", fast)
        div = b.element_children()[0]
        assert tags(div) == ["ul"]
        assert len(div.element_children()[0].element_children()) == 2

    def test_orphan_dt_dd_wrapped_in_dl(self, fast):
        b = tidied("<div><dt>t</dt><dd>d</dd></div>", fast)
        div = b.element_children()[0]
        assert tags(div) == ["dl"]

    def test_orphan_tr_wrapped_in_table(self, fast):
        b = tidied("<div><tr><td>x</td></tr></div>", fast)
        div = b.element_children()[0]
        assert tags(div) == ["table"]

    def test_li_inside_ul_untouched(self, fast):
        b = tidied("<ul><li>a</li></ul>", fast)
        ul = b.element_children()[0]
        assert tags(ul) == ["li"]

    def test_separate_runs_get_separate_wrappers(self, fast):
        b = tidied("<div><li>a</li><p>x</p><li>b</li></div>", fast)
        div = b.element_children()[0]
        assert tags(div) == ["ul", "p", "ul"]


class TestInlineCleanup:
    def test_empty_inline_removed(self, fast):
        b = tidied("<p><b></b>text</p>", fast)
        p = b.element_children()[0]
        assert tags(p) == []

    def test_doubled_bold_collapsed(self, fast):
        b = tidied("<p><b><b>x</b></b></p>", fast)
        p = b.element_children()[0]
        assert tags(p) == ["b"]
        assert tags(p.element_children()[0]) == []

    def test_nonempty_inline_kept(self, fast):
        b = tidied("<p><b>x</b></p>", fast)
        assert tags(b.element_children()[0]) == ["b"]


class TestWhitespace:
    def test_runs_collapsed(self, fast):
        b = tidied("<p>a   b\n\t c</p>", fast)
        p = b.element_children()[0]
        assert p.text_children()[0].text == "a b c"

    def test_pre_preserved(self, fast):
        b = tidied("<pre>a   b</pre>", fast)
        pre = b.element_children()[0]
        assert pre.text_children()[0].text == "a   b"

    def test_tidy_returns_root(self, fast):
        doc = parse_html("<p>x</p>")
        assert tidy(doc, fast=fast) is doc


class TestIdempotence:
    def test_double_tidy_stable(self, fast):
        from repro.dom.treeops import deep_equal, clone

        doc = parse_html("<h2>T<p>p</p></h2><div><li>a<li>b</div><p><b><b>x</b></b></p>")
        tidy(doc, fast=fast)
        snapshot = clone(doc)
        tidy(doc, fast=fast)
        assert deep_equal(doc, snapshot)

"""Unit tests for the engine's scaling machinery.

Covers the adaptive chunk-size controller (:class:`ChunkSizer`), the
worker-side XML sink, the :class:`ChunkStats` compact wire form (the
pickle every chunk rides home on), and the scaling-efficiency metrics
:class:`EngineStats` derives from the new ``doc_seconds`` counter.  The
end-to-end guarantees (sink files == collected strings, adaptive ==
static bytes) live in test_fast_tidy_differential.py; these tests pin
the mechanisms in isolation.
"""

from __future__ import annotations

import pickle

import pytest

from repro.runtime.engine import ChunkSizer, CorpusEngine, EngineConfig, XmlSink
from repro.runtime.stats import ChunkStats, EngineStats


def chunk(index=0, documents=4, seconds=0.0, doc_seconds=0.0, failed=0):
    return ChunkStats(
        index=index,
        documents=documents,
        documents_failed=failed,
        seconds=seconds,
        doc_seconds=doc_seconds,
    )


class TestEngineConfigChunking:
    def test_default_is_adaptive(self):
        config = EngineConfig()
        assert config.adaptive_chunking()
        assert config.resolved_chunk_size() == config.min_chunk_size

    def test_static_size_resolves_to_itself(self):
        config = EngineConfig(chunk_size=16)
        assert not config.adaptive_chunking()
        assert config.resolved_chunk_size() == 16


class TestChunkSizer:
    def test_static_sizer_never_moves(self):
        sizer = ChunkSizer.from_config(EngineConfig(chunk_size=8))
        for index in range(5):
            sizer.observe(chunk(index, documents=8, seconds=0.001, doc_seconds=0.0008))
        assert sizer.size == 8

    def test_fast_chunks_grow_the_size(self):
        sizer = ChunkSizer.from_config(
            EngineConfig(chunk_size=None, min_chunk_size=4, target_chunk_seconds=0.05)
        )
        sizer.observe(chunk(documents=4, seconds=0.004, doc_seconds=0.001))
        assert sizer.size > 4

    def test_growth_bounded_at_4x_per_step(self):
        sizer = ChunkSizer.from_config(
            EngineConfig(chunk_size=None, min_chunk_size=4, target_chunk_seconds=1.0)
        )
        # Per-doc time is tiny, so the desired size is enormous -- but a
        # single observation may only quadruple the size.
        sizer.observe(chunk(documents=4, seconds=0.0001, doc_seconds=0.00008))
        assert sizer.size == 16

    def test_growth_capped_at_max_chunk_size(self):
        sizer = ChunkSizer.from_config(
            EngineConfig(
                chunk_size=None,
                min_chunk_size=4,
                max_chunk_size=10,
                target_chunk_seconds=1.0,
            )
        )
        for index in range(5):
            sizer.observe(chunk(index, documents=sizer.size, seconds=0.0001))
        assert sizer.size == 10

    def test_slow_chunks_back_off_toward_initial(self):
        sizer = ChunkSizer.from_config(
            EngineConfig(chunk_size=None, min_chunk_size=4, target_chunk_seconds=0.05)
        )
        sizer.observe(chunk(0, documents=4, seconds=0.004))  # grow first
        grown = sizer.size
        sizer.observe(chunk(1, documents=grown, seconds=1.0))  # 20x over target
        assert sizer.size < grown
        assert sizer.size >= sizer.initial

    def test_never_shrinks_below_initial(self):
        sizer = ChunkSizer.from_config(
            EngineConfig(chunk_size=None, min_chunk_size=4, target_chunk_seconds=0.05)
        )
        for index in range(5):
            sizer.observe(chunk(index, documents=4, seconds=10.0))
        assert sizer.size == 4

    def test_empty_or_instant_chunks_are_ignored(self):
        sizer = ChunkSizer.from_config(EngineConfig(chunk_size=None, min_chunk_size=4))
        sizer.observe(chunk(documents=0, failed=0, seconds=0.0))
        sizer.observe(chunk(documents=4, seconds=0.0))
        assert sizer.size == 4


class TestXmlSink:
    def test_write_creates_named_file(self, tmp_path):
        sink = XmlSink(str(tmp_path / "out"))
        sink.prepare()
        sink.write("resume0007", "<doc/>")
        assert (tmp_path / "out" / "resume0007.xml").read_text(encoding="utf-8") == "<doc/>"

    def test_rewrite_is_idempotent(self, tmp_path):
        sink = XmlSink(str(tmp_path))
        sink.write("a", "<first/>")
        sink.write("a", "<second/>")
        assert (tmp_path / "a.xml").read_text() == "<second/>"
        assert len(list(tmp_path.glob("*.xml"))) == 1

    def test_prepare_makes_nested_directories(self, tmp_path):
        sink = XmlSink(str(tmp_path / "deep" / "nested"))
        sink.prepare()
        assert (tmp_path / "deep" / "nested").is_dir()

    def test_failed_document_leaves_no_file(self, kb, tmp_path):
        """A document the skip policy drops must not produce a sink file."""
        from repro.convert.config import ConversionConfig

        engine = CorpusEngine(
            kb,
            ConversionConfig(chaos_fail_marker="__POISON__"),
            engine_config=EngineConfig(
                max_workers=1, chunk_size=2, error_policy="skip"
            ),
        )
        sink_dir = tmp_path / "sunk"
        result = engine.convert_corpus(
            ["<html><body><p>ok</p></body></html>", "<p>__POISON__</p>"],
            collect_xml=False,
            xml_sink=str(sink_dir),
            names=["good", "bad"],
        )
        assert result.stats.documents_failed == 1
        assert sorted(p.stem for p in sink_dir.glob("*.xml")) == ["good"]


class TestChunkStatsWire:
    def test_pickle_round_trip(self):
        stats = chunk(index=3, documents=7, seconds=1.5, doc_seconds=1.2, failed=2)
        stats.failures_by_stage = {"parse": 2}
        stats.rule_seconds = {"grouping": 0.4}
        stats.observe_document("doc0", 0, 0.25, {"grouping": 0.2})
        stats.observe_document("doc1", 1, 0.95, {"grouping": 0.2})
        stats.finalize_slowest()
        restored = pickle.loads(pickle.dumps(stats))
        assert restored.index == 3
        assert restored.documents == 7
        assert restored.documents_failed == 2
        assert restored.failures_by_stage == {"parse": 2}
        assert restored.seconds == 1.5
        assert restored.doc_seconds == 1.2
        assert restored.rule_seconds == {"grouping": 0.4}
        assert restored.slowest_docs == stats.slowest_docs

    def test_wire_form_is_tuple_not_dict(self):
        """The pickle must carry the version-tagged tuple, not dataclass
        dict state (no per-instance field-name strings on the wire)."""
        state = chunk().__getstate__()
        assert isinstance(state, tuple)
        assert state[0] == ChunkStats._WIRE_VERSION

    def test_dict_state_still_restores(self):
        """Pickles from before the compact wire form (dataclass dict
        state, no doc_seconds field) must still restore."""
        stats = ChunkStats.__new__(ChunkStats)
        stats.__setstate__({"index": 1, "documents": 5, "seconds": 0.5})
        assert stats.index == 1
        assert stats.documents == 5
        assert stats.doc_seconds == 0.0

    def test_unknown_wire_version_rejected(self):
        stats = ChunkStats.__new__(ChunkStats)
        with pytest.raises(ValueError):
            stats.__setstate__((99,))


class TestScalingMetrics:
    def test_doc_seconds_absorbed_into_registry(self):
        stats = EngineStats(workers=2, chunk_size=4)
        stats.absorb(chunk(0, documents=4, seconds=2.0, doc_seconds=1.5))
        stats.absorb(chunk(1, documents=4, seconds=2.0, doc_seconds=1.5))
        assert stats.doc_seconds == pytest.approx(3.0)

    def test_chunk_overhead_fraction(self):
        stats = EngineStats(workers=2, chunk_size=4)
        stats.absorb(chunk(documents=4, seconds=2.0, doc_seconds=1.5))
        assert stats.chunk_overhead_fraction == pytest.approx(0.25)

    def test_chunk_overhead_fraction_zero_without_measurements(self):
        assert EngineStats().chunk_overhead_fraction == 0.0

    def test_docs_per_second_per_worker_divides_by_workers(self):
        stats = EngineStats(workers=4, chunk_size=4)
        stats.absorb(chunk(documents=8))
        stats.wall_seconds = 2.0
        assert stats.docs_per_second == pytest.approx(4.0)
        assert stats.docs_per_second_per_worker == pytest.approx(1.0)

    def test_summary_includes_scaling_rows(self):
        stats = EngineStats(workers=2, chunk_size=4)
        stats.absorb(chunk(documents=4, seconds=2.0, doc_seconds=1.5))
        stats.wall_seconds = 1.0
        names = [row[0] for row in stats.summary_rows()]
        assert "docs/sec/worker" in names
        assert "chunk overhead" in names

    def test_chunk_sizes_row_only_when_nontail_sizes_vary(self):
        static = EngineStats(workers=1, chunk_size=4)
        for index, docs in enumerate([4, 4, 2]):  # static run, partial tail
            static.absorb(chunk(index, documents=docs))
        assert "chunk sizes" not in [row[0] for row in static.summary_rows()]

        adaptive = EngineStats(workers=1, chunk_size=4)
        for index, docs in enumerate([4, 8, 16, 3]):  # grown sizes + tail
            adaptive.absorb(chunk(index, documents=docs))
        rows = {row[0]: row[1] for row in adaptive.summary_rows()}
        assert rows["chunk sizes"] == "4..16"


class TestAdaptiveStream:
    def test_chunk_sizes_grow_across_a_run(self, kb):
        """On a corpus of fast documents the observed chunk sizes must
        actually grow (the controller is live, not decorative)."""
        html = ["<html><body><p>doc</p></body></html>"] * 60
        engine = CorpusEngine(
            kb,
            engine_config=EngineConfig(
                max_workers=1,
                chunk_size=None,
                min_chunk_size=2,
                max_chunk_size=32,
            ),
        )
        result = engine.convert_corpus(html)
        ordered = sorted(result.stats.per_chunk, key=lambda c: c.index)
        sizes = [c.documents + c.documents_failed for c in ordered[:-1]]
        assert max(sizes) > sizes[0]
        assert sizes == sorted(sizes)  # monotone growth on a uniform corpus

"""Property-based tests: the fast cleanser is the legacy cleanser.

Hypothesis builds tidy-stressing malformed documents -- orphan list
items and table cells, blocks swallowed by unclosed inlines and
headings, empty and doubled inline towers, ``pre`` blocks, whitespace
runs of every flavor -- and asserts that the single-snapshot fast path
and the six-traversal legacy path produce *identical trees* (tags,
attributes, text, and order) -- on raw input and again on each other's
output.  (Tidy itself is not idempotent -- a wrapper created by orphan
wrapping can itself be wrapped on a second run, under *both*
implementations -- so the property is agreement, not fixpointedness.)

This is the property-level wall behind the corpus differential in
test_fast_tidy_differential.py; the fixed edge-case corpus lives in
tests/golden/tidy_edge/.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dom.treeops import clone, deep_equal
from repro.htmlparse.parser import parse_html
from repro.htmlparse.tidy import tidy

# ---------------------------------------------------------------------------
# strategies
#
# The alphabet leans into what tidy actually dispatches on: list items
# and table parts (orphan wrapping), headings and blocks (hoisting),
# inlines (empty removal + collapse), pre (whitespace preservation).

tag_names = st.sampled_from(
    [
        "li", "dt", "dd", "tr", "td", "th",
        "ul", "dl", "table", "tbody",
        "h1", "h2", "h3", "div", "p",
        "b", "i", "font", "span", "em",
        "pre", "body",
    ]
)
text_runs = st.sampled_from(
    ["x", "a b", "  ", " \t\n ", "  a  b  ", "zz  z", "\n", ""]
)


@st.composite
def markup_pieces(draw):
    """One tidy-stressing fragment: an open tag (attributes included a
    third of the time), a close tag, or a whitespace-heavy text run --
    deliberately unbalanced so trees arrive malformed."""
    kind = draw(st.integers(0, 9))
    if kind <= 3:
        return draw(text_runs)
    name = draw(tag_names)
    if kind <= 5:
        return f"</{name}>"
    if kind <= 7:
        return f"<{name}>"
    return f'<{name} val="{draw(st.sampled_from(["", "q", "a b"]))}">'


documents = st.lists(markup_pieces(), min_size=0, max_size=20).map("".join)


# ---------------------------------------------------------------------------
# properties


@settings(max_examples=300, deadline=None)
@given(documents)
def test_fast_tidy_equals_legacy_tidy(source):
    fast_tree = tidy(parse_html(source), fast=True)
    legacy_tree = tidy(parse_html(source), fast=False)
    assert deep_equal(fast_tree, legacy_tree)


@settings(max_examples=150, deadline=None)
@given(documents)
def test_fast_and_legacy_agree_on_retidy(source):
    """The implementations agree on *already-tidied* trees too: re-tidy
    a legacy-tidied tree under both paths and they still match (tidy is
    not a fixed point -- orphan wrapping can wrap its own wrappers on a
    second run -- but the two implementations must drift identically)."""
    once = tidy(parse_html(source), fast=False)
    fast_twice = tidy(clone(once), fast=True)
    legacy_twice = tidy(once, fast=False)
    assert deep_equal(fast_twice, legacy_twice)

"""Tests for the tokenization rule (Section 2.3.1)."""

from repro.convert.config import ConversionConfig
from repro.convert.tokenize_rule import (
    TOKEN_TAG,
    apply_tokenization_rule,
    split_topic_sentence,
    token_text,
)
from repro.dom.node import Element, Text

DELIMS = (";", ",", ":")


class TestSplitTopicSentence:
    def test_paper_example(self):
        """The topic sentence from Section 2.3.1."""
        text = (
            "University of California at Davis, B.S.(Computer Science), "
            "June 1996, GPA 3.8/4.0"
        )
        tokens = split_topic_sentence(text, DELIMS)
        assert tokens == [
            "University of California at Davis",
            "B.S.(Computer Science)",
            "June 1996",
            "GPA 3.8/4.0",
        ]

    def test_no_delimiters_single_token(self):
        assert split_topic_sentence("just one phrase", DELIMS) == ["just one phrase"]

    def test_empty_fragments_dropped(self):
        assert split_topic_sentence("a,,b, ,c", DELIMS) == ["a", "b", "c"]

    def test_whitespace_squeezed(self):
        assert split_topic_sentence("a  b ,  c", DELIMS) == ["a b", "c"]

    def test_comma_inside_number_protected(self):
        assert split_topic_sentence("salary 10,000 dollars", DELIMS) == [
            "salary 10,000 dollars"
        ]

    def test_colon_in_url_protected(self):
        assert split_topic_sentence("http://x.org/page", DELIMS) == [
            "http://x.org/page"
        ]

    def test_colon_in_time_protected(self):
        assert split_topic_sentence("at 10:30 sharp", DELIMS) == ["at 10:30 sharp"]

    def test_semicolon_splits(self):
        assert split_topic_sentence("one; two", DELIMS) == ["one", "two"]

    def test_pure_punctuation_yields_nothing(self):
        assert split_topic_sentence(" ;,; ", DELIMS) == []


class TestApplyRule:
    def test_text_replaced_by_token_elements(self):
        root = Element("li")
        root.append_child(Text("UC Davis, B.S., 1996"))
        created = apply_tokenization_rule(root)
        assert created == 3
        assert [c.tag for c in root.element_children()] == [TOKEN_TAG] * 3
        assert token_text(root.element_children()[0]) == "UC Davis"

    def test_empty_text_removed(self):
        root = Element("li")
        root.append_child(Text(" ; "))
        apply_tokenization_rule(root)
        assert root.children == []

    def test_recurses_into_subtree(self):
        root = Element("div")
        p = root.append_child(Element("p"))
        p.append_child(Text("a, b"))
        root.append_child(Text("c"))
        created = apply_tokenization_rule(root)
        assert created == 3

    def test_custom_delimiters(self):
        config = ConversionConfig(delimiters=("|",))
        root = Element("li")
        root.append_child(Text("a|b, still one"))
        apply_tokenization_rule(root, config)
        texts = [token_text(t) for t in root.element_children()]
        assert texts == ["a", "b, still one"]

    def test_token_order_preserved(self):
        root = Element("li")
        root.append_child(Text("first, second, third"))
        apply_tokenization_rule(root)
        assert [token_text(t) for t in root.element_children()] == [
            "first",
            "second",
            "third",
        ]

"""End-to-end tests for the document conversion pipeline."""

import pytest

from repro.convert.config import ConversionConfig
from repro.convert.pipeline import DocumentConverter
from repro.dom.path import find_all, find_first
from repro.dom.treeops import iter_elements

RESUME_HTML = """
<html><head><title>Jane Doe's Resume</title></head><body>
<h1>Resume of Jane Doe</h1>
<h2>Objective</h2>
<p>Seeking an internship in data management research.</p>
<h2>Education</h2>
<ul>
<li>June 1996, University of California at Davis, B.S. (Computer Science), GPA 3.8/4.0</li>
<li>June 1998, Stanford University, M.S. (Computer Science)</li>
</ul>
<h2>Experience</h2>
<p>Software Engineer, Verity Inc., Sunnyvale, 1998 - present</p>
<p>Intern, IBM Corporation, San Jose, Summer 1997</p>
<h2>Skills</h2>
<ul><li>C++</li><li>Java</li><li>Unix</li></ul>
</body></html>
"""


@pytest.fixture(scope="module")
def result(converter):
    return converter.convert(RESUME_HTML)


class TestOutputShape:
    def test_root_is_resume(self, result):
        assert result.root.tag == "RESUME"

    def test_title_text_merged_into_root_val(self, result):
        assert "Jane Doe" in result.root.get_val()

    def test_sections_are_root_children(self, result):
        tags = [c.tag for c in result.root.element_children()]
        assert tags == ["OBJECTIVE", "EDUCATION", "EXPERIENCE", "SKILLS"]

    def test_education_entries_nested_under_date(self, result):
        education = find_first(result.root, "RESUME/EDUCATION")
        dates = education.element_children()
        assert [d.tag for d in dates] == ["DATE", "DATE"]
        first = dates[0]
        assert {c.tag for c in first.element_children()} == {
            "INSTITUTION",
            "DEGREE",
            "GPA",
        }

    def test_institution_value_kept_whole(self, result):
        inst = find_first(result.root, "//INSTITUTION")
        assert inst.get_val() == "University of California at Davis"

    def test_experience_entries(self, result):
        titles = find_all(result.root, "RESUME/EXPERIENCE/JOB-TITLE")
        assert len(titles) == 2
        first = titles[0]
        companies = [c for c in first.element_children() if c.tag == "COMPANY"]
        assert companies[0].get_val() == "Verity Inc."

    def test_only_concept_elements_remain(self, result, kb):
        tags = {el.tag for el in iter_elements(result.root)}
        assert tags <= kb.concept_tags()

    def test_all_elements_uppercase(self, result):
        for el in iter_elements(result.root):
            assert el.tag == el.tag.upper()


class TestStatistics:
    def test_counts_populated(self, result):
        assert result.tokens_created > 10
        assert result.groups_created >= 3
        assert result.nodes_eliminated > 5
        assert result.concept_node_count > 10

    def test_unidentified_ratio_low_on_clean_input(self, result):
        assert result.instance_stats.unidentified_ratio < 0.3

    def test_xml_serialization(self, result):
        xml = result.to_xml()
        assert xml.startswith("<?xml")
        assert "<RESUME" in xml


class TestConverterBehavior:
    def test_accepts_preparsed_tree(self, converter):
        from repro.htmlparse.parser import parse_html

        tree = parse_html("<h2>Education</h2><h2>Skills</h2>")
        result = converter.convert(tree)
        assert result.root.tag == "RESUME"

    def test_preparsed_tree_survives_conversion(self, converter):
        """The double-convert footgun: converting a pre-parsed tree must
        not consume it, so a second conversion sees the same input."""
        from repro.dom.treeops import clone, deep_equal
        from repro.htmlparse.parser import parse_html

        tree = parse_html(RESUME_HTML)
        snapshot = clone(tree)
        first = converter.convert(tree)
        assert deep_equal(tree, snapshot)
        second = converter.convert(tree)
        assert first.to_xml() == second.to_xml()
        assert first.to_xml() == converter.convert(RESUME_HTML).to_xml()

    def test_convert_copy_false_consumes_input(self, converter):
        """Opting out of the defensive clone mutates the input in place
        (the historical behavior, kept for throwaway trees)."""
        from repro.dom.treeops import clone, deep_equal
        from repro.htmlparse.parser import parse_html

        tree = parse_html(RESUME_HTML)
        snapshot = clone(tree)
        result = converter.convert(tree, copy=False)
        assert result.root.tag == "RESUME"
        assert not deep_equal(tree, snapshot)

    def test_per_rule_timings_recorded(self, converter):
        result = converter.convert(RESUME_HTML)
        assert {"parse", "tokenize", "instance", "group", "consolidate"} <= set(
            result.rule_seconds
        )
        assert all(seconds >= 0.0 for seconds in result.rule_seconds.values())

    def test_convert_many(self, converter):
        results = converter.convert_many([RESUME_HTML, RESUME_HTML])
        assert len(results) == 2

    def test_no_text_lost(self, converter):
        """Every informative word of the source survives in some val."""
        result = converter.convert(
            "<html><body><p>Zanzibar unknownword, University</p></body></html>"
        )
        all_vals = " ".join(
            el.get_val() for el in iter_elements(result.root)
        )
        assert "Zanzibar" in all_vals
        assert "unknownword" in all_vals
        assert "University" in all_vals

    def test_tidy_toggle(self, kb):
        messy = "<html><body><h2>Education<p>June 1996</p></h2></body></html>"
        with_tidy = DocumentConverter(kb, ConversionConfig(apply_tidy=True))
        without = DocumentConverter(kb, ConversionConfig(apply_tidy=False))
        assert with_tidy.convert(messy).root.tag == "RESUME"
        assert without.convert(messy).root.tag == "RESUME"

    def test_topic_without_root_concept(self):
        from repro.concepts.concept import Concept
        from repro.concepts.knowledge import KnowledgeBase

        kb = KnowledgeBase("gizmo")
        kb.add(Concept("widget"))
        converter = DocumentConverter(kb)
        result = converter.convert("<html><body><p>widget here</p></body></html>")
        assert result.root.tag == "GIZMO"
        assert result.root.element_children()[0].tag == "WIDGET"

    def test_empty_document(self, converter):
        result = converter.convert("<html><body></body></html>")
        assert result.root.tag == "RESUME"
        assert result.root.children == []

    def test_duplicate_resume_headings_merged_into_root(self, converter):
        result = converter.convert(
            "<html><head><title>Resume</title></head>"
            "<body><h1>Resume</h1><h2>Skills</h2><h2>Education</h2></body></html>"
        )
        tags = [c.tag for c in result.root.element_children()]
        assert "RESUME" not in tags

"""Tests for the Section 4.2 search-space accounting -- the exact paper
numbers, which are machine-independent arithmetic."""

import pytest

from repro.evaluation.searchspace import (
    count_constrained_paths,
    paper_constraints,
    paper_exhaustive_count,
    run_search_space_experiment,
)


class TestPaperArithmetic:
    def test_exhaustive_count_is_paper_value(self):
        """Paper: 24^5 - 1 = 7,962,623."""
        assert paper_exhaustive_count(24, 4) == 7_962_623

    def test_constrained_count_is_paper_value(self, kb):
        """Paper: 1 + 11 + 11*13 + 11*13*12 = 1,871."""
        assert count_constrained_paths(kb) == 1_871

    def test_constrained_fraction_is_paper_value(self, kb):
        """Paper: 0.023% of the exhaustive space."""
        fraction = 100.0 * count_constrained_paths(kb) / paper_exhaustive_count(24, 4)
        assert fraction == pytest.approx(0.023, abs=0.001)

    def test_paper_constraints_shape(self, kb):
        constraints = paper_constraints(kb)
        assert constraints.no_repeat_on_path
        assert constraints.max_depth == 3
        assert len(constraints.depths) == 24


class TestExperiment:
    @pytest.fixture(scope="class")
    def report(self, kb, converter):
        from repro.corpus.generator import ResumeCorpusGenerator
        from repro.schema.paths import extract_paths

        docs = ResumeCorpusGenerator(seed=1966).generate(30)
        documents = [extract_paths(converter.convert(d.html).root) for d in docs]
        return run_search_space_experiment(kb, documents)

    def test_reduction_chain(self, report):
        """exhaustive >> constrained >> explored >= positive support."""
        assert report.exhaustive_nodes == 7_962_623
        assert report.constrained_nodes == 1_871
        assert report.explored_nodes < report.constrained_nodes
        assert report.positive_support_nodes <= report.explored_nodes

    def test_positive_support_magnitude(self, report):
        """Paper's analog: 73 nodes.  Ours should be the same order."""
        assert 20 <= report.positive_support_nodes <= 250

    def test_fractions(self, report):
        assert report.constrained_fraction == pytest.approx(0.0235, abs=0.001)
        assert report.explored_fraction < 0.01

    def test_frequent_paths_found(self, report):
        assert report.frequent_paths > 5

"""Tests for the generic chunked process-pool mapper."""

import pytest

from repro.runtime.parallel import ParallelMapper


def square_offset(state, item):
    offset = state if state is not None else 0
    return item * item + offset


def make_offset(offset):
    return offset


def failing(state, item):
    if item == 3:
        raise ValueError("boom")
    return item


class TestInline:
    def test_maps_in_order(self):
        mapper = ParallelMapper(square_offset, max_workers=1, chunk_size=2)
        assert list(mapper.map(range(7))) == [i * i for i in range(7)]

    def test_state_factory_runs_once(self):
        mapper = ParallelMapper(
            square_offset,
            state_factory=make_offset,
            state_args=(100,),
            max_workers=1,
        )
        assert list(mapper.map([1, 2])) == [101, 104]

    def test_errors_propagate(self):
        mapper = ParallelMapper(failing, max_workers=1)
        with pytest.raises(ValueError):
            list(mapper.map([1, 2, 3]))

    def test_empty_input(self):
        mapper = ParallelMapper(square_offset, max_workers=1)
        assert list(mapper.map([])) == []


@pytest.mark.slow
class TestPool:
    def test_order_preserved_across_workers(self):
        mapper = ParallelMapper(square_offset, max_workers=2, chunk_size=3)
        assert list(mapper.map(range(20))) == [i * i for i in range(20)]

    def test_worker_state_built_by_initializer(self):
        mapper = ParallelMapper(
            square_offset,
            state_factory=make_offset,
            state_args=(1000,),
            max_workers=2,
            chunk_size=2,
        )
        assert list(mapper.map(range(6))) == [i * i + 1000 for i in range(6)]

    def test_backpressure_window_still_ordered(self):
        mapper = ParallelMapper(
            square_offset, max_workers=2, chunk_size=1, max_pending=2
        )
        assert list(mapper.map(range(10))) == [i * i for i in range(10)]

    def test_errors_propagate_from_pool(self):
        mapper = ParallelMapper(failing, max_workers=2, chunk_size=1)
        with pytest.raises(ValueError):
            list(mapper.map([1, 2, 3, 4]))


def test_resolved_workers_defaults_to_cpus():
    import os

    mapper = ParallelMapper(square_offset)
    assert mapper.resolved_workers() == (os.cpu_count() or 1)
    assert ParallelMapper(square_offset, max_workers=0).resolved_workers() == 1

"""Tests for concept constraints."""

import pytest

from repro.concepts.constraints import (
    ConstraintSet,
    DepthConstraint,
    ParentConstraint,
    SiblingConstraint,
)


class TestParentConstraint:
    def test_satisfied_when_parent_above(self):
        c = ParentConstraint("EDUCATION", "DATE")
        assert c.satisfied_by_path(("EDUCATION", "DATE"))
        assert c.satisfied_by_path(("EDUCATION", "DEGREE", "DATE"))

    def test_violated_when_order_reversed(self):
        c = ParentConstraint("EDUCATION", "DATE")
        assert not c.satisfied_by_path(("DATE", "EDUCATION"))

    def test_vacuous_when_either_absent(self):
        c = ParentConstraint("EDUCATION", "DATE")
        assert c.satisfied_by_path(("SKILLS",))
        assert c.satisfied_by_path(("EDUCATION",))

    def test_negated(self):
        c = ParentConstraint("DATE", "EDUCATION", negated=True)
        assert not c.satisfied_by_path(("DATE", "EDUCATION"))
        assert c.satisfied_by_path(("EDUCATION", "DATE"))


class TestSiblingConstraint:
    def test_positive_allows(self):
        c = SiblingConstraint("DEGREE", "INSTITUTION")
        assert c.allows_pair("DEGREE", "INSTITUTION")
        assert c.allows_pair("INSTITUTION", "DEGREE")

    def test_negated_forbids(self):
        c = SiblingConstraint("RESUME", "RESUME", negated=True)
        assert not c.allows_pair("RESUME", "RESUME")

    def test_unmentioned_pairs_allowed(self):
        c = SiblingConstraint("A", "B", negated=True)
        assert c.allows_pair("A", "C")
        assert c.allows_pair("C", "D")


class TestDepthConstraint:
    def test_equality(self):
        c = DepthConstraint("EDUCATION", "=", 1)
        assert c.allows_depth(1)
        assert not c.allows_depth(2)

    def test_greater(self):
        c = DepthConstraint("DATE", ">", 1)
        assert not c.allows_depth(1)
        assert c.allows_depth(2)

    def test_less(self):
        c = DepthConstraint("X", "<", 3)
        assert c.allows_depth(2)
        assert not c.allows_depth(3)

    def test_negated(self):
        c = DepthConstraint("X", "=", 2, negated=True)
        assert not c.allows_depth(2)
        assert c.allows_depth(1)

    def test_invalid_operator(self):
        with pytest.raises(ValueError):
            DepthConstraint("X", ">=", 1)


class TestConstraintSet:
    def test_empty_set_allows_everything(self):
        cs = ConstraintSet()
        assert cs.is_empty()
        assert cs.allows_path(("A", "B", "A", "C"))

    def test_no_repeat_on_path(self):
        cs = ConstraintSet(no_repeat_on_path=True)
        assert cs.allows_path(("A", "B"))
        assert not cs.allows_path(("A", "B", "A"))

    def test_max_depth(self):
        cs = ConstraintSet(max_depth=2)
        assert cs.allows_path(("A", "B"))
        assert not cs.allows_path(("A", "B", "C"))

    def test_depth_constraints_consulted(self):
        cs = ConstraintSet()
        cs.add_depth("TITLE", "=", 1)
        assert cs.allows_path(("TITLE", "X"))
        assert not cs.allows_path(("X", "TITLE"))

    def test_parent_constraints_consulted(self):
        cs = ConstraintSet()
        cs.add_parent("EDUCATION", "GPA")
        assert cs.allows_path(("EDUCATION", "GPA"))
        assert not cs.allows_path(("GPA", "EDUCATION"))

    def test_sibling_pair_check(self):
        cs = ConstraintSet()
        cs.add_sibling("A", "B", negated=True)
        assert not cs.allows_sibling_pair("A", "B")
        assert cs.allows_sibling_pair("A", "C")

    def test_allows_depth_merges_max_depth(self):
        cs = ConstraintSet(max_depth=3)
        cs.add_depth("X", ">", 1)
        assert not cs.allows_depth("X", 1)
        assert cs.allows_depth("X", 2)
        assert not cs.allows_depth("X", 4)

    def test_is_empty_false_with_any_constraint(self):
        assert not ConstraintSet(max_depth=1).is_empty()
        cs = ConstraintSet()
        cs.add_sibling("A", "B")
        assert not cs.is_empty()

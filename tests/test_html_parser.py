"""Tests for HTML tree construction."""

from repro.dom.node import Element, Text
from repro.htmlparse.parser import body_of, parse_fragment, parse_html


def body(source):
    return body_of(parse_html(source))


def tags(element):
    return [c.tag for c in element.element_children()]


class TestDocumentStructure:
    def test_root_is_html_with_body(self):
        doc = parse_html("<p>x</p>")
        assert doc.tag == "html"
        assert tags(doc) == ["body"]

    def test_head_separated_from_body(self):
        doc = parse_html("<head><title>T</title></head><body><p>x</p></body>")
        assert tags(doc) == ["head", "body"]

    def test_body_attrs_merged(self):
        doc = parse_html('<body bgcolor="white"><p>x</p></body>')
        assert body_of(doc).attrs["bgcolor"] == "white"

    def test_fragment_has_fragment_root(self):
        frag = parse_fragment("<li>a</li><li>b</li>")
        assert frag.tag == "#fragment"
        assert tags(frag) == ["li", "li"]


class TestImpliedEndTags:
    def test_li_closes_li(self):
        b = body("<ul><li>one<li>two</ul>")
        ul = b.element_children()[0]
        assert tags(ul) == ["li", "li"]

    def test_block_closes_paragraph(self):
        b = body("<p>one<div>two</div>")
        assert tags(b) == ["p", "div"]
        p = b.element_children()[0]
        assert p.inner_text() == "one"

    def test_p_closes_p(self):
        b = body("<p>one<p>two")
        assert tags(b) == ["p", "p"]

    def test_td_closes_td(self):
        b = body("<table><tr><td>a<td>b</tr></table>")
        tr = b.element_children()[0].element_children()[0]
        assert tags(tr) == ["td", "td"]

    def test_tr_closes_tr_and_cells(self):
        b = body("<table><tr><td>a<tr><td>b</table>")
        table = b.element_children()[0]
        assert tags(table) == ["tr", "tr"]

    def test_dt_dd_alternate(self):
        b = body("<dl><dt>term<dd>def<dt>term2</dl>")
        dl = b.element_children()[0]
        assert tags(dl) == ["dt", "dd", "dt"]


class TestVoidElements:
    def test_br_does_not_nest(self):
        b = body("one<br>two")
        assert [type(c).__name__ for c in b.children] == ["Text", "Element", "Text"]

    def test_hr_img_void(self):
        b = body("<hr><img src=x.gif><p>y</p>")
        assert tags(b) == ["hr", "img", "p"]

    def test_xml_style_self_close_non_void(self):
        b = body("<foo/><p>x</p>")
        assert tags(b) == ["foo", "p"]
        assert b.element_children()[0].children == []


class TestErrorRecovery:
    def test_stray_end_tag_dropped(self):
        b = body("</div><p>x</p>")
        assert tags(b) == ["p"]

    def test_mismatched_close_pops_to_match(self):
        b = body("<div><b>x</div>after")
        div = b.element_children()[0]
        assert tags(div) == ["b"]
        assert b.children[-1].text.strip() == "after"

    def test_unclosed_elements_at_eof(self):
        b = body("<div><ul><li>x")
        div = b.element_children()[0]
        assert tags(div) == ["ul"]

    def test_whitespace_only_text_dropped(self):
        b = body("<p>  </p>\n  <p>x</p>")
        p1 = b.element_children()[0]
        assert p1.children == []

    def test_adjacent_text_merged(self):
        b = body("one &amp; two")
        assert len(b.text_children()) == 1
        assert b.text_children()[0].text == "one & two"

    def test_comments_discarded(self):
        b = body("<!-- c --><p>x</p><!-- d -->")
        assert tags(b) == ["p"]
        assert len(b.children) == 1


class TestRealisticDocument:
    def test_resume_shape(self):
        b = body(
            """
            <h1>Resume</h1>
            <h2>Education</h2>
            <ul><li>UC Davis, B.S., 1996<li>MIT, M.S., 1998</ul>
            <h2>Skills</h2>
            <p>C++, Java
            """
        )
        assert tags(b) == ["h1", "h2", "ul", "h2", "p"]
        ul = b.element_children()[2]
        assert len(ul.element_children()) == 2

    def test_nested_tables(self):
        b = body(
            "<table><tr><td><table><tr><td>inner</td></tr></table></td></tr></table>"
        )
        outer = b.element_children()[0]
        inner_td = outer.element_children()[0].element_children()[0]
        assert tags(inner_td) == ["table"]

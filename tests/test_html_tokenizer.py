"""Tests for the HTML lexer."""

from repro.htmlparse.tokenizer import Token, TokenType, tokenize


def toks(source):
    """Tokenize through the fast path, asserting the legacy path agrees.

    Every example in this file is thereby a differential test: the
    returned stream is the fast tokenizer's, checked token-for-token
    (source spans included) against the per-character oracle.
    """
    fast = list(tokenize(source, fast=True))
    legacy = list(tokenize(source, fast=False))
    assert fast == legacy
    assert [(t.start, t.end) for t in fast] == [
        (t.start, t.end) for t in legacy
    ]
    return fast


class TestBasicTokens:
    def test_plain_text(self):
        assert toks("hello") == [Token(TokenType.TEXT, "hello")]

    def test_start_and_end_tag(self):
        result = toks("<p>x</p>")
        assert [t.type for t in result] == [
            TokenType.START_TAG,
            TokenType.TEXT,
            TokenType.END_TAG,
        ]
        assert result[0].data == "p"
        assert result[2].data == "p"

    def test_tag_names_lowercased(self):
        assert toks("<DIV>")[0].data == "div"
        assert toks("</DIV>")[0].data == "div"

    def test_self_closing_flag(self):
        assert toks("<br/>")[0].self_closing is True
        assert toks("<br>")[0].self_closing is False

    def test_comment(self):
        result = toks("<!-- note -->")
        assert result == [Token(TokenType.COMMENT, " note ")]

    def test_unterminated_comment_consumes_rest(self):
        result = toks("<!-- oops <p>never</p>")
        assert result[0].type is TokenType.COMMENT
        assert len(result) == 1

    def test_doctype(self):
        result = toks("<!DOCTYPE html>")
        assert result[0].type is TokenType.DOCTYPE
        assert "DOCTYPE" in result[0].data

    def test_processing_instruction_skipped(self):
        assert toks("<?xml version='1.0'?>after")[0].data == "after"

    def test_cdata_section_is_literal_text(self):
        result = toks("<p><![CDATA[a < b & c]]></p>")
        assert result[1] == Token(TokenType.TEXT, "a < b & c")

    def test_unterminated_cdata_runs_to_eof(self):
        result = toks("<![CDATA[abc")
        assert result == [Token(TokenType.TEXT, "abc")]


class TestAttributes:
    def test_double_quoted(self):
        tok = toks('<a href="x.html">')[0]
        assert tok.attrs == {"href": "x.html"}

    def test_single_quoted(self):
        tok = toks("<a href='x.html'>")[0]
        assert tok.attrs == {"href": "x.html"}

    def test_unquoted(self):
        tok = toks("<table border=1>")[0]
        assert tok.attrs == {"border": "1"}

    def test_valueless_attribute(self):
        tok = toks("<input disabled>")[0]
        assert tok.attrs == {"disabled": ""}

    def test_attr_names_lowercased(self):
        tok = toks('<a HREF="x">')[0]
        assert "href" in tok.attrs

    def test_first_duplicate_wins(self):
        tok = toks('<a x="1" x="2">')[0]
        assert tok.attrs["x"] == "1"

    def test_entities_in_attr_values(self):
        tok = toks('<a title="a&amp;b">')[0]
        assert tok.attrs["title"] == "a&b"


class TestMalformedInput:
    def test_stray_less_than_in_text(self):
        result = toks("a < b")
        assert "".join(t.data for t in result if t.type is TokenType.TEXT) == "a < b"

    def test_stray_close_marker(self):
        result = toks("a </ b")
        assert all(t.type is TokenType.TEXT for t in result)

    def test_unterminated_tag_at_eof(self):
        result = toks("<p foo")
        assert result[0].type is TokenType.START_TAG

    def test_entities_decoded_in_text(self):
        result = toks("fish &amp; chips")
        assert result[0].data == "fish & chips"


class TestRawText:
    def test_script_content_not_parsed(self):
        result = toks("<script>if (a<b) x();</script>after")
        assert result[0].data == "script"
        assert result[1] == Token(TokenType.TEXT, "if (a<b) x();")
        assert result[2].data == "script"
        assert result[3].data == "after"

    def test_style_content_not_parsed(self):
        result = toks("<style>p > a { }</style>")
        assert result[1].data == "p > a { }"

    def test_unclosed_script_runs_to_eof(self):
        result = toks("<script>var x = 1;")
        assert result[1].data == "var x = 1;"

    def test_case_insensitive_close(self):
        result = toks("<script>x</SCRIPT>")
        assert result[2].type is TokenType.END_TAG

"""Tests for the malformation injector."""

import random

from repro.corpus.noise import NoiseConfig, inject_noise
from repro.htmlparse.parser import parse_html

SAMPLE = """<html><body>
<h2>Education</h2>
<ul><li>UC Davis, B.S., 1996</li><li>MIT, M.S., 1998</li></ul>
<p><b>Skills</b>: C++</p>
<table border="1"><tr><td>x</td></tr></table>
</body></html>"""


class TestInjection:
    def test_zero_rate_is_identity(self):
        assert inject_noise(SAMPLE, random.Random(1), NoiseConfig(rate=0)) == SAMPLE

    def test_deterministic_given_rng(self):
        a = inject_noise(SAMPLE, random.Random(7), NoiseConfig(rate=1.0))
        b = inject_noise(SAMPLE, random.Random(7), NoiseConfig(rate=1.0))
        assert a == b

    def test_high_rate_changes_markup(self):
        noisy = inject_noise(SAMPLE, random.Random(7), NoiseConfig(rate=1.0))
        assert noisy != SAMPLE

    def test_close_tags_dropped_at_full_rate(self):
        noisy = inject_noise(SAMPLE, random.Random(7), NoiseConfig(rate=2.0))
        assert noisy.count("</li>") < SAMPLE.count("</li>")

    def test_text_content_survives(self):
        noisy = inject_noise(SAMPLE, random.Random(7), NoiseConfig(rate=1.0))
        for phrase in ("UC Davis", "MIT", "C++", "Education"):
            assert phrase in noisy

    def test_noisy_output_still_parses(self):
        for seed in range(10):
            noisy = inject_noise(SAMPLE, random.Random(seed), NoiseConfig(rate=1.0))
            tree = parse_html(noisy)
            assert "UC Davis" in tree.inner_text()

    def test_individual_toggles(self):
        config = NoiseConfig(
            rate=2.0,
            drop_close_tags=False,
            uppercase_tags=False,
            unquote_attributes=True,
            stray_font_tags=False,
            double_open_bold=False,
        )
        noisy = inject_noise(SAMPLE, random.Random(3), config)
        assert noisy.count("</li>") == SAMPLE.count("</li>")
        assert 'border="1"' not in noisy

    def test_double_bold_injected(self):
        config = NoiseConfig(
            rate=2.0,
            drop_close_tags=False,
            uppercase_tags=False,
            unquote_attributes=False,
            stray_font_tags=False,
            double_open_bold=True,
        )
        noisy = inject_noise(SAMPLE, random.Random(3), config)
        assert "<b><b>" in noisy

    def test_scaled_probability_capped(self):
        config = NoiseConfig(rate=100.0)
        assert config.scaled(0.5) == 1.0
        assert NoiseConfig(rate=0.5).scaled(0.5) == 0.25

"""Chrome trace-event export: re-basing, validation, real engine runs."""

from __future__ import annotations

import json

from repro.obs.chrometrace import (
    _domain_of,
    spans_to_chrome_trace,
    validate_chrome_trace,
    validate_chrome_trace_file,
    write_chrome_trace,
)
from repro.obs.tracer import Tracer


def span(span_id, name, start, end, parent=None, **attrs):
    return {
        "kind": "span",
        "id": span_id,
        "name": name,
        "start": start,
        "end": end,
        "seconds": end - start,
        "parent": parent,
        "attrs": attrs,
    }


class TestDomains:
    def test_parent_process_spans_have_empty_domain(self):
        assert _domain_of("s1") == ""

    def test_chunk_and_bisection_domains(self):
        assert _domain_of("c3.w7") == "c3"
        assert _domain_of("c3.b16.w7") == "c3.b16"


class TestExport:
    def build_nested(self):
        return [
            span("s1", "engine.run", 100.0, 101.0),
            span("s2", "engine.convert_corpus", 100.1, 100.9, parent="s1"),
            # Worker chunk: its own perf_counter clock starting near zero.
            span("c0.w1", "engine.chunk", 0.001, 0.4, parent="s2", chunk=0),
            span("c0.w2", "convert.document", 0.01, 0.2, parent="c0.w1"),
        ]

    def test_events_are_valid_and_complete(self):
        trace = spans_to_chrome_trace(self.build_nested())
        assert validate_chrome_trace(trace) == []
        events = trace["traceEvents"]
        x_events = [e for e in events if e["ph"] == "X"]
        assert len(x_events) == 4
        names = {e["name"] for e in events if e["ph"] == "M"}
        assert names == {"process_name", "thread_name"}

    def test_parent_timeline_anchored_at_zero(self):
        trace = spans_to_chrome_trace(self.build_nested())
        by_id = {e["args"]["id"]: e for e in trace["traceEvents"]
                 if e["ph"] == "X"}
        assert by_id["s1"]["ts"] == 0.0
        assert by_id["s2"]["ts"] == round(0.1 * 1e6, 3)

    def test_worker_spans_rebased_onto_reparent_target(self):
        """The chunk's earliest span is aligned with the start of the
        span it was adopted under, so it nests visibly inside it."""
        trace = spans_to_chrome_trace(self.build_nested())
        by_id = {e["args"]["id"]: e for e in trace["traceEvents"]
                 if e["ph"] == "X"}
        chunk = by_id["c0.w1"]
        parent = by_id["s2"]
        assert chunk["ts"] == parent["ts"]
        # And the chunk's child keeps its relative offset.
        child = by_id["c0.w2"]
        assert child["ts"] == round(chunk["ts"] + 0.009 * 1e6, 3)

    def test_domains_get_distinct_tracks(self):
        trace = spans_to_chrome_trace(self.build_nested())
        tids = {e["args"]["id"]: e["tid"] for e in trace["traceEvents"]
                if e["ph"] == "X"}
        assert tids["s1"] == tids["s2"] == 0
        assert tids["c0.w1"] == tids["c0.w2"] != 0

    def test_scalar_attrs_exported_in_args(self):
        trace = spans_to_chrome_trace(self.build_nested())
        chunk = next(e for e in trace["traceEvents"]
                     if e["ph"] == "X" and e["args"]["id"] == "c0.w1")
        assert chunk["args"]["chunk"] == 0
        assert chunk["args"]["parent"] == "s2"

    def test_write_and_validate_file(self, tmp_path):
        target = tmp_path / "nested" / "trace.json"
        write_chrome_trace(target, self.build_nested())
        assert target.exists()  # parents created
        assert validate_chrome_trace_file(target) == []
        document = json.loads(target.read_text())
        assert document["displayTimeUnit"] == "ms"


class TestValidator:
    def test_rejects_non_document(self):
        assert validate_chrome_trace(42) != []
        assert validate_chrome_trace({"foo": []}) != []

    def test_accepts_bare_event_list(self):
        events = spans_to_chrome_trace(
            [span("s1", "a", 0.0, 1.0)]
        )["traceEvents"]
        assert validate_chrome_trace(events) == []

    def test_flags_negative_duration(self):
        events = [{"name": "a", "ph": "X", "ts": 0, "dur": -5,
                   "pid": 1, "tid": 0}]
        errors = validate_chrome_trace(events)
        assert any("negative duration" in e for e in errors)

    def test_flags_partial_overlap_on_one_track(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 0},
        ]
        errors = validate_chrome_trace(events)
        assert any("partially overlaps" in e for e in errors)

    def test_allows_overlap_across_tracks(self):
        events = [
            {"name": "a", "ph": "X", "ts": 0, "dur": 10, "pid": 1, "tid": 0},
            {"name": "b", "ph": "X", "ts": 5, "dur": 10, "pid": 1, "tid": 1},
        ]
        assert validate_chrome_trace(events) == []

    def test_flags_unmatched_begin(self):
        events = [{"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 0}]
        errors = validate_chrome_trace(events)
        assert any("unmatched B" in e for e in errors)

    def test_flags_end_without_begin(self):
        events = [{"name": "a", "ph": "E", "ts": 5, "pid": 1, "tid": 0}]
        errors = validate_chrome_trace(events)
        assert any("E without matching B" in e for e in errors)

    def test_matched_begin_end_pass(self):
        events = [
            {"name": "a", "ph": "B", "ts": 0, "pid": 1, "tid": 0},
            {"name": "a", "ph": "E", "ts": 5, "pid": 1, "tid": 0},
        ]
        assert validate_chrome_trace(events) == []


class TestRealEngineRun:
    def test_two_worker_trace_is_valid(self, kb, tmp_path):
        """A real 2-worker engine run exports a valid trace whose worker
        chunk spans land on their own tracks, nested in the parent."""
        from repro.corpus.generator import ResumeCorpusGenerator
        from repro.runtime.engine import CorpusEngine, EngineConfig

        html = ResumeCorpusGenerator(seed=23).generate_html(8)
        tracer = Tracer()
        engine = CorpusEngine(
            kb, engine_config=EngineConfig(max_workers=2, chunk_size=3)
        )
        engine.run(html, tracer=tracer)
        target = tmp_path / "trace.json"
        write_chrome_trace(target, list(tracer.iter_dicts()))
        assert validate_chrome_trace_file(target) == []
        document = json.loads(target.read_text())
        x_events = [e for e in document["traceEvents"] if e["ph"] == "X"]
        assert any(e["name"] == "convert.document" for e in x_events)
        # Worker documents sit on non-main tracks.
        worker_tids = {e["tid"] for e in x_events
                       if e["args"]["id"].startswith("c")}
        assert worker_tids and 0 not in worker_tids

"""Span tracer: nesting, attributes, the null tracer, and re-parenting
across a simulated worker boundary (export in the "worker", adopt in the
"parent" -- the exact round trip the engine's chunk merge performs)."""

from __future__ import annotations

import json

from repro.obs.provenance import ProvenanceLog
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer, resolve_tracer
from repro.obs.export import write_trace_jsonl
from repro.obs.validate import validate_trace_file


class TestSpanNesting:
    def test_children_nest_under_open_parent(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("sibling"):
                pass
        parent = tracer.by_name("parent")[0]
        child = tracer.by_name("child")[0]
        grandchild = tracer.by_name("grandchild")[0]
        sibling = tracer.by_name("sibling")[0]
        assert parent.parent_id is None
        assert child.parent_id == parent.span_id
        assert grandchild.parent_id == child.span_id
        assert sibling.parent_id == parent.span_id
        assert {span.span_id for span in tracer.children_of(parent.span_id)} == {
            child.span_id,
            sibling.span_id,
        }

    def test_spans_complete_children_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.spans] == ["inner", "outer"]

    def test_durations_nested_within_parent(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert outer.start <= inner.start
        assert inner.end <= outer.end
        assert outer.seconds >= inner.seconds

    def test_attributes_at_open_and_via_set(self):
        tracer = Tracer()
        with tracer.span("work", doc="doc0001") as span:
            span.set(items=3)
        recorded = tracer.spans[0]
        assert recorded.attrs == {"doc": "doc0001", "items": 3}

    def test_ids_unique_and_prefixed(self):
        tracer = Tracer(id_prefix="w")
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        ids = [span.span_id for span in tracer.spans]
        assert len(set(ids)) == 2
        assert all(span_id.startswith("w") for span_id in ids)


class TestAdoptAcrossWorkerBoundary:
    def simulate_worker(self):
        """A worker-side tracer with a two-level span forest."""
        worker = Tracer(id_prefix="w")
        with worker.span("engine.chunk", chunk=3):
            with worker.span("convert.document", doc="doc0012"):
                with worker.span("convert.tokenize"):
                    pass
        # Serialize exactly as the chunk payload does.
        return json.loads(json.dumps(worker.export()))

    def test_worker_roots_reparent_under_current_span(self):
        parent = Tracer()
        with parent.span("engine.convert_corpus"):
            adopted = parent.adopt(self.simulate_worker(), prefix="c3.")
        corpus = parent.by_name("engine.convert_corpus")[0]
        chunk = parent.by_name("engine.chunk")[0]
        document = parent.by_name("convert.document")[0]
        tokenize = parent.by_name("convert.tokenize")[0]
        assert len(adopted) == 3
        assert chunk.parent_id == corpus.span_id
        assert document.parent_id == chunk.span_id
        assert tokenize.parent_id == document.span_id

    def test_prefix_keeps_ids_unique_across_chunks(self):
        parent = Tracer()
        with parent.span("engine.convert_corpus"):
            parent.adopt(self.simulate_worker(), prefix="c0.")
            parent.adopt(self.simulate_worker(), prefix="c1.")
        ids = [span.span_id for span in parent.spans]
        assert len(ids) == len(set(ids))
        assert parent.by_name("engine.chunk")[0].span_id.startswith("c0.")
        assert parent.by_name("engine.chunk")[1].span_id.startswith("c1.")

    def test_adopt_with_explicit_parent(self):
        parent = Tracer()
        with parent.span("root"):
            pass
        root_id = parent.spans[0].span_id
        parent.adopt(self.simulate_worker(), parent_id=root_id, prefix="c9.")
        assert parent.by_name("engine.chunk")[0].parent_id == root_id

    def test_adopted_attrs_and_durations_survive(self):
        worker_dicts = self.simulate_worker()
        parent = Tracer()
        parent.adopt(worker_dicts, prefix="c0.")
        chunk = parent.by_name("engine.chunk")[0]
        assert chunk.attrs == {"chunk": 3}
        assert chunk.seconds >= 0.0


class TestNullTracer:
    def test_records_nothing(self):
        with NULL_TRACER.span("anything", doc="d") as span:
            span.set(ignored=True)
        assert NULL_TRACER.export() == []
        assert NULL_TRACER.adopt([{"name": "x"}]) == []
        assert NULL_TRACER.current_span_id is None

    def test_resolve_tracer(self):
        assert resolve_tracer(None) is NULL_TRACER
        tracer = Tracer()
        assert resolve_tracer(tracer) is tracer
        assert isinstance(resolve_tracer(None), NullTracer)
        assert not NULL_TRACER.enabled
        assert Tracer().enabled


class TestSerialization:
    def test_span_dict_round_trip(self):
        span = Span("work", "s1", parent_id="s0", start=1.0, end=2.5,
                    attrs={"doc": "doc0001"})
        clone = Span.from_dict(span.to_dict())
        assert clone.name == "work"
        assert clone.span_id == "s1"
        assert clone.parent_id == "s0"
        assert clone.seconds == 1.5
        assert clone.attrs == {"doc": "doc0001"}

    def test_trace_jsonl_passes_schema(self, tmp_path):
        tracer = Tracer()
        provenance = ProvenanceLog()
        with tracer.span("engine.run"):
            with tracer.span("convert.tokenize"):
                pass
        provenance.rule_event("doc0000", "tokenize", 0.001, tokens_created=4)
        provenance.concept_event(
            "doc0000", "RESUME/TOKEN[0]", "synonym",
            concept="SKILLS", confidence=0.5, text="skills",
        )
        target = tmp_path / "trace.jsonl"
        written = write_trace_jsonl(target, tracer, provenance)
        assert written == 4
        assert validate_trace_file(target) == []

"""Tests for general repetition patterns ((e1,e2)+ discovery)."""

import pytest

from repro.dom.node import Element
from repro.schema.patterns import (
    GroupPattern,
    child_sequences,
    covers,
    discover_all_group_patterns,
    discover_group_patterns,
    render_dtd_with_patterns,
    repeats_of,
)


def tree(spec):
    tag, kids = spec
    e = Element(tag)
    for k in kids:
        e.append_child(tree(k))
    return e


def entry_doc(pairs):
    """r -> e -> alternating (a, b) children, `pairs` times."""
    children = []
    for _ in range(pairs):
        children.append(("a", []))
        children.append(("b", []))
    return tree(("r", [("e", children)]))


class TestPrimitives:
    def test_repeats_of_basic(self):
        assert repeats_of(["a", "b", "a", "b", "a", "b"], ("a", "b")) == 3

    def test_repeats_of_with_prefix(self):
        assert repeats_of(["x", "a", "b", "a", "b"], ("a", "b")) == 2

    def test_repeats_of_absent(self):
        assert repeats_of(["x", "y"], ("a",)) == 0

    def test_repeats_of_empty_unit(self):
        assert repeats_of(["a"], ()) == 0

    def test_covers_requires_all_occurrences_in_run(self):
        # A stray trailing 'a' breaks coverage.
        assert covers(["a", "b", "a", "b"], ("a", "b"), min_repeats=2)
        assert not covers(["a", "b", "a", "b", "a"], ("a", "b"), min_repeats=2)

    def test_covers_min_repeats(self):
        assert not covers(["a", "b"], ("a", "b"), min_repeats=2)


class TestChildSequences:
    def test_sequences_extracted_per_node(self):
        doc = tree(("r", [("e", [("a", []), ("b", [])]), ("e", [("a", [])])]))
        sequences = child_sequences(doc, ("r", "e"))
        assert sorted(sequences) == [["a"], ["a", "b"]]

    def test_path_must_match_from_root(self):
        doc = tree(("r", [("x", [("e", [("a", [])])])]))
        assert child_sequences(doc, ("r", "e")) == []
        assert child_sequences(doc, ("r", "x", "e")) == [["a"]]


class TestDiscovery:
    def test_alternating_pattern_found(self):
        corpus = [entry_doc(2), entry_doc(3), entry_doc(4)]
        patterns = discover_group_patterns(corpus, ("r", "e"))
        assert patterns
        assert patterns[0].unit == ("a", "b")
        assert patterns[0].support == 1.0
        assert patterns[0].avg_repeats == pytest.approx(3.0)

    def test_no_pattern_in_uniform_children(self):
        corpus = [tree(("r", [("e", [("a", []), ("a", []), ("a", [])])]))]
        patterns = discover_group_patterns(corpus, ("r", "e"))
        assert patterns == []  # unit length 1 is plain e+, not a group

    def test_threshold_filters_weak_patterns(self):
        corpus = [entry_doc(2)] + [
            tree(("r", [("e", [("a", []), ("x", [])])])) for _ in range(4)
        ]
        patterns = discover_group_patterns(
            corpus, ("r", "e"), group_threshold=0.5
        )
        assert patterns == []

    def test_longer_unit_preferred_over_subunit(self):
        # (a,b,c) repeated; (a,b) does not cover because 'c' intervenes.
        children = [("a", []), ("b", []), ("c", [])] * 3
        corpus = [tree(("r", [("e", children)]))]
        patterns = discover_group_patterns(corpus, ("r", "e"))
        assert patterns[0].unit == ("a", "b", "c")

    def test_discover_all(self):
        corpus = [entry_doc(3)]
        result = discover_all_group_patterns(corpus, [("r", "e"), ("r",)])
        assert set(result) == {("r", "e")}

    def test_render_method(self):
        pattern = GroupPattern(("R", "E"), ("DATE", "DEGREE"), 1.0, 3.0)
        assert pattern.render() == "(date, degree)+"


class TestDtdRendering:
    def test_group_substituted_into_content_model(self):
        from repro.schema.dtd import derive_dtd
        from repro.schema.frequent import mine_frequent_paths
        from repro.schema.majority import MajoritySchema
        from repro.schema.paths import extract_paths

        corpus = [entry_doc(3), entry_doc(3)]
        documents = [extract_paths(root) for root in corpus]
        schema = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(documents, sup_threshold=0.5)
        )
        dtd = derive_dtd(schema, documents)
        patterns = discover_all_group_patterns(corpus, [("r", "e")])
        rendered = render_dtd_with_patterns(dtd, patterns)
        assert "<!ELEMENT e ((#PCDATA), (a, b)+)>" in rendered

    def test_unmatched_declarations_untouched(self):
        from repro.schema.dtd import DTD

        dtd = DTD.parse("<!ELEMENT r ((#PCDATA), x)>\n<!ELEMENT x (#PCDATA)>")
        rendered = render_dtd_with_patterns(dtd, {})
        assert rendered == dtd.render()

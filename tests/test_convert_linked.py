"""Tests for linked multi-page document conversion."""

import pytest

from repro.convert.linked import LinkedDocumentConverter, extract_topic_links
from repro.concepts.matcher import SynonymMatcher
from repro.corpus.web import SimulatedWeb
from repro.dom.path import find_all, find_first
from repro.evaluation.accuracy import count_logical_errors

MAIN_HTML = """
<html><head><title>Pat Smith - Resume</title></head><body>
<h1>Resume of Pat Smith</h1>
<h2>Education</h2>
<ul><li>June 1996, Stanford University, B.S. (Computer Science)</li></ul>
<h2>Experience</h2>
<p>Software Engineer, Verity Inc., Sunnyvale, 1998 - present</p>
<p><a href="/skills.html">Technical Skills</a></p>
<p><a href="/cats.html">My cat photos</a></p>
</body></html>
"""

SKILLS_HTML = """
<html><head><title>Technical Skills</title></head><body>
<h2>Technical Skills</h2>
<ul><li>C++</li><li>Java</li><li>Unix</li></ul>
</body></html>
"""


@pytest.fixture()
def pages():
    return {"/skills.html": SKILLS_HTML}


@pytest.fixture()
def linked(converter, pages):
    return LinkedDocumentConverter(converter, fetch=pages.get)


class TestLinkExtraction:
    def test_topic_links_found(self, kb):
        matcher = SynonymMatcher(kb)
        links = extract_topic_links(MAIN_HTML, matcher, kb)
        assert len(links) == 1
        assert links[0].href == "/skills.html"
        assert links[0].concept_tag == "SKILLS"

    def test_non_topic_anchors_ignored(self, kb):
        matcher = SynonymMatcher(kb)
        links = extract_topic_links(
            '<a href="/x.html">random page</a>', matcher, kb
        )
        assert links == []

    def test_content_concept_anchors_ignored(self, kb):
        # "Stanford University" matches INSTITUTION (content role):
        # a reference, not a section page.
        matcher = SynonymMatcher(kb)
        links = extract_topic_links(
            '<a href="/y.html">Stanford University</a>', matcher, kb
        )
        assert links == []

    def test_incidental_matches_ignored(self, kb):
        # Anchor where the concept word is a small part of long text.
        matcher = SynonymMatcher(kb)
        links = extract_topic_links(
            '<a href="/z.html">an essay about how my education '
            "changed my life and other stories</a>",
            matcher,
            kb,
        )
        assert links == []

    def test_duplicate_hrefs_deduplicated(self, kb):
        matcher = SynonymMatcher(kb)
        html = (
            '<a href="/s.html">Skills</a><a href="/s.html">Skills</a>'
        )
        assert len(extract_topic_links(html, matcher, kb)) == 1


class TestLinkedConversion:
    def test_skills_grafted(self, linked):
        outcome = linked.convert(MAIN_HTML)
        assert [l.href for l in outcome.followed] == ["/skills.html"]
        skills = find_all(outcome.root, "RESUME/SKILLS")
        assert skills
        grafted_values = {
            el.get_val()
            for section in skills
            for el in section.element_children()
        }
        assert any("C++" in v for v in grafted_values)

    def test_dead_link_tolerated(self, converter):
        linked = LinkedDocumentConverter(converter, fetch=lambda url: None)
        outcome = linked.convert(MAIN_HTML)
        assert outcome.followed == []
        assert outcome.root.tag == "RESUME"

    def test_max_links_respected(self, converter, pages):
        linked = LinkedDocumentConverter(converter, fetch=pages.get, max_links=0)
        outcome = linked.convert(MAIN_HTML)
        assert outcome.followed == []

    def test_other_sections_unaffected(self, linked, converter):
        plain = converter.convert(MAIN_HTML)
        merged = linked.convert(MAIN_HTML)
        for section in ("EDUCATION", "EXPERIENCE"):
            a = find_first(plain.root, f"RESUME/{section}")
            b = find_first(merged.root, f"RESUME/{section}")
            assert (a is None) == (b is None)
            if a is not None:
                assert len(a.element_children()) == len(b.element_children())


class TestOnSimulatedWeb:
    def test_multipage_web_builds(self):
        web = SimulatedWeb(
            resume_count=6, noise_count=6, seed=9, multipage_fraction=1.0
        )
        subs = [u for u in web.pages if u.endswith("skills.html")]
        assert len(subs) == 6
        for sub in subs:
            assert "Technical Skills" in web.fetch(sub).html

    def test_tiny_web_terminates(self):
        # Regression: link wiring must not spin on tiny webs.
        web = SimulatedWeb(resume_count=2, noise_count=1, seed=9)
        assert len(web) == 3

    def test_linked_conversion_beats_plain_on_multipage(self, converter):
        web = SimulatedWeb(
            resume_count=8, noise_count=6, seed=9, multipage_fraction=1.0
        )
        linked = LinkedDocumentConverter(
            converter,
            fetch=lambda u: (web.fetch(u).html if web.fetch(u) else None),
        )
        plain_errors = linked_errors = 0
        for url in sorted(web.resume_urls()):
            page = web.fetch(url)
            plain_errors += count_logical_errors(
                converter.convert(page.html).root, page.resume.ground_truth
            ).errors
            linked_errors += count_logical_errors(
                linked.convert(page.html).root, page.resume.ground_truth
            ).errors
        assert linked_errors < plain_errors

    def test_multipage_fraction_validation(self):
        with pytest.raises(ValueError):
            SimulatedWeb(resume_count=2, multipage_fraction=1.5)

"""Property-based tests: the fast tokenizer is the legacy tokenizer.

Hypothesis builds adversarial HTML-ish documents -- well-formed markup,
truncated constructs, stray angle brackets, exotic whitespace, entity
fragments -- and asserts the bulk-scanning fast path and the legacy
per-character scanner are indistinguishable:

* identical token streams, source spans included,
* identical parse trees after tree construction, and
* the span invariant: every token covers ``source[start:end]``, tokens
  tile the document in order with no gaps and no overlaps.

This is the property-level wall behind the corpus differential in
test_fast_parser_differential.py; the fixed fuzz-regression corpus
lives in tests/golden/parser_edge/.
"""

from __future__ import annotations

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.dom.node import Element
from repro.htmlparse.entities import _decode_entities_slow, decode_entities
from repro.htmlparse.parser import parse_html
from repro.htmlparse.tokenizer import tokenize

# ---------------------------------------------------------------------------
# strategies

tag_names = st.sampled_from(
    ["p", "b", "div", "li", "td", "table", "br", "a", "script", "style", "x-y"]
)
attr_names = st.sampled_from(["href", "class", "id", "width", "align", "data-x"])
attr_values = st.text(
    alphabet="abcdef012 /=&;#?'\"<>\t é",
    min_size=0,
    max_size=12,
)
text_runs = st.text(
    alphabet="abc &;#<>/!-x\t\n é中",
    min_size=0,
    max_size=16,
)


@st.composite
def markup_pieces(draw):
    """One HTML-ish fragment: markup, malformed markup, or text."""
    kind = draw(st.integers(0, 9))
    if kind <= 2:
        return draw(text_runs)
    if kind <= 4:
        name = draw(tag_names)
        attrs = ""
        for _ in range(draw(st.integers(0, 2))):
            attr = draw(attr_names)
            value = draw(attr_values)
            quote = draw(st.sampled_from(['"', "'", ""]))
            attrs += f" {attr}={quote}{value}{quote}"
        slash = draw(st.sampled_from(["", "/", " /"]))
        return f"<{name}{attrs}{slash}>"
    if kind == 5:
        return f"</{draw(tag_names)}>"
    if kind == 6:
        return draw(
            st.sampled_from(
                ["<!-- c -->", "<!--", "<!-- -->", "<!DOCTYPE html>",
                 "<![CDATA[x]]>", "<![CDATA[", "<?php ?>", "<?x"]
            )
        )
    if kind == 7:
        return draw(
            st.sampled_from(
                ["<", "</", "<3", "< p>", "<a", "<a x", "<a x=", "<a x='v",
                 '<a x="v', "<a x=v", "=", ">", "]]>", "-->"]
            )
        )
    if kind == 8:
        return draw(
            st.sampled_from(
                ["&amp;", "&amp", "&", "&#65", "&#x41;", "&#", "&#x",
                 "&bogus;", "&#6f", "&nbsp;"]
            )
        )
    return draw(st.sampled_from(["<script>a<b</script>", "<style>x{",
                                 "<SCRIPT>y</SCRIPT>", "<title>t</title>"]))


documents = st.lists(markup_pieces(), min_size=0, max_size=12).map("".join)


def token_tuples(source: str, *, fast: bool):
    return [
        (t.type, t.data, t.attrs, t.self_closing, t.start, t.end)
        for t in tokenize(source, fast=fast)
    ]


def tree_shape(node):
    if isinstance(node, Element):
        return (
            node.tag,
            tuple(sorted(node.attrs.items())),
            tuple(tree_shape(child) for child in node.children),
        )
    return ("#text", node.text)


# ---------------------------------------------------------------------------
# properties


class TestTokenizerEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(documents)
    def test_token_streams_identical(self, source):
        assert token_tuples(source, fast=True) == token_tuples(source, fast=False)

    @settings(max_examples=150, deadline=None)
    @given(documents)
    def test_parse_trees_identical(self, source):
        assert tree_shape(parse_html(source, fast=True)) == tree_shape(
            parse_html(source, fast=False)
        )


class TestSpanInvariants:
    @settings(max_examples=300, deadline=None)
    @given(documents)
    def test_spans_tile_the_source(self, source):
        """Tokens carry exact source coverage: in-order, gap-free,
        overlap-free, ending at EOF whenever any token was emitted.
        Processing instructions are the one construct both tokenizers
        consume without emitting a token, so they are assumed away."""
        assume("<?" not in source)
        tokens = list(tokenize(source))
        cursor = 0
        for token in tokens:
            assert token.start == cursor
            assert token.end >= token.start
            cursor = token.end
        if tokens:
            assert cursor == len(source)
        else:
            assert source == ""

    @settings(max_examples=300, deadline=None)
    @given(documents)
    def test_legacy_spans_tile_too(self, source):
        assume("<?" not in source)
        tokens = list(tokenize(source, fast=False))
        cursor = 0
        for token in tokens:
            assert token.start == cursor
            cursor = token.end
        if tokens:
            assert cursor == len(source)


class TestEntityDecoderEquivalence:
    @settings(max_examples=300, deadline=None)
    @given(st.text(alphabet="abf012 &;#xX<>é", min_size=0, max_size=40))
    def test_flat_decoder_matches_oracle(self, text):
        assert decode_entities(text) == _decode_entities_slow(text)

    @settings(max_examples=100, deadline=None)
    @given(st.text(alphabet="ab ", min_size=0, max_size=20))
    def test_no_ampersand_is_identity(self, text):
        assert decode_entities(text) is text

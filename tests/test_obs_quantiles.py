"""QuantileDigest: monoid laws (hypothesis), accuracy, serialization.

Mirrors the :class:`PathAccumulator` suite in test_runtime_merge.py:
the engine ships one digest per chunk and merges parent-side, so any
chunking of the observations, merged in any grouping, must equal the
single-pass digest.  Bucket counts and extrema are exact, so the laws
hold exactly for everything ``quantile`` reads; only the float ``total``
is compared with ``pytest.approx``.
"""

from __future__ import annotations

import json
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.quantiles import (
    DEFAULT_BUCKETS_PER_DECADE,
    QuantileDigest,
    merge_digest_maps,
)

# Latency-shaped observations: most values in the microsecond-to-minute
# range the layout resolves, plus 0.0 (sub-resolution timer reads) and
# out-of-range magnitudes that exercise the clamped edge buckets.
latencies = st.one_of(
    st.floats(min_value=1e-7, max_value=1e3),
    st.just(0.0),
    st.floats(min_value=1e6, max_value=1e9),
)
samples = st.lists(latencies, min_size=0, max_size=50)


def from_values(values) -> QuantileDigest:
    digest = QuantileDigest()
    digest.observe_many(values)
    return digest


def assert_equivalent(a: QuantileDigest, b: QuantileDigest) -> None:
    """Exact on everything quantile() reads, approx on the float sum."""
    assert a.layout() == b.layout()
    assert a.counts == b.counts
    assert a.count == b.count
    assert a.min_value == b.min_value
    assert a.max_value == b.max_value
    assert a.total == pytest.approx(b.total)
    for q in (0.0, 0.5, 0.95, 0.99, 1.0):
        assert a.quantile(q) == b.quantile(q)


class TestMonoidLaws:
    @given(samples)
    def test_identity(self, values):
        digest = from_values(values)
        empty = QuantileDigest()
        assert digest.merge(empty) == digest
        assert empty.merge(digest) == digest

    @given(samples, samples)
    def test_commutative(self, left, right):
        a, b = from_values(left), from_values(right)
        # Counter addition commutes exactly; IEEE float addition does
        # too, so equality is exact here.
        assert a.merge(b) == b.merge(a)

    @given(samples, samples, samples)
    @settings(max_examples=50)
    def test_associative(self, one, two, three):
        a, b, c = from_values(one), from_values(two), from_values(three)
        assert_equivalent(a.merge(b).merge(c), a.merge(b.merge(c)))

    @given(samples, samples)
    def test_merge_is_pure(self, left, right):
        a, b = from_values(left), from_values(right)
        a_before, b_before = a.copy(), b.copy()
        a.merge(b)
        assert a == a_before
        assert b == b_before

    def test_layout_mismatch_rejected(self):
        a = QuantileDigest()
        b = QuantileDigest(buckets_per_decade=4)
        with pytest.raises(ValueError):
            a.update(b)


class TestPartitionEquivalence:
    @given(samples, st.integers(min_value=1, max_value=5))
    def test_chunked_merge_equals_single_pass(self, values, chunk_size):
        """Any partition of the observations, merged in order, answers
        every quantile identically to the single-pass digest -- the
        4-worker == serial guarantee."""
        whole = from_values(values)
        merged = QuantileDigest()
        for start in range(0, len(values), chunk_size):
            merged.update(from_values(values[start : start + chunk_size]))
        assert_equivalent(merged, whole)

    @given(st.lists(latencies, min_size=1, max_size=30))
    def test_digest_map_fold(self, values):
        half = len(values) // 2
        held: dict[str, QuantileDigest] = {}
        merge_digest_maps(held, {"parse": from_values(values[:half])})
        merge_digest_maps(held, {"parse": from_values(values[half:]),
                                 "tidy": from_values(values)})
        assert_equivalent(held["parse"], from_values(values))
        assert_equivalent(held["tidy"], from_values(values))

    def test_digest_map_fold_copies_first_contribution(self):
        incoming = from_values([0.5])
        held: dict[str, QuantileDigest] = {}
        merge_digest_maps(held, {"parse": incoming})
        held["parse"].observe(1.0)
        assert incoming.count == 1  # caller's digest not aliased


class TestQuantileAccuracy:
    def test_empty_digest(self):
        digest = QuantileDigest()
        assert digest.quantile(0.5) == 0.0
        assert digest.mean == 0.0
        assert digest.summary()["count"] == 0

    def test_single_value_all_quantiles(self):
        digest = from_values([0.125])
        for q in (0.0, 0.5, 0.99, 1.0):
            assert digest.quantile(q) == pytest.approx(0.125, rel=1e-9)

    def test_extremes_are_exact(self):
        digest = from_values([0.003, 0.4, 0.007, 12.0, 0.0001])
        assert digest.quantile(0.0) == 0.0001
        assert digest.quantile(1.0) == 12.0

    @given(st.lists(st.floats(min_value=1e-5, max_value=100.0),
                    min_size=1, max_size=200))
    @settings(max_examples=60)
    def test_within_documented_relative_error(self, values):
        """Every reported quantile lies within the documented one-bucket
        relative error of the true order statistic (clamping to min/max
        can only tighten this)."""
        digest = from_values(values)
        ordered = sorted(values)
        tolerance = digest.relative_error
        for q in (0.5, 0.95, 0.99):
            rank = q * (len(ordered) - 1)
            low = ordered[int(rank)]
            high = ordered[min(len(ordered) - 1, int(rank) + 1)]
            estimate = digest.quantile(q)
            assert estimate >= low * (1 - tolerance) * (1 - 1e-9)
            assert estimate <= high * (1 + tolerance) * (1 + 1e-9)

    def test_zero_and_negative_fall_into_first_bucket(self):
        digest = QuantileDigest()
        digest.observe(0.0)
        digest.observe(-1.0)  # clock skew reads clamp to zero
        assert digest.counts == {0: 2}
        assert digest.min_value == 0.0
        assert digest.quantile(0.5) == 0.0

    def test_overflow_clamps_to_last_bucket(self):
        digest = QuantileDigest()
        digest.observe(1e12)
        assert digest.counts == {digest.bucket_count - 1: 1}
        assert digest.quantile(1.0) == 1e12  # exact max survives

    def test_relative_error_matches_layout(self):
        digest = QuantileDigest()
        expected = 10.0 ** (1.0 / DEFAULT_BUCKETS_PER_DECADE) - 1.0
        assert digest.relative_error == pytest.approx(expected)
        assert digest.relative_error < 0.16


class TestSerialization:
    @given(samples)
    @settings(max_examples=40)
    def test_pickle_round_trip(self, values):
        digest = from_values(values)
        assert pickle.loads(pickle.dumps(digest)) == digest

    @given(samples)
    @settings(max_examples=40)
    def test_json_round_trip(self, values):
        digest = from_values(values)
        wire = json.loads(json.dumps(digest.to_json()))
        assert QuantileDigest.from_json(wire) == digest

    def test_summary_is_json_ready(self):
        digest = from_values([0.001, 0.01, 0.1])
        summary = json.loads(json.dumps(digest.summary()))
        assert summary["count"] == 3
        assert summary["min"] == 0.001
        assert summary["max"] == 0.1
        assert 0.001 <= summary["p50"] <= 0.1

    def test_invalid_layout_rejected(self):
        with pytest.raises(ValueError):
            QuantileDigest(lo=0.0)
        with pytest.raises(ValueError):
            QuantileDigest(buckets_per_decade=0)

"""Tests for the synthetic resume corpus."""

import pytest

from repro.corpus.generator import ResumeCorpusGenerator
from repro.corpus.model import sample_resume
from repro.corpus.styles import STYLES
from repro.dom.treeops import deep_equal, iter_elements
from repro.htmlparse.parser import parse_html

import random


class TestDataModel:
    def test_sampling_deterministic(self):
        a = sample_resume(random.Random(1))
        b = sample_resume(random.Random(1))
        assert a == b

    def test_different_seeds_differ(self):
        a = sample_resume(random.Random(1))
        b = sample_resume(random.Random(2))
        assert a != b

    def test_required_sections_present(self):
        data = sample_resume(random.Random(3))
        sections = data.section_names()
        assert "contact" in sections
        assert "education" in sections
        assert "experience" in sections
        assert "skills" in sections

    def test_education_entries_well_formed(self):
        data = sample_resume(random.Random(4))
        for entry in data.education:
            assert entry.institution
            assert entry.degree
            assert entry.date.split()[-1].isdigit()

    def test_courses_carry_terms(self):
        for seed in range(20):
            data = sample_resume(random.Random(seed))
            for course in data.courses:
                term = course.rsplit(", ", 1)[-1]
                season, year = term.split()
                assert season in ("Spring", "Summer", "Fall", "Winter")
                assert year.isdigit()


class TestGenerator:
    def test_deterministic_per_doc_id(self):
        g1 = ResumeCorpusGenerator(seed=9)
        g2 = ResumeCorpusGenerator(seed=9)
        a = g1.generate_one(5)
        b = g2.generate_one(5)
        assert a.html == b.html
        assert a.style_name == b.style_name
        assert deep_equal(a.ground_truth, b.ground_truth)

    def test_doc_id_independent_of_batch(self):
        g = ResumeCorpusGenerator(seed=9)
        batch = g.generate(10)
        solo = g.generate_one(7)
        assert batch[7].html == solo.html

    def test_seed_changes_output(self):
        a = ResumeCorpusGenerator(seed=1).generate_one(0)
        b = ResumeCorpusGenerator(seed=2).generate_one(0)
        assert a.html != b.html

    def test_all_styles_used_eventually(self):
        docs = ResumeCorpusGenerator(seed=9).generate(60)
        assert {d.style_name for d in docs} == set(STYLES)

    def test_style_weights_respected(self):
        gen = ResumeCorpusGenerator(
            seed=9, style_weights={"table": 1.0} | {s: 0.0 for s in STYLES if s != "table"}
        )
        docs = gen.generate(10)
        assert all(d.style_name == "table" for d in docs)

    def test_generate_html_matches_generate(self):
        gen = ResumeCorpusGenerator(seed=9)
        assert gen.generate_html(3) == [d.html for d in gen.generate(3)]

    def test_no_styles_rejected(self):
        with pytest.raises(ValueError):
            ResumeCorpusGenerator(styles={})


class TestRenderedHtml:
    @pytest.mark.parametrize("style_name", sorted(STYLES))
    def test_every_style_parses(self, style_name):
        gen = ResumeCorpusGenerator(
            seed=11,
            style_weights={style_name: 1.0}
            | {s: 0.0 for s in STYLES if s != style_name},
        )
        doc = gen.generate_one(0)
        parsed = parse_html(doc.html)
        text = parsed.inner_text()
        assert doc.data.name.split()[0] in text

    @pytest.mark.parametrize("style_name", sorted(STYLES))
    def test_every_style_contains_section_content(self, style_name):
        gen = ResumeCorpusGenerator(
            seed=12,
            style_weights={style_name: 1.0}
            | {s: 0.0 for s in STYLES if s != style_name},
        )
        doc = gen.generate_one(1)
        for entry in doc.data.education:
            assert entry.institution in doc.html


class TestGroundTruth:
    def test_truth_root_is_resume(self):
        doc = ResumeCorpusGenerator(seed=13).generate_one(0)
        assert doc.ground_truth.tag == "RESUME"

    def test_truth_sections_match_data(self):
        doc = ResumeCorpusGenerator(seed=13).generate_one(0)
        truth_sections = [c.tag for c in doc.ground_truth.element_children()]
        expected = [s.upper() for s in doc.data.section_names()]
        assert truth_sections == expected

    def test_truth_education_entry_count(self):
        doc = ResumeCorpusGenerator(seed=13).generate_one(0)
        education = [
            c for c in doc.ground_truth.element_children() if c.tag == "EDUCATION"
        ]
        if education:
            assert len(education[0].element_children()) == len(doc.data.education)

    def test_truth_uses_only_concept_tags(self, kb):
        doc = ResumeCorpusGenerator(seed=13).generate_one(2)
        tags = {el.tag for el in iter_elements(doc.ground_truth)}
        assert tags <= kb.concept_tags()

"""Tests for conversion configuration validation and defaults."""

import pytest

from repro.convert.config import DEFAULT_DELIMITERS, ConversionConfig
from repro.htmlparse.taginfo import DEFAULT_GROUP_TAG_WEIGHTS, DEFAULT_LIST_TAGS


class TestDefaults:
    def test_paper_delimiters(self):
        """Section 4: punctuation in tokenization is ; , :"""
        assert set(DEFAULT_DELIMITERS) == {";", ",", ":"}

    def test_paper_group_tags_present(self):
        """Section 4's group-tag annotation."""
        config = ConversionConfig()
        for tag in ("h1", "h2", "h3", "h4", "h5", "h6", "div", "p", "tr",
                    "dt", "dd", "li", "title", "u", "strong", "b", "em", "i"):
            assert tag in config.group_tags(), tag

    def test_paper_list_tags(self):
        """Section 4's list-tag annotation."""
        assert DEFAULT_LIST_TAGS == frozenset(
            {"body", "table", "dl", "ul", "ol", "dir", "menu"}
        )

    def test_heading_weights_dominate(self):
        weights = DEFAULT_GROUP_TAG_WEIGHTS
        assert weights["h1"] > weights["h2"] > weights["p"]
        assert weights["h1"] > weights["b"]

    def test_default_tagger_is_synonym(self):
        assert ConversionConfig().tagger == "synonym"

    def test_tidy_on_by_default(self):
        assert ConversionConfig().apply_tidy is True


class TestValidation:
    def test_unknown_tagger_rejected(self):
        with pytest.raises(ValueError):
            ConversionConfig(tagger="oracle")

    def test_empty_delimiters_rejected(self):
        with pytest.raises(ValueError):
            ConversionConfig(delimiters=())

    def test_multichar_delimiter_rejected(self):
        with pytest.raises(ValueError):
            ConversionConfig(delimiters=(";;",))

    def test_custom_group_weights_independent(self):
        a = ConversionConfig()
        b = ConversionConfig()
        a.group_tag_weights["h1"] = 1
        assert b.group_tag_weights["h1"] == DEFAULT_GROUP_TAG_WEIGHTS["h1"]

    def test_group_tags_tracks_weights(self):
        config = ConversionConfig(group_tag_weights={"h2": 10})
        assert config.group_tags() == frozenset({"h2"})

"""Tests for homonym-context analysis (Section 2.2)."""

import pytest

from repro.dom.node import Element
from repro.schema.homonyms import homonym_contexts, homonym_labels
from repro.schema.paths import extract_paths


def tree(spec):
    tag, kids = spec
    e = Element(tag)
    for k in kids:
        e.append_child(tree(k))
    return e


@pytest.fixture()
def docs():
    # DATE organizes education entries (has children) but is a bare leaf
    # under courses -- the paper's homonym example.
    specs = [
        ("r", [
            ("education", [("date", [("institution", []), ("degree", [])])]),
            ("courses", [("date", [])]),
        ]),
        ("r", [
            ("education", [("date", [("institution", [])])]),
            ("courses", [("date", []), ("date", [])]),
        ]),
    ]
    return [extract_paths(tree(s)) for s in specs]


class TestContexts:
    def test_all_contexts_found(self, docs):
        contexts = homonym_contexts(docs, "date")
        paths = {c.path for c in contexts}
        assert paths == {
            ("r", "education", "date"),
            ("r", "courses", "date"),
        }

    def test_parent_labels(self, docs):
        contexts = homonym_contexts(docs, "date")
        assert {c.parent_label for c in contexts} == {"education", "courses"}

    def test_organizing_role_detected(self, docs):
        contexts = {c.parent_label: c for c in homonym_contexts(docs, "date")}
        assert contexts["education"].is_organizing
        assert contexts["education"].child_labels == {"institution", "degree"}
        assert not contexts["courses"].is_organizing

    def test_supports_attached(self, docs):
        contexts = homonym_contexts(docs, "date")
        assert all(c.support == 1.0 for c in contexts)

    def test_min_support_filters(self, docs):
        one_sided = docs + [
            extract_paths(tree(("r", [("education", [])]))),
        ]
        contexts = homonym_contexts(one_sided, "date", min_support=0.9)
        assert contexts == []

    def test_ordering_by_support(self, docs):
        extra = docs + [
            extract_paths(tree(("r", [("education", [("date", [])])]))),
        ]
        contexts = homonym_contexts(extra, "date")
        assert contexts[0].path == ("r", "education", "date")

    def test_absent_label(self, docs):
        assert homonym_contexts(docs, "ghost") == []


class TestHomonymLabels:
    def test_multi_context_labels_reported(self, docs):
        labels = homonym_labels(docs)
        assert labels == {"date": 2}

    def test_min_contexts_threshold(self, docs):
        assert homonym_labels(docs, min_contexts=3) == {}

    def test_on_real_corpus(self, kb, converter):
        """DATE is a homonym in converted resumes: it occurs under
        education entries, courses, and experience entries."""
        from repro.corpus.generator import ResumeCorpusGenerator

        corpus = ResumeCorpusGenerator(seed=1966).generate(25)
        documents = [
            extract_paths(converter.convert(d.html).root) for d in corpus
        ]
        labels = homonym_labels(documents)
        assert "DATE" in labels
        assert labels["DATE"] >= 2
        contexts = homonym_contexts(documents, "DATE", min_support=0.2)
        parents = {c.parent_label for c in contexts}
        assert "EDUCATION" in parents or "JOB-TITLE" in parents
        assert "COURSES" in parents

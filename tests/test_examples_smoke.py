"""Smoke tests: the fast example scripts run end to end.

The slower corpus-heavy examples are exercised by the benchmarks; these
keep the quick ones honest in the unit suite.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "<RESUME" in result.stdout
        assert "concept nodes:" in result.stdout

    def test_custom_topic(self):
        result = run_example("custom_topic.py")
        assert result.returncode == 0, result.stderr
        assert "<CATALOG" in result.stdout
        assert "<!ELEMENT" in result.stdout

    def test_resume_pipeline_small(self):
        result = run_example("resume_pipeline.py", "12")
        assert result.returncode == 0, result.stderr
        assert "derived DTD" in result.stdout
        assert "<!ELEMENT resume" in result.stdout
        assert "homonym concept DATE" in result.stdout

    def test_repository_workflow(self, tmp_path):
        result = run_example("repository_workflow.py", str(tmp_path / "store"))
        assert result.returncode == 0, result.stderr
        assert "migrated onto the re-discovered DTD" in result.stdout

"""Tests for the Aho-Corasick tagging fast path."""

from __future__ import annotations

import pickle

import pytest

from repro.concepts.bayes import MultinomialNaiveBayes
from repro.concepts.concept import Concept, ConceptInstance
from repro.concepts.fastmatch import (
    AhoCorasickAutomaton,
    CachedBayes,
    FastSynonymMatcher,
    LRUCache,
    cache_counter_delta,
)
from repro.concepts.knowledge import KnowledgeBase
from repro.concepts.matcher import SynonymMatcher


def build_kb() -> KnowledgeBase:
    kb = KnowledgeBase("test")
    kb.add(
        Concept(
            "institution",
            [ConceptInstance("University"), ConceptInstance("College")],
        )
    )
    kb.add(
        Concept(
            "degree",
            [ConceptInstance("B.S."), ConceptInstance("bachelor of science")],
        )
    )
    kb.add(Concept("skill", [ConceptInstance("C++"), ConceptInstance("C")]))
    kb.add(
        Concept(
            "date", [ConceptInstance(r"\b(June|July)\s+\d{4}\b", is_regex=True)]
        )
    )
    return kb


@pytest.fixture()
def kb_small():
    return build_kb()


@pytest.fixture()
def fast(kb_small):
    return FastSynonymMatcher(kb_small)


@pytest.fixture()
def naive(kb_small):
    return SynonymMatcher(kb_small)


class TestAutomaton:
    def test_finds_all_occurrences(self):
        automaton = AhoCorasickAutomaton(["he", "she", "his", "hers"])
        hits = sorted(automaton.find("ushers"))
        # she ends at 4, he ends at 4, hers ends at 6
        assert (1, 4) in hits  # "she"
        assert (0, 4) in hits  # "he" (suffix of she)
        assert (3, 6) in hits  # "hers"

    def test_empty_text(self):
        automaton = AhoCorasickAutomaton(["abc"])
        assert list(automaton.find("")) == []

    def test_keyword_at_start_and_end(self):
        automaton = AhoCorasickAutomaton(["ab"])
        assert list(automaton.find("abxab")) == [(0, 2), (0, 5)]

    def test_state_count_bounded_by_total_length(self):
        words = ["alpha", "beta", "alphabet"]
        automaton = AhoCorasickAutomaton(words)
        assert automaton.state_count <= sum(len(w) for w in words) + 1


EQUIVALENCE_TEXTS = [
    "Stanford University",
    "University of X, B.S., June 1996",
    "nothing relevant",
    "in new york city",
    "University and College",
    "June 1996 at the University",
    "bachelor of science from University",
    "C++ and C and CCC",
    "UNIVERSITY college BaChElOr Of ScIeNcE",
    "B.S.B.S. B.S. b.s.",
    "",
    "   ",
    "universitys",  # embedded keyword must respect word boundaries
    "xuniversity",
    "C+++",
    "Université de Montréal",  # non-ASCII text takes the fallback path
    "July 2003, June 1996",
]


class TestEquivalence:
    @pytest.mark.parametrize("text", EQUIVALENCE_TEXTS)
    def test_find_all_matches_naive(self, fast, naive, text):
        assert fast.find_all(text) == naive.find_all(text)

    @pytest.mark.parametrize("text", EQUIVALENCE_TEXTS)
    def test_find_best_and_classify_match_naive(self, fast, naive, text):
        assert fast.find_best(text) == naive.find_best(text)
        assert fast.classify(text) == naive.classify(text)

    def test_self_overlapping_punctuation_keyword(self):
        # "+-+" overlaps itself; finditer skips the overlapped
        # occurrence, and the automaton path must replicate that.
        kb = KnowledgeBase("t")
        kb.add(Concept("a", [ConceptInstance("ab+")]))
        kb.add(Concept("b", [ConceptInstance("+-+")]))
        fast, naive = FastSynonymMatcher(kb), SynonymMatcher(kb)
        for text in ["ab+-+-+", "x+-+-+", "+-+-+-+"]:
            assert fast.find_all(text) == naive.find_all(text)

    def test_non_ascii_keyword_uses_regex_fallback(self):
        kb = KnowledgeBase("t")
        kb.add(Concept("city", [ConceptInstance("Zürich")]))
        fast, naive = FastSynonymMatcher(kb), SynonymMatcher(kb)
        for text in ["in Zürich today", "in zürich today", "plain"]:
            assert fast.find_all(text) == naive.find_all(text)

    def test_resume_kb_tokens(self, kb):
        fast, naive = FastSynonymMatcher(kb), SynonymMatcher(kb)
        tokens = [
            "June 1996, University of California at Davis",
            "B.S. (Computer Science), GPA 3.8/4.0",
            "EDUCATION",
            "Experience",
            "C++, Java, Python",
            "(555) 123-4567",
            "objective: seeking a position",
        ]
        for token in tokens:
            assert fast.find_all(token) == naive.find_all(token)

    def test_cached_replay_is_equal_and_fresh(self, fast):
        text = "University of X, B.S., June 1996"
        first = fast.find_all(text)
        second = fast.find_all(text)
        assert first == second
        assert first is not second  # callers may consume the list

    def test_picklable_for_worker_shipping(self, kb_small):
        fast = FastSynonymMatcher(kb_small)
        fast.find_all("University")
        clone = pickle.loads(pickle.dumps(fast))
        assert clone.find_all("University") == fast.find_all("University")


class TestLRUCache:
    def test_hit_miss_counters(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", (1,))
        assert cache.get("a") == (1,)
        assert cache.counters() == {"hits": 1, "misses": 1, "evictions": 0}

    def test_eviction_order_is_lru(self):
        cache = LRUCache(2)
        cache.put("a", (1,))
        cache.put("b", (2,))
        cache.get("a")  # refresh a; b is now least recent
        cache.put("c", (3,))
        assert cache.get("b") is None
        assert cache.get("a") == (1,)
        assert cache.evictions == 1

    def test_capacity_bound(self):
        cache = LRUCache(8)
        for i in range(100):
            cache.put(str(i), (i,))
        assert len(cache) == 8
        assert cache.evictions == 92

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_cache_disabled_when_size_zero(self, kb_small):
        fast = FastSynonymMatcher(kb_small, cache_size=0)
        assert fast.cache is None
        assert fast.find_all("University") == SynonymMatcher(
            build_kb()
        ).find_all("University")


class TestCachedBayes:
    def fit(self) -> MultinomialNaiveBayes:
        return MultinomialNaiveBayes().fit(
            [
                ("bachelor of science", "DEGREE"),
                ("master of science", "DEGREE"),
                ("university of somewhere", "INSTITUTION"),
                ("somewhere state college", "INSTITUTION"),
            ]
        )

    def test_predictions_identical(self):
        bayes = self.fit()
        cached = CachedBayes(bayes)
        for text in ["science degree", "university", "SCIENCE Degree", "zzz"]:
            assert cached.predict(text) == bayes.predict(text)
            assert cached.classify(text) == bayes.classify(text)

    def test_case_folded_key_shares_entry(self):
        cached = CachedBayes(self.fit())
        cached.predict("University")
        cached.predict("UNIVERSITY")
        assert cached.cache is not None
        assert cached.cache.hits == 1

    def test_online_training_invalidates(self):
        bayes = self.fit()
        cached = CachedBayes(bayes)
        before = cached.predict("pascal fortran cobol")
        assert before == (None, 0.0)
        bayes.add_example("pascal fortran cobol", "SKILL")
        after = cached.predict("pascal fortran cobol")
        assert after == bayes.predict("pascal fortran cobol")
        assert after[0] == "SKILL"


class TestFoldedBayes:
    def test_log_posteriors_match_explicit_formula(self):
        import math

        bayes = MultinomialNaiveBayes(alpha=0.5).fit(
            [("alpha beta", "A"), ("beta gamma", "B"), ("alpha alpha", "A")]
        )
        text = "alpha gamma delta"
        from repro.concepts.textutil import normalized_words

        words = normalized_words(text)
        vocab = bayes.vocabulary_size
        expected = {}
        for label in bayes.classes:
            prior = math.log(
                bayes._class_doc_counts[label] / bayes._total_docs
            )
            denom = bayes._class_word_totals[label] + bayes.alpha * vocab
            likelihood = sum(
                math.log(
                    (bayes._word_counts[label][word] + bayes.alpha) / denom
                )
                for word in words
            )
            expected[label] = prior + likelihood
        assert bayes.log_posteriors(text) == expected

    def test_tables_rebuilt_after_training(self):
        bayes = MultinomialNaiveBayes().fit([("alpha", "A"), ("beta", "B")])
        first = bayes.log_posteriors("alpha")
        bayes.add_example("alpha alpha", "B")
        second = bayes.log_posteriors("alpha")
        assert first != second


class TestCacheCounterDelta:
    def test_growth_only(self):
        before = {"synonym": {"hits": 5, "misses": 10, "evictions": 0}}
        after = {
            "synonym": {"hits": 9, "misses": 12, "evictions": 1},
            "bayes": {"hits": 0, "misses": 0, "evictions": 0},
        }
        assert cache_counter_delta(before, after) == {
            "synonym": {"hits": 4, "misses": 2, "evictions": 1}
        }

    def test_empty_when_idle(self):
        assert cache_counter_delta({}, {}) == {}

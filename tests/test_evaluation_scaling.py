"""Tests for the scalability harness (Figure 5)."""

import pytest

from repro.evaluation.scaling import ScalingPoint, ScalingReport, run_scaling_experiment


class TestLinearFit:
    def make_report(self, points):
        report = ScalingReport()
        report.points = [ScalingPoint(*p) for p in points]
        return report

    def test_perfect_line(self):
        report = self.make_report(
            [(10, 100, 50, 1.0), (20, 200, 100, 2.0), (30, 300, 150, 3.0)]
        )
        slope, r2 = report.fit_against("documents")
        assert slope == pytest.approx(0.1)
        assert r2 == pytest.approx(1.0)

    def test_fit_against_other_measures(self):
        report = self.make_report(
            [(10, 100, 50, 1.0), (20, 200, 100, 2.0), (30, 300, 150, 3.0)]
        )
        for measure in ("nodes", "concept_nodes"):
            _slope, r2 = report.fit_against(measure)
            assert r2 == pytest.approx(1.0)

    def test_insufficient_points(self):
        report = self.make_report([(10, 100, 50, 1.0)])
        assert report.fit_against("documents") == (0.0, 0.0)

    def test_seconds_per_document(self):
        report = self.make_report([(10, 0, 0, 5.0)])
        assert report.seconds_per_document == 0.5

    def test_empty_report(self):
        assert ScalingReport().seconds_per_document == 0.0


class TestExperiment:
    def test_small_sweep_runs_and_is_monotone(self, kb):
        report = run_scaling_experiment(kb, [5, 10, 20], seed=1966)
        assert len(report.points) == 3
        docs = [p.documents for p in report.points]
        assert docs == [5, 10, 20]
        nodes = [p.nodes for p in report.points]
        assert nodes[0] < nodes[1] < nodes[2]
        concept_nodes = [p.concept_nodes for p in report.points]
        assert concept_nodes[0] < concept_nodes[1] < concept_nodes[2]

    def test_linearity_on_modest_sweep(self, kb):
        """The paper's claim: runtime linear in corpus size.

        Small sweeps are sensitive to machine-load jitter, so the bar
        here is loose; the Figure 5 benchmark asserts R^2 > 0.95 on a
        bigger sweep.
        """
        report = run_scaling_experiment(kb, [20, 40, 80], seed=1966)
        _slope, r2 = report.fit_against("concept_nodes")
        assert r2 > 0.75

"""Differential tests: fast tagger on vs. off must be byte-identical.

Same guarantee discipline as the serial-vs-parallel and
tracing-on-vs-off harnesses: over the golden corpus (every authorship
style plus the handwritten edge cases) and a generated corpus, the
Aho-Corasick fast path and the naive per-pattern matcher must produce

* byte-identical serialized XML, document for document, and
* an identical rendered DTD from discovery over the accumulators,

at worker counts 1 (inline chunked path), 2, and 4 (process pool with
per-worker automaton construction).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.convert.config import ConversionConfig
from repro.convert.pipeline import DocumentConverter
from repro.runtime.engine import CorpusEngine, EngineConfig
from repro.runtime.stats import TAGGER_CACHE_EVENTS

GOLDEN_DIR = Path(__file__).parent / "golden"
WORKER_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module")
def golden_html():
    cases = sorted(GOLDEN_DIR.glob("*.html"))
    assert cases, "golden corpus went missing"
    return [path.read_text() for path in cases]


@pytest.fixture(scope="module")
def naive_baseline(kb, golden_html):
    """XML + DTD via the naive matcher (fast path off), serial."""
    converter = DocumentConverter(kb, ConversionConfig(fast_tagger=False))
    engine = CorpusEngine(
        kb,
        ConversionConfig(fast_tagger=False),
        engine_config=EngineConfig(max_workers=1, chunk_size=3),
    )
    xml = [converter.convert(html).to_xml() for html in golden_html]
    corpus = engine.convert_corpus(golden_html)
    assert corpus.xml_documents == xml
    dtd = engine.discover(corpus.accumulator).dtd.render()
    return xml, dtd


def fast_engine(kb, workers: int) -> CorpusEngine:
    return CorpusEngine(
        kb,
        ConversionConfig(fast_tagger=True),
        engine_config=EngineConfig(max_workers=workers, chunk_size=3),
    )


class TestGoldenCorpusDifferential:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_xml_and_dtd_identical(self, kb, golden_html, naive_baseline, workers):
        naive_xml, naive_dtd = naive_baseline
        engine = fast_engine(kb, workers)
        corpus = engine.convert_corpus(golden_html)
        assert corpus.xml_documents == naive_xml
        assert engine.discover(corpus.accumulator).dtd.render() == naive_dtd

    def test_serial_converter_identical(self, kb, golden_html, naive_baseline):
        naive_xml, _ = naive_baseline
        fast = DocumentConverter(kb, ConversionConfig(fast_tagger=True))
        assert [fast.convert(html).to_xml() for html in golden_html] == naive_xml


class TestGeneratedCorpusDifferential:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_generated_corpus_identical(self, kb, small_corpus, workers):
        html = [doc.html for doc in small_corpus]
        naive = CorpusEngine(
            kb,
            ConversionConfig(fast_tagger=False),
            engine_config=EngineConfig(max_workers=1, chunk_size=4),
        )
        naive_corpus = naive.convert_corpus(html)
        fast = fast_engine(kb, workers)
        fast_corpus = fast.convert_corpus(html)
        assert fast_corpus.xml_documents == naive_corpus.xml_documents
        assert (
            fast.discover(fast_corpus.accumulator).dtd.render()
            == naive.discover(naive_corpus.accumulator).dtd.render()
        )


class TestCacheObservability:
    def test_cache_counters_flow_into_registry(self, kb, small_corpus):
        html = [doc.html for doc in small_corpus]
        engine = fast_engine(kb, 1)
        result = engine.convert_corpus(html)
        events = result.stats.tagger_cache_events
        assert "synonym" in events
        lookups = events["synonym"]["hits"] + events["synonym"]["misses"]
        assert lookups > 0
        # Repeated headings make hits near-certain on a 10-doc corpus.
        assert events["synonym"]["hits"] > 0
        assert 0.0 < result.stats.tagger_cache_hit_rate <= 1.0
        assert any(
            metric.name == TAGGER_CACHE_EVENTS for metric in result.stats.registry
        )
        assert any(row[0] == "tagger cache" for row in result.stats.summary_rows())

    def test_cache_counters_cross_process(self, kb, small_corpus):
        html = [doc.html for doc in small_corpus]
        result = fast_engine(kb, 2).convert_corpus(html)
        events = result.stats.tagger_cache_events
        assert events.get("synonym", {}).get("misses", 0) > 0

    def test_no_counters_when_fast_tagger_off(self, kb, small_corpus):
        html = [doc.html for doc in small_corpus]
        engine = CorpusEngine(
            kb,
            ConversionConfig(fast_tagger=False),
            engine_config=EngineConfig(max_workers=1, chunk_size=4),
        )
        result = engine.convert_corpus(html)
        assert result.stats.tagger_cache_events == {}
        assert not any(
            row[0] == "tagger cache" for row in result.stats.summary_rows()
        )

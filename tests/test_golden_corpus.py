"""Golden regression corpus.

``tests/golden/`` holds HTML inputs covering every authorship style plus
handwritten edge cases, each paired with the XML the converter is
expected to emit.  Any behavioral change to a conversion rule fails
these tests with a readable unified diff, making unintended rule drift
visible at review time.

To re-bless the corpus after an *intentional* rule change::

    PYTHONPATH=src python tests/test_golden_corpus.py --bless
"""

from __future__ import annotations

import difflib
import sys
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"
CASES = sorted(path.stem for path in GOLDEN_DIR.glob("*.html"))


def expected_path(case: str) -> Path:
    return GOLDEN_DIR / f"{case}.expected.xml"


def test_corpus_is_nonempty():
    assert len(CASES) >= 5, "golden corpus went missing"


@pytest.mark.parametrize("case", CASES)
def test_conversion_matches_golden_output(converter, case):
    html = (GOLDEN_DIR / f"{case}.html").read_text()
    expected = expected_path(case).read_text()
    actual = converter.convert(html).to_xml()
    if actual != expected:
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                actual.splitlines(),
                fromfile=f"golden/{case}.expected.xml",
                tofile="converted (current behavior)",
                lineterm="",
            )
        )
        pytest.fail(
            f"conversion of golden/{case}.html changed behavior:\n{diff}\n\n"
            "If the rule change is intentional, re-bless with:\n"
            "  PYTHONPATH=src python tests/test_golden_corpus.py --bless"
        )


@pytest.mark.parametrize("case", CASES)
def test_conversion_is_deterministic(converter, case):
    """The same input converts to the same bytes twice in a row."""
    html = (GOLDEN_DIR / f"{case}.html").read_text()
    assert converter.convert(html).to_xml() == converter.convert(html).to_xml()


def _bless() -> None:  # pragma: no cover - maintenance entry point
    from repro.concepts.resume_kb import build_resume_knowledge_base
    from repro.convert.pipeline import DocumentConverter

    converter = DocumentConverter(build_resume_knowledge_base())
    for case in CASES:
        html = (GOLDEN_DIR / f"{case}.html").read_text()
        expected_path(case).write_text(converter.convert(html).to_xml())
        print(f"blessed {case}")


if __name__ == "__main__":  # pragma: no cover
    if "--bless" in sys.argv:
        _bless()
    else:
        print(__doc__)

"""Full-pipeline integration tests: crawl -> convert -> discover ->
derive DTD -> conform -> repository."""

import pytest

from repro.corpus.crawler import TopicCrawler
from repro.corpus.generator import ResumeCorpusGenerator
from repro.corpus.noise import NoiseConfig
from repro.corpus.web import SimulatedWeb
from repro.dom.treeops import iter_elements
from repro.mapping.repository import XMLRepository
from repro.mapping.validate import validate_document
from repro.schema.dataguide import build_dataguide
from repro.schema.dtd import derive_dtd
from repro.schema.frequent import mine_frequent_paths
from repro.schema.lowerbound import build_lower_bound_schema
from repro.schema.majority import MajoritySchema
from repro.schema.paths import extract_paths


@pytest.fixture(scope="module")
def pipeline(kb, converter):
    docs = ResumeCorpusGenerator(seed=1966).generate(40)
    results = [converter.convert(d.html) for d in docs]
    documents = [extract_paths(r.root) for r in results]
    frequent = mine_frequent_paths(
        documents,
        sup_threshold=0.4,
        constraints=kb.constraints,
        candidate_labels=kb.concept_tags(),
    )
    schema = MajoritySchema.from_frequent_paths(frequent)
    dtd = derive_dtd(schema, documents)
    return docs, results, documents, schema, dtd


class TestSchemaDiscoveryOnCorpus:
    def test_schema_root_is_resume(self, pipeline):
        _docs, _results, _documents, schema, _dtd = pipeline
        assert schema.root.label == "RESUME"

    def test_core_sections_in_schema(self, pipeline):
        *_, schema, _dtd = pipeline
        children = set(schema.root.children)
        assert {"CONTACT", "EDUCATION", "EXPERIENCE", "SKILLS"} <= children

    def test_education_detail_in_schema(self, pipeline):
        *_, schema, _dtd = pipeline
        education = schema.root.children["EDUCATION"]
        assert education.children  # DATE/INSTITUTION/DEGREE entries

    def test_majority_between_bounds(self, pipeline):
        _docs, _results, documents, schema, _dtd = pipeline
        lower = build_lower_bound_schema(documents).paths()
        upper = build_dataguide(documents).paths()
        assert lower <= schema.paths() <= upper
        assert len(schema.paths()) < len(upper)

    def test_dtd_is_resume_shaped(self, pipeline):
        *_, dtd = pipeline
        text = dtd.render()
        assert text.splitlines()[0].startswith("<!ELEMENT resume")
        assert "education" in dtd.elements
        assert "experience" in dtd.elements

    def test_dtd_has_repetitive_entries(self, pipeline):
        *_, dtd = pipeline
        rendered = dtd.render()
        assert "+" in rendered  # some element repeats (entries, skills...)


class TestRepositoryIntegration:
    def test_most_documents_integrate(self, pipeline):
        _docs, results, _documents, _schema, dtd = pipeline
        repository = XMLRepository(dtd)
        for result in results:
            repository.insert(result.root)
        assert len(repository) == len(results)
        # After integration every stored document conforms.
        for document in repository.documents:
            assert validate_document(document, dtd) == []

    def test_repository_queries_work(self, pipeline):
        _docs, results, _documents, _schema, dtd = pipeline
        repository = XMLRepository(dtd)
        for result in results[:10]:
            repository.insert(result.root)
        institutions = repository.values("RESUME/EDUCATION//INSTITUTION")
        assert institutions  # real values extracted end to end


class TestCrawlToRepository:
    def test_whole_system(self, kb, converter):
        """Crawl the simulated web, convert the finds, build a DTD, and
        integrate everything into a repository."""
        web = SimulatedWeb(resume_count=12, noise_count=30, seed=5)
        report = TopicCrawler.from_knowledge_base(web, kb).crawl()
        assert report.collected

        results = [converter.convert(r.html) for r in report.collected]
        documents = [extract_paths(r.root) for r in results]
        frequent = mine_frequent_paths(
            documents,
            sup_threshold=0.4,
            constraints=kb.constraints,
            candidate_labels=kb.concept_tags(),
        )
        schema = MajoritySchema.from_frequent_paths(frequent)
        dtd = derive_dtd(schema, documents)
        repository = XMLRepository(dtd)
        for result in results:
            repository.insert(result.root)
        assert len(repository) == len(results)
        assert repository.stats.repair_rate <= 1.0


class TestNoisyCorpus:
    def test_noisy_documents_still_convert(self, kb, converter):
        generator = ResumeCorpusGenerator(seed=3, noise=NoiseConfig(rate=0.8))
        for doc in generator.generate(8):
            result = converter.convert(doc.html)
            assert result.root.tag == "RESUME"
            tags = {el.tag for el in iter_elements(result.root)}
            assert tags <= kb.concept_tags()

"""Tests for the knowledge base container."""

import pytest

from repro.concepts.concept import Concept, ConceptRole
from repro.concepts.constraints import ConstraintSet
from repro.concepts.knowledge import KnowledgeBase


def make_kb():
    kb = KnowledgeBase("topic")
    kb.add(Concept("education", role=ConceptRole.TITLE))
    kb.add(Concept("date"))
    return kb


class TestRegistry:
    def test_add_and_get(self):
        kb = make_kb()
        assert kb.get("education").name == "education"

    def test_case_insensitive_lookup(self):
        kb = make_kb()
        assert kb.get("EDUCATION").name == "education"
        assert "Education" in kb

    def test_duplicate_rejected(self):
        kb = make_kb()
        with pytest.raises(ValueError):
            kb.add(Concept("Education"))

    def test_len_and_iter(self):
        kb = make_kb()
        assert len(kb) == 2
        assert [c.name for c in kb] == ["education", "date"]

    def test_concept_tags(self):
        kb = make_kb()
        assert kb.concept_tags() == {"EDUCATION", "DATE"}

    def test_by_role(self):
        kb = make_kb()
        assert [c.name for c in kb.by_role(ConceptRole.TITLE)] == ["education"]
        assert [c.name for c in kb.by_role(ConceptRole.CONTENT)] == ["date"]

    def test_concept_for_tag(self):
        kb = make_kb()
        assert kb.concept_for_tag("DATE").name == "date"
        assert kb.concept_for_tag("NOPE") is None

    def test_total_instances(self):
        kb = make_kb()
        # each concept has at least its own name instance
        assert kb.total_instances() == 2


class TestSerialization:
    def test_round_trip_preserves_everything(self):
        kb = make_kb()
        kb.get("date").add_pattern(r"\d{4}")
        kb.constraints.add_depth("EDUCATION", "=", 1)
        kb.constraints.add_parent("EDUCATION", "DATE", negated=True)
        kb.constraints.add_sibling("DATE", "DATE")
        kb.constraints.no_repeat_on_path = True
        kb.constraints.max_depth = 4

        restored = KnowledgeBase.from_json(kb.to_json())

        assert restored.topic == "topic"
        assert len(restored) == 2
        assert restored.get("date").instance_count() == kb.get("date").instance_count()
        assert restored.get("education").role is ConceptRole.TITLE
        assert restored.constraints.no_repeat_on_path is True
        assert restored.constraints.max_depth == 4
        assert len(restored.constraints.parents) == 1
        assert restored.constraints.parents[0].negated is True
        assert len(restored.constraints.depths) == 1
        assert len(restored.constraints.siblings) == 1

    def test_regex_flag_round_trips(self):
        kb = make_kb()
        kb.get("date").add_pattern(r"\d{4}")
        restored = KnowledgeBase.from_json(kb.to_json())
        patterns = [i for i in restored.get("date").instances if i.is_regex]
        assert len(patterns) == 1

    def test_from_dict_defaults(self):
        kb = KnowledgeBase.from_dict({"topic": "t", "concepts": []})
        assert kb.topic == "t"
        assert len(kb) == 0
        assert kb.constraints.is_empty()


class TestResumeKB:
    def test_paper_counts(self, kb):
        """Section 4: 24 concepts, 233 instances."""
        assert len(kb) == 24
        assert kb.total_instances() == 233

    def test_title_content_split(self, kb):
        """Section 4.2: 11 title names, 13 content names."""
        assert len(kb.by_role(ConceptRole.TITLE)) == 11
        assert len(kb.by_role(ConceptRole.CONTENT)) == 13

    def test_constraints_shape(self, kb):
        assert kb.constraints.no_repeat_on_path
        assert kb.constraints.max_depth == 4
        assert len(kb.constraints.depths) == 24

    def test_title_concepts_pinned_to_depth_one(self, kb):
        assert kb.constraints.allows_depth("EDUCATION", 1)
        assert not kb.constraints.allows_depth("EDUCATION", 2)
        assert not kb.constraints.allows_depth("DATE", 1)
        assert kb.constraints.allows_depth("DATE", 2)

    def test_serialization_round_trip(self, kb):
        restored = KnowledgeBase.from_json(kb.to_json())
        assert len(restored) == 24
        assert restored.total_instances() == 233

"""Tests for the synonym matcher."""

import pytest

from repro.concepts.concept import Concept, ConceptInstance
from repro.concepts.knowledge import KnowledgeBase
from repro.concepts.matcher import SynonymMatcher


@pytest.fixture()
def matcher():
    kb = KnowledgeBase("test")
    kb.add(Concept("institution", [ConceptInstance("University"), ConceptInstance("College")]))
    kb.add(Concept("degree", [ConceptInstance("B.S."), ConceptInstance("bachelor of science")]))
    kb.add(
        Concept(
            "date",
            [ConceptInstance(r"\b(June|July)\s+\d{4}\b", is_regex=True)],
        )
    )
    return SynonymMatcher(kb)


class TestFindAll:
    def test_single_match(self, matcher):
        matches = matcher.find_all("Stanford University")
        assert len(matches) == 1
        assert matches[0].concept_tag == "INSTITUTION"
        assert matches[0].matched_text == "University"

    def test_multiple_matches_in_order(self, matcher):
        matches = matcher.find_all("University of X, B.S., June 1996")
        assert [m.concept_tag for m in matches] == ["INSTITUTION", "DEGREE", "DATE"]
        assert matches[0].start < matches[1].start < matches[2].start

    def test_no_match(self, matcher):
        assert matcher.find_all("nothing relevant") == []

    def test_overlapping_prefers_longer(self, matcher):
        # "bachelor of science" contains no "University"; craft overlap:
        kb = KnowledgeBase("t")
        kb.add(Concept("a", [ConceptInstance("new york")]))
        kb.add(Concept("b", [ConceptInstance("york")]))
        m = SynonymMatcher(kb)
        matches = m.find_all("in new york city")
        assert len(matches) == 1
        assert matches[0].concept_tag == "A"

    def test_non_overlapping_both_kept(self, matcher):
        matches = matcher.find_all("University and College")
        assert len(matches) == 2

    def test_regex_and_keyword_mix(self, matcher):
        matches = matcher.find_all("June 1996 at the University")
        assert {m.concept_tag for m in matches} == {"DATE", "INSTITUTION"}


class TestFindBestAndClassify:
    def test_best_is_longest(self, matcher):
        best = matcher.find_best("bachelor of science from University")
        assert best is not None
        assert best.concept_tag == "DEGREE"

    def test_classify_returns_tag(self, matcher):
        assert matcher.classify("College of Arts") == "INSTITUTION"

    def test_classify_none(self, matcher):
        assert matcher.classify("plain text") is None

    def test_specificity(self, matcher):
        match = matcher.find_all("B.S.")[0]
        assert match.specificity == len("B.S.")


class TestDeterminism:
    def test_stable_output(self, matcher):
        text = "University of X, B.S., June 1996, College"
        assert matcher.find_all(text) == matcher.find_all(text)

"""Tests for the consolidation rule (Section 2.3.2, Figure 1)."""

import pytest

from repro.concepts.concept import Concept
from repro.concepts.knowledge import KnowledgeBase
from repro.convert.consolidation_rule import (
    apply_consolidation_rule,
    residual_markup_tags,
)
from repro.convert.grouping_rule import GROUP_TAG
from repro.dom.node import Element


@pytest.fixture()
def kb():
    kb = KnowledgeBase("test")
    for name in ("education", "date", "institution", "degree"):
        kb.add(Concept(name))
    return kb


def concept(tag, *children):
    e = Element(tag)
    for child in children:
        e.append_child(child)
    return e


class TestPaperFigure1:
    def build_figure1(self):
        """The upper tree of Figure 1."""
        h2 = Element("h2")
        h2.append_child(concept("EDUCATION"))
        ul = h2.append_child(Element("ul"))
        g1 = ul.append_child(Element(GROUP_TAG))
        g1.append_child(concept("DATE"))
        g1.append_child(concept("INSTITUTION"))
        g1.append_child(concept("DEGREE"))
        g2 = ul.append_child(Element(GROUP_TAG))
        g2.append_child(concept("DATE"))
        g2.append_child(concept("INSTITUTION"))
        g2.append_child(concept("DEGREE"))
        body = Element("body")
        body.append_child(h2)
        return body, h2

    def test_figure1_transformation(self, kb):
        """GROUPs collapse to DATE-led entries; ul pushes them up; h2 is
        replaced by EDUCATION -- the lower tree of Figure 1."""
        body, _h2 = self.build_figure1()
        apply_consolidation_rule(body, kb)
        assert [c.tag for c in body.element_children()] == ["EDUCATION"]
        education = body.element_children()[0]
        assert [c.tag for c in education.element_children()] == ["DATE", "DATE"]
        for date in education.element_children():
            assert [c.tag for c in date.element_children()] == [
                "INSTITUTION",
                "DEGREE",
            ]


class TestEliminationCases:
    def test_childless_markup_deleted(self, kb):
        body = Element("body")
        body.append_child(Element("hr"))
        body.append_child(concept("DATE"))
        apply_consolidation_rule(body, kb)
        assert [c.tag for c in body.element_children()] == ["DATE"]

    def test_childless_markup_val_preserved(self, kb):
        body = Element("body")
        stray = body.append_child(Element("font"))
        stray.set_val("precious text")
        apply_consolidation_rule(body, kb)
        assert body.get_val() == "precious text"

    def test_list_tag_pushes_children_up(self, kb):
        body = Element("body")
        ul = body.append_child(Element("ul"))
        ul.append_child(concept("DATE"))
        ul.append_child(concept("DEGREE"))
        apply_consolidation_rule(body, kb)
        assert [c.tag for c in body.element_children()] == ["DATE", "DEGREE"]

    def test_same_name_children_push_up(self, kb):
        body = Element("body")
        div = body.append_child(Element("div"))
        div.append_child(concept("DATE"))
        div.append_child(concept("DATE"))
        apply_consolidation_rule(body, kb)
        assert [c.tag for c in body.element_children()] == ["DATE", "DATE"]

    def test_mixed_children_nest_under_first_concept(self, kb):
        body = Element("body")
        div = body.append_child(Element("div"))
        div.append_child(concept("DATE"))
        div.append_child(concept("DEGREE"))
        apply_consolidation_rule(body, kb)
        date = body.element_children()[0]
        assert date.tag == "DATE"
        assert [c.tag for c in date.element_children()] == ["DEGREE"]

    def test_markup_val_moves_to_first_concept(self, kb):
        body = Element("body")
        div = body.append_child(Element("div"))
        div.set_val("context")
        div.append_child(concept("DATE"))
        div.append_child(concept("DEGREE"))
        apply_consolidation_rule(body, kb)
        assert body.element_children()[0].get_val() == "context"

    def test_no_concept_child_pushes_up(self, kb):
        body = Element("body")
        div = body.append_child(Element("div"))
        span = div.append_child(Element("span"))
        span.append_child(concept("DATE"))
        apply_consolidation_rule(body, kb)
        assert [c.tag for c in body.element_children()] == ["DATE"]

    def test_concept_nodes_never_touched(self, kb):
        body = Element("body")
        edu = body.append_child(concept("EDUCATION", concept("DATE")))
        count = apply_consolidation_rule(body, kb)
        assert edu.parent is body
        assert count == 0

    def test_root_itself_kept(self, kb):
        body = Element("body")
        body.append_child(concept("DATE"))
        apply_consolidation_rule(body, kb)
        assert body.tag == "body"


class TestResult:
    def test_no_residual_markup_after_rule(self, kb):
        body = Element("body")
        div = body.append_child(Element("div"))
        ul = div.append_child(Element("ul"))
        li = ul.append_child(Element("li"))
        li.append_child(concept("DATE"))
        font = body.append_child(Element("font"))
        font.append_child(concept("DEGREE"))
        apply_consolidation_rule(body, kb)
        assert residual_markup_tags(body, kb) == set()

    def test_elimination_count(self, kb):
        body = Element("body")
        div = body.append_child(Element("div"))
        div.append_child(concept("DATE"))
        eliminated = apply_consolidation_rule(body, kb)
        assert eliminated == 1

"""Tests for the multinomial naive-Bayes token classifier."""

import pytest

from repro.concepts.bayes import MultinomialNaiveBayes

TRAINING = [
    ("University of California at Davis", "INSTITUTION"),
    ("Stanford University", "INSTITUTION"),
    ("Cornell University Ithaca", "INSTITUTION"),
    ("B.S. Computer Science", "DEGREE"),
    ("M.S. Electrical Engineering", "DEGREE"),
    ("Ph.D. Computer Science", "DEGREE"),
    ("June 1996", "DATE"),
    ("July 1998", "DATE"),
    ("September 2000", "DATE"),
]


@pytest.fixture()
def trained():
    return MultinomialNaiveBayes().fit(TRAINING)


class TestTraining:
    def test_classes_sorted(self, trained):
        assert trained.classes == ["DATE", "DEGREE", "INSTITUTION"]

    def test_vocabulary_grows(self, trained):
        assert trained.vocabulary_size > 10

    def test_untrained_flag(self):
        clf = MultinomialNaiveBayes()
        assert not clf.is_trained()
        clf.add_example("word", "X")
        assert clf.is_trained()

    def test_empty_example_ignored(self):
        clf = MultinomialNaiveBayes()
        clf.add_example("   ", "X")
        assert not clf.is_trained()

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            MultinomialNaiveBayes(alpha=0)


class TestPrediction:
    def test_classifies_seen_patterns(self, trained):
        assert trained.classify("Princeton University") == "INSTITUTION"
        assert trained.classify("B.S. Mathematics") == "DEGREE"
        assert trained.classify("June 2001") == "DATE"

    def test_abstains_on_unknown_vocabulary(self, trained):
        assert trained.classify("xylophone zebra") is None

    def test_abstains_on_empty(self, trained):
        assert trained.classify("") is None

    def test_predict_returns_margin(self, trained):
        label, margin = trained.predict("Stanford University")
        assert label == "INSTITUTION"
        assert margin > 0

    def test_margin_threshold_forces_abstention(self):
        clf = MultinomialNaiveBayes(margin_threshold=1e9).fit(TRAINING)
        assert clf.classify("Stanford University") is None

    def test_log_posteriors_requires_training(self):
        with pytest.raises(RuntimeError):
            MultinomialNaiveBayes().log_posteriors("x")

    def test_normalization_bridges_periods(self, trained):
        # "B.S" and "B.S." normalize identically.
        assert trained.classify("B.S in Math") == "DEGREE"


class TestDiagnostics:
    def test_evaluate_accuracy(self, trained):
        assert trained.evaluate(TRAINING) == 1.0

    def test_evaluate_empty(self, trained):
        assert trained.evaluate([]) == 0.0

    def test_unknown_ratio(self, trained):
        texts = ["Stanford University", "qqqq zzzz"]
        assert trained.unknown_ratio(texts) == 0.5

    def test_incremental_training_changes_prediction(self):
        clf = MultinomialNaiveBayes().fit(TRAINING)
        assert clf.classify("nehanet corporation") is None
        for _ in range(3):
            clf.add_example("NehaNet Corporation", "COMPANY")
        assert clf.classify("nehanet corporation") == "COMPANY"

"""Tests for XML/HTML serialization."""

from repro.dom.node import Element, Text
from repro.dom.serialize import (
    escape_attr,
    escape_text,
    to_html,
    to_xml,
    to_xml_document,
)


class TestEscaping:
    def test_escape_text_basics(self):
        assert escape_text("a < b & c > d") == "a &lt; b &amp; c &gt; d"

    def test_escape_text_leaves_quotes(self):
        assert escape_text('say "hi"') == 'say "hi"'

    def test_escape_attr_quotes(self):
        assert escape_attr('say "hi"') == "say &quot;hi&quot;"


class TestXml:
    def test_leaf_element_self_closes(self):
        e = Element("DATE", {"val": "June 1996"})
        assert to_xml(e) == '<DATE val="June 1996"/>'

    def test_nested_pretty_print(self):
        root = Element("a")
        root.append_child(Element("b"))
        assert to_xml(root) == "<a>\n  <b/>\n</a>"

    def test_text_node_rendered_escaped(self):
        root = Element("a")
        root.append_child(Text("x < y"))
        assert "x &lt; y" in to_xml(root)

    def test_attr_value_escaped(self):
        e = Element("a", {"val": 'He said "<ok>"'})
        assert 'val="He said &quot;&lt;ok&gt;&quot;"' in to_xml(e)

    def test_document_has_declaration(self):
        out = to_xml_document(Element("root"))
        assert out.startswith('<?xml version="1.0"')

    def test_custom_indent(self):
        root = Element("a", children=[Element("b")])
        assert to_xml(root, indent=4) == "<a>\n    <b/>\n</a>"


class TestHtml:
    def test_void_tag_not_closed(self):
        assert to_html(Element("br")) == "<br>"

    def test_normal_tag_closed(self):
        e = Element("p", children=[Text("hi")])
        assert to_html(e) == "<p>hi</p>"

    def test_tag_lowercased(self):
        assert to_html(Element("DIV")) == "<div></div>"

    def test_attrs_rendered(self):
        e = Element("a", {"href": "x.html"})
        assert to_html(e) == '<a href="x.html"></a>'

    def test_nested_compact(self):
        root = Element("ul", children=[Element("li", children=[Text("one")])])
        assert to_html(root) == "<ul><li>one</li></ul>"


class TestRoundTrip:
    def test_parse_own_xml_output(self):
        """The HTML parser accepts the XML the serializer emits."""
        from repro.htmlparse.parser import parse_fragment

        root = Element("RESUME", {"val": "r"})
        edu = root.append_child(Element("EDUCATION"))
        edu.append_child(Element("DATE", {"val": "June 1996"}))
        xml = to_xml(root)
        reparsed = parse_fragment(xml).element_children()[0]
        assert reparsed.tag == "resume"  # parser lower-cases tags
        assert reparsed.attrs["val"] == "r"
        assert reparsed.element_children()[0].element_children()[0].attrs["val"] == "June 1996"

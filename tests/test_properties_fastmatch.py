"""Property test: automaton matcher == naive matcher (hypothesis).

Random knowledge bases (overlapping literal keywords, punctuation-edged
keywords, regex instances, the occasional non-ASCII keyword) against
random texts: :class:`FastSynonymMatcher.find_all` must return exactly
the naive :class:`SynonymMatcher.find_all` list -- same concepts, same
spans, same greedy non-overlap resolution.  Each text is matched twice
so LRU replay is covered, and a tiny cache size forces evictions.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concepts.concept import Concept, ConceptInstance
from repro.concepts.fastmatch import FastSynonymMatcher
from repro.concepts.knowledge import KnowledgeBase
from repro.concepts.matcher import SynonymMatcher

# Deliberately tiny alphabets so keywords overlap each other and the
# texts constantly; includes alnum, punctuation (boundary semantics),
# whitespace, and a non-ASCII letter (fallback path).
KEYWORD_ALPHABET = "abc+ ."
TEXT_ALPHABET = "abcxy09+-. é"

# A fixed pool of valid regex instances: digit runs, alternations,
# optional parts, and one pattern anchored on word characters.
REGEX_POOL = [
    r"\d+",
    r"a+b",
    r"(x|y)z",
    r"ab?c",
    r"[abc]{2}",
    r"b\.s\.",
]

keywords = st.lists(
    st.text(alphabet=KEYWORD_ALPHABET, min_size=1, max_size=5).filter(
        lambda s: s.strip()
    ),
    min_size=0,
    max_size=6,
)
regexes = st.lists(st.sampled_from(REGEX_POOL), min_size=0, max_size=3)
unicode_keywords = st.lists(
    st.sampled_from(["zürich", "café", "naïve"]), min_size=0, max_size=1
)
texts = st.lists(
    st.text(alphabet=TEXT_ALPHABET, min_size=0, max_size=40),
    min_size=1,
    max_size=5,
)


def build_kb(
    keyword_groups: list[list[str]], regex_patterns: list[str]
) -> KnowledgeBase:
    kb = KnowledgeBase("prop")
    for index, group in enumerate(keyword_groups):
        instances = [ConceptInstance(word) for word in group]
        kb.add(Concept(f"c{index}", instances))
    if regex_patterns:
        kb.add(
            Concept(
                "rx",
                [ConceptInstance(p, is_regex=True) for p in regex_patterns],
            )
        )
    return kb


@settings(max_examples=150, deadline=None)
@given(
    groups=st.lists(keywords, min_size=1, max_size=3),
    regex_patterns=regexes,
    extra=unicode_keywords,
    sample_texts=texts,
)
def test_fast_matcher_equals_naive(groups, regex_patterns, extra, sample_texts):
    if extra:
        groups = groups + [extra]
    kb = build_kb(groups, regex_patterns)
    naive = SynonymMatcher(kb)
    fast = FastSynonymMatcher(kb, cache_size=2)  # force evictions
    for text in sample_texts:
        expected = naive.find_all(text)
        assert fast.find_all(text) == expected
        # Replay from (or around) the cache is identical.
        assert fast.find_all(text) == expected


@settings(max_examples=60, deadline=None)
@given(sample_texts=texts)
def test_fast_matcher_equals_naive_on_resume_kb(kb, sample_texts):
    """The full 24-concept/233-instance resume KB, random texts."""
    naive = SynonymMatcher(kb)
    fast = FastSynonymMatcher(kb)
    for text in sample_texts:
        assert fast.find_all(text) == naive.find_all(text)

"""Tests for the ordered-tree node model."""

import pytest

from repro.dom.node import Element, Text


def make_tree():
    root = Element("root")
    a = root.append_child(Element("a"))
    b = root.append_child(Element("b"))
    c = root.append_child(Element("c"))
    return root, a, b, c


class TestTreeStructure:
    def test_append_child_sets_parent(self):
        root, a, *_ = make_tree()
        assert a.parent is root

    def test_children_in_insertion_order(self):
        root, a, b, c = make_tree()
        assert root.children == [a, b, c]

    def test_insert_child_at_index(self):
        root, a, b, c = make_tree()
        x = Element("x")
        root.insert_child(1, x)
        assert root.children == [a, x, b, c]

    def test_append_detaches_from_previous_parent(self):
        root, a, b, c = make_tree()
        other = Element("other")
        other.append_child(a)
        assert a.parent is other
        assert a not in root.children
        assert root.children == [b, c]

    def test_remove_child(self):
        root, a, b, c = make_tree()
        root.remove_child(b)
        assert b.parent is None
        assert root.children == [a, c]

    def test_remove_non_child_raises(self):
        root, *_ = make_tree()
        with pytest.raises(ValueError):
            root.remove_child(Element("stranger"))

    def test_detach_is_idempotent(self):
        root, a, *_ = make_tree()
        a.detach()
        a.detach()
        assert a.parent is None

    def test_root_and_depth(self):
        root, a, *_ = make_tree()
        leaf = a.append_child(Element("leaf"))
        assert leaf.root() is root
        assert leaf.depth() == 2
        assert root.depth() == 0

    def test_index_in_parent(self):
        root, a, b, c = make_tree()
        assert a.index_in_parent() == 0
        assert c.index_in_parent() == 2

    def test_index_in_parent_detached_raises(self):
        with pytest.raises(ValueError):
            Element("lonely").index_in_parent()

    def test_siblings(self):
        root, a, b, c = make_tree()
        assert a.next_sibling() is b
        assert b.previous_sibling() is a
        assert c.next_sibling() is None
        assert a.previous_sibling() is None

    def test_ancestors(self):
        root, a, *_ = make_tree()
        leaf = a.append_child(Element("leaf"))
        assert list(leaf.ancestors()) == [a, root]


class TestReplaceWith:
    def test_replace_with_single(self):
        root, a, b, c = make_tree()
        x = Element("x")
        b.replace_with(x)
        assert root.children == [a, x, c]
        assert b.parent is None

    def test_replace_with_multiple_preserves_order(self):
        root, a, b, c = make_tree()
        x, y = Element("x"), Element("y")
        b.replace_with(x, y)
        assert [n.tag for n in root.children] == ["a", "x", "y", "c"]

    def test_replace_with_nothing_deletes(self):
        root, a, b, c = make_tree()
        b.replace_with()
        assert root.children == [a, c]

    def test_replace_detached_raises(self):
        with pytest.raises(ValueError):
            Element("x").replace_with(Element("y"))


class TestValAttribute:
    def test_get_val_default_empty(self):
        assert Element("e").get_val() == ""

    def test_set_and_get(self):
        e = Element("e")
        e.set_val("hello")
        assert e.get_val() == "hello"
        assert e.attrs["val"] == "hello"

    def test_set_empty_removes_attribute(self):
        e = Element("e")
        e.set_val("x")
        e.set_val("")
        assert "val" not in e.attrs

    def test_append_val_concatenates_with_space(self):
        e = Element("e")
        e.append_val("one")
        e.append_val("two")
        assert e.get_val() == "one two"

    def test_append_val_ignores_whitespace(self):
        e = Element("e")
        e.append_val("   ")
        assert e.get_val() == ""


class TestTextAndContent:
    def test_text_node_holds_text(self):
        t = Text("hello")
        assert t.text == "hello"

    def test_inner_text_joins_descendants(self):
        root = Element("root")
        a = root.append_child(Element("a"))
        a.append_child(Text("one"))
        root.append_child(Text("two"))
        assert root.inner_text() == "one two"

    def test_inner_text_skips_blank_nodes(self):
        root = Element("root")
        root.append_child(Text("  \n "))
        root.append_child(Text("word"))
        assert root.inner_text() == "word"

    def test_element_and_text_children(self):
        root = Element("root")
        e = root.append_child(Element("e"))
        t = root.append_child(Text("t"))
        assert root.element_children() == [e]
        assert root.text_children() == [t]

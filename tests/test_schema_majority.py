"""Tests for the majority schema tree."""

import pytest

from repro.dom.node import Element
from repro.schema.frequent import mine_frequent_paths
from repro.schema.majority import MajoritySchema, SchemaNode
from repro.schema.paths import extract_paths


def docs_from(*specs):
    def tree(spec):
        tag, kids = spec
        e = Element(tag)
        for k in kids:
            e.append_child(tree(k))
        return e

    return [extract_paths(tree(s)) for s in specs]


@pytest.fixture()
def schema():
    docs = docs_from(
        ("r", [("a", [("x", [])]), ("b", [])]),
        ("r", [("a", [("x", [])]), ("b", [])]),
        ("r", [("a", [])]),
    )
    frequent = mine_frequent_paths(docs, sup_threshold=0.6)
    return MajoritySchema.from_frequent_paths(frequent)


class TestConstruction:
    def test_tree_mirrors_paths(self, schema):
        assert schema.root.label == "r"
        assert set(schema.root.children) == {"a", "b"}
        assert set(schema.root.children["a"].children) == {"x"}

    def test_supports_attached(self, schema):
        assert schema.root.support == 1.0
        assert schema.root.children["b"].support == pytest.approx(2 / 3)

    def test_empty_frequent_set_rejected(self):
        docs = docs_from(("r", []))
        frequent = mine_frequent_paths(docs, sup_threshold=0.5)
        frequent.paths.clear()
        with pytest.raises(ValueError):
            MajoritySchema.from_frequent_paths(frequent)

    def test_child_insertion_order_is_sorted(self):
        # frequent.paths is a set; construction must not leak its hash
        # order into the children dicts (BFS over them decides DTD
        # declaration order, which has to be stable across processes).
        docs = docs_from(
            ("r", [("c", []), ("a", []), ("b", [])]),
            ("r", [("c", []), ("a", []), ("b", [])]),
        )
        frequent = mine_frequent_paths(docs, sup_threshold=0.6)
        schema = MajoritySchema.from_frequent_paths(frequent)
        assert list(schema.root.children) == sorted(schema.root.children)

    def test_multiple_roots_rejected(self):
        docs = docs_from(("r", []), ("q", []))
        frequent = mine_frequent_paths(docs, sup_threshold=0.3)
        with pytest.raises(ValueError):
            MajoritySchema.from_frequent_paths(frequent)


class TestAccessors:
    def test_contains_path(self, schema):
        assert schema.contains_path(("r", "a", "x"))
        assert not schema.contains_path(("r", "z"))

    def test_element_count(self, schema):
        assert schema.element_count() == 4

    def test_paths_copy(self, schema):
        paths = schema.paths()
        paths.add(("r", "fake"))
        assert not schema.contains_path(("r", "fake"))

    def test_describe_renders_all_nodes(self, schema):
        text = schema.describe()
        for label in ("r", "a", "b", "x"):
            assert label in text

    def test_iter_nodes_preorder(self, schema):
        labels = [n.label for n in schema.root.iter_nodes()]
        assert labels[0] == "r"
        assert set(labels) == {"r", "a", "b", "x"}


class TestSchemaNode:
    def test_ensure_child_idempotent(self):
        node = SchemaNode("r", ("r",))
        a1 = node.ensure_child("a")
        a2 = node.ensure_child("a")
        assert a1 is a2
        assert a1.path == ("r", "a")

    def test_child_lookup(self):
        node = SchemaNode("r", ("r",))
        node.ensure_child("a")
        assert node.child("a") is not None
        assert node.child("zzz") is None

    def test_size(self):
        node = SchemaNode("r", ("r",))
        node.ensure_child("a").ensure_child("b")
        assert node.size() == 3

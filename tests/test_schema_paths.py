"""Tests for label-path extraction (Section 3.2)."""

from repro.dom.node import Element
from repro.schema.paths import extract_corpus_paths, extract_paths


def tree(spec):
    tag, kids = spec
    element = Element(tag)
    for kid in kids:
        element.append_child(tree(kid))
    return element


RESUME = tree(
    (
        "resume",
        [
            ("education", [
                ("degree", [("date", []), ("institution", [])]),
                ("degree", [("date", [])]),
            ]),
            ("contact", []),
        ],
    )
)


class TestPathSet:
    def test_prefix_closed(self):
        doc = extract_paths(RESUME)
        assert ("resume",) in doc.paths
        assert ("resume", "education") in doc.paths
        assert ("resume", "education", "degree") in doc.paths
        assert ("resume", "education", "degree", "date") in doc.paths

    def test_duplicate_node_paths_collapse(self):
        """Two degree nodes contribute ONE label path (set semantics)."""
        doc = extract_paths(RESUME)
        degree_paths = [p for p in doc.paths if p[-1] == "degree"]
        assert degree_paths == [("resume", "education", "degree")]

    def test_path_count(self):
        doc = extract_paths(RESUME)
        assert len(doc.paths) == 6

    def test_contains(self):
        doc = extract_paths(RESUME)
        assert doc.contains(("resume", "contact"))
        assert not doc.contains(("resume", "skills"))

    def test_single_node_tree(self):
        doc = extract_paths(Element("root"))
        assert doc.paths == {("root",)}
        assert doc.multiplicity[("root",)] == 1


class TestMultiplicity:
    def test_sibling_multiplicity_recorded(self):
        doc = extract_paths(RESUME)
        assert doc.multiplicity[("resume", "education", "degree")] == 2

    def test_single_occurrence(self):
        doc = extract_paths(RESUME)
        assert doc.multiplicity[("resume", "contact")] == 1

    def test_max_across_realizations(self):
        # Two education sections: one with 3 dates, one with 1.
        root = tree(
            (
                "r",
                [
                    ("e", [("d", []), ("d", []), ("d", [])]),
                    ("e", [("d", [])]),
                ],
            )
        )
        doc = extract_paths(root)
        assert doc.multiplicity[("r", "e", "d")] == 3


class TestPositions:
    def test_average_positions(self):
        doc = extract_paths(RESUME)
        assert doc.avg_position[("resume", "education")] == 0.0
        assert doc.avg_position[("resume", "contact")] == 1.0

    def test_averaged_over_realizations(self):
        # date at positions 0 and 0 in the two degrees -> 0.0;
        # institution at position 1 in the first degree -> 1.0.
        doc = extract_paths(RESUME)
        assert doc.avg_position[("resume", "education", "degree", "date")] == 0.0
        assert doc.avg_position[("resume", "education", "degree", "institution")] == 1.0

    def test_root_position_zero(self):
        doc = extract_paths(RESUME)
        assert doc.avg_position[("resume",)] == 0.0


class TestCorpus:
    def test_extract_corpus_paths(self):
        docs = extract_corpus_paths([RESUME, Element("resume")])
        assert len(docs) == 2
        assert docs[1].paths == {("resume",)}

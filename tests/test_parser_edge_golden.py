"""Fuzz-regression corpus: pathological HTML with pinned parse output.

Every case in tests/golden/parser_edge/ is a construct that tripped (or
plausibly could trip) one tokenizer lane -- unterminated comments and
CDATA, stray angle brackets, exotic whitespace in attribute position,
unquoted CGI URLs, truncated entities at EOF, duplicate attributes,
raw-text close-tag casing, implied table end tags.  The expected files
pin the *serialized parse tree* (no tidy, no conversion rules), so a
behavior change in either tokenizer path -- fast or legacy -- fails here
even if the two paths drift together.

When a future fuzz run finds a diverging document, the fix lands with
the document added to this corpus.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.dom.serialize import to_xml_document
from repro.htmlparse.parser import parse_html

EDGE_DIR = Path(__file__).parent / "golden" / "parser_edge"

CASES = sorted(path.stem for path in EDGE_DIR.glob("*.html"))


def test_corpus_present():
    assert len(CASES) >= 15, "parser_edge corpus went missing"


@pytest.mark.parametrize("name", CASES)
@pytest.mark.parametrize("fast", [True, False], ids=["fast", "legacy"])
def test_pinned_parse_output(name, fast):
    html = (EDGE_DIR / f"{name}.html").read_text()
    expected = (EDGE_DIR / f"{name}.expected.xml").read_text()
    assert to_xml_document(parse_html(html, fast=fast)) == expected

"""White-box invariants between the four restructuring rule stages.

The pipeline's correctness argument rests on what each rule guarantees
to the next; these tests pin those contracts down on a real document.
"""

import pytest

from repro.convert.config import ConversionConfig
from repro.convert.consolidation_rule import apply_consolidation_rule
from repro.convert.grouping_rule import GROUP_TAG, apply_grouping_rule
from repro.convert.instance_rule import apply_instance_rule
from repro.convert.tokenize_rule import TOKEN_TAG, apply_tokenization_rule
from repro.dom.node import Element, Text
from repro.dom.treeops import iter_elements, iter_preorder
from repro.htmlparse.parser import body_of, parse_html
from repro.htmlparse.tidy import tidy

HTML = """
<html><head><title>Pat Doe Resume</title></head><body>
<h1>Resume</h1>
<h2>Education</h2>
<ul>
<li>June 1996, Stanford University, B.S. (Computer Science), GPA 3.8/4.0</li>
<li>June 1999, Cornell University, M.S.</li>
</ul>
<h2>Skills</h2>
<p>C++, Java; Unix</p>
</body></html>
"""


@pytest.fixture()
def stages(kb):
    """Run the pipeline stage by stage, capturing the tree after each."""
    config = ConversionConfig()
    document = parse_html(HTML)
    tidy(document)
    work = body_of(document)

    snapshots = {}
    apply_tokenization_rule(work, config)
    snapshots["tokenized"] = _snapshot(work)
    stats = apply_instance_rule(work, kb, config)
    snapshots["tagged"] = _snapshot(work)
    apply_grouping_rule(work, config)
    snapshots["grouped"] = _snapshot(work)
    apply_consolidation_rule(work, kb, config)
    snapshots["consolidated"] = _snapshot(work)
    return work, snapshots, stats


def _snapshot(root):
    return {
        "tags": [el.tag for el in iter_elements(root)],
        "text_nodes": sum(
            1 for n in iter_preorder(root) if isinstance(n, Text) and n.text.strip()
        ),
    }


class TestStageContracts:
    def test_after_tokenization_text_only_inside_tokens(self, stages):
        _work, snapshots, _stats = stages
        # Text still exists but only under TOKEN elements.
        assert TOKEN_TAG in snapshots["tokenized"]["tags"]
        assert snapshots["tokenized"]["text_nodes"] > 0

    def test_after_instance_rule_no_tokens_remain(self, stages):
        _work, snapshots, _stats = stages
        assert TOKEN_TAG not in snapshots["tagged"]["tags"]

    def test_after_instance_rule_no_text_nodes_remain(self, stages):
        _work, snapshots, _stats = stages
        assert snapshots["tagged"]["text_nodes"] == 0

    def test_grouping_adds_only_group_nodes(self, stages):
        _work, snapshots, _stats = stages
        from collections import Counter

        before = Counter(snapshots["tagged"]["tags"])
        after = Counter(snapshots["grouped"]["tags"])
        diff = after - before
        assert set(diff) <= {GROUP_TAG}

    def test_grouping_never_removes_nodes(self, stages):
        _work, snapshots, _stats = stages
        from collections import Counter

        before = Counter(snapshots["tagged"]["tags"])
        after = Counter(snapshots["grouped"]["tags"])
        assert not (before - after)

    def test_after_consolidation_only_concepts_below_root(self, stages, kb):
        work, snapshots, _stats = stages
        below_root = [
            el.tag for el in iter_elements(work) if el is not work
        ]
        assert below_root
        assert set(below_root) <= kb.concept_tags()

    def test_consolidation_preserves_concept_multiset(self, stages, kb):
        """Consolidation may only delete non-concept nodes -- every
        concept element survives it."""
        _work, snapshots, _stats = stages
        from collections import Counter

        concepts_before = Counter(
            t for t in snapshots["grouped"]["tags"] if t in kb.concept_tags()
        )
        concepts_after = Counter(
            t for t in snapshots["consolidated"]["tags"] if t in kb.concept_tags()
        )
        assert concepts_before == concepts_after

    def test_no_information_lost_across_stages(self, stages):
        """Every informative word of the source survives in some val."""
        work, _snapshots, _stats = stages
        vals = " ".join(el.get_val() for el in iter_elements(work))
        for phrase in ("Stanford University", "GPA 3.8/4.0", "C++", "Unix"):
            assert phrase in vals

    def test_stats_consistent_with_tree(self, stages, kb):
        work, _snapshots, stats = stages
        tagged_elements = sum(
            1 for el in iter_elements(work) if el is not work
        )
        # Every identified element was created by the instance rule.
        assert stats.elements_created >= tagged_elements - stats.identified


class TestRepositoryIndexQueries:
    def test_query_path_matches_tree_walk(self, kb, converter):
        from repro.corpus.generator import ResumeCorpusGenerator
        from repro.mapping.repository import XMLRepository
        from repro.schema.dtd import derive_dtd
        from repro.schema.frequent import mine_frequent_paths
        from repro.schema.majority import MajoritySchema
        from repro.schema.paths import extract_paths

        docs = ResumeCorpusGenerator(seed=12).generate(10)
        results = [converter.convert(d.html) for d in docs]
        documents = [extract_paths(r.root) for r in results]
        schema = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(
                documents,
                sup_threshold=0.4,
                constraints=kb.constraints,
                candidate_labels=kb.concept_tags(),
            )
        )
        dtd = derive_dtd(schema, documents, optional_threshold=0.9)
        repo = XMLRepository(dtd)
        for result in results:
            repo.insert(result.root)

        walked = repo.query("RESUME/EDUCATION")
        indexed = repo.query_path(("RESUME", "EDUCATION"))
        assert {id(e) for e in walked} == {id(e) for e in indexed}

    def test_index_invalidated_on_insert(self, kb):
        from repro.dom.node import Element
        from repro.mapping.repository import XMLRepository
        from repro.schema.dtd import DTD

        dtd = DTD.parse("<!ELEMENT resume (#PCDATA)>")
        repo = XMLRepository(dtd)
        repo.insert(Element("RESUME"))
        assert repo.path_index().document_count == 1
        repo.insert(Element("RESUME"))
        assert repo.path_index().document_count == 2

"""Property-based tests (hypothesis) on core data structures and rules."""

from __future__ import annotations

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concepts.textutil import normalized_words, squeeze_whitespace, words
from repro.convert.tokenize_rule import split_topic_sentence
from repro.dom.node import Element, Text
from repro.dom.serialize import to_html, to_xml
from repro.dom.treeops import clone, deep_equal, iter_postorder, iter_preorder, tree_size
from repro.htmlparse.entities import decode_entities
from repro.htmlparse.parser import parse_html
from repro.htmlparse.tidy import tidy
from repro.mapping.tree_edit import tree_edit_distance
from repro.schema.paths import extract_paths

# ---------------------------------------------------------------------------
# strategies

tag_names = st.sampled_from(["a", "b", "c", "d", "e"])


@st.composite
def element_trees(draw, max_depth=4, max_children=4):
    """Random small element trees."""
    def build(depth):
        element = Element(draw(tag_names))
        if depth < max_depth:
            for _ in range(draw(st.integers(0, max_children))):
                element.append_child(build(depth + 1))
        return element

    return build(0)


plain_text = st.text(
    alphabet=string.ascii_letters + string.digits + " .,;:-/()",
    min_size=0,
    max_size=80,
)


# ---------------------------------------------------------------------------
# tree invariants


class TestTreeProperties:
    @given(element_trees())
    def test_clone_preserves_structure(self, tree):
        assert deep_equal(clone(tree), tree)

    @given(element_trees())
    def test_preorder_and_postorder_visit_same_nodes(self, tree):
        pre = list(iter_preorder(tree))
        post = list(iter_postorder(tree))
        assert len(pre) == len(post) == tree_size(tree)
        assert {id(n) for n in pre} == {id(n) for n in post}

    @given(element_trees())
    def test_parent_pointers_consistent(self, tree):
        for node in iter_preorder(tree):
            if isinstance(node, Element):
                for child in node.children:
                    assert child.parent is node

    @given(element_trees())
    def test_detach_reattach_roundtrip(self, tree):
        children = list(tree.children)
        for child in children:
            child.detach()
        assert tree.children == []
        for child in children:
            tree.append_child(child)
        assert tree.children == children


class TestSerializationProperties:
    @given(element_trees())
    def test_xml_round_trips_through_parser(self, tree):
        from repro.htmlparse.parser import parse_fragment

        xml = to_xml(tree)
        reparsed = parse_fragment(xml)
        roots = reparsed.element_children()
        assert len(roots) == 1
        assert _shape(roots[0]) == _shape(tree)

    @given(plain_text)
    def test_text_escaping_round_trips(self, text):
        e = Element("t")
        e.append_child(Text(text))
        html = to_html(e)
        reparsed = parse_html(html)
        # inner_text preserves internal whitespace runs within one text
        # node; compare modulo whitespace squeezing on both sides.
        assert squeeze_whitespace(reparsed.inner_text()) == squeeze_whitespace(text)


def _shape(element):
    return (element.tag.lower(), tuple(_shape(c) for c in element.element_children()))


# ---------------------------------------------------------------------------
# parser robustness


class TestParserProperties:
    @given(st.text(max_size=300))
    @settings(max_examples=200)
    def test_parser_never_crashes(self, source):
        document = parse_html(source)
        assert document.tag == "html"

    @given(st.text(max_size=200))
    def test_tidy_never_crashes(self, source):
        tidy(parse_html(source))

    @given(st.text(max_size=200))
    def test_entity_decoding_total(self, text):
        decode_entities(text)


# ---------------------------------------------------------------------------
# text utilities


class TestTextProperties:
    @given(plain_text)
    def test_words_are_substrings(self, text):
        for word in words(text):
            assert word in text

    @given(plain_text)
    def test_normalized_words_lowercase(self, text):
        for word in normalized_words(text):
            assert word == word.lower()

    @given(plain_text)
    def test_tokenization_loses_no_letters(self, text):
        """Splitting at delimiters must preserve all word characters."""
        tokens = split_topic_sentence(text, (";", ",", ":"))
        original = [c for c in text if c.isalnum()]
        kept = [c for token in tokens for c in token if c.isalnum()]
        assert original == kept

    @given(plain_text)
    def test_tokens_are_nonempty_and_stripped(self, text):
        for token in split_topic_sentence(text, (";", ",", ":")):
            assert token == token.strip()
            assert token


# ---------------------------------------------------------------------------
# tree edit distance metric axioms


class TestEditDistanceProperties:
    @given(element_trees(max_depth=3, max_children=3))
    def test_identity(self, tree):
        assert tree_edit_distance(tree, tree) == 0

    @given(element_trees(max_depth=3, max_children=3), element_trees(max_depth=3, max_children=3))
    @settings(max_examples=30)
    def test_symmetry(self, a, b):
        assert tree_edit_distance(a, b) == tree_edit_distance(b, a)

    @given(element_trees(max_depth=2, max_children=3), element_trees(max_depth=2, max_children=3))
    @settings(max_examples=30)
    def test_bounded_by_total_size(self, a, b):
        d = tree_edit_distance(a, b)
        assert 0 <= d <= tree_size(a) + tree_size(b)

    @given(element_trees(max_depth=3, max_children=3))
    @settings(max_examples=30)
    def test_single_relabel_costs_one(self, tree):
        other = clone(tree)
        assert isinstance(other, Element)
        other.tag = "zz"
        expected = 0 if tree.tag == "zz" else 1
        assert tree_edit_distance(tree, other) == expected


# ---------------------------------------------------------------------------
# path extraction invariants


class TestPathProperties:
    @given(element_trees())
    def test_paths_prefix_closed(self, tree):
        doc = extract_paths(tree)
        for path in doc.paths:
            for cut in range(1, len(path)):
                assert path[:cut] in doc.paths

    @given(element_trees())
    def test_path_count_bounded_by_nodes(self, tree):
        doc = extract_paths(tree)
        assert len(doc.paths) <= tree_size(tree)

    @given(element_trees())
    def test_multiplicity_at_least_one(self, tree):
        doc = extract_paths(tree)
        for path in doc.paths:
            assert doc.multiplicity[path] >= 1

"""Differential tests: fast tidy on vs. off must be byte-identical.

Same guarantee discipline as the fast-parser and fast-tagger harnesses:
over the golden corpus and a generated corpus, the single-snapshot
cleanser and the six-traversal legacy cleanser must produce

* byte-identical serialized XML, document for document, and
* an identical rendered DTD from discovery over the accumulators,

at worker counts 1 (inline chunked path), 2, and 4 (process pool).
This file also proves the engine's new transport modes change nothing
but the transport: worker-side XML sinks write exactly the bytes the
collected payloads would have carried, ``collect_xml=False`` leaves the
accumulator and DTD untouched, and adaptive chunk sizing converts the
same corpus to the same bytes as any static chunk size.

The tree-level equivalence lives in test_tidy_properties.py and the
pinned corpus in tests/golden/tidy_edge/.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.convert.config import ConversionConfig
from repro.convert.pipeline import DocumentConverter
from repro.runtime.engine import CorpusEngine, EngineConfig

GOLDEN_DIR = Path(__file__).parent / "golden"
WORKER_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module")
def golden_html():
    cases = sorted(GOLDEN_DIR.glob("*.html"))
    assert cases, "golden corpus went missing"
    return [path.read_text() for path in cases]


@pytest.fixture(scope="module")
def legacy_baseline(kb, golden_html):
    """XML + DTD via the legacy cleanser (fast tidy off), serial."""
    converter = DocumentConverter(kb, ConversionConfig(fast_tidy=False))
    engine = CorpusEngine(
        kb,
        ConversionConfig(fast_tidy=False),
        engine_config=EngineConfig(max_workers=1, chunk_size=3),
    )
    xml = [converter.convert(html).to_xml() for html in golden_html]
    corpus = engine.convert_corpus(golden_html)
    assert corpus.xml_documents == xml
    dtd = engine.discover(corpus.accumulator).dtd.render()
    return xml, dtd


def fast_engine(kb, workers: int, **engine_kwargs) -> CorpusEngine:
    engine_kwargs.setdefault("chunk_size", 3)
    return CorpusEngine(
        kb,
        ConversionConfig(fast_tidy=True),
        engine_config=EngineConfig(max_workers=workers, **engine_kwargs),
    )


class TestGoldenCorpusDifferential:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_xml_and_dtd_identical(self, kb, golden_html, legacy_baseline, workers):
        legacy_xml, legacy_dtd = legacy_baseline
        engine = fast_engine(kb, workers)
        corpus = engine.convert_corpus(golden_html)
        assert corpus.xml_documents == legacy_xml
        assert engine.discover(corpus.accumulator).dtd.render() == legacy_dtd

    def test_serial_converter_identical(self, kb, golden_html, legacy_baseline):
        legacy_xml, _ = legacy_baseline
        fast = DocumentConverter(kb, ConversionConfig(fast_tidy=True))
        assert [fast.convert(html).to_xml() for html in golden_html] == legacy_xml


class TestGeneratedCorpusDifferential:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_generated_corpus_identical(self, kb, small_corpus, workers):
        html = [doc.html for doc in small_corpus]
        legacy = CorpusEngine(
            kb,
            ConversionConfig(fast_tidy=False),
            engine_config=EngineConfig(max_workers=1, chunk_size=4),
        )
        legacy_corpus = legacy.convert_corpus(html)
        fast = fast_engine(kb, workers)
        fast_corpus = fast.convert_corpus(html)
        assert fast_corpus.xml_documents == legacy_corpus.xml_documents
        assert (
            fast.discover(fast_corpus.accumulator).dtd.render()
            == legacy.discover(legacy_corpus.accumulator).dtd.render()
        )


class TestAllFastPathsOff:
    def test_every_fast_path_off_identical(self, kb, golden_html, legacy_baseline):
        """All three fast paths off at once is still byte-identical (no
        hidden coupling among the parser, tagger, and tidy flags)."""
        legacy_xml, _ = legacy_baseline
        naive = DocumentConverter(
            kb,
            ConversionConfig(
                fast_parser=False, fast_tagger=False, fast_tidy=False
            ),
        )
        assert [naive.convert(html).to_xml() for html in golden_html] == legacy_xml


class TestXmlSinkMode:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_sink_files_equal_collected_strings(
        self, kb, golden_html, workers, tmp_path
    ):
        """Worker-side sink files are byte-for-byte the strings the
        collected payloads carry, named by document position."""
        engine = fast_engine(kb, workers)
        collected = engine.convert_corpus(golden_html)
        sink_dir = tmp_path / f"sink{workers}"
        sunk = fast_engine(kb, workers).convert_corpus(
            golden_html, collect_xml=False, xml_sink=str(sink_dir)
        )
        assert sunk.xml_documents == []
        files = sorted(sink_dir.glob("*.xml"))
        assert [p.name for p in files] == [
            f"doc{i:04d}.xml" for i in range(len(golden_html))
        ]
        assert [p.read_text(encoding="utf-8") for p in files] == (
            collected.xml_documents
        )

    def test_sink_honors_caller_names(self, kb, golden_html, tmp_path):
        names = [f"case-{i}" for i in range(len(golden_html))]
        sink_dir = tmp_path / "named"
        fast_engine(kb, 2).convert_corpus(
            golden_html, collect_xml=False, xml_sink=str(sink_dir), names=names
        )
        assert sorted(p.stem for p in sink_dir.glob("*.xml")) == sorted(names)

    def test_discovery_only_transport_matches(self, kb, golden_html):
        """collect_xml=False ships no XML home but discovers the same
        DTD from the same accumulated statistics."""
        engine = fast_engine(kb, 2)
        full = engine.convert_corpus(golden_html)
        slim_engine = fast_engine(kb, 2)
        slim = slim_engine.convert_corpus(golden_html, collect_xml=False)
        assert slim.xml_documents == []
        assert slim.stats.documents == full.stats.documents
        assert (
            slim_engine.discover(slim.accumulator).dtd.render()
            == engine.discover(full.accumulator).dtd.render()
        )


class TestAdaptiveChunking:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_adaptive_equals_static(self, kb, golden_html, workers):
        """chunk_size=None (adaptive) converts the same corpus to the
        same bytes and statistics as a pinned static size."""
        static = fast_engine(kb, workers, chunk_size=3).convert_corpus(
            golden_html
        )
        adaptive = fast_engine(
            kb, workers, chunk_size=None, min_chunk_size=2, max_chunk_size=16
        ).convert_corpus(golden_html)
        assert adaptive.xml_documents == static.xml_documents
        assert adaptive.stats.documents == static.stats.documents
        assert adaptive.accumulator.doc_frequency == static.accumulator.doc_frequency

"""Tests for the product-catalog domain (the Section 5 broader topic)."""

import random

import pytest

from repro.concepts.catalog_kb import build_catalog_knowledge_base
from repro.concepts.concept import ConceptRole
from repro.corpus.catalog import (
    CATALOG_STYLES,
    CatalogCorpusGenerator,
    build_catalog_ground_truth,
    sample_catalog,
)
from repro.convert.pipeline import DocumentConverter
from repro.dom.treeops import deep_equal, iter_elements
from repro.htmlparse.parser import parse_html


@pytest.fixture(scope="module")
def catalog_kb():
    return build_catalog_knowledge_base()


@pytest.fixture(scope="module")
def catalog_converter(catalog_kb):
    return DocumentConverter(catalog_kb)


class TestCatalogKB:
    def test_counts(self, catalog_kb):
        assert len(catalog_kb) == 12
        assert len(catalog_kb.by_role(ConceptRole.TITLE)) == 4
        assert len(catalog_kb.by_role(ConceptRole.CONTENT)) == 8

    def test_price_pattern(self, catalog_kb):
        assert catalog_kb.get("price").first_match("only $1,299.99 today")

    def test_sku_pattern(self, catalog_kb):
        assert catalog_kb.get("sku").first_match("order BL-53403 now")

    def test_serialization_round_trip(self, catalog_kb):
        from repro.concepts.knowledge import KnowledgeBase

        restored = KnowledgeBase.from_json(catalog_kb.to_json())
        assert len(restored) == 12


class TestCatalogCorpus:
    def test_sampling_deterministic(self):
        a = sample_catalog(random.Random(3))
        b = sample_catalog(random.Random(3))
        assert a == b

    def test_products_well_formed(self):
        data = sample_catalog(random.Random(4))
        assert 3 <= len(data.products) <= 7
        for product in data.products:
            assert product.sku and product.price.startswith("$")

    def test_generator_deterministic(self):
        a = CatalogCorpusGenerator(seed=5).generate_one(3)
        b = CatalogCorpusGenerator(seed=5).generate_one(3)
        assert a.html == b.html
        assert deep_equal(a.ground_truth, b.ground_truth)

    def test_all_styles_produced(self):
        docs = CatalogCorpusGenerator(seed=5).generate(30)
        assert {d.style_name for d in docs} == set(CATALOG_STYLES)

    @pytest.mark.parametrize("style_name", sorted(CATALOG_STYLES))
    def test_every_style_parses(self, style_name):
        style = CATALOG_STYLES[style_name]
        data = sample_catalog(random.Random(7))
        html = style.render(data, random.Random(7))
        text = parse_html(html).inner_text()
        assert data.products[0].sku in text

    def test_ground_truth_shape(self, catalog_kb):
        doc = CatalogCorpusGenerator(seed=5).generate_one(0)
        assert doc.ground_truth.tag == "CATALOG"
        tags = {el.tag for el in iter_elements(doc.ground_truth)}
        assert tags <= catalog_kb.concept_tags()

    def test_truth_reflects_product_heading_flag(self):
        data = sample_catalog(random.Random(9))
        with_heading = build_catalog_ground_truth(
            data, CATALOG_STYLES["catalog-headings"]
        )
        without = build_catalog_ground_truth(data, CATALOG_STYLES["catalog-table"])
        assert any(c.tag == "PRODUCT" for c in with_heading.element_children())
        assert not any(c.tag == "PRODUCT" for c in without.element_children())


class TestCatalogConversion:
    def test_accuracy_on_catalogs(self, catalog_converter):
        """The framework ports to the broader topic with high accuracy
        (catalogs are more regular than resumes)."""
        from repro.evaluation.accuracy import evaluate_accuracy

        docs = CatalogCorpusGenerator(seed=5).generate(15)
        pairs = [
            (catalog_converter.convert(d.html).root, d.ground_truth)
            for d in docs
        ]
        report = evaluate_accuracy(pairs)
        assert report.accuracy > 90.0

    def test_only_catalog_concepts_in_output(self, catalog_converter, catalog_kb):
        doc = CatalogCorpusGenerator(seed=5).generate_one(1)
        result = catalog_converter.convert(doc.html)
        tags = {el.tag for el in iter_elements(result.root)}
        assert tags <= catalog_kb.concept_tags()

    def test_schema_discovery_on_catalogs(self, catalog_converter, catalog_kb):
        from repro.schema.dtd import derive_dtd
        from repro.schema.frequent import mine_frequent_paths
        from repro.schema.majority import MajoritySchema
        from repro.schema.paths import extract_paths

        docs = CatalogCorpusGenerator(seed=5).generate(20)
        documents = [
            extract_paths(catalog_converter.convert(d.html).root) for d in docs
        ]
        frequent = mine_frequent_paths(
            documents,
            sup_threshold=0.4,
            constraints=catalog_kb.constraints,
            candidate_labels=catalog_kb.concept_tags(),
        )
        schema = MajoritySchema.from_frequent_paths(frequent)
        assert schema.root.label == "CATALOG"
        dtd = derive_dtd(schema, documents)
        assert dtd.root_name == "catalog"
        assert "price" in dtd.elements
        assert "sku" in dtd.elements

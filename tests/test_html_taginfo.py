"""Tests for the HTML tag catalog."""

from repro.htmlparse.taginfo import (
    heading_level,
    is_block,
    is_heading,
    is_html_tag,
    is_inline,
    is_void,
    tags_closed_by,
)


class TestClassification:
    def test_void_tags(self):
        assert is_void("br") and is_void("hr") and is_void("img")
        assert not is_void("p")

    def test_block_vs_inline_disjoint(self):
        for tag in ("p", "div", "ul", "table", "h1"):
            assert is_block(tag) and not is_inline(tag)
        for tag in ("b", "i", "font", "span", "a"):
            assert is_inline(tag) and not is_block(tag)

    def test_heading_levels(self):
        assert is_heading("h1") and is_heading("h6")
        assert not is_heading("h7") and not is_heading("p")
        assert heading_level("h3") == 3
        assert heading_level("div") == 0

    def test_is_html_tag_case_insensitive(self):
        assert is_html_tag("DIV") and is_html_tag("div")

    def test_concept_tags_are_not_html(self):
        for tag in ("RESUME", "EDUCATION", "JOB-TITLE", "GROUP", "TOKEN"):
            assert not is_html_tag(tag)


class TestImpliedEndTags:
    def test_li_closes_li(self):
        assert "li" in tags_closed_by("li")

    def test_dt_dd_mutual(self):
        assert {"dt", "dd"} <= tags_closed_by("dt")
        assert {"dt", "dd"} <= tags_closed_by("dd")

    def test_block_closes_paragraph(self):
        for tag in ("div", "ul", "table", "h2", "p"):
            assert "p" in tags_closed_by(tag)

    def test_inline_does_not_close_paragraph(self):
        assert "p" not in tags_closed_by("b")
        assert tags_closed_by("span") == frozenset()

    def test_table_parts(self):
        assert {"td", "th"} <= tags_closed_by("tr")
        assert "tr" in tags_closed_by("tr")
        assert {"td", "th"} <= tags_closed_by("td")

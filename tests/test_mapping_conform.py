"""Tests for DTD-guided document repair."""

import pytest

from repro.dom.node import Element
from repro.mapping.conform import conform_document
from repro.mapping.validate import conforms
from repro.schema.dtd import DTD

DTD_TEXT = """
<!ELEMENT resume ((#PCDATA), contact, education+)>
<!ELEMENT contact (#PCDATA)>
<!ELEMENT education ((#PCDATA), degree, date+)>
<!ELEMENT degree (#PCDATA)>
<!ELEMENT date (#PCDATA)>
"""


@pytest.fixture()
def dtd():
    return DTD.parse(DTD_TEXT)


def education(*children):
    e = Element("EDUCATION")
    for tag in children:
        e.append_child(Element(tag))
    return e


class TestRepairOperations:
    def test_conforming_document_untouched(self, dtd):
        root = Element("RESUME")
        root.append_child(Element("CONTACT"))
        root.append_child(education("DEGREE", "DATE"))
        result = conform_document(root, dtd)
        assert result.total_operations == 0
        assert conforms(root, dtd)

    def test_unexpected_child_unwrapped(self, dtd):
        root = Element("RESUME")
        root.append_child(Element("CONTACT"))
        wrapper = root.append_child(Element("SECTION"))
        wrapper.append_child(education("DEGREE", "DATE"))
        result = conform_document(root, dtd)
        assert result.unwrapped == 1
        assert conforms(root, dtd)

    def test_unexpected_leaf_dropped_val_preserved(self, dtd):
        root = Element("RESUME")
        root.append_child(Element("CONTACT"))
        root.append_child(education("DEGREE", "DATE"))
        stray = root.append_child(Element("HOBBIES"))
        stray.set_val("chess")
        result = conform_document(root, dtd)
        assert result.dropped == 1
        assert "chess" in root.get_val()
        assert conforms(root, dtd)

    def test_over_occurrence_merged(self, dtd):
        root = Element("RESUME")
        c1 = root.append_child(Element("CONTACT"))
        c1.set_val("first")
        c2 = root.append_child(Element("CONTACT"))
        c2.set_val("second")
        root.append_child(education("DEGREE", "DATE"))
        result = conform_document(root, dtd)
        assert result.merged == 1
        assert "first" in c1.get_val() and "second" in c1.get_val()
        assert conforms(root, dtd)

    def test_repetitive_children_not_merged(self, dtd):
        root = Element("RESUME")
        root.append_child(Element("CONTACT"))
        root.append_child(education("DEGREE", "DATE", "DATE", "DATE"))
        result = conform_document(root, dtd)
        assert result.merged == 0
        assert conforms(root, dtd)

    def test_out_of_order_children_reordered(self, dtd):
        root = Element("RESUME")
        edu = education("DATE", "DEGREE")  # declared order: degree, date
        root.append_child(edu)
        root.insert_child(1, Element("CONTACT"))  # contact after education
        result = conform_document(root, dtd)
        assert result.reordered >= 1
        assert [c.tag for c in root.element_children()] == ["CONTACT", "EDUCATION"]
        assert [c.tag for c in edu.element_children()] == ["DEGREE", "DATE"]
        assert conforms(root, dtd)

    def test_missing_required_inserted(self, dtd):
        root = Element("RESUME")
        root.append_child(education("DEGREE", "DATE"))
        result = conform_document(root, dtd)
        assert result.inserted == 1
        assert conforms(root, dtd)

    def test_missing_nested_required_inserted(self, dtd):
        root = Element("RESUME")
        root.append_child(Element("CONTACT"))
        root.append_child(education())  # missing degree AND date
        result = conform_document(root, dtd)
        assert result.inserted == 2
        assert conforms(root, dtd)

    def test_wrong_root_renamed(self, dtd):
        root = Element("CV")
        root.append_child(Element("CONTACT"))
        root.append_child(education("DEGREE", "DATE"))
        conform_document(root, dtd)
        assert root.tag == "RESUME"
        assert conforms(root, dtd)

    def test_deeply_wrapped_content_recovered(self, dtd):
        root = Element("RESUME")
        root.append_child(Element("CONTACT"))
        a = root.append_child(Element("DIV"))
        b = a.append_child(Element("SPAN"))
        b.append_child(education("DEGREE", "DATE"))
        conform_document(root, dtd)
        assert conforms(root, dtd)
        assert len([c for c in root.element_children() if c.tag == "EDUCATION"]) == 1


class TestRepairAlwaysConverges:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_trees_repaired(self, dtd, seed):
        import random

        rng = random.Random(seed)
        tags = ["RESUME", "CONTACT", "EDUCATION", "DEGREE", "DATE", "JUNK", "NOISE"]

        def random_tree(depth=0):
            element = Element(rng.choice(tags if depth else ["RESUME", "CV"]))
            for _ in range(rng.randint(0, 3) if depth < 3 else 0):
                element.append_child(random_tree(depth + 1))
            return element

        root = random_tree()
        conform_document(root, dtd)
        assert conforms(root, dtd)

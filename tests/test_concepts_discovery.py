"""Tests for automatic concept-instance discovery."""

import pytest

from repro.concepts.concept import Concept, ConceptInstance
from repro.concepts.discovery import (
    InstanceProposal,
    augment_knowledge_base,
    propose_instances,
)
from repro.concepts.knowledge import KnowledgeBase

EXAMPLES = [
    ("Princeton University", "INSTITUTION"),
    ("Princeton College of Arts", "INSTITUTION"),
    ("Princeton Academy", "INSTITUTION"),
    ("Acme Widget Works", "COMPANY"),
    ("Widget Works Ltd", "COMPANY"),
    ("Widget Works of America", "COMPANY"),
    ("June 1996", "DATE"),
    ("July 1996", "DATE"),
    ("August 1996", "DATE"),
]


class TestProposals:
    def test_pure_frequent_words_proposed(self):
        proposals = propose_instances(EXAMPLES, min_count=3)
        keywords = {(p.concept_tag, p.keyword) for p in proposals}
        assert ("INSTITUTION", "princeton") in keywords
        assert any(tag == "COMPANY" and "widget" in kw for tag, kw in keywords)

    def test_bigrams_subsume_words(self):
        proposals = propose_instances(EXAMPLES, min_count=3)
        company = {p.keyword for p in proposals if p.concept_tag == "COMPANY"}
        assert "widget works" in company
        assert "widget" not in company
        assert "works" not in company

    def test_impure_words_rejected(self):
        mixed = EXAMPLES + [("Princeton Works", "COMPANY")] * 2
        proposals = propose_instances(mixed, min_count=3, min_purity=0.9)
        assert not any(
            p.keyword == "princeton" and p.concept_tag == "COMPANY"
            for p in proposals
        )

    def test_min_count_respected(self):
        proposals = propose_instances(EXAMPLES, min_count=4)
        assert not any(p.keyword == "princeton" for p in proposals)

    def test_stopwords_never_proposed(self):
        proposals = propose_instances(EXAMPLES, min_count=1)
        assert not any(p.keyword in ("of", "the") for p in proposals)

    def test_numbers_never_proposed(self):
        proposals = propose_instances(EXAMPLES, min_count=3)
        assert not any(p.keyword == "1996" for p in proposals)

    def test_known_instances_filtered(self):
        kb = KnowledgeBase("t")
        kb.add(Concept("institution", [ConceptInstance("princeton")]))
        proposals = propose_instances(EXAMPLES, kb=kb, min_count=3)
        assert not any(
            p.keyword == "princeton" and p.concept_tag == "INSTITUTION"
            for p in proposals
        )

    def test_max_per_concept(self):
        examples = [
            (f"uniword{i} uniword{i} filler", "X") for i in range(30) for _ in range(3)
        ]
        proposals = propose_instances(examples, min_count=3, max_per_concept=5)
        assert len([p for p in proposals if p.concept_tag == "X"]) <= 5

    def test_deterministic(self):
        a = propose_instances(EXAMPLES, min_count=3)
        b = propose_instances(EXAMPLES, min_count=3)
        assert a == b


class TestAugmentation:
    def test_proposals_added_to_kb(self):
        kb = KnowledgeBase("t")
        kb.add(Concept("company"))
        added = augment_knowledge_base(
            kb, [InstanceProposal("COMPANY", "widget works", 3, 1.0)]
        )
        assert added == 1
        assert any(
            i.pattern == "widget works" for i in kb.get("company").instances
        )

    def test_unknown_concepts_skipped(self):
        kb = KnowledgeBase("t")
        added = augment_knowledge_base(
            kb, [InstanceProposal("GHOST", "boo", 3, 1.0)]
        )
        assert added == 0


class TestEndToEndDiscovery:
    def test_discovery_reduces_unidentified_ratio(self, kb):
        """The Section 5 workflow: mine instances from labeled docs,
        augment the KB, watch the unidentified-token ratio drop."""
        import copy

        from repro.convert.config import ConversionConfig
        from repro.convert.pipeline import DocumentConverter
        from repro.corpus.generator import ResumeCorpusGenerator
        from repro.dom.treeops import iter_elements

        generator = ResumeCorpusGenerator(seed=31)
        train = generator.generate(30)
        evaluate = generator.generate(10, start_id=100)

        examples = [
            (el.get_val(), el.tag)
            for doc in train
            for el in iter_elements(doc.ground_truth)
            if el.get_val() and el.tag != "RESUME"
        ]

        def unident(knowledge):
            converter = DocumentConverter(knowledge, ConversionConfig())
            results = [converter.convert(d.html) for d in evaluate]
            return sum(r.instance_stats.unidentified for r in results) / sum(
                r.instance_stats.total for r in results
            )

        base_kb = copy.deepcopy(kb)
        before = unident(base_kb)
        proposals = propose_instances(examples, kb=base_kb, min_count=4)
        assert proposals, "discovery should find something to propose"
        augment_knowledge_base(base_kb, proposals)
        after = unident(base_kb)
        assert after < before

"""Tests for word-level text utilities."""

from repro.concepts.textutil import (
    normalize_word,
    normalized_words,
    squeeze_whitespace,
    words,
)


class TestWords:
    def test_basic_split(self):
        assert words("one two three") == ["one", "two", "three"]

    def test_domain_tokens_kept_whole(self):
        assert words("C++ and C# code") == ["C++", "and", "C#", "code"]
        assert words("B.S. degree") == ["B.S.", "degree"]
        assert words("GPA 3.8/4.0") == ["GPA", "3.8/4.0"]
        assert words("object-oriented design") == ["object-oriented", "design"]

    def test_punctuation_dropped(self):
        assert words("hello, world!") == ["hello", "world"]

    def test_empty(self):
        assert words("") == []
        assert words("   ...   ") == []


class TestNormalization:
    def test_lowercase(self):
        assert normalize_word("University") == "university"

    def test_trailing_periods_stripped(self):
        assert normalize_word("B.S.") == "b.s"
        assert normalize_word("B.S") == "b.s"

    def test_normalized_words_pipeline(self):
        assert normalized_words("B.S. From MIT") == ["b.s", "from", "mit"]


class TestSqueeze:
    def test_runs_collapsed(self):
        assert squeeze_whitespace("a   b\n\tc") == "a b c"

    def test_trimmed(self):
        assert squeeze_whitespace("  x  ") == "x"

    def test_empty(self):
        assert squeeze_whitespace("   ") == ""

"""Lifecycle and equivalence tests for the conversion service.

The service must be a transparent wrapper over the offline engine:

* XML returned over HTTP is byte-identical to ``convert-corpus`` output
  for the same documents (the engine's own differential guarantee,
  extended across the wire);
* folding per micro-batch through ``/convert/batch`` converges to the
  same schema (same current DTD bytes, same document count) as one
  offline ``evolve fold`` over the whole corpus -- the accumulator is a
  monoid;
* SIGTERM drains cleanly: in-flight requests complete, the CLI exits 0,
  and every worker process is gone (no orphans);
* ``/healthz`` and ``/metrics`` stay truthful, and the Prometheus
  exposition passes the repo's own validator.

Servers run with ``max_workers=1`` (inline converter) unless a test is
specifically about the process pool, keeping the suite fast.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.obs.validate import validate_prometheus_text
from repro.runtime.engine import CorpusEngine, EngineConfig
from repro.schema.evolution import EvolvingSchema
from repro.service import ContractError, ConvertRequest, ServiceConfig
from repro.service.contracts import MAX_BATCH_DOCUMENTS
from repro.service.loadtest import (
    ServerThread,
    _get,
    _post,
    request,
    run_load,
)
from repro.service.server import ConversionService


@pytest.fixture(scope="module")
def corpus_html(small_corpus):
    return [doc.html for doc in small_corpus]


def make_service(kb, tmp_path, *, workers=1, publish=False, conversion=None):
    return ConversionService(
        kb,
        state_dir=tmp_path / "state",
        config=ServiceConfig(max_workers=workers, publish=publish),
        conversion=conversion,
    )


@pytest.fixture()
def live(kb, tmp_path):
    """A running service (inline worker) plus its address."""
    server = ServerThread(make_service(kb, tmp_path))
    host, port = server.start()
    yield server, host, port
    server.stop()


def fetch(host, port, raw):
    status, headers, body = asyncio.run(request(host, port, raw))
    return status, headers, body


def post_json(host, port, path, payload):
    status, _, body = fetch(host, port, _post(path, payload))
    return status, json.loads(body)


# -- request contracts ---------------------------------------------------------


class TestContracts:
    def test_parse_minimal(self):
        req = ConvertRequest.parse({"source": "<html>x</html>"})
        assert req.topic == "resume"
        assert not req.fold and req.schema_version is None

    def test_rejects_non_object(self):
        with pytest.raises(ContractError):
            ConvertRequest.parse(["<html>"])

    def test_rejects_empty_source(self):
        with pytest.raises(ContractError, match="source"):
            ConvertRequest.parse({"source": "   "})

    def test_rejects_fold_with_schema_version(self):
        with pytest.raises(ContractError, match="fold"):
            ConvertRequest.parse(
                {"source": "<html>x</html>", "fold": True, "schema_version": 2}
            )

    def test_rejects_bool_schema_version(self):
        with pytest.raises(ContractError, match="schema_version"):
            ConvertRequest.parse({"source": "<p>x</p>", "schema_version": True})

    def test_batch_defaults_apply_to_strings(self):
        requests = ConvertRequest.parse_batch(
            {"documents": ["<p>a</p>", {"source": "<p>b</p>", "doc_id": "b"}],
             "fold": True}
        )
        assert [r.fold for r in requests] == [True, True]
        assert requests[1].doc_id == "b"

    def test_batch_caps_size(self):
        documents = ["<p>x</p>"] * (MAX_BATCH_DOCUMENTS + 1)
        with pytest.raises(ContractError, match="documents"):
            ConvertRequest.parse_batch({"documents": documents})


# -- cold start + introspection routes ----------------------------------------


class TestLifecycleRoutes:
    def test_healthz_cold_start(self, live):
        _, host, port = live
        status, _, body = fetch(host, port, _get("/healthz"))
        assert status == 200
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["documents"] == 0
        assert health["topics"] == ["resume"]
        assert health["worker_pids"] == []  # inline mode: no pool

    def test_metrics_validate_and_count_requests(self, live, corpus_html):
        _, host, port = live
        status, payload = post_json(
            host, port, "/convert", {"source": corpus_html[0]}
        )
        assert status == 200 and payload["ok"]
        status, headers, body = fetch(host, port, _get("/metrics"))
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        text = body.decode("utf-8")
        assert validate_prometheus_text(text) == []
        assert "# HELP repro_service_requests_total" in text
        assert (
            'repro_service_requests_total{code="200",route="POST /convert"}'
            in text
        )

    def test_unknown_route_and_topic(self, live, corpus_html):
        _, host, port = live
        status, _, _ = fetch(host, port, _get("/nope"))
        assert status == 404
        status, payload = post_json(
            host, port, "/convert",
            {"source": corpus_html[0], "topic": "magazines"},
        )
        assert status == 404 and "magazines" in payload["error"]

    def test_bad_json_is_400(self, live):
        _, host, port = live
        raw = (
            b"POST /convert HTTP/1.1\r\nHost: t\r\nContent-Length: 9\r\n\r\n"
            b"not json!"
        )
        status, _, _ = fetch(host, port, raw)
        assert status == 400

    def test_schemas_empty_until_fold(self, live):
        _, host, port = live
        status, _, body = fetch(host, port, _get("/schemas/resume"))
        assert status == 200
        described = json.loads(body)
        assert described["schema_version"] == 0
        assert described["documents"] == 0
        assert described["dtd"] is None


# -- differential equivalence with the offline engine --------------------------


class TestOfflineEquivalence:
    def test_batch_xml_byte_identical_to_engine(
        self, kb, live, corpus_html
    ):
        _, host, port = live
        offline = CorpusEngine(
            kb, engine_config=EngineConfig(max_workers=1, chunk_size=3)
        ).run(corpus_html, collect_xml=True).corpus.xml_documents
        status, payload = post_json(
            host, port, "/convert/batch", {"documents": corpus_html}
        )
        assert status == 200
        assert payload["documents"] == len(corpus_html)
        assert payload["failed"] == 0
        served = [result["xml"] for result in payload["results"]]
        assert served == offline  # byte-identical, in order

    def test_concurrent_singles_match_engine(self, kb, live, corpus_html):
        _, host, port = live
        offline = CorpusEngine(
            kb, engine_config=EngineConfig(max_workers=1, chunk_size=3)
        ).run(corpus_html, collect_xml=True).corpus.xml_documents

        async def hammer():
            return await asyncio.gather(*(
                request(host, port, _post("/convert", {"source": html}))
                for html in corpus_html
            ))

        responses = asyncio.run(hammer())
        served = []
        for status, _, body in responses:
            assert status == 200
            payload = json.loads(body)
            assert payload["ok"]
            served.append(payload["xml"])
        # Concurrent submissions may be batched in any arrival order,
        # but every document's bytes must match its offline twin.
        assert sorted(served) == sorted(offline)

    def test_fold_equivalent_to_offline_evolve_fold(
        self, kb, tmp_path, corpus_html
    ):
        server = ServerThread(make_service(kb, tmp_path))
        host, port = server.start()
        try:
            # Fold in three uneven waves -- the monoid must not care.
            for lo, hi in ((0, 3), (3, 4), (4, len(corpus_html))):
                status, payload = post_json(
                    host, port, "/convert/batch",
                    {"documents": corpus_html[lo:hi], "fold": True},
                )
                assert status == 200 and payload["failed"] == 0
                assert all(r["folded"] for r in payload["results"])
            status, _, body = fetch(host, port, _get("/schemas/resume"))
            served = json.loads(body)
        finally:
            server.stop()

        offline_dir = tmp_path / "offline"
        evolving = EvolvingSchema(offline_dir, kb)
        evolving.save_state()
        result = CorpusEngine(
            kb, engine_config=EngineConfig(max_workers=1, chunk_size=4)
        ).run(corpus_html).corpus
        evolving.fold(result.accumulator)

        assert served["documents"] == evolving.total_documents()
        assert served["dtd"] == evolving.dtd_text
        # The service's on-disk checkpoint holds the same current DTD.
        service_dtd = (
            tmp_path / "state" / "resume" / "evolution" / "current.dtd"
        ).read_text(encoding="utf-8")
        assert service_dtd.rstrip("\n") == evolving.dtd_text.rstrip("\n")

    def test_schema_version_targeting(self, kb, tmp_path, corpus_html):
        server = ServerThread(make_service(kb, tmp_path))
        host, port = server.start()
        try:
            status, payload = post_json(
                host, port, "/convert/batch",
                {"documents": corpus_html[:6], "fold": True},
            )
            assert status == 200
            version = payload["fold"]["schema_version"]
            assert version >= 1
            # Conversion pinned to the archived version succeeds and
            # reports the version it conformed against.
            status, payload = post_json(
                host, port, "/convert",
                {"source": corpus_html[6], "schema_version": version},
            )
            assert status == 200 and payload["ok"]
            assert payload["schema_version"] == version
            # The archived DTD is servable.
            status, _, body = fetch(
                host, port, _get(f"/schemas/resume/v{version}")
            )
            assert status == 200
            assert json.loads(body)["dtd"].strip()
            # A version that never existed is a 400 on convert, 404 on GET.
            status, _ = post_json(
                host, port, "/convert",
                {"source": corpus_html[6], "schema_version": 99},
            )
            assert status == 400
            status, _, _ = fetch(host, port, _get("/schemas/resume/v99"))
            assert status == 404
        finally:
            server.stop()


# -- failures stay per-document ------------------------------------------------


class TestDocumentFailures:
    def test_chaos_document_is_422_not_fatal(self, kb, tmp_path, corpus_html):
        from repro.convert.config import ConversionConfig

        service = make_service(
            kb, tmp_path,
            conversion=ConversionConfig(chaos_fail_marker="CHAOS-BOOM"),
        )
        server = ServerThread(service)
        host, port = server.start()
        try:
            status, payload = post_json(
                host, port, "/convert",
                {"source": "<html><p>CHAOS-BOOM</p></html>", "doc_id": "bad"},
            )
            assert status == 422
            assert not payload["ok"]
            assert payload["doc_id"] == "bad"
            assert payload["error"]["error_type"] == "InjectedFaultError"
            # The service survives: the next document converts fine.
            status, payload = post_json(
                host, port, "/convert", {"source": corpus_html[0]}
            )
            assert status == 200 and payload["ok"]
            # And /healthz reflects the failure count.
            _, _, body = fetch(host, port, _get("/healthz"))
            health = json.loads(body)
            assert health["documents_failed"] == 1
        finally:
            server.stop()

    def test_mixed_batch_reports_both(self, kb, tmp_path, corpus_html):
        from repro.convert.config import ConversionConfig

        service = make_service(
            kb, tmp_path,
            conversion=ConversionConfig(chaos_fail_marker="CHAOS-BOOM"),
        )
        server = ServerThread(service)
        host, port = server.start()
        try:
            documents = [
                corpus_html[0],
                "<html><p>CHAOS-BOOM</p></html>",
                corpus_html[1],
            ]
            status, payload = post_json(
                host, port, "/convert/batch", {"documents": documents}
            )
            assert status == 200
            assert payload["converted"] == 2 and payload["failed"] == 1
            oks = [result["ok"] for result in payload["results"]]
            assert oks == [True, False, True]
        finally:
            server.stop()


# -- concurrency + backpressure ------------------------------------------------


class TestConcurrentLoad:
    def test_many_concurrent_clients_zero_drops(self, kb, tmp_path, corpus_html):
        server = ServerThread(make_service(kb, tmp_path))
        host, port = server.start()
        try:
            report = asyncio.run(run_load(
                host, port, corpus_html[:4],
                clients=60, requests_per_client=2,
            ))
        finally:
            server.stop()
        assert report.dropped == 0
        assert report.failed == 0
        assert report.completed == 120
        assert report.converted == 120
        assert report.latency.count == 120

    def test_batch_documents_metric_observes_chunks(
        self, kb, tmp_path, corpus_html
    ):
        server = ServerThread(make_service(kb, tmp_path))
        host, port = server.start()
        try:
            status, payload = post_json(
                host, port, "/convert/batch",
                {"documents": corpus_html[:5]},
            )
            assert status == 200 and payload["failed"] == 0
            _, _, body = fetch(host, port, _get("/metrics"))
        finally:
            server.stop()
        text = body.decode("utf-8")
        assert "repro_service_batch_documents" in text
        assert validate_prometheus_text(text) == []


# -- graceful drain ------------------------------------------------------------


class TestDrain:
    def test_shutdown_rejects_new_submissions(self, kb, tmp_path, corpus_html):
        service = make_service(kb, tmp_path)
        server = ServerThread(service)
        host, port = server.start()
        server.stop()
        assert service.draining
        # Every pool refuses post-shutdown work.
        for pool in service.pools.values():
            assert pool._closed

    def test_sigterm_drains_with_no_orphans(self, tmp_path, corpus_html):
        """End-to-end: `repro-web serve` under SIGTERM exits 0, prints
        the drain line, and leaves no worker processes behind."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parents[1] / "src")
        env.setdefault("PYTHONUNBUFFERED", "1")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port", "0", "--max-workers", "2",
             "--state-dir", str(tmp_path / "state")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env,
        )
        try:
            line = proc.stdout.readline()
            assert line.startswith("listening on http://"), line
            address = line.strip().rsplit("http://", 1)[1]
            host, port_text = address.rsplit(":", 1)
            port = int(port_text)

            # Real work through the real pool, then capture worker pids.
            status, payload = post_json(
                host, port, "/convert", {"source": corpus_html[0]}
            )
            assert status == 200 and payload["ok"]
            _, _, body = fetch(host, port, _get("/healthz"))
            pids = json.loads(body)["worker_pids"]
            assert len(pids) >= 1

            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=60)
            assert proc.returncode == 0, stderr
            assert "drained cleanly" in stdout

            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                alive = [pid for pid in pids if _pid_alive(pid)]
                if not alive:
                    break
                time.sleep(0.1)
            assert not [pid for pid in pids if _pid_alive(pid)], (
                f"orphaned workers: {alive}"
            )
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - not ours, but alive
        return True
    return True

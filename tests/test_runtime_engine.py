"""Differential tests: the parallel engine must equal the serial path.

For seed corpora at several sizes and worker counts the engine's output
is compared against :meth:`DocumentConverter.convert_many`:

* byte-identical serialized XML, document for document, in order;
* an identical frequent-path set and an identical rendered DTD when
  discovery runs over the merged accumulator instead of the
  materialized corpus.

Worker count 1 exercises the inline chunked path (chunking effects
only); 2 and 4 exercise the process pool and the in-order merge.
"""

from __future__ import annotations

import pytest

from repro.runtime.engine import CorpusEngine, EngineConfig
from repro.schema.dtd import derive_dtd
from repro.schema.frequent import mine_frequent_paths
from repro.schema.majority import MajoritySchema
from repro.schema.paths import extract_paths

WORKER_COUNTS = [1, 2, 4]


def serial_baseline(kb, converter, html):
    """XML bytes + frequent paths + DTD via the serial reference path."""
    results = converter.convert_many(html)
    xml = [result.to_xml() for result in results]
    documents = [extract_paths(result.root) for result in results]
    frequent = mine_frequent_paths(
        documents,
        sup_threshold=0.4,
        constraints=kb.constraints,
        candidate_labels=kb.concept_tags(),
    )
    dtd = derive_dtd(MajoritySchema.from_frequent_paths(frequent), documents)
    return xml, frequent, dtd


@pytest.fixture(scope="module")
def corpus_html(small_corpus):
    return [doc.html for doc in small_corpus]


@pytest.fixture(scope="module")
def baseline(kb, converter, corpus_html):
    return serial_baseline(kb, converter, corpus_html)


def make_engine(kb, workers, chunk_size=3):
    return CorpusEngine(
        kb,
        engine_config=EngineConfig(max_workers=workers, chunk_size=chunk_size),
    )


class TestDifferentialXML:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_xml_byte_identical(self, kb, corpus_html, baseline, workers):
        serial_xml, _, _ = baseline
        result = make_engine(kb, workers).convert_corpus(corpus_html)
        assert result.xml_documents == serial_xml

    @pytest.mark.parametrize("size", [1, 4, 7])
    def test_sizes_straddling_chunk_boundaries(
        self, kb, converter, corpus_html, size
    ):
        """Corpus sizes below, at, and above the chunk size merge in order."""
        html = corpus_html[:size]
        serial_xml = [result.to_xml() for result in converter.convert_many(html)]
        result = make_engine(kb, 2, chunk_size=4).convert_corpus(html)
        assert result.xml_documents == serial_xml

    def test_empty_corpus(self, kb):
        result = make_engine(kb, 2).convert_corpus([])
        assert result.xml_documents == []
        assert result.accumulator.document_count == 0
        assert result.stats.documents == 0


class TestDifferentialSchema:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_identical_frequent_paths_and_dtd(
        self, kb, corpus_html, baseline, workers
    ):
        _, serial_frequent, serial_dtd = baseline
        engine = make_engine(kb, workers)
        run = engine.run(corpus_html, sup_threshold=0.4)
        assert run.discovery is not None
        assert run.discovery.frequent.paths == serial_frequent.paths
        assert run.discovery.frequent.nodes_explored == serial_frequent.nodes_explored
        assert run.discovery.dtd.render() == serial_dtd.render()

    def test_accumulator_matches_materialized_statistics(
        self, kb, converter, corpus_html
    ):
        """Support values agree exactly between the two representations."""
        result = make_engine(kb, 2).convert_corpus(corpus_html)
        documents = [
            extract_paths(converter.convert(html).root) for html in corpus_html
        ]
        frequent = mine_frequent_paths(documents, sup_threshold=0.0)
        for path in frequent.paths:
            assert result.accumulator.support(path) == pytest.approx(
                frequent.support(path)
            )


class TestEngineStats:
    def test_stats_populated(self, kb, corpus_html):
        result = make_engine(kb, 2, chunk_size=4).convert_corpus(corpus_html)
        stats = result.stats
        assert stats.documents == len(corpus_html)
        assert stats.chunks == 3
        assert stats.workers == 2
        assert stats.wall_seconds > 0
        assert stats.docs_per_second > 0
        assert 1 <= stats.max_queue_depth <= 4
        assert stats.tokens_created > 0
        assert stats.concept_nodes > 0
        assert set(stats.rule_seconds) >= {"parse", "tokenize", "instance"}
        assert len(stats.per_chunk) == 3
        assert [chunk.index for chunk in stats.per_chunk] == [0, 1, 2]

    def test_summary_rows_include_input_nodes(self, kb, corpus_html):
        result = make_engine(kb, 1).convert_corpus(corpus_html)
        rows = dict(result.stats.summary_rows())
        assert rows["input nodes"] == str(result.stats.input_nodes)
        assert int(rows["input nodes"]) > 0

    def test_docs_per_second_guards_sub_millisecond_wall(self):
        from repro.runtime.stats import MIN_WALL_SECONDS, ChunkStats, EngineStats

        stats = EngineStats(workers=1, chunk_size=1)
        stats.absorb(ChunkStats(index=0, documents=100))
        stats.wall_seconds = 1e-7  # timer noise, not a real measurement
        assert stats.docs_per_second == pytest.approx(100 / MIN_WALL_SECONDS)
        stats.wall_seconds = 0.0
        assert stats.docs_per_second == 0.0
        stats.wall_seconds = 2.0
        assert stats.docs_per_second == pytest.approx(50.0)

    def test_stats_round_trip_through_registry_json(self, kb, corpus_html):
        import json

        from repro.obs.metrics import MetricsRegistry
        from repro.runtime.stats import EngineStats

        result = make_engine(kb, 2, chunk_size=4).convert_corpus(corpus_html)
        snapshot = json.loads(result.stats.registry.render_json())
        restored = EngineStats.from_registry(MetricsRegistry.from_json(snapshot))
        assert restored.documents == result.stats.documents
        assert restored.rule_seconds == pytest.approx(result.stats.rule_seconds)
        assert restored.summary_rows() == result.stats.summary_rows()

    def test_streaming_yields_chunks_in_order(self, kb, corpus_html):
        engine = make_engine(kb, 2, chunk_size=3)
        stats = engine.new_stats()
        indices = [
            payload.stats.index
            for payload in engine.stream(corpus_html, stats=stats)
        ]
        assert indices == sorted(indices)
        assert stats.wall_seconds > 0


class TestStreamLifecycle:
    """Regression tests for the stream generator's shutdown semantics."""

    def test_early_close_cancels_inflight_work(
        self, kb, corpus_html, monkeypatch
    ):
        """Closing the stream mid-corpus must not block on in-flight
        chunks: the pool shuts down with ``wait=False`` and queued
        futures cancelled, instead of silently converting the rest of
        the corpus on the consumer's time."""
        import repro.runtime.engine as engine_module

        shutdown_calls = []

        class RecordingPool(engine_module.ProcessPoolExecutor):
            def shutdown(self, wait=True, *, cancel_futures=False):
                shutdown_calls.append((wait, cancel_futures))
                super().shutdown(wait=wait, cancel_futures=cancel_futures)

        monkeypatch.setattr(
            engine_module, "ProcessPoolExecutor", RecordingPool
        )
        engine = make_engine(kb, 2, chunk_size=2)
        stream = engine.stream(corpus_html)
        first = next(stream)
        assert first.stats.index == 0
        stream.close()
        assert shutdown_calls == [(False, True)]

    @pytest.mark.parametrize(
        "exc_type", [ValueError, KeyboardInterrupt], ids=["consumer", "ctrl-c"]
    )
    def test_exceptional_exit_cancels_inflight_work(
        self, kb, corpus_html, monkeypatch, exc_type
    ):
        """A consumer exception or Ctrl-C thrown into the stream must
        take the same cancel-and-shutdown path as an early close: before
        the fix, only ``GeneratorExit`` set the interrupted flag, so any
        other exceptional exit blocked on in-flight chunks in the
        generator's ``finally`` (``shutdown(wait=True)``)."""
        import repro.runtime.engine as engine_module

        shutdown_calls = []

        class RecordingPool(engine_module.ProcessPoolExecutor):
            def shutdown(self, wait=True, *, cancel_futures=False):
                shutdown_calls.append((wait, cancel_futures))
                super().shutdown(wait=wait, cancel_futures=cancel_futures)

        monkeypatch.setattr(
            engine_module, "ProcessPoolExecutor", RecordingPool
        )
        engine = make_engine(kb, 2, chunk_size=2)
        stream = engine.stream(corpus_html)
        first = next(stream)
        assert first.stats.index == 0
        with pytest.raises(exc_type):
            stream.throw(exc_type("mid-stream"))
        assert shutdown_calls == [(False, True)]

    def test_progress_callback_exception_cancels_inflight_work(
        self, kb, corpus_html, monkeypatch
    ):
        """An exception raised *inside* the generator body (here via the
        progress hook during merge) is an exceptional exit too, and must
        not fall through to a blocking pool shutdown."""
        import repro.runtime.engine as engine_module

        shutdown_calls = []

        class RecordingPool(engine_module.ProcessPoolExecutor):
            def shutdown(self, wait=True, *, cancel_futures=False):
                shutdown_calls.append((wait, cancel_futures))
                super().shutdown(wait=wait, cancel_futures=cancel_futures)

        monkeypatch.setattr(
            engine_module, "ProcessPoolExecutor", RecordingPool
        )

        def explode(stats):
            raise RuntimeError("progress hook failed")

        engine = make_engine(kb, 2, chunk_size=2)
        with pytest.raises(RuntimeError, match="progress hook failed"):
            list(engine.stream(corpus_html, progress=explode))
        assert shutdown_calls == [(False, True)]

    def test_normal_exhaustion_waits_for_pool(
        self, kb, corpus_html, monkeypatch
    ):
        import repro.runtime.engine as engine_module

        shutdown_calls = []

        class RecordingPool(engine_module.ProcessPoolExecutor):
            def shutdown(self, wait=True, *, cancel_futures=False):
                shutdown_calls.append((wait, cancel_futures))
                super().shutdown(wait=wait, cancel_futures=cancel_futures)

        monkeypatch.setattr(
            engine_module, "ProcessPoolExecutor", RecordingPool
        )
        engine = make_engine(kb, 2, chunk_size=3)
        list(engine.stream(corpus_html))
        assert shutdown_calls == [(True, False)]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_wall_seconds_advances_at_each_merge(
        self, kb, corpus_html, workers
    ):
        """``wall_seconds`` is recorded incrementally, so a stream that
        is abandoned (or still draining) reports time spent so far --
        not a stale 0.0 that only the generator's finally would fix."""
        engine = make_engine(kb, workers, chunk_size=2)
        stats = engine.new_stats()
        stream = engine.stream(corpus_html, stats=stats)
        next(stream)
        elapsed_after_first = stats.wall_seconds
        assert elapsed_after_first > 0
        next(stream)
        assert stats.wall_seconds >= elapsed_after_first
        stream.close()


@pytest.mark.slow
class TestDifferentialLargeCorpus:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_thirty_documents(self, kb, converter, workers):
        from repro.corpus.generator import ResumeCorpusGenerator

        html = ResumeCorpusGenerator(seed=7).generate_html(30)
        serial_xml, serial_frequent, serial_dtd = serial_baseline(
            kb, converter, html
        )
        engine = make_engine(kb, workers, chunk_size=8)
        run = engine.run(html, sup_threshold=0.4)
        assert run.corpus.xml_documents == serial_xml
        assert run.discovery.frequent.paths == serial_frequent.paths
        assert run.discovery.dtd.render() == serial_dtd.render()

"""Tests for repository persistence."""

import pytest

from repro.dom.node import Element
from repro.mapping.persistence import (
    load_repository,
    load_xml_document,
    save_repository,
)
from repro.mapping.repository import XMLRepository
from repro.schema.dtd import DTD

DTD_TEXT = """
<!ELEMENT resume ((#PCDATA), contact, education+)>
<!ELEMENT contact (#PCDATA)>
<!ELEMENT education ((#PCDATA), degree)>
<!ELEMENT degree (#PCDATA)>
"""


def conforming_doc(degree="B.S."):
    root = Element("RESUME")
    root.append_child(Element("CONTACT"))
    edu = root.append_child(Element("EDUCATION"))
    d = edu.append_child(Element("DEGREE"))
    d.set_val(degree)
    return root


@pytest.fixture()
def repo():
    repository = XMLRepository(DTD.parse(DTD_TEXT))
    repository.insert(conforming_doc("B.S."))
    repository.insert(conforming_doc("M.S."))
    return repository


class TestLoadXmlDocument:
    def test_round_trip_tags_and_vals(self):
        from repro.dom.serialize import to_xml_document

        doc = conforming_doc("Ph.D.")
        loaded = load_xml_document(to_xml_document(doc))
        assert loaded.tag == "RESUME"
        degree = loaded.element_children()[1].element_children()[0]
        assert degree.tag == "DEGREE"
        assert degree.get_val() == "Ph.D."

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            load_xml_document("   ")


class TestSaveLoad:
    def test_directory_layout(self, repo, tmp_path):
        target = save_repository(repo, tmp_path / "store")
        assert (target / "schema.dtd").exists()
        assert (target / "manifest.json").exists()
        assert len(list(target.glob("doc*.xml"))) == 2

    def test_round_trip(self, repo, tmp_path):
        save_repository(repo, tmp_path / "store")
        loaded = load_repository(tmp_path / "store")
        assert len(loaded) == 2
        assert loaded.dtd.root_name == "resume"
        assert loaded.values("RESUME/EDUCATION/DEGREE") == ["B.S.", "M.S."]

    def test_stats_restored(self, repo, tmp_path):
        save_repository(repo, tmp_path / "store")
        loaded = load_repository(tmp_path / "store")
        assert loaded.stats.documents == 2
        assert loaded.stats.conforming_on_arrival == 2

    def test_corrupted_document_detected(self, repo, tmp_path):
        target = save_repository(repo, tmp_path / "store")
        victim = sorted(target.glob("doc*.xml"))[0]
        victim.write_text(
            '<?xml version="1.0"?>\n<RESUME><HACKED/></RESUME>'
        )
        with pytest.raises(ValueError):
            load_repository(target)

    def test_unknown_format_rejected(self, repo, tmp_path):
        target = save_repository(repo, tmp_path / "store")
        import json

        manifest = json.loads((target / "manifest.json").read_text())
        manifest["format"] = "something-else"
        (target / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_repository(target)

    def test_loaded_repository_accepts_new_documents(self, repo, tmp_path):
        save_repository(repo, tmp_path / "store")
        loaded = load_repository(tmp_path / "store")
        loaded.insert(conforming_doc("MBA"))
        assert len(loaded) == 3

    def test_end_to_end_with_converted_corpus(self, kb, converter, tmp_path):
        from repro.corpus.generator import ResumeCorpusGenerator
        from repro.schema.dtd import derive_dtd
        from repro.schema.frequent import mine_frequent_paths
        from repro.schema.majority import MajoritySchema
        from repro.schema.paths import extract_paths

        docs = ResumeCorpusGenerator(seed=21).generate(12)
        results = [converter.convert(d.html) for d in docs]
        documents = [extract_paths(r.root) for r in results]
        schema = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(
                documents,
                sup_threshold=0.4,
                constraints=kb.constraints,
                candidate_labels=kb.concept_tags(),
            )
        )
        dtd = derive_dtd(schema, documents, optional_threshold=0.9)
        repository = XMLRepository(dtd)
        for result in results:
            repository.insert(result.root)
        save_repository(repository, tmp_path / "full")
        loaded = load_repository(tmp_path / "full")
        assert len(loaded) == len(repository)
        assert loaded.values("RESUME//INSTITUTION")

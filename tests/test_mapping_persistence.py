"""Tests for repository persistence."""

import pytest

from repro.dom.node import Element
from repro.mapping.persistence import (
    load_repository,
    load_xml_document,
    save_repository,
)
from repro.mapping.repository import XMLRepository
from repro.schema.dtd import DTD

DTD_TEXT = """
<!ELEMENT resume ((#PCDATA), contact, education+)>
<!ELEMENT contact (#PCDATA)>
<!ELEMENT education ((#PCDATA), degree)>
<!ELEMENT degree (#PCDATA)>
"""


def conforming_doc(degree="B.S."):
    root = Element("RESUME")
    root.append_child(Element("CONTACT"))
    edu = root.append_child(Element("EDUCATION"))
    d = edu.append_child(Element("DEGREE"))
    d.set_val(degree)
    return root


@pytest.fixture()
def repo():
    repository = XMLRepository(DTD.parse(DTD_TEXT))
    repository.insert(conforming_doc("B.S."))
    repository.insert(conforming_doc("M.S."))
    return repository


class TestLoadXmlDocument:
    def test_round_trip_tags_and_vals(self):
        from repro.dom.serialize import to_xml_document

        doc = conforming_doc("Ph.D.")
        loaded = load_xml_document(to_xml_document(doc))
        assert loaded.tag == "RESUME"
        degree = loaded.element_children()[1].element_children()[0]
        assert degree.tag == "DEGREE"
        assert degree.get_val() == "Ph.D."

    def test_empty_text_rejected(self):
        with pytest.raises(ValueError):
            load_xml_document("   ")


class TestSaveLoad:
    def test_directory_layout(self, repo, tmp_path):
        target = save_repository(repo, tmp_path / "store")
        assert (target / "schema.dtd").exists()
        assert (target / "manifest.json").exists()
        assert len(list(target.glob("doc*.xml"))) == 2

    def test_round_trip(self, repo, tmp_path):
        save_repository(repo, tmp_path / "store")
        loaded = load_repository(tmp_path / "store")
        assert len(loaded) == 2
        assert loaded.dtd.root_name == "resume"
        assert loaded.values("RESUME/EDUCATION/DEGREE") == ["B.S.", "M.S."]

    def test_stats_restored(self, repo, tmp_path):
        save_repository(repo, tmp_path / "store")
        loaded = load_repository(tmp_path / "store")
        assert loaded.stats.documents == 2
        assert loaded.stats.conforming_on_arrival == 2

    def test_corrupted_document_detected(self, repo, tmp_path):
        target = save_repository(repo, tmp_path / "store")
        victim = sorted(target.glob("doc*.xml"))[0]
        victim.write_text(
            '<?xml version="1.0"?>\n<RESUME><HACKED/></RESUME>'
        )
        with pytest.raises(ValueError):
            load_repository(target)

    def test_unknown_format_rejected(self, repo, tmp_path):
        target = save_repository(repo, tmp_path / "store")
        import json

        manifest = json.loads((target / "manifest.json").read_text())
        manifest["format"] = "something-else"
        (target / "manifest.json").write_text(json.dumps(manifest))
        with pytest.raises(ValueError):
            load_repository(target)

    def test_loaded_repository_accepts_new_documents(self, repo, tmp_path):
        save_repository(repo, tmp_path / "store")
        loaded = load_repository(tmp_path / "store")
        loaded.insert(conforming_doc("MBA"))
        assert len(loaded) == 3

    def test_end_to_end_with_converted_corpus(self, kb, converter, tmp_path):
        from repro.corpus.generator import ResumeCorpusGenerator
        from repro.schema.dtd import derive_dtd
        from repro.schema.frequent import mine_frequent_paths
        from repro.schema.majority import MajoritySchema
        from repro.schema.paths import extract_paths

        docs = ResumeCorpusGenerator(seed=21).generate(12)
        results = [converter.convert(d.html) for d in docs]
        documents = [extract_paths(r.root) for r in results]
        schema = MajoritySchema.from_frequent_paths(
            mine_frequent_paths(
                documents,
                sup_threshold=0.4,
                constraints=kb.constraints,
                candidate_labels=kb.concept_tags(),
            )
        )
        dtd = derive_dtd(schema, documents, optional_threshold=0.9)
        repository = XMLRepository(dtd)
        for result in results:
            repository.insert(result.root)
        save_repository(repository, tmp_path / "full")
        loaded = load_repository(tmp_path / "full")
        assert len(loaded) == len(repository)
        assert loaded.values("RESUME//INSTITUTION")


class TestMultiRootRejection:
    def test_multiple_roots_is_hard_error(self):
        with pytest.raises(ValueError, match="exactly one root"):
            load_xml_document("<RESUME></RESUME><RESUME></RESUME>")

    def test_error_names_the_tags(self):
        with pytest.raises(ValueError, match="resume, contact"):
            load_xml_document("<RESUME/><CONTACT/>")

    def test_single_root_with_declaration_ok(self):
        root = load_xml_document('<?xml version="1.0"?>\n<RESUME/>')
        assert root.tag == "RESUME"


class TestCaseRestoreContract:
    """Tags come back upper-cased: the pinned contract for converted
    documents, whose element names are upper-case concept names."""

    def test_serializer_output_round_trips_exactly(self):
        from repro.dom.serialize import to_xml_document

        doc = conforming_doc("B.S.")
        text = to_xml_document(doc)
        reloaded = load_xml_document(text)
        assert to_xml_document(reloaded) == text

    def test_mixed_case_input_is_uppercased(self):
        root = load_xml_document("<Resume><Contact/></Resume>")
        assert root.tag == "RESUME"
        assert root.element_children()[0].tag == "CONTACT"


class TestStatsFallback:
    def _reload_without(self, repo, tmp_path, dropped):
        import json

        target = save_repository(repo, tmp_path / "store")
        manifest_path = target / "manifest.json"
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        for key in dropped:
            manifest["stats"].pop(key, None)
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        return load_repository(target)

    def test_documents_fallback_counts_rejected(self, tmp_path):
        """Rejected documents are never written to disk, so the fallback
        total must be stored + rejected, not just the stored count."""
        repository = XMLRepository(DTD.parse(DTD_TEXT))
        repository.insert(conforming_doc("B.S."))
        repository.insert(conforming_doc("M.S."))
        repository.stats.rejected = 3  # as if 3 blew the repair budget
        loaded = self._reload_without(
            repository, tmp_path, ["documents", "conforming_on_arrival"]
        )
        assert loaded.stats.documents == 5
        assert loaded.stats.rejected == 3
        assert loaded.stats.conforming_on_arrival == 2

    def test_conforming_fallback_excludes_repaired(self, tmp_path):
        repository = XMLRepository(DTD.parse(DTD_TEXT))
        repository.insert(conforming_doc("B.S."))
        repository.insert(conforming_doc("M.S."))
        repository.stats.repaired = 1
        repository.stats.conforming_on_arrival = 1
        loaded = self._reload_without(
            repository, tmp_path, ["documents", "conforming_on_arrival"]
        )
        assert loaded.stats.conforming_on_arrival == 1
        assert loaded.stats.repaired == 1
        # repair_rate stays consistent: accepted == stored documents.
        assert loaded.stats.repair_rate == repository.stats.repair_rate

    def test_full_stats_round_trip(self, tmp_path):
        repository = XMLRepository(DTD.parse(DTD_TEXT))
        repository.insert(conforming_doc("B.S."))
        repository.stats.repaired = 1
        repository.stats.rejected = 2
        repository.stats.total_repair_operations = 9
        repository.stats.documents = 4
        repository.stats.conforming_on_arrival = 0
        save_repository(repository, tmp_path / "store")
        loaded = load_repository(tmp_path / "store")
        assert loaded.stats.documents == 4
        assert loaded.stats.conforming_on_arrival == 0
        assert loaded.stats.repaired == 1
        assert loaded.stats.rejected == 2
        assert loaded.stats.total_repair_operations == 9


class TestSchemaVersionManifest:
    def test_schema_version_round_trips(self, repo, tmp_path):
        repo.schema_version = 4
        save_repository(repo, tmp_path / "store")
        assert load_repository(tmp_path / "store").schema_version == 4

    def test_absent_schema_version_loads_as_none(self, repo, tmp_path):
        save_repository(repo, tmp_path / "store")
        assert load_repository(tmp_path / "store").schema_version is None

    def test_explicit_override_wins(self, repo, tmp_path):
        repo.schema_version = 4
        save_repository(repo, tmp_path / "store", schema_version=9)
        assert load_repository(tmp_path / "store").schema_version == 9


class TestNonAsciiRoundTrip:
    def test_round_trip_under_ascii_locale(self, tmp_path):
        """Repository round-trips must not depend on the platform
        locale: run a save/load in a subprocess forced to an ASCII
        preferred encoding, with PCDATA carrying non-ASCII text."""
        import os
        import subprocess
        import sys
        import textwrap

        script = textwrap.dedent(
            """
            from repro.dom.node import Element
            from repro.mapping.persistence import (
                load_repository,
                save_repository,
            )
            from repro.mapping.repository import XMLRepository
            from repro.schema.dtd import DTD

            dtd = DTD.parse(
                "<!ELEMENT resume ((#PCDATA), contact)>"
                "<!ELEMENT contact (#PCDATA)>"
            )
            value = "Jos\\u00e9 \\u00c5str\\u00f6m \\u2014 \\u65e5\\u672c\\u8a9e"
            root = Element("RESUME")
            root.append_child(Element("CONTACT")).set_val(value)
            repository = XMLRepository(dtd)
            repository.insert(root)
            save_repository(repository, "store")
            loaded = load_repository("store")
            assert loaded.values("RESUME/CONTACT") == [value], "mismatch"
            print("OK")
            """
        )
        env = dict(os.environ)
        env.update({
            "LC_ALL": "C",
            "LANG": "C",
            "PYTHONUTF8": "0",
            "PYTHONIOENCODING": "utf-8",
            "PYTHONPATH": os.pathsep.join(sys.path),
        })
        proc = subprocess.run(
            [sys.executable, "-c", script],
            cwd=tmp_path,
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "OK" in proc.stdout

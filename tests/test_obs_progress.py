"""ProgressReporter: rate limiting, ETA rendering, TTY gating."""

from __future__ import annotations

import io

from repro.obs.progress import ProgressReporter


class FakeStats:
    def __init__(self, documents=0, documents_failed=0, wall_seconds=0.0):
        self.documents = documents
        self.documents_failed = documents_failed
        self.wall_seconds = wall_seconds


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TTYStream(io.StringIO):
    def isatty(self):
        return True


def make(total=100, *, enabled=True, min_interval=0.2, stream=None):
    clock = FakeClock()
    stream = stream if stream is not None else io.StringIO()
    reporter = ProgressReporter(
        total=total, stream=stream, enabled=enabled,
        min_interval=min_interval, clock=clock,
    )
    return reporter, stream, clock


class TestRendering:
    def test_line_has_counts_percent_rate_and_eta(self):
        reporter, _, _ = make(total=1000)
        line = reporter.format_line(done=312, failed=0, elapsed=312 / 847.2)
        assert "312/1000 docs" in line
        assert "31%" in line
        assert "847.2 docs/s" in line
        assert "ETA 0.8s" in line
        assert "failed" not in line

    def test_failed_documents_shown(self):
        reporter, _, _ = make(total=10)
        line = reporter.format_line(done=8, failed=2, elapsed=1.0)
        assert "(2 failed)" in line
        assert "100%" in line  # done + failed over total

    def test_unknown_total_drops_percent_and_eta(self):
        reporter, _, _ = make(total=None)
        line = reporter.format_line(done=7, failed=0, elapsed=1.0)
        assert "7 docs" in line
        assert "%" not in line
        assert "ETA" not in line

    def test_overwrites_with_carriage_return_and_padding(self):
        reporter, stream, clock = make(min_interval=0.0)
        reporter(FakeStats(50, 0, 1.0))
        clock.advance(1.0)
        reporter(FakeStats(51, 0, 100.0))  # slower rate -> shorter line
        text = stream.getvalue()
        assert text.count("\r") == 2
        first, second = text.split("\r")[1:]
        assert len(second) >= len(first)  # padding hides stale chars


class TestDegenerateRates:
    def test_zero_elapsed_does_not_divide_by_zero(self):
        reporter, _, _ = make(total=100)
        line = reporter.format_line(done=5, failed=0, elapsed=0.0)
        assert "docs/s" in line  # rendered, finite

    def test_first_tick_rate_is_floored_not_garbage(self):
        """A merge microseconds into the run must not extrapolate an
        absurd rate (and a near-zero ETA) from sub-ms elapsed time."""
        from repro.obs.progress import MIN_RATE_ELAPSED

        reporter, _, _ = make(total=1_000_000)
        line = reporter.format_line(done=2, failed=0, elapsed=1e-7)
        floored = 2 / MIN_RATE_ELAPSED
        assert f"{floored:.1f} docs/s" in line

    def test_zero_throughput_suppresses_eta(self):
        reporter, _, _ = make(total=100)
        line = reporter.format_line(done=0, failed=3, elapsed=5.0)
        assert "ETA" not in line
        assert "0.0 docs/s" in line

    def test_negative_elapsed_is_safe(self):
        # Clock skew should never crash the reporter.
        reporter, _, _ = make(total=100)
        line = reporter.format_line(done=5, failed=0, elapsed=-1.0)
        assert "docs/s" in line


class TestRateLimit:
    def test_renders_at_most_once_per_interval(self):
        reporter, _, clock = make(min_interval=0.2)
        for _ in range(100):
            reporter(FakeStats(1, 0, 1.0))
            clock.advance(0.01)
        assert reporter.renders == 5  # 1 second / 0.2

    def test_finish_ignores_rate_limit_and_terminates_line(self):
        reporter, stream, _ = make(min_interval=1000.0)
        reporter(FakeStats(10, 0, 1.0))
        reporter.finish(FakeStats(100, 0, 2.0))
        text = stream.getvalue()
        assert "100/100 docs" in text
        assert text.endswith("\n")

    def test_finish_is_idempotent(self):
        reporter, stream, _ = make()
        reporter.finish(FakeStats(5, 0, 1.0))
        reporter.finish(FakeStats(5, 0, 1.0))
        assert stream.getvalue().count("\n") == 1

    def test_context_manager_finishes(self):
        reporter, stream, _ = make(min_interval=0.0)
        with reporter:
            reporter(FakeStats(3, 0, 1.0))
        assert stream.getvalue().endswith("\n")

    def test_finish_without_renders_writes_nothing(self):
        """A defensive finish() on a run that never drew a line (e.g.
        an exception before the first merge) must not emit a stray
        newline into captured stderr."""
        reporter, stream, _ = make()
        reporter.finish()
        assert stream.getvalue() == ""

    def test_finish_after_render_terminates_line_exactly_once(self):
        reporter, stream, _ = make(min_interval=0.0)
        reporter(FakeStats(4, 0, 1.0))
        reporter.finish()
        reporter.finish()
        text = stream.getvalue()
        assert text.endswith("\n")
        assert text.count("\n") == 1


class TestEnablement:
    def test_disabled_writes_nothing(self):
        reporter, stream, _ = make(enabled=False, min_interval=0.0)
        reporter(FakeStats(5, 0, 1.0))
        reporter.finish(FakeStats(5, 0, 1.0))
        assert stream.getvalue() == ""
        assert reporter.renders == 0

    def test_auto_disabled_off_tty(self):
        reporter = ProgressReporter(stream=io.StringIO())
        assert reporter.enabled is False

    def test_auto_enabled_on_tty(self):
        reporter = ProgressReporter(stream=TTYStream())
        assert reporter.enabled is True

    def test_forced_on_overrides_non_tty(self):
        reporter = ProgressReporter(stream=io.StringIO(), enabled=True)
        assert reporter.enabled is True


class TestEngineHook:
    def test_engine_calls_reporter_per_chunk_merge(self, kb):
        from repro.corpus.generator import ResumeCorpusGenerator
        from repro.runtime.engine import CorpusEngine, EngineConfig

        html = ResumeCorpusGenerator(seed=11).generate_html(6)
        stream = io.StringIO()
        reporter = ProgressReporter(
            total=len(html), stream=stream, enabled=True, min_interval=0.0
        )
        engine = CorpusEngine(
            kb, engine_config=EngineConfig(max_workers=1, chunk_size=2)
        )
        result = engine.convert_corpus(html, progress=reporter)
        reporter.finish(result.stats)
        assert reporter.renders == 4  # 3 chunk merges + finish
        assert "6/6 docs" in stream.getvalue()

"""Tests for schema comparison / drift measurement."""

import pytest

from repro.dom.node import Element
from repro.schema.diff import diff_schemas, schema_stability
from repro.schema.frequent import mine_frequent_paths
from repro.schema.majority import MajoritySchema
from repro.schema.paths import extract_paths


def tree(spec):
    tag, kids = spec
    e = Element(tag)
    for k in kids:
        e.append_child(tree(k))
    return e


def schema_of(*specs, sup=0.5):
    docs = [extract_paths(tree(s)) for s in specs]
    return MajoritySchema.from_frequent_paths(
        mine_frequent_paths(docs, sup_threshold=sup)
    )


class TestDiff:
    def test_identical_schemas(self):
        a = schema_of(("r", [("x", [])]), ("r", [("x", [])]))
        b = schema_of(("r", [("x", [])]), ("r", [("x", [])]))
        diff = diff_schemas(a, b)
        assert diff.is_identical
        assert diff.path_jaccard == 1.0
        assert diff.support_drift == {}

    def test_added_and_removed_paths(self):
        old = schema_of(("r", [("x", [])]), ("r", [("x", [])]))
        new = schema_of(("r", [("y", [])]), ("r", [("y", [])]))
        diff = diff_schemas(old, new)
        assert diff.added == {("r", "y")}
        assert diff.removed == {("r", "x")}
        assert diff.common == {("r",)}
        assert not diff.is_identical

    def test_support_drift_detected(self):
        old = schema_of(
            ("r", [("x", [])]), ("r", [("x", [])]), ("r", [("x", [])]),
        )
        new = schema_of(
            ("r", [("x", [])]), ("r", [("x", [])]), ("r", []),
            sup=0.5,
        )
        diff = diff_schemas(old, new, drift_threshold=0.1)
        assert ("r", "x") in diff.support_drift
        before, after = diff.support_drift[("r", "x")]
        assert before == 1.0
        assert after == pytest.approx(2 / 3)

    def test_drift_threshold_filters(self):
        old = schema_of(("r", [("x", [])]), ("r", [("x", [])]))
        new = schema_of(
            ("r", [("x", [])]), ("r", [("x", [])]), ("r", [("x", [])]),
        )
        diff = diff_schemas(old, new, drift_threshold=0.5)
        assert diff.support_drift == {}

    def test_summary_string(self):
        old = schema_of(("r", [("x", [])]), ("r", [("x", [])]))
        new = schema_of(("r", [("y", [])]), ("r", [("y", [])]))
        text = diff_schemas(old, new).summary()
        assert "+1" in text and "-1" in text


class TestStability:
    def test_identical_is_one(self):
        a = schema_of(("r", [("x", [])]), ("r", [("x", [])]))
        assert schema_stability(a, a) == 1.0

    def test_disjoint_is_zero_ish(self):
        a = schema_of(("r", [("x", [])]), ("r", [("x", [])]))
        b = schema_of(("q", [("y", [])]), ("q", [("y", [])]))
        assert schema_stability(a, b) == 0.0

    def test_disjoint_corpus_samples_are_stable(self, kb, converter):
        """Re-discovery over two halves of the same corpus barely moves
        the schema -- the re-wrapping robustness the intro argues for."""
        from repro.corpus.generator import ResumeCorpusGenerator

        docs = ResumeCorpusGenerator(seed=1966).generate(60)
        halves = []
        for chunk in (docs[:30], docs[30:]):
            documents = [
                extract_paths(converter.convert(d.html).root) for d in chunk
            ]
            halves.append(
                MajoritySchema.from_frequent_paths(
                    mine_frequent_paths(
                        documents,
                        sup_threshold=0.4,
                        constraints=kb.constraints,
                        candidate_labels=kb.concept_tags(),
                    )
                )
            )
        stability = schema_stability(halves[0], halves[1])
        assert stability > 0.75

    def test_format_change_lowers_stability(self, kb, converter):
        """A corpus whose authorship mix flips measurably drifts."""
        from repro.corpus.generator import ResumeCorpusGenerator
        from repro.corpus.styles import STYLES

        def schema_for_style(style):
            weights = {s: (1.0 if s == style else 0.0) for s in STYLES}
            docs = ResumeCorpusGenerator(seed=5, style_weights=weights).generate(20)
            documents = [
                extract_paths(converter.convert(d.html).root) for d in docs
            ]
            return MajoritySchema.from_frequent_paths(
                mine_frequent_paths(
                    documents,
                    sup_threshold=0.4,
                    constraints=kb.constraints,
                    candidate_labels=kb.concept_tags(),
                )
            )

        same = schema_stability(
            schema_for_style("heading-list"), schema_for_style("heading-list")
        )
        different = schema_stability(
            schema_for_style("heading-list"), schema_for_style("font-soup")
        )
        assert different < same

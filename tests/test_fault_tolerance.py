"""Fault-injection harness: the robustness counterpart to the
differential tests in ``test_runtime_engine.py``.

Two chaos hooks on :class:`ConversionConfig` drive the injections:

* ``chaos_fail_marker`` -- the pipeline raises ``InjectedFaultError``
  (stage ``"inject"``) for any document containing the marker: a
  deterministic poison document.
* ``chaos_kill_marker`` -- a *pool worker* handed a chunk containing the
  marker dies with ``os._exit(1)``: no exception, no cleanup, the way an
  OOM kill or segfault looks from the parent.

The invariants enforced here:

* k poison documents under ``error_policy="skip"`` produce XML and a
  DTD byte-identical to the serial conversion of the survivors, at
  worker counts 1/2/4, with all k failures reported with doc id, corpus
  index, and pipeline stage;
* an injected worker kill recovers via pool rebuild + chunk bisection,
  completes the run with exactly the killer document failed (and
  quarantined, under that policy), and leaves the survivors
  byte-identical to the serial path;
* the default fail-fast behavior is unchanged: poison documents raise,
  worker kills surface as ``BrokenProcessPool``.
"""

from __future__ import annotations

import json

import pytest
from concurrent.futures.process import BrokenProcessPool

from repro.convert.config import ConversionConfig
from repro.convert.errors import (
    TRACEBACK_LIMIT,
    DocumentFailure,
    ErrorPolicy,
    InjectedFaultError,
    PipelineStageError,
    failure_from_exception,
    truncate_traceback,
    write_quarantine,
)
from repro.convert.pipeline import DocumentConverter
from repro.corpus.generator import ResumeCorpusGenerator
from repro.obs.provenance import ProvenanceLog
from repro.obs.validate import load_schema, validate_record
from repro.runtime.engine import CorpusEngine, EngineConfig
from repro.runtime.faults import (
    PoolRebuildExhausted,
    RecoveryBudget,
    split_segment,
    worker_crash_failure,
)

POISON = "__CHAOS_POISON__"
KILL = "__CHAOS_KILL__"
WORKER_COUNTS = [1, 2, 4]
POOL_WORKER_COUNTS = [2, 4]


@pytest.fixture(scope="module")
def corpus_html():
    return ResumeCorpusGenerator(seed=424).generate_html(10)


def tainted(corpus, positions, marker):
    """The corpus with ``marker`` appended to the named documents."""
    return [
        html + f"<!-- {marker} -->" if position in positions else html
        for position, html in enumerate(corpus)
    ]


def survivors_of(corpus, positions):
    return [
        html
        for position, html in enumerate(corpus)
        if position not in positions
    ]


def chaos_engine(
    kb,
    workers,
    *,
    policy="skip",
    chunk_size=3,
    fail_marker=None,
    kill_marker=None,
    quarantine_dir=None,
    max_pool_rebuilds=16,
):
    return CorpusEngine(
        kb,
        ConversionConfig(
            chaos_fail_marker=fail_marker, chaos_kill_marker=kill_marker
        ),
        engine_config=EngineConfig(
            max_workers=workers,
            chunk_size=chunk_size,
            error_policy=policy,
            quarantine_dir=quarantine_dir,
            max_pool_rebuilds=max_pool_rebuilds,
        ),
    )


def serial_xml(converter, corpus):
    return [result.to_xml() for result in converter.convert_many(corpus)]


# -- the policy / failure vocabulary ------------------------------------------


class TestErrorPolicy:
    def test_coerce_mode_strings(self):
        assert ErrorPolicy.coerce("skip").mode == "skip"
        assert ErrorPolicy.coerce("fail-fast").is_fail_fast
        assert ErrorPolicy.coerce("fail_fast").is_fail_fast
        assert ErrorPolicy.coerce(None).is_fail_fast

    def test_coerce_passes_instances_through(self):
        policy = ErrorPolicy.skip()
        assert ErrorPolicy.coerce(policy) is policy

    def test_coerce_quarantine_carries_directory(self, tmp_path):
        policy = ErrorPolicy.coerce("quarantine", quarantine_dir=tmp_path)
        assert policy.mode == "quarantine"
        assert policy.quarantine_dir == str(tmp_path)
        assert policy.captures_source

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ErrorPolicy("retry")

    def test_quarantine_requires_directory(self):
        with pytest.raises(ValueError):
            ErrorPolicy("quarantine")
        with pytest.raises(ValueError):
            ErrorPolicy.coerce("quarantine")

    def test_only_quarantine_captures_source(self):
        assert not ErrorPolicy.skip().captures_source
        assert not ErrorPolicy.fail_fast().captures_source


class TestDocumentFailure:
    def make_exception(self):
        try:
            try:
                raise ValueError("inner cause")
            except ValueError as cause:
                raise PipelineStageError("tokenize", "doc0003") from cause
        except PipelineStageError as exc:
            return exc

    def test_failure_unwraps_stage_error(self):
        failure = failure_from_exception("doc0003", 3, self.make_exception())
        assert failure.stage == "tokenize"
        assert failure.error_type == "ValueError"
        assert failure.message == "inner cause"
        assert "ValueError: inner cause" in failure.traceback
        assert failure.source is None

    def test_stage_error_survives_pickling(self):
        """Fail-fast in a pool worker ships the exception across the
        process boundary; stage/doc_id must survive the round trip."""
        import pickle

        clone = pickle.loads(pickle.dumps(self.make_exception()))
        assert clone.stage == "tokenize"
        assert clone.doc_id == "doc0003"
        assert str(clone) == str(self.make_exception())

    def test_plain_exception_attributed_to_convert(self):
        failure = failure_from_exception("doc0000", 0, KeyError("boom"))
        assert failure.stage == "convert"
        assert failure.error_type == "KeyError"

    def test_to_json_excludes_source(self):
        failure = failure_from_exception(
            "doc0001", 1, ValueError("x"), source="<html>secret</html>"
        )
        record = failure.to_json()
        assert "source" not in record
        assert record["doc_id"] == "doc0001"
        assert record["index"] == 1
        assert record["stage"] == "convert"

    def test_traceback_tail_truncated(self):
        exc = ValueError("m" * (4 * TRACEBACK_LIMIT))
        text = truncate_traceback(exc)
        assert text.startswith("...[truncated]...\n")
        assert len(text) <= TRACEBACK_LIMIT + len("...[truncated]...\n")

    def test_write_quarantine(self, tmp_path):
        failure = failure_from_exception(
            "doc0042", 42, ValueError("bad"), source="<p>poison</p>"
        )
        error_path = write_quarantine(tmp_path, failure)
        assert (tmp_path / "doc0042.html").read_text() == "<p>poison</p>"
        record = json.loads(error_path.read_text())
        assert record["stage"] == "convert"
        assert record["error_type"] == "ValueError"


class TestRecoveryPrimitives:
    def test_split_segment_preserves_bases(self):
        segments = split_segment(6, ["a", "b", "c", "d", "e"])
        assert segments == [(6, ["a", "b"]), (8, ["c", "d", "e"])]

    def test_recovery_budget_bounds_rebuilds(self):
        budget = RecoveryBudget(limit=2)
        budget.spend()
        budget.spend()
        with pytest.raises(PoolRebuildExhausted):
            budget.spend()

    def test_worker_crash_failure_record(self):
        failure = worker_crash_failure("doc0007", 7, source="<p>x</p>")
        assert failure.stage == "worker"
        assert failure.error_type == "WorkerCrash"
        assert failure.source == "<p>x</p>"


# -- serial path: convert_many under a policy ---------------------------------


class TestConvertManyPolicies:
    @pytest.fixture()
    def chaos_converter(self, kb):
        return DocumentConverter(
            kb, ConversionConfig(chaos_fail_marker=POISON)
        )

    def test_default_fail_fast_raises_with_stage(
        self, chaos_converter, corpus_html
    ):
        corpus = tainted(corpus_html, {1}, POISON)
        with pytest.raises(PipelineStageError) as excinfo:
            chaos_converter.convert_many(corpus)
        assert excinfo.value.stage == "inject"
        assert isinstance(excinfo.value.__cause__, InjectedFaultError)

    def test_skip_equals_serial_conversion_of_survivors(
        self, chaos_converter, corpus_html
    ):
        poison_at = {2, 5}
        corpus = tainted(corpus_html, poison_at, POISON)
        failures: list[DocumentFailure] = []
        results = chaos_converter.convert_many(
            corpus, error_policy="skip", failures=failures
        )
        expected = serial_xml(
            chaos_converter, survivors_of(corpus_html, poison_at)
        )
        assert [result.to_xml() for result in results] == expected
        assert [(f.doc_id, f.index, f.stage) for f in failures] == [
            ("doc0002", 2, "inject"),
            ("doc0005", 5, "inject"),
        ]
        assert all(f.source is None for f in failures)

    def test_quarantine_writes_source_and_record(
        self, chaos_converter, corpus_html, tmp_path
    ):
        corpus = tainted(corpus_html, {4}, POISON)
        failures: list[DocumentFailure] = []
        results = chaos_converter.convert_many(
            corpus,
            error_policy=ErrorPolicy.quarantine(tmp_path),
            failures=failures,
        )
        assert len(results) == len(corpus) - 1
        assert failures[0].source == corpus[4]
        assert (tmp_path / "doc0004.html").read_text() == corpus[4]
        record = json.loads((tmp_path / "doc0004.error.json").read_text())
        assert record["stage"] == "inject"
        assert record["error_type"] == "InjectedFaultError"


# -- engine: poison documents under skip --------------------------------------


class TestPoisonDifferential:
    POISON_AT = frozenset({2, 5, 8})

    @pytest.fixture(scope="class")
    def poisoned(self, corpus_html):
        return tainted(corpus_html, self.POISON_AT, POISON)

    @pytest.fixture(scope="class")
    def survivor_xml(self, converter, corpus_html):
        return serial_xml(converter, survivors_of(corpus_html, self.POISON_AT))

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_xml_byte_identical_to_serial_survivors(
        self, kb, poisoned, survivor_xml, workers
    ):
        engine = chaos_engine(kb, workers, fail_marker=POISON)
        result = engine.convert_corpus(poisoned)
        assert result.xml_documents == survivor_xml
        assert [(f.doc_id, f.index, f.stage) for f in result.failures] == [
            ("doc0002", 2, "inject"),
            ("doc0005", 5, "inject"),
            ("doc0008", 8, "inject"),
        ]

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_failure_counters(self, kb, poisoned, workers):
        engine = chaos_engine(kb, workers, fail_marker=POISON)
        stats = engine.convert_corpus(poisoned).stats
        assert stats.documents == len(poisoned) - len(self.POISON_AT)
        assert stats.documents_failed == len(self.POISON_AT)
        assert stats.failures_by_stage == {"inject": len(self.POISON_AT)}
        assert stats.pool_rebuilds == 0

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_dtd_identical_to_serial_survivors(
        self, kb, converter, poisoned, corpus_html, workers
    ):
        from repro.schema.dtd import derive_dtd
        from repro.schema.frequent import mine_frequent_paths
        from repro.schema.majority import MajoritySchema
        from repro.schema.paths import extract_paths

        survivors = survivors_of(corpus_html, self.POISON_AT)
        documents = [
            extract_paths(result.root)
            for result in converter.convert_many(survivors)
        ]
        frequent = mine_frequent_paths(
            documents,
            sup_threshold=0.4,
            constraints=kb.constraints,
            candidate_labels=kb.concept_tags(),
        )
        dtd = derive_dtd(MajoritySchema.from_frequent_paths(frequent), documents)

        engine = chaos_engine(kb, workers, fail_marker=POISON)
        run = engine.run(poisoned, sup_threshold=0.4)
        assert run.discovery is not None
        assert run.discovery.frequent.paths == frequent.paths
        assert run.discovery.dtd.render() == dtd.render()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_default_fail_fast_unchanged(self, kb, poisoned, workers):
        engine = chaos_engine(
            kb, workers, policy="fail_fast", fail_marker=POISON
        )
        with pytest.raises(PipelineStageError):
            engine.convert_corpus(poisoned)

    def test_summary_rows_report_failures(self, kb, poisoned):
        engine = chaos_engine(kb, 2, fail_marker=POISON)
        rows = dict(engine.convert_corpus(poisoned).stats.summary_rows())
        assert rows["documents failed"] == "3"
        assert rows["  failed @ inject"] == "3"

    def test_provenance_error_events_validate(self, kb, poisoned):
        engine = chaos_engine(kb, 2, fail_marker=POISON)
        provenance = ProvenanceLog()
        engine.convert_corpus(poisoned, provenance=provenance)
        errors = provenance.by_kind("error")
        assert [event["doc"] for event in errors] == [
            "doc0002",
            "doc0005",
            "doc0008",
        ]
        assert {event["stage"] for event in errors} == {"inject"}
        schema = load_schema()
        for event in errors:
            assert validate_record(event, schema) == []

    def test_quarantine_policy_writes_poison_documents(
        self, kb, poisoned, survivor_xml, tmp_path
    ):
        engine = chaos_engine(
            kb,
            2,
            policy="quarantine",
            quarantine_dir=tmp_path,
            fail_marker=POISON,
        )
        result = engine.convert_corpus(poisoned)
        assert result.xml_documents == survivor_xml
        saved = sorted(path.name for path in tmp_path.iterdir())
        assert saved == [
            "doc0002.error.json",
            "doc0002.html",
            "doc0005.error.json",
            "doc0005.html",
            "doc0008.error.json",
            "doc0008.html",
        ]
        assert (tmp_path / "doc0005.html").read_text() == poisoned[5]


# -- engine: worker crashes ---------------------------------------------------


class TestWorkerCrashRecovery:
    KILLER = 4

    @pytest.fixture(scope="class")
    def killed(self, corpus_html):
        return tainted(corpus_html, {self.KILLER}, KILL)

    @pytest.fixture(scope="class")
    def survivor_xml(self, converter, corpus_html):
        return serial_xml(converter, survivors_of(corpus_html, {self.KILLER}))

    @pytest.mark.parametrize("workers", POOL_WORKER_COUNTS)
    def test_recovers_and_matches_serial_survivors(
        self, kb, killed, survivor_xml, workers
    ):
        engine = chaos_engine(kb, workers, kill_marker=KILL)
        result = engine.convert_corpus(killed)
        assert result.xml_documents == survivor_xml
        assert [(f.doc_id, f.index, f.stage, f.error_type) for f in result.failures] == [
            (f"doc{self.KILLER:04d}", self.KILLER, "worker", "WorkerCrash")
        ]
        assert result.stats.pool_rebuilds >= 1
        assert result.stats.documents == len(killed) - 1
        assert result.stats.failures_by_stage == {"worker": 1}

    def test_quarantine_saves_exactly_the_killer(
        self, kb, killed, survivor_xml, tmp_path
    ):
        engine = chaos_engine(
            kb, 2, policy="quarantine", quarantine_dir=tmp_path, kill_marker=KILL
        )
        result = engine.convert_corpus(killed)
        assert result.xml_documents == survivor_xml
        saved = sorted(path.name for path in tmp_path.iterdir())
        assert saved == ["doc0004.error.json", "doc0004.html"]
        assert (tmp_path / "doc0004.html").read_text() == killed[self.KILLER]
        record = json.loads((tmp_path / "doc0004.error.json").read_text())
        assert record["stage"] == "worker"
        assert record["error_type"] == "WorkerCrash"

    def test_two_killers_in_one_chunk_are_both_isolated(
        self, kb, converter, corpus_html
    ):
        killers = {3, 4}
        corpus = tainted(corpus_html, killers, KILL)
        engine = chaos_engine(kb, 2, kill_marker=KILL)
        result = engine.convert_corpus(corpus)
        assert result.xml_documents == serial_xml(
            converter, survivors_of(corpus_html, killers)
        )
        assert sorted(f.index for f in result.failures) == sorted(killers)
        assert all(f.stage == "worker" for f in result.failures)

    def test_fail_fast_surfaces_broken_pool(self, kb, killed):
        engine = chaos_engine(kb, 2, policy="fail_fast", kill_marker=KILL)
        with pytest.raises(BrokenProcessPool):
            engine.convert_corpus(killed)

    def test_recovery_budget_exhaustion_raises(self, kb, killed):
        engine = chaos_engine(
            kb, 2, kill_marker=KILL, max_pool_rebuilds=0
        )
        with pytest.raises(PoolRebuildExhausted):
            engine.convert_corpus(killed)


# -- pathological inputs ------------------------------------------------------


PATHOLOGICAL = [
    "",  # empty document
    "<html><head><title>only a head</title></head></html>",
    "<div><b>unclosed <i>mismatched</div></b>",
    "\x00\x01\x02 binary \xff garbage \x00 <p>tail</p>",
    "<div>" * 120 + "deep" + "</div>" * 120,
]


class TestPathologicalInputs:
    @pytest.fixture(scope="class")
    def mixed_corpus(self, corpus_html):
        """Pathological documents interleaved with healthy resumes."""
        corpus = list(corpus_html[:5])
        for position, pathological in enumerate(PATHOLOGICAL):
            corpus.insert(2 * position + 1, pathological)
        return corpus

    @pytest.fixture(scope="class")
    def serial_skip(self, converter, mixed_corpus):
        failures: list[DocumentFailure] = []
        results = converter.convert_many(
            mixed_corpus, error_policy="skip", failures=failures
        )
        return [result.to_xml() for result in results], failures

    def test_serial_skip_accounts_for_every_document(
        self, mixed_corpus, serial_skip
    ):
        xml, failures = serial_skip
        assert len(xml) + len(failures) == len(mixed_corpus)
        for failure in failures:
            assert failure.stage
            assert failure.error_type

    def test_survivors_convert_identically_alone(
        self, converter, mixed_corpus, serial_skip
    ):
        xml, failures = serial_skip
        failed = {failure.index for failure in failures}
        alone = [
            converter.convert(source).to_xml()
            for position, source in enumerate(mixed_corpus)
            if position not in failed
        ]
        assert xml == alone

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_engine_equals_serial_skip(
        self, kb, mixed_corpus, serial_skip, workers
    ):
        serial, failures = serial_skip
        engine = chaos_engine(kb, workers, chunk_size=3)
        result = engine.convert_corpus(mixed_corpus)
        assert result.xml_documents == serial
        assert [(f.index, f.stage) for f in result.failures] == [
            (f.index, f.stage) for f in failures
        ]


# -- degenerate discovery -----------------------------------------------------


class TestDegenerateDiscovery:
    def test_empty_corpus_yields_no_discovery(self, kb):
        run = chaos_engine(kb, 2).run([], discover=True)
        assert run.discovery is None
        assert run.corpus.stats.documents == 0

    @pytest.mark.parametrize("workers", [1, 2])
    def test_all_failed_corpus_yields_no_discovery(
        self, kb, corpus_html, workers
    ):
        corpus = tainted(corpus_html[:4], {0, 1, 2, 3}, POISON)
        engine = chaos_engine(kb, workers, fail_marker=POISON)
        run = engine.run(corpus, discover=True)
        assert run.discovery is None
        assert run.corpus.xml_documents == []
        assert len(run.corpus.failures) == 4
        assert run.corpus.stats.documents == 0

    def test_mining_an_empty_accumulator_is_safe(self, kb):
        from repro.schema.accumulator import PathAccumulator
        from repro.schema.frequent import mine_frequent_paths

        accumulator = PathAccumulator()
        frequent = mine_frequent_paths(
            accumulator,
            sup_threshold=0.4,
            constraints=kb.constraints,
            candidate_labels=kb.concept_tags(),
        )
        assert frequent.paths == set()
        assert frequent.support(("RESUME",)) == 0.0
        assert frequent.statistics.support_ratio(("RESUME", "NAME")) == 0.0

    def test_accumulator_statistics_guard_zero_denominators(self):
        from repro.schema.accumulator import PathAccumulator

        accumulator = PathAccumulator()
        path = ("RESUME", "NAME")
        assert accumulator.support(path) == 0.0
        assert accumulator.presence_fraction(path) == 0.0
        assert accumulator.multiplicity_fraction(path, rep_threshold=3) == 0.0
        assert accumulator.avg_position(path) == float("inf")

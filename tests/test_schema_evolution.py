"""Tests for durable online schema evolution (checkpoint + driver)."""

import shutil
from pathlib import Path

import pytest

from repro.dom.node import Element
from repro.schema.accumulator import PathAccumulator
from repro.schema.dtd import derive_dtd
from repro.schema.evolution import (
    AccumulatorCheckpoint,
    CheckpointCorruption,
    EvolvingSchema,
    _HEADER,
)
from repro.schema.frequent import mine_frequent_paths
from repro.schema.majority import MajoritySchema

GOLDEN_CHECKPOINT = Path(__file__).parent / "golden" / "checkpoint" / "v1"


def tree(tags):
    """A RESUME tree with the given child chains (e.g. ["CONTACT"])."""
    root = Element("RESUME")
    for chain in tags:
        parent = root
        for tag in chain.split("/"):
            parent = parent.append_child(Element(tag))
    return root


def golden_trees():
    """The fixed corpus the committed golden checkpoint was built from."""
    return [
        tree(["CONTACT", "EDUCATION/DEGREE"]),
        tree(["CONTACT", "EDUCATION/DEGREE", "EDUCATION/DATE"]),
        tree(["CONTACT", "SKILLS"]),
    ]


def accumulate(trees):
    return PathAccumulator.from_trees(trees)


class TestCheckpointRoundTrip:
    def test_append_and_reload(self, tmp_path):
        checkpoint = AccumulatorCheckpoint(tmp_path / "ckpt")
        trees = golden_trees()
        checkpoint.append_delta(accumulate(trees[:2]))
        checkpoint.append_delta(accumulate(trees[2:]))
        reloaded = AccumulatorCheckpoint(tmp_path / "ckpt").load()
        assert reloaded == accumulate(trees)

    def test_snapshot_plus_deltas(self, tmp_path):
        checkpoint = AccumulatorCheckpoint(tmp_path / "ckpt")
        trees = golden_trees()
        checkpoint.append_delta(accumulate(trees[:1]))
        checkpoint.commit_snapshot(checkpoint.load())
        checkpoint.append_delta(accumulate(trees[1:]))
        reloaded = AccumulatorCheckpoint(tmp_path / "ckpt").load()
        assert reloaded == accumulate(trees)

    def test_load_is_cached_and_kept_live(self, tmp_path):
        checkpoint = AccumulatorCheckpoint(tmp_path / "ckpt")
        trees = golden_trees()
        live = checkpoint.load()
        assert live.document_count == 0
        checkpoint.append_delta(accumulate(trees))
        assert live.document_count == 3
        assert checkpoint.load() is live

    def test_compaction_folds_log_into_snapshot(self, tmp_path):
        checkpoint = AccumulatorCheckpoint(
            tmp_path / "ckpt", compaction_ratio=0.5
        )
        trees = golden_trees()
        checkpoint.append_delta(accumulate(trees[:2]))
        assert checkpoint.maybe_compact()
        assert checkpoint.delta_log_path.read_bytes() == b""
        checkpoint.append_delta(accumulate(trees[2:]))
        reloaded = AccumulatorCheckpoint(tmp_path / "ckpt").load()
        assert reloaded == accumulate(trees)

    def test_no_compaction_below_threshold(self, tmp_path):
        checkpoint = AccumulatorCheckpoint(
            tmp_path / "ckpt", compaction_ratio=100.0
        )
        checkpoint.append_delta(accumulate(golden_trees()[:1]))
        checkpoint.commit_snapshot(checkpoint.load())
        checkpoint.append_delta(accumulate(golden_trees()[1:2]))
        assert not checkpoint.maybe_compact()
        assert checkpoint.delta_log_path.stat().st_size > 0


class TestCrashRecovery:
    def test_torn_tail_is_recovered_silently(self, tmp_path):
        checkpoint = AccumulatorCheckpoint(tmp_path / "ckpt")
        trees = golden_trees()
        checkpoint.append_delta(accumulate(trees[:1]))
        checkpoint.append_delta(accumulate(trees[1:]))
        log = checkpoint.delta_log_path
        data = log.read_bytes()
        # Tear the last frame mid-payload (crash during append).
        log.write_bytes(data[: len(data) - 7])
        reloaded = AccumulatorCheckpoint(tmp_path / "ckpt").load()
        assert reloaded == accumulate(trees[:1])

    def test_append_after_torn_tail_truncates_it(self, tmp_path):
        checkpoint = AccumulatorCheckpoint(tmp_path / "ckpt")
        trees = golden_trees()
        checkpoint.append_delta(accumulate(trees[:1]))
        log = checkpoint.delta_log_path
        data = log.read_bytes()
        log.write_bytes(data + b"\x00" * 5)  # torn header fragment
        fresh = AccumulatorCheckpoint(tmp_path / "ckpt")
        fresh.append_delta(accumulate(trees[1:]))
        reloaded = AccumulatorCheckpoint(tmp_path / "ckpt").load()
        assert reloaded == accumulate(trees)

    def test_corrupt_payload_raises(self, tmp_path):
        checkpoint = AccumulatorCheckpoint(tmp_path / "ckpt")
        checkpoint.append_delta(accumulate(golden_trees()))
        log = checkpoint.delta_log_path
        data = bytearray(log.read_bytes())
        # Flip one payload byte of a *complete* frame: real corruption,
        # not a crash artifact.
        data[_HEADER.size + 3] ^= 0xFF
        log.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruption):
            AccumulatorCheckpoint(tmp_path / "ckpt").load()

    def test_bad_magic_raises(self, tmp_path):
        checkpoint = AccumulatorCheckpoint(tmp_path / "ckpt")
        checkpoint.append_delta(accumulate(golden_trees()))
        log = checkpoint.delta_log_path
        data = bytearray(log.read_bytes())
        data[0:4] = b"XXXX"
        log.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruption):
            AccumulatorCheckpoint(tmp_path / "ckpt").load()

    def test_watermark_prevents_double_counting(self, tmp_path):
        """A crash between snapshot commit and log truncation must not
        fold the already-snapshotted deltas in twice."""
        checkpoint = AccumulatorCheckpoint(tmp_path / "ckpt")
        trees = golden_trees()
        checkpoint.append_delta(accumulate(trees[:2]))
        stale_log = checkpoint.delta_log_path.read_bytes()
        checkpoint.commit_snapshot(checkpoint.load())
        # Simulate the crash: the snapshot committed but the log
        # truncation never happened.
        checkpoint.delta_log_path.write_bytes(stale_log)
        reloaded = AccumulatorCheckpoint(tmp_path / "ckpt").load()
        assert reloaded.document_count == 2
        assert reloaded == accumulate(trees[:2])

    def test_recovery_after_simulated_crash_continues_sequence(self, tmp_path):
        checkpoint = AccumulatorCheckpoint(tmp_path / "ckpt")
        trees = golden_trees()
        checkpoint.append_delta(accumulate(trees[:2]))
        stale_log = checkpoint.delta_log_path.read_bytes()
        checkpoint.commit_snapshot(checkpoint.load())
        checkpoint.delta_log_path.write_bytes(stale_log)
        survivor = AccumulatorCheckpoint(tmp_path / "ckpt")
        survivor.append_delta(accumulate(trees[2:]))
        reloaded = AccumulatorCheckpoint(tmp_path / "ckpt").load()
        assert reloaded == accumulate(trees)


class TestGoldenWireFormat:
    """The committed v1 checkpoint must stay loadable forever."""

    def test_golden_checkpoint_loads(self, tmp_path):
        assert GOLDEN_CHECKPOINT.exists(), "golden checkpoint fixture missing"
        shutil.copytree(GOLDEN_CHECKPOINT, tmp_path / "ckpt")
        loaded = AccumulatorCheckpoint(tmp_path / "ckpt").load()
        assert loaded == accumulate(golden_trees())

    def test_golden_checkpoint_accepts_new_deltas(self, tmp_path):
        shutil.copytree(GOLDEN_CHECKPOINT, tmp_path / "ckpt")
        checkpoint = AccumulatorCheckpoint(tmp_path / "ckpt")
        checkpoint.append_delta(accumulate([tree(["CONTACT"])]))
        reloaded = AccumulatorCheckpoint(tmp_path / "ckpt").load()
        assert reloaded.document_count == 4


def derive_batch_dtd(kb, trees, *, sup=0.4):
    accumulator = accumulate(trees)
    frequent = mine_frequent_paths(
        accumulator,
        sup_threshold=sup,
        constraints=kb.constraints,
        candidate_labels=kb.concept_tags(),
    )
    schema = MajoritySchema.from_frequent_paths(frequent)
    return derive_dtd(schema, accumulator).render()


class TestEvolvingSchema:
    @pytest.fixture()
    def corpus_trees(self, converted_corpus):
        return [result.root for result in converted_corpus]

    def test_first_fold_bumps_to_version_one(self, tmp_path, kb, corpus_trees):
        evolving = EvolvingSchema(tmp_path / "state", kb)
        outcome = evolving.fold(accumulate(corpus_trees))
        assert outcome.derived
        assert outcome.bumped
        assert outcome.version == evolving.version == 1
        assert evolving.version_dtd_path(1).exists()
        assert evolving.current_dtd_path.exists()

    def test_split_fold_matches_batch_dtd(self, tmp_path, kb, corpus_trees):
        """The differential proof: checkpoint -> restore -> fold over a
        split corpus derives a DTD byte-identical to one batch run."""
        evolving = EvolvingSchema(tmp_path / "state", kb)
        evolving.fold(accumulate(corpus_trees[:4]))
        # Restart from disk between folds (restore path exercised).
        evolving = EvolvingSchema(tmp_path / "state", kb)
        evolving.fold(accumulate(corpus_trees[4:7]))
        evolving = EvolvingSchema(tmp_path / "state", kb)
        outcome = evolving.fold(accumulate(corpus_trees[7:]))
        assert evolving.dtd_text == derive_batch_dtd(kb, corpus_trees)
        assert outcome.total_documents == len(corpus_trees)

    def test_unchanged_refold_does_not_bump(self, tmp_path, kb, corpus_trees):
        evolving = EvolvingSchema(tmp_path / "state", kb)
        evolving.fold(accumulate(corpus_trees))
        version = evolving.version
        outcome = evolving.fold(accumulate(corpus_trees))
        assert not outcome.bumped
        assert evolving.version == version
        assert len(evolving.history) == 1

    def test_state_survives_restart(self, tmp_path, kb, corpus_trees):
        evolving = EvolvingSchema(tmp_path / "state", kb, sup_threshold=0.5)
        evolving.fold(accumulate(corpus_trees))
        restored = EvolvingSchema(tmp_path / "state", kb)
        assert restored.version == evolving.version
        assert restored.dtd_text == evolving.dtd_text
        assert restored.sup_threshold == 0.5
        assert restored.dtd is not None
        assert restored.dtd.render() == evolving.dtd_text

    def test_vocabulary_shift_bumps_exactly_once(self, tmp_path, kb,
                                                 corpus_trees):
        evolving = EvolvingSchema(tmp_path / "state", kb)
        evolving.fold(accumulate(corpus_trees))
        # A heavy influx of documents with a new sub-structure shifts
        # the majority: one fold, one bump.
        shifted = [
            tree(["CONTACT", "PUBLICATION/TITLE", "PUBLICATION/DATE"])
            for _ in range(30)
        ]
        outcome = evolving.fold(accumulate(shifted))
        assert outcome.bumped
        assert evolving.version == 2
        assert len(evolving.history) == 2

    def test_empty_fold_reports_underived(self, tmp_path, kb):
        evolving = EvolvingSchema(tmp_path / "state", kb)
        outcome = evolving.fold(PathAccumulator())
        assert not outcome.derived
        assert not outcome.bumped
        assert evolving.version == 0
        assert "no schema derivable" in outcome.summary()

    def test_metrics_recorded(self, tmp_path, kb, corpus_trees):
        from repro.obs.metrics import MetricsRegistry
        from repro.schema.evolution import (
            EVOLUTION_DOCUMENTS,
            EVOLUTION_FOLDS,
            SCHEMA_VERSION,
            VERSION_BUMPS,
        )

        registry = MetricsRegistry()
        evolving = EvolvingSchema(tmp_path / "state", kb, registry=registry)
        evolving.fold(accumulate(corpus_trees))
        evolving.fold(accumulate(corpus_trees))
        assert registry.counter(EVOLUTION_FOLDS).value == 2
        assert registry.counter(EVOLUTION_DOCUMENTS).value == 2 * len(
            corpus_trees
        )
        assert registry.counter(VERSION_BUMPS).value == 1
        assert registry.gauge(SCHEMA_VERSION, merge="max").value == 1

    def test_status_rows_render(self, tmp_path, kb, corpus_trees):
        evolving = EvolvingSchema(tmp_path / "state", kb)
        evolving.fold(accumulate(corpus_trees))
        rows = dict(
            (row[0], row[1]) for row in evolving.status_rows()
        )
        assert rows["schema version"] == "1"
        assert rows["documents"] == str(len(corpus_trees))


@pytest.mark.parametrize(
    "workers",
    [1, pytest.param(2, marks=pytest.mark.slow),
     pytest.param(4, marks=pytest.mark.slow)],
)
def test_engine_fold_differential(tmp_path, kb, workers):
    """Engine-converted split folds equal one batch engine run's DTD,
    at every worker count (the acceptance differential proof)."""
    from repro.corpus.generator import ResumeCorpusGenerator
    from repro.runtime.engine import CorpusEngine, EngineConfig

    sources = ResumeCorpusGenerator(seed=11).generate_html(10)
    engine = CorpusEngine(
        kb, engine_config=EngineConfig(max_workers=workers, chunk_size=3)
    )
    evolving = EvolvingSchema(tmp_path / "state", kb)
    for part in (sources[:5], sources[5:]):
        run = engine.run(part, discover=False)
        evolving.fold(run.corpus.accumulator)
    batch = engine.run(sources, discover=False).corpus.accumulator
    frequent = mine_frequent_paths(
        batch,
        sup_threshold=evolving.sup_threshold,
        constraints=kb.constraints,
        candidate_labels=kb.concept_tags(),
    )
    schema = MajoritySchema.from_frequent_paths(frequent)
    assert evolving.dtd_text == derive_dtd(schema, batch).render()
    # Integer statistics agree exactly; float position sums may
    # re-associate across chunk boundaries.
    restored = AccumulatorCheckpoint(tmp_path / "state").load()
    assert restored.document_count == batch.document_count
    assert restored.doc_frequency == batch.doc_frequency
    assert restored.multiplicity_docs == batch.multiplicity_docs
    for path, value in batch.position_sum.items():
        assert restored.position_sum[path] == pytest.approx(value)

"""Observability end-to-end: instrumentation must change nothing.

* Differential: with tracing + provenance on, the engine's XML and the
  discovered DTD are byte-identical to the untraced run (both inline and
  through the process pool).
* Coverage: a traced convert+discover run emits spans for all four
  conversion rules and every discovery stage, one rule event per rule
  per document, and one concept event per token decision.
* CLI: ``--trace-out`` / ``--metrics-out`` / ``stats`` / ``validate-obs``
  round-trip through real files.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import ProvenanceLog, Tracer
from repro.obs.validate import (
    load_schema,
    validate_metrics_file,
    validate_trace_file,
    validate_trace_lines,
)
from repro.runtime.engine import CorpusEngine, EngineConfig

RULE_SPAN_NAMES = {
    "convert.tokenize",
    "convert.instance",
    "convert.group",
    "convert.consolidate",
}
DISCOVERY_SPAN_NAMES = {
    "discover.extract_paths",
    "discover.mine_frequent",
    "discover.repetition_ordering",
    "discover.derive_dtd",
}


def make_engine(kb, workers, chunk_size=3):
    return CorpusEngine(
        kb,
        engine_config=EngineConfig(max_workers=workers, chunk_size=chunk_size),
    )


@pytest.fixture(scope="module")
def corpus_html(small_corpus):
    return [doc.html for doc in small_corpus]


class TestTracingIsPure:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_xml_and_dtd_identical_with_tracing_on(self, kb, corpus_html, workers):
        plain = make_engine(kb, workers).run(corpus_html)
        traced = make_engine(kb, workers).run(
            corpus_html, tracer=Tracer(), provenance=ProvenanceLog()
        )
        assert traced.corpus.xml_documents == plain.corpus.xml_documents
        assert traced.discovery.dtd.render() == plain.discovery.dtd.render()
        assert traced.discovery.frequent.paths == plain.discovery.frequent.paths

    def test_stats_identical_with_tracing_on(self, kb, corpus_html):
        plain = make_engine(kb, 1).run(corpus_html, discover=False)
        traced = make_engine(kb, 1).run(
            corpus_html, discover=False,
            tracer=Tracer(), provenance=ProvenanceLog(),
        )
        for name in ("documents", "chunks", "tokens_created", "groups_created",
                     "nodes_eliminated", "input_nodes", "concept_nodes"):
            assert getattr(traced.corpus.stats, name) == getattr(
                plain.corpus.stats, name
            ), name


class TestSpanCoverage:
    @pytest.fixture(scope="class")
    def traced_run(self, kb, corpus_html):
        tracer = Tracer()
        provenance = ProvenanceLog()
        run = make_engine(kb, 2).run(
            corpus_html, tracer=tracer, provenance=provenance
        )
        return run, tracer, provenance

    def test_all_rule_and_discovery_spans_present(self, traced_run):
        _, tracer, _ = traced_run
        assert RULE_SPAN_NAMES <= tracer.names()
        assert DISCOVERY_SPAN_NAMES <= tracer.names()

    def test_one_document_span_per_document(self, traced_run, corpus_html):
        _, tracer, _ = traced_run
        documents = tracer.by_name("convert.document")
        assert len(documents) == len(corpus_html)
        doc_ids = {span.attrs.get("doc") for span in documents}
        assert doc_ids == {f"doc{i:04d}" for i in range(len(corpus_html))}

    def test_worker_spans_reparented_under_corpus_span(self, traced_run):
        _, tracer, _ = traced_run
        corpus_span = tracer.by_name("engine.convert_corpus")[0]
        for chunk_span in tracer.by_name("engine.chunk"):
            assert chunk_span.parent_id == corpus_span.span_id
        by_id = {span.span_id: span for span in tracer.spans}
        # Every span reaches a root through resolvable parents.
        for span in tracer.spans:
            seen = set()
            current = span
            while current.parent_id is not None:
                assert current.parent_id in by_id, current.name
                assert current.span_id not in seen
                seen.add(current.span_id)
                current = by_id[current.parent_id]

    def test_rule_events_per_document(self, traced_run, corpus_html):
        _, _, provenance = traced_run
        rules = provenance.by_kind("rule")
        assert len(rules) == 4 * len(corpus_html)
        per_doc = {event["doc"] for event in rules}
        assert len(per_doc) == len(corpus_html)
        assert {event["rule"] for event in rules} == {
            "tokenize", "instance", "group", "consolidate",
        }

    def test_concept_events_cover_every_token_decision(self, traced_run):
        run, _, provenance = traced_run
        concepts = provenance.by_kind("concept")
        stats = run.corpus.stats
        # One event per kept decision: identified single tokens,
        # unidentified tokens, and one per element of each split token.
        assert len(concepts) >= stats.tokens_created > 0
        assert all(event["node_path"] for event in concepts)
        assert {event["decision"] for event in concepts} <= {
            "synonym", "bayes", "unlabeled",
        }
        json.dumps(concepts)  # strictly JSON-serializable (no inf/nan)

    def test_trace_passes_schema_with_coverage(self, traced_run):
        _, tracer, provenance = traced_run
        lines = [json.dumps(d) for d in tracer.export()]
        lines += [json.dumps(e) for e in provenance.events]
        assert validate_trace_lines(
            lines, schema=load_schema(), require_coverage=True
        ) == []


class TestCliObservability:
    def test_convert_corpus_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        prom = tmp_path / "metrics.prom"
        mjson = tmp_path / "metrics.json"
        assert main([
            "convert-corpus", "--generate", "6", "--chunk-size", "3",
            "--max-workers", "2", "--discover",
            "--trace-out", str(trace),
            "--metrics-out", str(prom), "--metrics-out", str(mjson),
        ]) == 0
        assert validate_trace_file(trace, require_coverage=True) == []
        assert validate_metrics_file(prom) == []
        assert validate_metrics_file(mjson) == []

    def test_stats_rerenders_saved_metrics(self, tmp_path, capsys):
        mjson = tmp_path / "metrics.json"
        main(["convert-corpus", "--generate", "4", "--chunk-size", "2",
              "--max-workers", "1", "--metrics-out", str(mjson)])
        capsys.readouterr()
        assert main(["stats", str(mjson)]) == 0
        printed = capsys.readouterr().out
        assert "documents" in printed
        assert "4" in printed
        assert "instance" in printed  # per-rule table from the registry

    def test_stats_rejects_prometheus_input(self, tmp_path, capsys):
        prom = tmp_path / "metrics.prom"
        main(["convert-corpus", "--generate", "2", "--max-workers", "1",
              "--metrics-out", str(prom)])
        assert main(["stats", str(prom)]) == 2

    def test_validate_obs_subcommand(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        prom = tmp_path / "metrics.prom"
        main(["convert-corpus", "--generate", "4", "--chunk-size", "2",
              "--max-workers", "1", "--discover",
              "--trace-out", str(trace), "--metrics-out", str(prom)])
        assert main(["validate-obs", "--trace", str(trace),
                     "--metrics", str(prom), "--require-coverage"]) == 0
        trace.write_text('{"kind": "span"}\n')
        assert main(["validate-obs", "--trace", str(trace)]) == 1
        assert main(["validate-obs"]) == 2

    def test_html2xml_rule_table_and_metrics(self, tmp_path, capsys):
        corpus = tmp_path / "corpus"
        main(["gen-corpus", "--count", "2", "--out", str(corpus)])
        files = [str(p) for p in sorted(corpus.glob("*.html"))]
        mjson = tmp_path / "serial-metrics.json"
        capsys.readouterr()
        assert main(["html2xml", *files, "--out", str(tmp_path / "xml"),
                     "--metrics-out", str(mjson)]) == 0
        printed = capsys.readouterr().out
        assert "Per-rule time" in printed
        assert "instance" in printed
        assert validate_metrics_file(mjson) == []
        saved = json.loads(mjson.read_text())
        names = {entry["name"] for entry in saved["metrics"]}
        assert names == {"repro_rule_seconds_total"}

"""Tests for repository schema migration."""

import pytest

from repro.dom.node import Element
from repro.mapping.migrate import migrate_repository
from repro.mapping.repository import XMLRepository
from repro.mapping.validate import validate_document
from repro.schema.dtd import DTD

OLD_DTD = DTD.parse(
    """
<!ELEMENT resume ((#PCDATA), contact, education+)>
<!ELEMENT contact (#PCDATA)>
<!ELEMENT education ((#PCDATA), degree)>
<!ELEMENT degree (#PCDATA)>
"""
)

# The new web also expects a skills section, and education entries
# gained an optional date.
NEW_DTD = DTD.parse(
    """
<!ELEMENT resume ((#PCDATA), contact, education+, skills)>
<!ELEMENT contact (#PCDATA)>
<!ELEMENT education ((#PCDATA), degree, date?)>
<!ELEMENT degree (#PCDATA)>
<!ELEMENT date (#PCDATA)>
<!ELEMENT skills (#PCDATA)>
"""
)


def old_doc(degree="B.S."):
    root = Element("RESUME")
    root.append_child(Element("CONTACT"))
    edu = root.append_child(Element("EDUCATION"))
    d = edu.append_child(Element("DEGREE"))
    d.set_val(degree)
    return root


@pytest.fixture()
def repo():
    repository = XMLRepository(OLD_DTD)
    repository.insert(old_doc("B.S."))
    repository.insert(old_doc("M.S."))
    return repository


class TestMigration:
    def test_all_documents_conform_after_migration(self, repo):
        migrated, report = migrate_repository(repo, NEW_DTD)
        assert len(migrated) == 2
        for document in migrated.documents:
            assert validate_document(document, NEW_DTD) == []

    def test_original_repository_untouched(self, repo):
        snapshot = [d for d in repo.documents]
        migrate_repository(repo, NEW_DTD)
        assert repo.documents == snapshot
        for document in repo.documents:
            assert validate_document(document, OLD_DTD) == []

    def test_report_counts(self, repo):
        _migrated, report = migrate_repository(repo, NEW_DTD)
        assert report.documents == 2
        assert report.migrated == 2  # both gained a skills section
        assert report.already_conforming == 0
        assert report.total_operations >= 2

    def test_identity_migration_is_free(self, repo):
        _migrated, report = migrate_repository(repo, OLD_DTD)
        assert report.migrated == 0
        assert report.already_conforming == 2
        assert report.total_operations == 0

    def test_edit_distances_measured(self, repo):
        _migrated, report = migrate_repository(repo, NEW_DTD)
        assert len(report.edit_distances) == 2
        assert all(d >= 1 for d in report.edit_distances)
        assert report.avg_edit_distance >= 1

    def test_distance_measurement_optional(self, repo):
        _migrated, report = migrate_repository(
            repo, NEW_DTD, measure_distance=False
        )
        assert report.edit_distances == []
        assert report.avg_edit_distance == 0.0

    def test_values_preserved_across_migration(self, repo):
        migrated, _report = migrate_repository(repo, NEW_DTD)
        assert migrated.values("RESUME/EDUCATION/DEGREE") == ["B.S.", "M.S."]

    def test_end_to_end_with_drifted_corpus(self, kb, converter):
        """Discover on an old mix, integrate; re-discover on a new mix;
        migrate the store; everything conforms to the new DTD."""
        from repro.corpus.generator import ResumeCorpusGenerator
        from repro.corpus.styles import STYLES
        from repro.schema.dtd import derive_dtd
        from repro.schema.frequent import mine_frequent_paths
        from repro.schema.majority import MajoritySchema
        from repro.schema.paths import extract_paths

        def discover(style_names, seed):
            weights = {
                s: (1.0 if s in style_names else 0.0) for s in STYLES
            }
            docs = ResumeCorpusGenerator(seed=seed, style_weights=weights).generate(15)
            results = [converter.convert(d.html) for d in docs]
            documents = [extract_paths(r.root) for r in results]
            schema = MajoritySchema.from_frequent_paths(
                mine_frequent_paths(
                    documents,
                    sup_threshold=0.4,
                    constraints=kb.constraints,
                    candidate_labels=kb.concept_tags(),
                )
            )
            return results, derive_dtd(schema, documents, optional_threshold=0.9)

        old_results, old_dtd = discover(("heading-list", "center-hr"), seed=1)
        repository = XMLRepository(old_dtd)
        for result in old_results:
            repository.insert(result.root)

        _new_results, new_dtd = discover(("table", "font-soup"), seed=2)
        migrated, report = migrate_repository(repository, new_dtd)
        assert len(migrated) == len(repository)
        assert report.documents == len(repository)
        for document in migrated.documents:
            assert validate_document(document, new_dtd) == []

"""Tests for text table/histogram rendering."""

from repro.evaluation.report import format_histogram, format_table


class TestTable:
    def test_headers_and_rows_aligned(self):
        out = format_table(["name", "count"], [["alpha", 1], ["b", 22]])
        lines = out.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title_prepended(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_numeric_columns_right_aligned(self):
        out = format_table(["metric", "value"], [["a", 5], ["bb", 123]])
        rows = out.splitlines()[2:]
        assert rows[0].endswith("  5".rjust(5)) or rows[0].rstrip().endswith("5")
        assert rows[1].rstrip().endswith("123")

    def test_floats_formatted(self):
        out = format_table(["v"], [[0.123456789]])
        assert "0.1235" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestHistogram:
    def test_bars_scale_to_peak(self):
        out = format_histogram([("low", 1), ("high", 10)], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 1
        assert lines[1].count("#") == 10

    def test_counts_shown(self):
        out = format_histogram([("a", 3)])
        assert "3" in out

    def test_zero_counts_handled(self):
        out = format_histogram([("a", 0), ("b", 0)])
        assert "#" not in out

    def test_title(self):
        out = format_histogram([("a", 1)], title="Hist")
        assert out.splitlines()[0] == "Hist"

    def test_labels_right_justified(self):
        out = format_histogram([("long-label", 1), ("x", 2)])
        lines = out.splitlines()
        assert lines[1].startswith("         x")

"""Cleanser edge-case corpus with pinned output, under both tidy paths.

Every case in tests/golden/tidy_edge/ stresses one fix-up pass or an
interaction between passes -- heading/inline block hoists (including the
``<h2><i><div>`` chain whose legacy pass ordering the fast path must
reproduce exactly), orphan list/table wrapping with whitespace gaps,
empty-inline cascades, redundant-inline towers, ``pre`` whitespace
preservation, ``val``-bearing empty inlines, and unclosed-tag soup.  The
expected files pin the *serialized tidied tree* (parse + tidy, no
conversion rules), so a behavior change in either implementation -- fast
or legacy -- fails here even if the two drift together.

When a future fuzz run finds a diverging document, the fix lands with
the document added to this corpus.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.dom.serialize import to_xml_document
from repro.htmlparse.parser import parse_html
from repro.htmlparse.tidy import tidy

EDGE_DIR = Path(__file__).parent / "golden" / "tidy_edge"

CASES = sorted(path.stem for path in EDGE_DIR.glob("*.html"))


def test_corpus_present():
    assert len(CASES) >= 12, "tidy_edge corpus went missing"


@pytest.mark.parametrize("name", CASES)
@pytest.mark.parametrize("fast", [True, False], ids=["fast", "legacy"])
def test_pinned_tidy_output(name, fast):
    html = (EDGE_DIR / f"{name}.html").read_text()
    expected = (EDGE_DIR / f"{name}.expected.xml").read_text()
    assert to_xml_document(tidy(parse_html(html), fast=fast)) == expected

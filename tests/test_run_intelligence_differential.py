"""Run intelligence must not change a single output byte.

The quantile digests, slowest-document tracking, progress hook, tracer,
and run-ledger record building are all *observers*: for every worker
count the engine's XML documents and the discovered DTD must be
byte-identical whether the run-intelligence layer is fully on or fully
off.  The second wall pins the digest merge itself: a multi-worker run's
merged per-stage digests answer every quantile identically to a serial
run's digests over the same documents (bucket counts and extrema are
exact; only wall-clock values differ run to run, so the comparison is
digest-vs-digest over the same recorded latencies, via partitioning).
"""

from __future__ import annotations

import io

import pytest

from repro.corpus.generator import ResumeCorpusGenerator
from repro.obs import ProgressReporter, build_run_record
from repro.obs.tracer import Tracer
from repro.runtime.engine import CorpusEngine, EngineConfig
from repro.runtime.stats import STAGE_ORDER

WORKER_COUNTS = [1, 2, 4]


def run_engine(kb, html, workers, *, intelligence):
    """One engine run; with ``intelligence`` every observer is attached."""
    engine = CorpusEngine(
        kb, engine_config=EngineConfig(max_workers=workers, chunk_size=3)
    )
    if not intelligence:
        run = engine.run(html, discover=True)
        return run, None
    reporter = ProgressReporter(
        total=len(html), stream=io.StringIO(), enabled=True, min_interval=0.0
    )
    run = engine.run(
        html, discover=True, tracer=Tracer(), progress=reporter
    )
    reporter.finish(run.corpus.stats)
    record = build_run_record(run.corpus.stats, fingerprint="t", topic="resume")
    return run, record


@pytest.fixture(scope="module")
def html(kb):
    return ResumeCorpusGenerator(seed=1966).generate_html(10)


@pytest.fixture(scope="module")
def mixed_html(kb):
    """Golden corpus documents mixed with generated ones."""
    from pathlib import Path

    golden = sorted(
        (Path(__file__).parent / "golden").glob("*.html")
    )
    docs = [path.read_text() for path in golden[:4]]
    return docs + ResumeCorpusGenerator(seed=7).generate_html(6)


class TestByteIdenticalOutput:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_generated_corpus(self, kb, html, workers):
        plain, _ = run_engine(kb, html, workers, intelligence=False)
        full, record = run_engine(kb, html, workers, intelligence=True)
        assert full.corpus.xml_documents == plain.corpus.xml_documents
        assert full.discovery.dtd.render() == plain.discovery.dtd.render()
        # ... and the observers actually observed.
        assert record["documents"] == len(html)
        assert record["stage_quantiles"]["document"]["count"] == len(html)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_golden_plus_generated_corpus(self, kb, mixed_html, workers):
        plain, _ = run_engine(kb, mixed_html, workers, intelligence=False)
        full, _ = run_engine(kb, mixed_html, workers, intelligence=True)
        assert full.corpus.xml_documents == plain.corpus.xml_documents
        assert full.discovery.dtd.render() == plain.discovery.dtd.render()

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_worker_count_does_not_change_output(self, kb, html, workers):
        serial, _ = run_engine(kb, html, 1, intelligence=True)
        parallel, _ = run_engine(kb, html, workers, intelligence=True)
        assert parallel.corpus.xml_documents == serial.corpus.xml_documents


class TestDigestMergeEqualsSerial:
    def test_stage_digests_cover_every_stage_and_document(self, kb, html):
        run, _ = run_engine(kb, html, 4, intelligence=True)
        digests = run.corpus.stats.stage_digests
        for stage in ("parse", "tidy", "tokenize", "instance", "group",
                      "consolidate", "root", "document"):
            assert digests[stage].count == len(html), stage
        assert set(digests) <= set(STAGE_ORDER)

    def test_four_way_merge_equals_serial_exactly(self):
        """The acceptance bar, made deterministic: the same per-document
        latencies split across four worker digests and merged answer
        every quantile *identically* to one serial digest -- stronger
        than the documented within-resolution bound."""
        from repro.obs.quantiles import QuantileDigest

        latencies = [0.0001 * (i % 7 + 1) * (10 ** (i % 3)) for i in range(40)]
        serial = QuantileDigest()
        serial.observe_many(latencies)
        merged = QuantileDigest()
        for worker in range(4):
            chunk = QuantileDigest()
            chunk.observe_many(latencies[worker::4])
            merged.update(chunk)
        assert merged.counts == serial.counts
        assert merged.min_value == serial.min_value
        assert merged.max_value == serial.max_value
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            assert merged.quantile(q) == serial.quantile(q)

    def test_four_worker_quantiles_match_chunk_refeed(self, kb, html):
        """Pickle-simulate the wire: per-chunk digests folded in any
        order equal the engine's parent-side merge."""
        import pickle

        from repro.runtime.stats import EngineStats

        engine = CorpusEngine(
            kb, engine_config=EngineConfig(max_workers=4, chunk_size=3)
        )
        stats = EngineStats()
        for _ in engine.stream(html, stats=stats):
            pass
        merged = stats.stage_digests["instance"]
        wire = pickle.loads(pickle.dumps(merged))
        assert wire == merged
        assert wire.quantiles() == merged.quantiles()

"""Shared fixtures."""

from __future__ import annotations

import pytest

from repro.concepts.resume_kb import build_resume_knowledge_base
from repro.convert.pipeline import DocumentConverter
from repro.corpus.generator import ResumeCorpusGenerator


@pytest.fixture(scope="session")
def kb():
    """The resume knowledge base (expensive to rebuild per test)."""
    return build_resume_knowledge_base()


@pytest.fixture(scope="session")
def converter(kb):
    """A ready document converter with compiled matcher."""
    return DocumentConverter(kb)


@pytest.fixture(scope="session")
def small_corpus():
    """Ten generated resumes (deterministic)."""
    return ResumeCorpusGenerator(seed=1966).generate(10)


@pytest.fixture(scope="session")
def converted_corpus(converter, small_corpus):
    """The ten resumes converted to XML trees."""
    return [converter.convert(doc.html) for doc in small_corpus]

"""Tests for the concept instance rule (Section 2.3.1)."""

import pytest

from repro.concepts.bayes import MultinomialNaiveBayes
from repro.concepts.concept import Concept, ConceptInstance
from repro.concepts.knowledge import KnowledgeBase
from repro.convert.config import ConversionConfig
from repro.convert.instance_rule import apply_instance_rule
from repro.convert.tokenize_rule import TOKEN_TAG
from repro.dom.node import Element, Text


@pytest.fixture()
def kb():
    kb = KnowledgeBase("test")
    kb.add(Concept("institution", [ConceptInstance("University")]))
    kb.add(Concept("degree", [ConceptInstance("B.S.")]))
    kb.add(
        Concept("date", [ConceptInstance(r"\b(19|20)\d{2}\b", is_regex=True)])
    )
    return kb


def token(text):
    t = Element(TOKEN_TAG)
    t.append_child(Text(text))
    return t


def parent_with_tokens(*texts):
    parent = Element("li")
    for text in texts:
        parent.append_child(token(text))
    return parent


class TestCaseOne:
    def test_identified_token_becomes_concept_element(self, kb):
        parent = parent_with_tokens("Stanford University")
        stats = apply_instance_rule(parent, kb)
        child = parent.element_children()[0]
        assert child.tag == "INSTITUTION"
        assert child.get_val() == "Stanford University"
        assert stats.identified == 1

    def test_whole_token_text_becomes_val(self, kb):
        """Paper: the element keeps the *entire* token text as val."""
        parent = parent_with_tokens("B.S. (Computer Science)")
        apply_instance_rule(parent, kb)
        assert parent.element_children()[0].get_val() == "B.S. (Computer Science)"

    def test_paper_topic_sentence(self, kb):
        parent = parent_with_tokens(
            "University of California at Davis",
            "B.S.(Computer Science)",
            "June 1996",
        )
        apply_instance_rule(parent, kb)
        assert [c.tag for c in parent.element_children()] == [
            "INSTITUTION",
            "DEGREE",
            "DATE",
        ]


class TestCaseTwo:
    def test_unidentified_token_text_passed_to_parent(self, kb):
        parent = parent_with_tokens("completely unknown words")
        stats = apply_instance_rule(parent, kb)
        assert parent.children == []
        assert parent.get_val() == "completely unknown words"
        assert stats.unidentified == 1

    def test_mixed_tokens(self, kb):
        parent = parent_with_tokens("unknown stuff", "Cornell University")
        stats = apply_instance_rule(parent, kb)
        assert len(parent.element_children()) == 1
        assert parent.get_val() == "unknown stuff"
        assert stats.identified == 1
        assert stats.unidentified == 1

    def test_unidentified_ratio(self, kb):
        parent = parent_with_tokens("unknown", "also unknown", "University")
        stats = apply_instance_rule(parent, kb)
        assert stats.unidentified_ratio == pytest.approx(2 / 3)


class TestMultiInstanceSplit:
    def test_token_with_two_instances_split(self, kb):
        """Paper: <TOKEN>t1 t2 t3 t4 t5</TOKEN> with C1@t2, C2@t4 becomes
        <C1 val="t2 t3"/><C2 val="t4 t5"/> and t1 goes to the parent."""
        parent = parent_with_tokens("studied at University campus B.S. honors")
        stats = apply_instance_rule(parent, kb)
        children = parent.element_children()
        assert [c.tag for c in children] == ["INSTITUTION", "DEGREE"]
        assert children[0].get_val() == "University campus"
        assert children[1].get_val() == "B.S. honors"
        assert parent.get_val() == "studied at"
        assert stats.split_tokens == 1

    def test_split_disabled(self, kb):
        config = ConversionConfig(split_multi_instance_tokens=False)
        parent = parent_with_tokens("University 1996")
        apply_instance_rule(parent, kb, config)
        children = parent.element_children()
        assert len(children) == 1
        assert children[0].tag == "INSTITUTION"

    def test_connector_merge_keeps_named_entity_whole(self, kb):
        kb.add(
            Concept(
                "location",
                [ConceptInstance("Davis"), ConceptInstance("California")],
            )
        )
        parent = parent_with_tokens("University of California at Davis")
        apply_instance_rule(parent, kb)
        children = parent.element_children()
        assert [c.tag for c in children] == ["INSTITUTION"]
        assert children[0].get_val() == "University of California at Davis"

    def test_sibling_constraint_vetoes_decomposition(self, kb):
        kb.constraints.add_sibling("INSTITUTION", "DATE", negated=True)
        parent = parent_with_tokens("University somewhere 1996 or so")
        apply_instance_rule(parent, kb)
        children = parent.element_children()
        # The forbidden DATE sibling is folded away; one element remains.
        assert len(children) == 1

    def test_elements_created_counted(self, kb):
        parent = parent_with_tokens("University blah 1996")
        stats = apply_instance_rule(parent, kb)
        assert stats.elements_created == 2
        assert stats.by_concept == {"INSTITUTION": 1, "DATE": 1}


class TestBayesChannel:
    def make_bayes(self):
        clf = MultinomialNaiveBayes()
        clf.fit(
            [
                ("Acme Widget Factory", "COMPANY"),
                ("Gizmo Works Ltd", "COMPANY"),
                ("Factory Works Acme", "COMPANY"),
            ]
        )
        return clf

    def test_bayes_mode_requires_classifier(self, kb):
        with pytest.raises(ValueError):
            apply_instance_rule(
                parent_with_tokens("x"), kb, ConversionConfig(tagger="bayes")
            )

    def test_hybrid_uses_bayes_for_unmatched(self, kb):
        config = ConversionConfig(tagger="hybrid")
        parent = parent_with_tokens("Widget Factory")
        apply_instance_rule(parent, kb, config, bayes=self.make_bayes())
        assert parent.element_children()[0].tag == "COMPANY"

    def test_hybrid_prefers_synonyms(self, kb):
        config = ConversionConfig(tagger="hybrid")
        parent = parent_with_tokens("Factory University")
        apply_instance_rule(parent, kb, config, bayes=self.make_bayes())
        assert parent.element_children()[0].tag == "INSTITUTION"

    def test_bayes_only_mode(self, kb):
        config = ConversionConfig(tagger="bayes")
        parent = parent_with_tokens("Acme Factory", "University")
        apply_instance_rule(parent, kb, config, bayes=self.make_bayes())
        tags = [c.tag for c in parent.element_children()]
        # "University" is unknown vocabulary to this classifier.
        assert tags == ["COMPANY"]
        assert parent.get_val() == "University"

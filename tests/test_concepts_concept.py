"""Tests for concepts and concept instances."""

import pytest

from repro.concepts.concept import Concept, ConceptInstance, ConceptRole


class TestConceptInstance:
    def test_keyword_matches_case_insensitively(self):
        inst = ConceptInstance("University")
        assert inst.compile().search("at the UNIVERSITY of X")

    def test_keyword_respects_word_boundaries(self):
        inst = ConceptInstance("date")
        assert inst.compile().search("the date is") is not None
        assert inst.compile().search("candidate") is None
        assert inst.compile().search("dates") is None

    def test_punctuation_keyword_matches(self):
        inst = ConceptInstance("c++")
        assert inst.compile().search("knows C++ well")

    def test_regex_instance(self):
        inst = ConceptInstance(r"\b(19|20)\d{2}\b", is_regex=True)
        assert inst.compile().search("June 1996")
        assert inst.compile().search("no year here") is None


class TestConcept:
    def test_name_becomes_instance(self):
        c = Concept("education")
        assert any(i.pattern == "education" for i in c.instances)

    def test_name_instance_not_duplicated(self):
        c = Concept("education", [ConceptInstance("Education")])
        names = [i.pattern.lower() for i in c.instances if not i.is_regex]
        assert names.count("education") == 1

    def test_tag_is_uppercase(self):
        assert Concept("job-title").tag == "JOB-TITLE"

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            Concept("9bad")
        with pytest.raises(ValueError):
            Concept("")
        with pytest.raises(ValueError):
            Concept("has space")

    def test_add_keyword_and_pattern(self):
        c = Concept("date")
        base = c.instance_count()
        c.add_keyword("present")
        c.add_pattern(r"\d{4}")
        assert c.instance_count() == base + 2

    def test_default_role_is_content(self):
        assert Concept("x").role is ConceptRole.CONTENT

    def test_first_match_prefers_leftmost_longest(self):
        c = Concept(
            "degree",
            [ConceptInstance("master"), ConceptInstance("master of science")],
        )
        m = c.first_match("a master of science degree")
        assert m is not None
        assert m.group(0) == "master of science"

    def test_first_match_none(self):
        assert Concept("gpa").first_match("nothing here") is None

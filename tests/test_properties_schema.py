"""Property-based tests on the schema-discovery layer."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dom.node import Element
from repro.schema.dataguide import build_dataguide
from repro.schema.frequent import PathStatistics, mine_frequent_paths
from repro.schema.majority import MajoritySchema
from repro.schema.paths import extract_paths

labels = st.sampled_from(["a", "b", "c", "d"])


@st.composite
def xml_trees(draw, max_depth=3, max_children=3):
    def build(depth):
        element = Element("ROOT" if depth == 0 else draw(labels))
        if depth < max_depth:
            for _ in range(draw(st.integers(0, max_children))):
                element.append_child(build(depth + 1))
        return element

    return build(0)


@st.composite
def corpora(draw, min_docs=1, max_docs=5):
    count = draw(st.integers(min_docs, max_docs))
    return [draw(xml_trees()) for _ in range(count)]


class TestSupportProperties:
    @given(corpora())
    @settings(max_examples=50)
    def test_support_in_unit_interval(self, corpus):
        documents = [extract_paths(t) for t in corpus]
        stats = PathStatistics.from_documents(documents)
        for path in stats.doc_frequency:
            assert 0.0 < stats.support(path) <= 1.0

    @given(corpora())
    @settings(max_examples=50)
    def test_support_antimonotone_in_path_length(self, corpus):
        """A path's support never exceeds its prefix's support."""
        documents = [extract_paths(t) for t in corpus]
        stats = PathStatistics.from_documents(documents)
        for path in stats.doc_frequency:
            if len(path) > 1:
                assert stats.support(path) <= stats.support(path[:-1])

    @given(corpora())
    @settings(max_examples=50)
    def test_support_ratio_in_unit_interval(self, corpus):
        documents = [extract_paths(t) for t in corpus]
        stats = PathStatistics.from_documents(documents)
        for path in stats.doc_frequency:
            assert 0.0 <= stats.support_ratio(path) <= 1.0

    @given(corpora())
    @settings(max_examples=50)
    def test_root_support_is_one(self, corpus):
        documents = [extract_paths(t) for t in corpus]
        stats = PathStatistics.from_documents(documents)
        assert stats.support(("ROOT",)) == 1.0


class TestMiningProperties:
    @given(corpora(), st.floats(0.1, 1.0))
    @settings(max_examples=50)
    def test_frequent_set_prefix_closed(self, corpus, threshold):
        documents = [extract_paths(t) for t in corpus]
        result = mine_frequent_paths(documents, sup_threshold=threshold)
        for path in result.paths:
            for cut in range(1, len(path)):
                assert path[:cut] in result.paths

    @given(corpora(), st.floats(0.1, 0.9))
    @settings(max_examples=50)
    def test_threshold_monotonicity(self, corpus, threshold):
        """Raising supThreshold never adds paths."""
        documents = [extract_paths(t) for t in corpus]
        loose = mine_frequent_paths(documents, sup_threshold=threshold)
        strict = mine_frequent_paths(documents, sup_threshold=threshold + 0.1)
        assert strict.paths <= loose.paths

    @given(corpora())
    @settings(max_examples=50)
    def test_majority_bounded_by_dataguide(self, corpus):
        documents = [extract_paths(t) for t in corpus]
        guide = build_dataguide(documents)
        result = mine_frequent_paths(documents, sup_threshold=0.5)
        if result.paths:
            majority = MajoritySchema.from_frequent_paths(result)
            assert majority.paths() <= guide.paths()

    @given(corpora())
    @settings(max_examples=50)
    def test_every_frequent_path_occurs_somewhere(self, corpus):
        documents = [extract_paths(t) for t in corpus]
        result = mine_frequent_paths(documents, sup_threshold=0.3)
        for path in result.paths:
            assert any(doc.contains(path) for doc in documents)


class TestAccuracyMetricProperties:
    @given(xml_trees())
    @settings(max_examples=50)
    def test_zero_errors_against_self(self, tree):
        from repro.evaluation.accuracy import count_logical_errors

        assert count_logical_errors(tree, tree).errors == 0

    @given(xml_trees(), xml_trees())
    @settings(max_examples=50)
    def test_errors_symmetric_in_magnitude_class(self, a, b):
        """Errors are zero iff the group-edge multisets agree."""
        from repro.evaluation.accuracy import _group_edges, count_logical_errors

        errors = count_logical_errors(a, b).errors
        if _group_edges(a) == _group_edges(b):
            assert errors == 0
        else:
            assert errors > 0

    @given(xml_trees(), xml_trees())
    @settings(max_examples=50)
    def test_errors_nonnegative_and_bounded(self, a, b):
        from repro.evaluation.accuracy import _group_edges, count_logical_errors

        result = count_logical_errors(a, b)
        assert result.errors >= 0
        total_edges = sum(_group_edges(a).values()) + sum(_group_edges(b).values())
        assert result.errors <= total_edges


class TestDtdProperties:
    @given(corpora(min_docs=2))
    @settings(max_examples=40)
    def test_derived_dtd_renders_and_parses(self, corpus):
        from repro.schema.dtd import DTD, derive_dtd

        documents = [extract_paths(t) for t in corpus]
        result = mine_frequent_paths(documents, sup_threshold=0.5)
        if not result.paths:
            return
        schema = MajoritySchema.from_frequent_paths(result)
        dtd = derive_dtd(schema, documents)
        parsed = DTD.parse(dtd.render())
        assert set(parsed.elements) == set(dtd.elements)

    @given(corpora(min_docs=2))
    @settings(max_examples=40)
    def test_conform_then_validate_holds(self, corpus):
        """Repairing any corpus document against its own derived DTD
        always yields a conforming document."""
        from repro.dom.treeops import clone
        from repro.mapping.conform import conform_document
        from repro.mapping.validate import validate_document
        from repro.schema.dtd import derive_dtd

        documents = [extract_paths(t) for t in corpus]
        result = mine_frequent_paths(documents, sup_threshold=0.5)
        if not result.paths:
            return
        schema = MajoritySchema.from_frequent_paths(result)
        dtd = derive_dtd(schema, documents)
        for tree in corpus:
            candidate = clone(tree)
            conform_document(candidate, dtd)
            assert validate_document(candidate, dtd) == []

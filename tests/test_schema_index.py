"""Tests for the path index (Section 3.3)."""

import pytest

from repro.dom.node import Element
from repro.schema.index import PathIndex


def tree(spec):
    tag, kids = spec
    e = Element(tag)
    for k in kids:
        e.append_child(tree(k))
    return e


@pytest.fixture()
def index():
    doc_a = tree(("r", [("edu", [("d", []), ("d", [])]), ("exp", [])]))
    doc_b = tree(("r", [("exp", []), ("edu", [("d", [])])]))
    return PathIndex.from_documents([doc_a, doc_b])


class TestConstruction:
    def test_document_count(self, index):
        assert index.document_count == 2

    def test_occurrences(self, index):
        assert index.occurrence_count(("r",)) == 2
        assert index.occurrence_count(("r", "edu", "d")) == 3
        assert index.occurrence_count(("r", "nope")) == 0

    def test_elements_are_live_pointers(self, index):
        elements = index.elements(("r", "edu"))
        assert len(elements) == 2
        assert all(e.tag == "edu" for e in elements)

    def test_incremental_add(self, index):
        index.add_document(2, tree(("r", [("edu", [])])))
        assert index.document_count == 3
        assert index.document_frequency(("r", "edu")) == 3


class TestStatistics:
    def test_document_frequency_and_support(self, index):
        assert index.document_frequency(("r", "edu", "d")) == 2
        assert index.support(("r", "edu", "d")) == 1.0
        assert index.support(("r", "nope")) == 0.0

    def test_avg_position_matches_ordering_rule(self, index):
        # doc A: edu at 0; doc B: edu at 1 -> mean 0.5
        assert index.avg_position(("r", "edu")) == pytest.approx(0.5)
        # exp: positions 1 and 0 -> 0.5
        assert index.avg_position(("r", "exp")) == pytest.approx(0.5)

    def test_avg_position_per_document_first(self, index):
        # d in doc A at positions 0,1 (avg .5); doc B at 0 -> (0.5+0)/2
        assert index.avg_position(("r", "edu", "d")) == pytest.approx(0.25)

    def test_avg_position_absent_is_inf(self, index):
        assert index.avg_position(("r", "zzz")) == float("inf")

    def test_agreement_with_extract_paths(self, index):
        """The index and DocumentPaths agree on support for all paths."""
        from repro.schema.frequent import PathStatistics
        from repro.schema.paths import extract_paths

        doc_a = tree(("r", [("edu", [("d", []), ("d", [])]), ("exp", [])]))
        doc_b = tree(("r", [("exp", []), ("edu", [("d", [])])]))
        stats = PathStatistics.from_documents(
            [extract_paths(doc_a), extract_paths(doc_b)]
        )
        for path in stats.doc_frequency:
            assert index.support(path) == stats.support(path)


class TestNavigation:
    def test_paths_with_prefix(self, index):
        paths = index.paths_with_prefix(("r", "edu"))
        assert paths == [("r", "edu"), ("r", "edu", "d")]

    def test_child_labels(self, index):
        assert index.child_labels(("r",)) == {"edu", "exp"}
        assert index.child_labels(("r", "edu")) == {"d"}
        assert index.child_labels(("r", "edu", "d")) == set()

    def test_values(self):
        root = tree(("r", [("x", [])]))
        root.element_children()[0].set_val("hello")
        index = PathIndex.from_documents([root])
        assert index.values(("r", "x")) == ["hello"]

"""Differential tests: fast parser on vs. off must be byte-identical.

Same guarantee discipline as the fast-tagger, serial-vs-parallel, and
tracing-on-vs-off harnesses: over the golden corpus (every authorship
style plus the handwritten edge cases) and a generated corpus, the
bulk-scanning tokenizer and the legacy per-character scanner must
produce

* byte-identical serialized XML, document for document, and
* an identical rendered DTD from discovery over the accumulators,

at worker counts 1 (inline chunked path), 2, and 4 (process pool).
The tokenizer-level equivalence (identical token streams, spans
included) lives in test_parser_properties.py; this file proves the
guarantee survives the whole pipeline and the process boundary.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.convert.config import ConversionConfig
from repro.convert.pipeline import DocumentConverter
from repro.htmlparse.parser import parse_html
from repro.runtime.engine import CorpusEngine, EngineConfig

GOLDEN_DIR = Path(__file__).parent / "golden"
WORKER_COUNTS = [1, 2, 4]


@pytest.fixture(scope="module")
def golden_html():
    cases = sorted(GOLDEN_DIR.glob("*.html"))
    assert cases, "golden corpus went missing"
    return [path.read_text() for path in cases]


@pytest.fixture(scope="module")
def legacy_baseline(kb, golden_html):
    """XML + DTD via the legacy tokenizer (fast parser off), serial."""
    converter = DocumentConverter(kb, ConversionConfig(fast_parser=False))
    engine = CorpusEngine(
        kb,
        ConversionConfig(fast_parser=False),
        engine_config=EngineConfig(max_workers=1, chunk_size=3),
    )
    xml = [converter.convert(html).to_xml() for html in golden_html]
    corpus = engine.convert_corpus(golden_html)
    assert corpus.xml_documents == xml
    dtd = engine.discover(corpus.accumulator).dtd.render()
    return xml, dtd


def fast_engine(kb, workers: int) -> CorpusEngine:
    return CorpusEngine(
        kb,
        ConversionConfig(fast_parser=True),
        engine_config=EngineConfig(max_workers=workers, chunk_size=3),
    )


class TestGoldenCorpusDifferential:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_xml_and_dtd_identical(self, kb, golden_html, legacy_baseline, workers):
        legacy_xml, legacy_dtd = legacy_baseline
        engine = fast_engine(kb, workers)
        corpus = engine.convert_corpus(golden_html)
        assert corpus.xml_documents == legacy_xml
        assert engine.discover(corpus.accumulator).dtd.render() == legacy_dtd

    def test_serial_converter_identical(self, kb, golden_html, legacy_baseline):
        legacy_xml, _ = legacy_baseline
        fast = DocumentConverter(kb, ConversionConfig(fast_parser=True))
        assert [fast.convert(html).to_xml() for html in golden_html] == legacy_xml


class TestGeneratedCorpusDifferential:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_generated_corpus_identical(self, kb, small_corpus, workers):
        html = [doc.html for doc in small_corpus]
        legacy = CorpusEngine(
            kb,
            ConversionConfig(fast_parser=False),
            engine_config=EngineConfig(max_workers=1, chunk_size=4),
        )
        legacy_corpus = legacy.convert_corpus(html)
        fast = fast_engine(kb, workers)
        fast_corpus = fast.convert_corpus(html)
        assert fast_corpus.xml_documents == legacy_corpus.xml_documents
        assert (
            fast.discover(fast_corpus.accumulator).dtd.render()
            == legacy.discover(legacy_corpus.accumulator).dtd.render()
        )


class TestBothFastPathsOff:
    def test_fully_naive_pipeline_identical(self, kb, golden_html, legacy_baseline):
        """Turning every fast path off at once is still byte-identical
        (no hidden coupling between the parser and tagger flags)."""
        legacy_xml, _ = legacy_baseline
        naive = DocumentConverter(
            kb, ConversionConfig(fast_parser=False, fast_tagger=False)
        )
        assert [naive.convert(html).to_xml() for html in golden_html] == legacy_xml


class TestParseTreeEquivalence:
    def test_golden_trees_identical(self, golden_html):
        """Before any conversion rule runs, the raw parse trees already
        match node for node (tags, attrs, text, order)."""

        def shape(node):
            from repro.dom.node import Element

            if isinstance(node, Element):
                return (node.tag, tuple(sorted(node.attrs.items())),
                        tuple(shape(child) for child in node.children))
            return ("#text", node.text)

        for html in golden_html:
            assert shape(parse_html(html, fast=True)) == shape(
                parse_html(html, fast=False)
            )

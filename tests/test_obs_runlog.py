"""Run ledger: record building, persistence, regression detection."""

from __future__ import annotations

import json

import pytest

from repro.obs.runlog import (
    RunLedger,
    baseline_of_history,
    bench_regressions,
    build_run_record,
    compare_records,
    config_fingerprint,
    detect_history_regressions,
    new_run_id,
)
from repro.obs.validate import validate_runlog_file, validate_runlog_lines


def engine_stats(kb, seed=31, count=8, workers=2):
    from repro.corpus.generator import ResumeCorpusGenerator
    from repro.runtime.engine import CorpusEngine, EngineConfig

    html = ResumeCorpusGenerator(seed=seed).generate_html(count)
    engine = CorpusEngine(
        kb, engine_config=EngineConfig(max_workers=workers, chunk_size=3)
    )
    return engine, engine.convert_corpus(html).stats


def record_like(run_id="r", fingerprint="f", workers=2, dps=100.0, p95=None):
    record = {
        "run_id": run_id,
        "config_fingerprint": fingerprint,
        "workers": workers,
        "docs_per_second": dps,
        "stage_quantiles": {},
    }
    if p95 is not None:
        record["stage_quantiles"] = {
            stage: {"p95": value} for stage, value in p95.items()
        }
    return record


class TestFingerprint:
    def test_same_configs_same_fingerprint(self):
        from repro.convert.config import ConversionConfig
        from repro.runtime.engine import EngineConfig

        a = config_fingerprint(ConversionConfig(), EngineConfig(max_workers=2))
        b = config_fingerprint(ConversionConfig(), EngineConfig(max_workers=2))
        assert a == b
        assert len(a) == 16

    def test_different_knobs_differ(self):
        from repro.runtime.engine import EngineConfig

        assert config_fingerprint(
            EngineConfig(max_workers=2)
        ) != config_fingerprint(EngineConfig(max_workers=4))

    def test_unordered_collections_are_canonical(self):
        """frozenset/dict iteration order must not leak into the
        fingerprint (hash randomization reorders them per process)."""
        a = config_fingerprint({"tags": frozenset({"ul", "ol", "dl"})})
        b = config_fingerprint({"tags": frozenset(["dl", "ul", "ol"])})
        assert a == b

    def test_run_ids_sortable_and_unique(self):
        one = new_run_id(clock=lambda: 1000000.0)
        two = new_run_id(clock=lambda: 2000000.0)
        assert one.startswith("run-")
        assert one.split("-")[1] < two.split("-")[1]
        assert new_run_id() != new_run_id()


class TestRunRecord:
    def test_record_from_real_run_validates(self, kb, tmp_path):
        engine, stats = engine_stats(kb)
        record = build_run_record(
            stats,
            fingerprint=config_fingerprint(engine.config, engine.engine_config),
            topic="resume",
            corpus_size=8,
        )
        assert record["kind"] == "run"
        assert record["documents"] == 8
        assert record["workers"] == 2
        assert record["docs_per_second"] > 0
        assert set(record["stage_quantiles"]) >= {"parse", "instance", "document"}
        assert record["slowest_documents"]
        assert record["slowest_documents"][0]["seconds"] >= (
            record["slowest_documents"][-1]["seconds"]
        )
        line = json.dumps(record, sort_keys=True)
        assert validate_runlog_lines([line]) == []

    def test_ledger_append_and_read_back(self, kb, tmp_path):
        _, stats = engine_stats(kb, count=4, workers=1)
        path = tmp_path / "deep" / "runs.jsonl"  # parents created
        ledger = RunLedger(path)
        first = ledger.append(build_run_record(stats, run_id="run-a"))
        ledger.append(build_run_record(stats, run_id="run-b"))
        assert len(ledger) == 2
        assert ledger.latest()["run_id"] == "run-b"
        assert ledger.find("run-a") == first
        assert ledger.find("missing") is None
        assert validate_runlog_file(path) == []

    def test_ledger_skips_blank_and_garbage_lines(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text('\n{"run_id": "ok"}\nnot json\n\n')
        assert [r["run_id"] for r in RunLedger(path).records()] == ["ok"]

    def test_missing_ledger_is_empty(self, tmp_path):
        ledger = RunLedger(tmp_path / "absent.jsonl")
        assert ledger.records() == []
        assert ledger.latest() is None

    def test_empty_ledger_fails_validation(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        path.write_text("")
        assert validate_runlog_file(path) != []


class TestCompareRecords:
    def test_throughput_drop_flagged(self):
        baseline = record_like(dps=100.0)
        current = record_like(dps=75.0)
        regressions = compare_records(current, baseline, threshold=0.2)
        assert [r.metric for r in regressions] == ["docs_per_second"]
        assert regressions[0].direction == "drop"
        assert regressions[0].change == pytest.approx(-0.25)
        assert "dropped 25%" in regressions[0].message

    def test_small_drop_passes(self):
        regressions = compare_records(
            record_like(dps=90.0), record_like(dps=100.0), threshold=0.2
        )
        assert regressions == []

    def test_p95_rise_flagged(self):
        baseline = record_like(p95={"instance": 0.050})
        current = record_like(p95={"instance": 0.080})
        regressions = compare_records(current, baseline)
        assert [r.metric for r in regressions] == ["instance.p95"]
        assert regressions[0].direction == "rise"

    def test_submillisecond_jitter_not_flagged(self):
        """A 5x rise on a 0.2 ms stage is noise, not a regression."""
        baseline = record_like(p95={"group": 0.0002})
        current = record_like(p95={"group": 0.0010})
        assert compare_records(current, baseline) == []

    def test_stage_in_only_one_record_skipped(self):
        baseline = record_like(p95={"parse": 0.050})
        current = record_like(p95={"tidy": 0.500})
        assert compare_records(current, baseline) == []


class TestHistoryDetection:
    def test_median_baseline_same_config_only(self):
        history = [
            record_like("r1", "cfg", dps=100.0),
            record_like("r2", "cfg", dps=120.0),
            record_like("r3", "other", dps=10.0),  # reconfigured: excluded
            record_like("r4", "cfg", workers=8, dps=10.0),  # excluded
        ]
        latest = record_like("r5", "cfg", dps=110.0)
        baseline = baseline_of_history(history, latest)
        assert baseline["docs_per_second"] == pytest.approx(110.0)

    def test_synthetic_slowdown_flagged_baseline_passes(self):
        records = [record_like(f"r{i}", dps=100.0) for i in range(3)]
        ok = records + [record_like("ok", dps=95.0)]
        baseline, regressions = detect_history_regressions(ok)
        assert baseline is not None
        assert regressions == []
        slow = records + [record_like("slow", dps=70.0)]  # >=20% drop
        baseline, regressions = detect_history_regressions(slow)
        assert [r.metric for r in regressions] == ["docs_per_second"]

    def test_no_comparable_history(self):
        records = [record_like("r1", "a"), record_like("r2", "b")]
        baseline, regressions = detect_history_regressions(records)
        assert baseline is None
        assert regressions == []
        assert detect_history_regressions([]) == (None, [])


class TestBenchRegressions:
    BASE = {
        "engine": {
            "workers": {"1": {"fast_docs_per_sec": 300.0, "wall": 2.0}},
            "speedup": 1.2,
        },
        "note": "text is ignored",
    }

    def test_self_compare_passes(self):
        assert bench_regressions(self.BASE, self.BASE) == []

    def test_nested_throughput_drop_flagged(self):
        current = json.loads(json.dumps(self.BASE))
        current["engine"]["workers"]["1"]["fast_docs_per_sec"] = 200.0
        regressions = bench_regressions(current, self.BASE, threshold=0.2)
        assert [r.metric for r in regressions] == [
            "engine.workers.1.fast_docs_per_sec"
        ]

    def test_non_throughput_keys_ignored(self):
        current = json.loads(json.dumps(self.BASE))
        current["engine"]["workers"]["1"]["wall"] = 100.0  # not throughput
        assert bench_regressions(current, self.BASE) == []

    def test_new_sections_ignored(self):
        current = json.loads(json.dumps(self.BASE))
        current["brand_new"] = {"things_per_sec": 1.0}
        assert bench_regressions(current, self.BASE) == []

    def test_committed_bench_files_self_compare(self):
        from pathlib import Path

        for name in ("BENCH_engine.json", "BENCH_tagging.json"):
            path = Path(__file__).resolve().parent.parent / name
            if not path.exists():
                continue
            document = json.loads(path.read_text())
            assert bench_regressions(document, document) == []

"""Tests for the versioned repository and parallel migration."""

import json

import pytest

from repro.dom.node import Element
from repro.dom.serialize import to_xml_document
from repro.mapping.migrate import migrate_repository
from repro.mapping.repository import XMLRepository
from repro.mapping.versioned import (
    VersionedRepository,
    migrate_documents,
)
from repro.schema.dtd import DTD

OLD_DTD = DTD.parse(
    """
<!ELEMENT resume ((#PCDATA), contact, education+)>
<!ELEMENT contact (#PCDATA)>
<!ELEMENT education ((#PCDATA), degree)>
<!ELEMENT degree (#PCDATA)>
"""
)

# The new majority inserts a DATE level and drops CONTACT.
NEW_DTD = DTD.parse(
    """
<!ELEMENT resume ((#PCDATA), education+)>
<!ELEMENT education ((#PCDATA), degree, date?)>
<!ELEMENT degree (#PCDATA)>
<!ELEMENT date (#PCDATA)>
"""
)


def old_doc(degree):
    root = Element("RESUME")
    root.append_child(Element("CONTACT"))
    education = root.append_child(Element("EDUCATION"))
    education.append_child(Element("DEGREE")).set_val(degree)
    return root


def old_repository(count=5):
    repository = XMLRepository(OLD_DTD)
    for index in range(count):
        repository.insert(old_doc(f"B.S.{index}"))
    return repository


class TestVersionedLayout:
    def test_publish_creates_version_dirs(self, tmp_path):
        versioned = VersionedRepository(tmp_path / "repo")
        assert not versioned.exists()
        version = versioned.publish(old_repository(), schema_version=1)
        assert version == 1
        assert versioned.exists()
        assert versioned.current_version() == 1
        assert (versioned.version_dir(1) / "manifest.json").exists()
        assert versioned.versions() == [1]

    def test_publish_allocates_next_version(self, tmp_path):
        versioned = VersionedRepository(tmp_path / "repo")
        versioned.publish(old_repository())
        version = versioned.publish(old_repository())
        assert version == 2
        assert versioned.versions() == [1, 2]
        assert versioned.current_version() == 2

    def test_load_current_and_specific(self, tmp_path):
        versioned = VersionedRepository(tmp_path / "repo")
        versioned.publish(old_repository(3), schema_version=7)
        versioned.publish(old_repository(5), schema_version=8)
        assert len(versioned.load()) == 5
        assert versioned.load().schema_version == 8
        assert len(versioned.load(version=1)) == 3
        assert versioned.load(version=1).schema_version == 7

    def test_load_without_publish_fails(self, tmp_path):
        versioned = VersionedRepository(tmp_path / "repo")
        with pytest.raises(ValueError):
            versioned.load()

    def test_current_pointer_is_json(self, tmp_path):
        versioned = VersionedRepository(tmp_path / "repo")
        versioned.publish(old_repository())
        pointer = json.loads(versioned.current_path.read_text())
        assert pointer == {"version": 1}

    def test_document_xml_matches_export(self, tmp_path):
        repository = old_repository(3)
        versioned = VersionedRepository(tmp_path / "repo")
        versioned.publish(repository)
        assert versioned.document_xml() == repository.export()


class TestRollback:
    def test_rollback_repoints_current(self, tmp_path):
        versioned = VersionedRepository(tmp_path / "repo")
        versioned.publish(old_repository(2))
        versioned.publish(old_repository(4))
        assert versioned.rollback() == 1
        assert versioned.current_version() == 1
        assert len(versioned.load()) == 2
        # The superseded version stays on disk for roll-forward.
        assert versioned.versions() == [1, 2]

    def test_rollback_at_first_version_fails(self, tmp_path):
        versioned = VersionedRepository(tmp_path / "repo")
        versioned.publish(old_repository())
        with pytest.raises(ValueError):
            versioned.rollback()

    def test_rollback_empty_store_fails(self, tmp_path):
        with pytest.raises(ValueError):
            VersionedRepository(tmp_path / "repo").rollback()

    def test_activate_rolls_forward(self, tmp_path):
        versioned = VersionedRepository(tmp_path / "repo")
        versioned.publish(old_repository(2))
        versioned.publish(old_repository(4))
        versioned.rollback()
        versioned.activate(2)
        assert versioned.current_version() == 2

    def test_activate_unknown_version_fails(self, tmp_path):
        versioned = VersionedRepository(tmp_path / "repo")
        versioned.publish(old_repository())
        with pytest.raises(ValueError):
            versioned.activate(9)


class TestParallelMigration:
    def test_serial_parity_with_migrate_repository(self):
        """Parallel migration over serialized documents produces exactly
        what the serial in-memory path produces."""
        repository = old_repository(6)
        serial_repo, serial_report = migrate_repository(repository, NEW_DTD)
        migrated_xml, report = migrate_documents(
            repository.export(), NEW_DTD, max_workers=1
        )
        assert migrated_xml == [
            to_xml_document(doc) for doc in serial_repo.documents
        ]
        assert report.documents == serial_report.documents
        assert report.migrated == serial_report.migrated
        assert report.already_conforming == serial_report.already_conforming
        assert report.total_operations == serial_report.total_operations
        assert report.edit_distances == serial_report.edit_distances

    @pytest.mark.slow
    def test_workers_do_not_change_output(self):
        repository = old_repository(8)
        serial_xml, serial_report = migrate_documents(
            repository.export(), NEW_DTD, max_workers=1
        )
        parallel_xml, parallel_report = migrate_documents(
            repository.export(), NEW_DTD, max_workers=2, chunk_size=3
        )
        assert parallel_xml == serial_xml
        assert parallel_report.total_operations == serial_report.total_operations
        assert parallel_report.edit_distances == serial_report.edit_distances

    def test_migrate_publishes_new_version(self, tmp_path):
        versioned = VersionedRepository(tmp_path / "repo")
        versioned.publish(old_repository(4), schema_version=1)
        version, report = versioned.migrate(
            NEW_DTD, schema_version=2, max_workers=1
        )
        assert version == 2
        assert report.documents == 4
        assert report.migrated == 4
        migrated = versioned.load()
        assert migrated.schema_version == 2
        assert len(migrated) == 4
        assert migrated.dtd.render() == NEW_DTD.render()
        # Every migrated document conforms (load re-validates), and the
        # old version remains for rollback.
        assert versioned.rollback() == 1
        assert versioned.load().dtd.render() == OLD_DTD.render()

    def test_migration_metrics(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry
        from repro.mapping.versioned import (
            MIGRATION_DOCUMENTS,
            MIGRATION_OPERATIONS,
        )

        registry = MetricsRegistry()
        versioned = VersionedRepository(tmp_path / "repo")
        versioned.publish(old_repository(3))
        versioned.migrate(NEW_DTD, max_workers=1, registry=registry)
        assert registry.counter(MIGRATION_DOCUMENTS).value == 3
        assert registry.counter(MIGRATION_OPERATIONS).value > 0

    def test_already_conforming_documents_skip_repair(self):
        repository = old_repository(3)
        migrated_xml, report = migrate_documents(
            repository.export(), OLD_DTD, max_workers=1
        )
        assert report.already_conforming == 3
        assert report.migrated == 0
        assert migrated_xml == repository.export()

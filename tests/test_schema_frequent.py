"""Tests for frequent-path mining, including the paper's Figure 2/3 example."""

import pytest

from repro.concepts.constraints import ConstraintSet
from repro.dom.node import Element
from repro.schema.frequent import PathStatistics, mine_frequent_paths
from repro.schema.paths import extract_paths


def tree(spec):
    tag, kids = spec
    element = Element(tag)
    for kid in kids:
        element.append_child(tree(kid))
    return element


@pytest.fixture(scope="module")
def figure2_docs():
    """The three trees of Figure 2."""
    a = tree(("resume", [
        ("objective", []),
        ("contact", []),
        ("education", [
            ("degree", [("date", []), ("institution", [])]),
            ("degree", [("date", [])]),
        ]),
    ]))
    b = tree(("resume", [
        ("contact", []),
        ("education", [
            ("degree", [("date", []), ("institution", [])]),
            ("degree", [("institution", []), ("date", [])]),
        ]),
    ]))
    c = tree(("resume", [
        ("education", [
            ("institution", [("degree", []), ("date", [])]),
            ("institution", [("degree", []), ("date", [])]),
        ]),
    ]))
    return [extract_paths(t) for t in (a, b, c)]


class TestStatistics:
    def test_support_counts_documents(self, figure2_docs):
        stats = PathStatistics.from_documents(figure2_docs)
        assert stats.support(("resume",)) == 1.0
        assert stats.support(("resume", "education")) == 1.0
        assert stats.support(("resume", "contact")) == pytest.approx(2 / 3)
        assert stats.support(("resume", "objective")) == pytest.approx(1 / 3)
        assert stats.support(("resume", "education", "degree")) == pytest.approx(2 / 3)

    def test_absent_path_zero(self, figure2_docs):
        stats = PathStatistics.from_documents(figure2_docs)
        assert stats.support(("resume", "skills")) == 0.0

    def test_support_ratio(self, figure2_docs):
        stats = PathStatistics.from_documents(figure2_docs)
        assert stats.support_ratio(("resume",)) == 1.0
        # education -> degree: (2/3) / 1.0
        assert stats.support_ratio(("resume", "education", "degree")) == pytest.approx(2 / 3)
        # degree -> date: (2/3) / (2/3) = 1
        assert stats.support_ratio(
            ("resume", "education", "degree", "date")
        ) == pytest.approx(1.0)

    def test_support_bounds_property(self, figure2_docs):
        """support(p)=1 iff in all docs; support>0 iff in some doc."""
        stats = PathStatistics.from_documents(figure2_docs)
        for path, count in stats.doc_frequency.items():
            assert 0 < stats.support(path) <= 1.0
            if stats.support(path) == 1.0:
                assert all(doc.contains(path) for doc in figure2_docs)

    def test_empty_corpus(self):
        stats = PathStatistics.from_documents([])
        assert stats.support(("x",)) == 0.0


class TestMining:
    def test_majority_at_two_thirds(self, figure2_docs):
        result = mine_frequent_paths(figure2_docs, sup_threshold=0.6)
        assert result.paths == {
            ("resume",),
            ("resume", "contact"),
            ("resume", "education"),
            ("resume", "education", "degree"),
            ("resume", "education", "degree", "date"),
            ("resume", "education", "degree", "institution"),
        }

    def test_lower_threshold_includes_more(self, figure2_docs):
        low = mine_frequent_paths(figure2_docs, sup_threshold=0.3)
        high = mine_frequent_paths(figure2_docs, sup_threshold=0.6)
        assert high.paths < low.paths
        assert ("resume", "objective") in low.paths

    def test_threshold_one_is_lower_bound(self, figure2_docs):
        result = mine_frequent_paths(figure2_docs, sup_threshold=1.0)
        assert result.paths == {("resume",), ("resume", "education")}

    def test_ratio_threshold_prunes(self, figure2_docs):
        # degree under education has ratio 2/3; a higher bar removes it
        # and everything below it.
        result = mine_frequent_paths(
            figure2_docs, sup_threshold=0.5, ratio_threshold=0.9
        )
        assert ("resume", "education") in result.paths
        assert ("resume", "education", "degree") not in result.paths
        assert ("resume", "education", "degree", "date") not in result.paths

    def test_result_prefix_closed(self, figure2_docs):
        result = mine_frequent_paths(figure2_docs, sup_threshold=0.3)
        for path in result.paths:
            for cut in range(1, len(path)):
                assert path[:cut] in result.paths

    def test_constraints_prune_candidates(self, figure2_docs):
        constraints = ConstraintSet(max_depth=1)
        result = mine_frequent_paths(
            figure2_docs, sup_threshold=0.3, constraints=constraints
        )
        assert max(len(p) for p in result.paths) == 2  # root + one level

    def test_nodes_explored_accounting(self, figure2_docs):
        unconstrained = mine_frequent_paths(figure2_docs, sup_threshold=0.3)
        constrained = mine_frequent_paths(
            figure2_docs,
            sup_threshold=0.3,
            constraints=ConstraintSet(max_depth=2),
        )
        assert constrained.nodes_explored < unconstrained.nodes_explored
        assert unconstrained.nodes_counted <= unconstrained.nodes_explored

    def test_extend_zero_support_requires_bound(self, figure2_docs):
        with pytest.raises(ValueError):
            mine_frequent_paths(
                figure2_docs, sup_threshold=0.5, extend_zero_support=True
            )

    def test_extend_zero_support_enumerates_constraint_space(self, figure2_docs):
        result = mine_frequent_paths(
            figure2_docs,
            sup_threshold=0.5,
            extend_zero_support=True,
            max_length=2,
            candidate_labels={"resume", "education", "contact", "skills"},
        )
        # root + 4 labels at level 2 (no constraint other than length)
        assert result.nodes_explored == 1 + 4

    def test_leaves(self, figure2_docs):
        result = mine_frequent_paths(figure2_docs, sup_threshold=0.6)
        leaves = set(result.leaves())
        assert ("resume", "contact") in leaves
        assert ("resume", "education") not in leaves

    def test_max_depth_property(self, figure2_docs):
        result = mine_frequent_paths(figure2_docs, sup_threshold=0.6)
        assert result.max_depth() == 4

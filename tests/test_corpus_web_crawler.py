"""Tests for the simulated web and topic crawler."""

import pytest

from repro.corpus.crawler import TopicCrawler
from repro.corpus.web import SimulatedWeb


@pytest.fixture(scope="module")
def web():
    return SimulatedWeb(resume_count=15, noise_count=45, seed=3)


class TestSimulatedWeb:
    def test_page_counts(self, web):
        assert len(web) == 60
        assert len(web.resume_urls()) == 15

    def test_fetch_known_and_unknown(self, web):
        url = next(iter(web.resume_urls()))
        assert web.fetch(url) is not None
        assert web.fetch("http://nowhere.example/") is None

    def test_every_page_has_links(self, web):
        for page in web.pages.values():
            assert 2 <= len(page.links) <= 6
            for link in page.links:
                assert link in web.pages

    def test_no_self_links(self, web):
        for url, page in web.pages.items():
            assert url not in page.links

    def test_resume_pages_carry_resume_html(self, web):
        url = next(iter(web.resume_urls()))
        page = web.fetch(url)
        assert page.is_resume
        assert page.resume is not None
        assert page.resume.data.name.split()[0] in page.html

    def test_noise_pages_rendered(self, web):
        noise = [p for p in web.pages.values() if not p.is_resume]
        assert noise
        assert all("<html>" in p.html for p in noise)

    def test_deterministic(self):
        a = SimulatedWeb(resume_count=5, noise_count=10, seed=4)
        b = SimulatedWeb(resume_count=5, noise_count=10, seed=4)
        assert {u: p.html for u, p in a.pages.items()} == {
            u: p.html for u, p in b.pages.items()
        }

    def test_requires_resumes(self):
        with pytest.raises(ValueError):
            SimulatedWeb(resume_count=0)


class TestTopicCrawler:
    def test_scoring_separates_topics(self, web):
        crawler = TopicCrawler(web)
        resume_url = next(iter(web.resume_urls()))
        noise_url = next(u for u in web.pages if u not in web.resume_urls())
        assert crawler.score(web.fetch(resume_url).html) >= 3
        assert crawler.score(web.fetch(noise_url).html) < 3

    def test_full_crawl_finds_all_resumes(self, web):
        report = TopicCrawler(web).crawl()
        assert report.recall == 1.0
        assert report.precision == 1.0
        assert len(report.collected) == 15

    def test_max_pages_budget(self, web):
        report = TopicCrawler(web, max_pages=10).crawl()
        assert report.visited == 10

    def test_best_first_beats_budgeted_random(self, web):
        """With a small budget, the focused crawler still finds resumes
        because frontier priority follows page relevance."""
        report = TopicCrawler(web, max_pages=25).crawl()
        assert len(report.collected) >= 10

    def test_from_knowledge_base(self, web, kb):
        crawler = TopicCrawler.from_knowledge_base(web, kb)
        assert "education" in crawler.keywords
        report = crawler.crawl()
        assert report.recall > 0.9

    def test_crawl_from_explicit_seed(self, web):
        seed = next(iter(web.resume_urls()))
        report = TopicCrawler(web).crawl([seed])
        assert report.visited > 1

    def test_report_metrics_consistent(self, web):
        report = TopicCrawler(web).crawl()
        assert report.visited <= len(web)
        assert 0 <= report.precision <= 1
        assert 0 <= report.recall <= 1

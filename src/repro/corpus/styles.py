"""Authorship rendering styles.

Each style renders the same logical :class:`ResumeData` through a
different visual HTML idiom -- exactly the heterogeneity premise of the
paper ("documents that conceptually follow a common schema are marked up
for visual rendering purposes only, and in different ways due to diverse
authorship").  A style also declares the field orders it renders entries
with, which the ground-truth builder needs (the leading field of an
entry semantically "describes the concept of the group", Section 2.3.2).

Styles included:

========================  ====================================================
``heading-list``          ``h2`` section headings, ``ul/li`` entries
``table``                 all-table layout (``tr``/``td``)
``definition-list``       ``dl/dt/dd`` sections
``paragraph``             ``h3`` headings + comma-separated ``p`` lines
``font-soup``             no headings; ``b``/``font``/``br`` era markup
``center-hr``             ``center``/``hr``-separated sections, mixed lists
========================  ====================================================
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus.model import EducationEntry, ExperienceEntry, ResumeData

# Heading text variants per section; every variant is (or contains) a
# concept instance of the section's concept so heterogeneous headings
# stay identifiable -- mirroring how the paper's user collects instances
# "after inspecting a few of the retrieved HTML documents".
SECTION_HEADINGS: dict[str, tuple[str, ...]] = {
    "contact": ("Contact Information", "Contact", "Personal Information"),
    "objective": ("Objective", "Career Objective", "Professional Objective"),
    "education": ("Education", "Educational Background", "Academic Background"),
    "experience": ("Experience", "Work Experience", "Professional Experience",
                   "Employment History"),
    "skills": ("Skills", "Technical Skills", "Computer Skills"),
    "courses": ("Courses", "Relevant Coursework", "Selected Courses"),
    "awards": ("Awards", "Honors and Awards", "Achievements"),
    "activities": ("Activities", "Extracurricular Activities", "Interests"),
    "publications": ("Publications", "Selected Publications"),
    "reference": ("References", "Reference"),
}

EDUCATION_FIELDS = ("date", "institution", "degree", "gpa")
EXPERIENCE_FIELDS = ("title", "company", "location", "dates")
CONTACT_FIELDS = ("address", "city", "phone", "email", "url")


def education_values(entry: EducationEntry, order: tuple[str, ...]) -> list[str]:
    """The entry's non-empty field texts in the style's order."""
    mapping = {
        "date": entry.date,
        "institution": entry.institution,
        "degree": entry.degree,
        "gpa": entry.gpa,
    }
    return [mapping[key] for key in order if mapping[key]]


def experience_values(entry: ExperienceEntry, order: tuple[str, ...]) -> list[str]:
    """The entry's non-empty field texts in the style's order."""
    mapping = {
        "title": entry.title,
        "company": entry.company,
        "location": entry.location,
        "dates": entry.dates,
    }
    return [mapping[key] for key in order if mapping[key]]


def contact_values(data: ResumeData, order: tuple[str, ...]) -> list[str]:
    """The contact fields' non-empty texts in the style's order."""
    mapping = {
        "address": data.address,
        "city": data.city,
        "phone": data.phone,
        "email": data.email,
        "url": data.url,
    }
    return [mapping[key] for key in order if mapping[key]]


@dataclass
class RenderStyle:
    """Base class: a named way of rendering resumes to HTML."""

    name: str = "abstract"
    education_order: tuple[str, ...] = EDUCATION_FIELDS
    experience_order: tuple[str, ...] = EXPERIENCE_FIELDS
    contact_order: tuple[str, ...] = CONTACT_FIELDS

    def heading(self, section: str, rng: random.Random) -> str:
        """Pick a heading text variant for a section."""
        return rng.choice(SECTION_HEADINGS[section])

    def render(self, data: ResumeData, rng: random.Random) -> str:
        """Produce the document HTML."""
        raise NotImplementedError

    # -- shared content helpers ------------------------------------------

    def skills_items(self, data: ResumeData) -> list[str]:
        return list(data.languages) + list(data.systems)

    def section_body_lines(
        self, section: str, data: ResumeData, rng: random.Random
    ) -> list[str]:
        """The section's content as plain text lines (one per entry)."""
        if section == "contact":
            return contact_values(data, self.contact_order)
        if section == "objective":
            return [data.objective]
        if section == "education":
            return [
                ", ".join(education_values(e, self.education_order))
                for e in data.education
            ]
        if section == "experience":
            return [
                ", ".join(experience_values(e, self.experience_order))
                for e in data.experience
            ]
        if section == "skills":
            return self.skills_items(data)
        if section == "courses":
            return list(data.courses)
        if section == "awards":
            return list(data.awards)
        if section == "activities":
            return list(data.activities)
        if section == "publications":
            return list(data.publications)
        if section == "reference":
            return [data.references]
        raise ValueError(f"unknown section: {section}")


class HeadingListStyle(RenderStyle):
    """``h2`` headings with ``ul/li`` bodies -- the classic layout."""

    def __init__(self) -> None:
        super().__init__(name="heading-list")

    def render(self, data: ResumeData, rng: random.Random) -> str:
        parts = [
            f"<html><head><title>{data.name} - Resume</title></head><body>",
            f"<h1>Resume of {data.name}</h1>",
        ]
        for section in data.section_names():
            parts.append(f"<h2>{self.heading(section, rng)}</h2>")
            lines = self.section_body_lines(section, data, rng)
            parts.append("<ul>")
            for line in lines:
                parts.append(f"<li>{line}</li>")
            parts.append("</ul>")
        parts.append("</body></html>")
        return "\n".join(parts)


class TableStyle(RenderStyle):
    """Everything in tables, the mid-90s way."""

    def __init__(self) -> None:
        super().__init__(
            name="table",
            education_order=("institution", "degree", "date", "gpa"),
            experience_order=("company", "title", "dates", "location"),
        )

    def render(self, data: ResumeData, rng: random.Random) -> str:
        parts = [
            f"<html><head><title>{data.name}</title></head><body>",
            f"<h1>{data.name}</h1>",
            "<table border=1>",
        ]
        for section in data.section_names():
            parts.append(
                f"<tr><td><b>{self.heading(section, rng)}</b></td><td><table>"
            )
            for line in self.section_body_lines(section, data, rng):
                parts.append(f"<tr><td>{line}</td></tr>")
            parts.append("</table></td></tr>")
        parts.append("</table></body></html>")
        return "\n".join(parts)


class DefinitionListStyle(RenderStyle):
    """``dl``: headings as ``dt``, entries as ``dd``."""

    def __init__(self) -> None:
        super().__init__(
            name="definition-list",
            education_order=("degree", "institution", "date", "gpa"),
        )

    def render(self, data: ResumeData, rng: random.Random) -> str:
        parts = [
            f"<html><head><title>{data.name} Curriculum Vitae</title></head><body>",
            f"<h1>Curriculum Vitae: {data.name}</h1>",
            "<dl>",
        ]
        for section in data.section_names():
            parts.append(f"<dt><strong>{self.heading(section, rng)}</strong></dt>")
            for line in self.section_body_lines(section, data, rng):
                parts.append(f"<dd>{line}</dd>")
        parts.append("</dl></body></html>")
        return "\n".join(parts)


class ParagraphStyle(RenderStyle):
    """``h3`` headings; each section body is comma-packed paragraphs."""

    def __init__(self) -> None:
        super().__init__(
            name="paragraph",
            experience_order=("dates", "title", "company", "location"),
        )

    def render(self, data: ResumeData, rng: random.Random) -> str:
        parts = [
            f"<html><head><title>Resume: {data.name}</title></head><body>",
            f"<h1>Resume</h1><p>{data.name}</p>",
        ]
        for section in data.section_names():
            parts.append(f"<h3>{self.heading(section, rng)}</h3>")
            lines = self.section_body_lines(section, data, rng)
            if section in ("skills", "courses", "awards", "activities"):
                # One comma-packed paragraph -- the hard case for rules.
                parts.append(f"<p>{', '.join(lines)}</p>")
            else:
                for line in lines:
                    parts.append(f"<p>{line}</p>")
        parts.append("</body></html>")
        return "\n".join(parts)


class FontSoupStyle(RenderStyle):
    """No structural markup at all: ``b``, ``font``, ``br`` everywhere.

    The degenerate-but-common case the paper's grouping weights exist
    for: bold runs act as section leaders.
    """

    def __init__(self) -> None:
        super().__init__(
            name="font-soup",
            education_order=("institution", "date", "degree", "gpa"),
        )

    def render(self, data: ResumeData, rng: random.Random) -> str:
        parts = [
            f"<html><head><title>{data.name}</title></head>",
            f'<body><font size="5">{data.name}</font><br><br>',
        ]
        for section in data.section_names():
            parts.append(f"<b>{self.heading(section, rng)}</b><br>")
            for line in self.section_body_lines(section, data, rng):
                parts.append(f'<font size="3">{line}</font><br>')
            parts.append("<br>")
        parts.append("</body></html>")
        return "\n".join(parts)


class CenterHrStyle(RenderStyle):
    """``center``ed headings separated by ``hr``, ``ol`` bodies."""

    def __init__(self) -> None:
        super().__init__(
            name="center-hr",
            contact_order=("email", "phone", "address", "city", "url"),
        )

    def render(self, data: ResumeData, rng: random.Random) -> str:
        parts = [
            f"<html><head><title>{data.name} - Curriculum Vitae</title></head><body>",
            f"<center><h1>{data.name}</h1></center>",
        ]
        for section in data.section_names():
            parts.append("<hr>")
            parts.append(f"<h2><center>{self.heading(section, rng)}</center></h2>")
            lines = self.section_body_lines(section, data, rng)
            parts.append("<ol>")
            for line in lines:
                parts.append(f"<li>{line}</li>")
            parts.append("</ol>")
        parts.append("</body></html>")
        return "\n".join(parts)


STYLES: dict[str, RenderStyle] = {
    style.name: style
    for style in (
        HeadingListStyle(),
        TableStyle(),
        DefinitionListStyle(),
        ParagraphStyle(),
        FontSoupStyle(),
        CenterHrStyle(),
    )
}

"""The logical resume data model.

A :class:`ResumeData` is the author-independent content of one resume;
rendering styles turn it into HTML, and the ground-truth builder turns it
into the logical concept tree a perfect conversion would recover.
Sampling lives in :mod:`repro.corpus.generator`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus import vocab


@dataclass
class EducationEntry:
    """One degree: institution, degree name, date, optional GPA."""

    institution: str
    degree: str
    date: str
    gpa: str = ""


@dataclass
class ExperienceEntry:
    """One job: title, company, location, date range."""

    title: str
    company: str
    location: str
    dates: str


@dataclass
class ResumeData:
    """All content of one resume (sections may be empty)."""

    name: str
    email: str
    phone: str
    address: str
    city: str
    url: str = ""
    objective: str = ""
    education: list[EducationEntry] = field(default_factory=list)
    experience: list[ExperienceEntry] = field(default_factory=list)
    languages: list[str] = field(default_factory=list)
    systems: list[str] = field(default_factory=list)
    courses: list[str] = field(default_factory=list)
    awards: list[str] = field(default_factory=list)
    activities: list[str] = field(default_factory=list)
    publications: list[str] = field(default_factory=list)
    references: str = ""

    def section_names(self) -> list[str]:
        """The non-empty sections, in canonical order."""
        present = ["contact"]
        if self.objective:
            present.append("objective")
        if self.education:
            present.append("education")
        if self.experience:
            present.append("experience")
        if self.languages or self.systems:
            present.append("skills")
        if self.courses:
            present.append("courses")
        if self.awards:
            present.append("awards")
        if self.activities:
            present.append("activities")
        if self.publications:
            present.append("publications")
        if self.references:
            present.append("reference")
        return present


def sample_resume(rng: random.Random) -> ResumeData:
    """Draw one resume's content from the vocabulary pools."""
    first = rng.choice(vocab.FIRST_NAMES)
    last = rng.choice(vocab.LAST_NAMES)
    city, state, zipcode = rng.choice(vocab.CITIES)
    street_no = rng.randint(10, 9999)
    street = rng.choice(vocab.STREETS)
    email_user = f"{first[0].lower()}{last.lower()}"
    email = f"{email_user}@{rng.choice(vocab.EMAIL_DOMAINS)}"
    phone = f"({rng.randint(200, 989)}) {rng.randint(200, 989)}-{rng.randint(1000, 9999)}"

    education: list[EducationEntry] = []
    grad_year = rng.randint(1988, 2001)
    for _ in range(rng.randint(2, 4)):
        month = rng.choice(vocab.MONTHS)
        entry = EducationEntry(
            institution=rng.choice(vocab.UNIVERSITIES),
            degree=rng.choice(vocab.DEGREES),
            date=f"{month} {grad_year}",
            gpa=(
                f"GPA {rng.randint(30, 40) / 10:.1f}/4.0"
                if rng.random() < 0.6
                else ""
            ),
        )
        education.append(entry)
        grad_year += rng.randint(2, 5)

    experience: list[ExperienceEntry] = []
    job_year = grad_year - rng.randint(4, 8)
    for _ in range(rng.randint(2, 5)):
        end_year = job_year + rng.randint(1, 4)
        end = str(end_year) if rng.random() < 0.8 else "present"
        exp_city, _state, _zip = rng.choice(vocab.CITIES)
        experience.append(
            ExperienceEntry(
                title=rng.choice(vocab.JOB_TITLES),
                company=rng.choice(vocab.COMPANIES),
                location=exp_city,
                dates=f"{job_year} - {end}",
            )
        )
        job_year = end_year

    def pick(pool: tuple[str, ...], low: int, high: int) -> list[str]:
        count = rng.randint(low, high)
        return list(rng.sample(pool, min(count, len(pool))))

    # Courses render with a term ("<name>, Fall 1995"): the term is a
    # DATE concept instance, giving the paper's ``courses (date+)``
    # sample-DTD shape a chance to emerge.
    course_names = pick(vocab.COURSES, 2, 6) if rng.random() < 0.65 else []
    courses = [
        f"{name}, {rng.choice(('Spring', 'Summer', 'Fall', 'Winter'))} "
        f"{rng.randint(1990, 2001)}"
        for name in course_names
    ]

    return ResumeData(
        name=f"{first} {last}",
        email=email,
        phone=phone,
        address=f"{street_no} {street}",
        city=f"{city}, {state} {zipcode}",
        url=(
            f"http://www.{rng.choice(vocab.EMAIL_DOMAINS)}/~{email_user}"
            if rng.random() < 0.4
            else ""
        ),
        objective=rng.choice(vocab.OBJECTIVES) if rng.random() < 0.8 else "",
        education=education,
        experience=experience,
        languages=pick(vocab.PROGRAMMING_LANGUAGES, 3, 8),
        systems=pick(vocab.OPERATING_SYSTEMS, 2, 5),
        courses=courses,
        awards=pick(vocab.AWARDS, 1, 3) if rng.random() < 0.5 else [],
        activities=pick(vocab.ACTIVITIES, 1, 3) if rng.random() < 0.4 else [],
        publications=(
            pick(vocab.PUBLICATION_TITLES, 1, 3) if rng.random() < 0.25 else []
        ),
        references=rng.choice(vocab.REFERENCE_LINES) if rng.random() < 0.7 else "",
    )

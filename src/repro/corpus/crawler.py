"""The topic-specific crawler (the [20] substrate).

A best-first crawler over :class:`repro.corpus.web.SimulatedWeb` with a
keyword relevance scorer: pages "that look like resumes" -- scored by
occurrences of resume-topic keywords, the same concept instances the
conversion step reuses ("some concept instances are often already
present in order for the topic specific crawler to gather respective
documents", Section 2.2).
"""

from __future__ import annotations

import heapq
import re
from dataclasses import dataclass, field

from repro.concepts.knowledge import KnowledgeBase
from repro.corpus.generator import GeneratedResume
from repro.corpus.web import SimulatedWeb

# Headings that indicate a resume-like page; defaults drawn from the
# resume topic's title concepts.
DEFAULT_TOPIC_KEYWORDS = (
    "resume", "curriculum vitae", "objective", "education", "experience",
    "skills", "references",
)


@dataclass
class CrawlReport:
    """Outcome of a crawl."""

    visited: int = 0
    collected: list[GeneratedResume] = field(default_factory=list)
    collected_urls: list[str] = field(default_factory=list)
    false_positives: int = 0
    missed: int = 0

    @property
    def precision(self) -> float:
        total = len(self.collected_urls)
        return (total - self.false_positives) / total if total else 0.0

    @property
    def recall(self) -> float:
        true_hits = len(self.collected_urls) - self.false_positives
        denominator = true_hits + self.missed
        return true_hits / denominator if denominator else 0.0


class TopicCrawler:
    """Best-first topic crawler with keyword relevance scoring."""

    def __init__(
        self,
        web: SimulatedWeb,
        *,
        keywords: tuple[str, ...] = DEFAULT_TOPIC_KEYWORDS,
        relevance_threshold: int = 3,
        max_pages: int | None = None,
    ) -> None:
        self.web = web
        self.keywords = keywords
        self.relevance_threshold = relevance_threshold
        self.max_pages = max_pages
        self._patterns = [
            re.compile(rf"(?<![a-z]){re.escape(keyword)}(?![a-z])", re.IGNORECASE)
            for keyword in keywords
        ]

    @classmethod
    def from_knowledge_base(
        cls, web: SimulatedWeb, kb: KnowledgeBase, **kwargs
    ) -> "TopicCrawler":
        """Build the scorer from a knowledge base's title concepts.

        Reuses concept names as crawl keywords -- the paper's observation
        that crawler keywords and concept instances overlap.
        """
        from repro.concepts.concept import ConceptRole

        keywords = tuple(
            concept.name for concept in kb.by_role(ConceptRole.TITLE)
        )
        return cls(web, keywords=keywords, **kwargs)

    def score(self, html: str) -> int:
        """Topic relevance: number of distinct topic keywords present."""
        return sum(1 for pattern in self._patterns if pattern.search(html))

    def crawl(self, seeds: list[str] | None = None) -> CrawlReport:
        """Best-first crawl from ``seeds`` (the web's defaults if None).

        Pages scoring at least ``relevance_threshold`` are collected as
        resumes; frontier expansion prefers links found on high-scoring
        pages (standard focused-crawling heuristic).
        """
        seeds = seeds if seeds is not None else self.web.seed_urls
        report = CrawlReport()
        seen: set[str] = set()
        # Max-heap via negative priority; tie-broken by insertion order.
        frontier: list[tuple[int, int, str]] = []
        counter = 0
        for seed in seeds:
            heapq.heappush(frontier, (0, counter, seed))
            counter += 1

        while frontier:
            if self.max_pages is not None and report.visited >= self.max_pages:
                break
            _priority, _tie, url = heapq.heappop(frontier)
            if url in seen:
                continue
            seen.add(url)
            page = self.web.fetch(url)
            if page is None:
                continue
            report.visited += 1
            score = self.score(page.html)
            if score >= self.relevance_threshold:
                report.collected_urls.append(url)
                if page.resume is not None:
                    report.collected.append(page.resume)
                else:
                    report.false_positives += 1
            for link in page.links:
                if link not in seen:
                    heapq.heappush(frontier, (-score, counter, link))
                    counter += 1

        collected_set = set(report.collected_urls)
        report.missed = sum(
            1 for url in self.web.resume_urls() if url not in collected_set
        )
        return report

"""The resume corpus factory.

Produces deterministic batches of (HTML, ground truth) pairs:
content is sampled from the data model, rendered through a randomly
chosen authorship style, and optionally degraded by the noise injector.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.corpus.groundtruth import build_ground_truth
from repro.corpus.model import ResumeData, sample_resume
from repro.corpus.noise import NoiseConfig, inject_noise
from repro.corpus.styles import STYLES, RenderStyle
from repro.dom.node import Element


@dataclass
class GeneratedResume:
    """One synthetic resume: source HTML + everything needed to score it."""

    doc_id: int
    html: str
    data: ResumeData
    style_name: str
    ground_truth: Element


class ResumeCorpusGenerator:
    """Seeded generator of heterogeneous resume corpora.

    ``style_weights`` biases the style mix (uniform by default);
    ``noise`` enables markup malformation (off by default so accuracy
    experiments separate rule errors from parser resilience).
    """

    def __init__(
        self,
        seed: int = 1966,
        *,
        styles: dict[str, RenderStyle] | None = None,
        style_weights: dict[str, float] | None = None,
        noise: NoiseConfig | None = None,
    ) -> None:
        self.seed = seed
        self.styles = dict(styles) if styles is not None else dict(STYLES)
        if not self.styles:
            raise ValueError("at least one style is required")
        self.style_weights = style_weights or {}
        self.noise = noise

    def _pick_style(self, rng: random.Random) -> RenderStyle:
        names = sorted(self.styles)
        weights = [self.style_weights.get(name, 1.0) for name in names]
        name = rng.choices(names, weights=weights, k=1)[0]
        return self.styles[name]

    def generate_one(self, doc_id: int) -> GeneratedResume:
        """Generate document ``doc_id`` (stable across calls)."""
        rng = random.Random(f"{self.seed}:{doc_id}")
        data = sample_resume(rng)
        style = self._pick_style(rng)
        html = style.render(data, rng)
        if self.noise is not None:
            html = inject_noise(html, rng, self.noise)
        return GeneratedResume(
            doc_id=doc_id,
            html=html,
            data=data,
            style_name=style.name,
            ground_truth=build_ground_truth(data, style),
        )

    def generate(self, count: int, *, start_id: int = 0) -> list[GeneratedResume]:
        """Generate ``count`` documents with consecutive ids."""
        return [self.generate_one(start_id + i) for i in range(count)]

    def generate_html(self, count: int) -> list[str]:
        """Just the HTML sources (for scalability sweeps)."""
        return [doc.html for doc in self.generate(count)]

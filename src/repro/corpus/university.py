"""A synthetic university-site corpus -- Section 5's second broad topic.

"... XML repositories capturing linked HTML documents pertaining to
broader topics such as product catalogs or University Web sites."

The pages here are department faculty directories: one page lists the
department's people with office, phone, email, and research interests.
Like the resume and catalog corpora, every page carries its ground-truth
concept tree, and the conversion/discovery pipeline is reused untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.concepts.concept import Concept, ConceptInstance, ConceptRole
from repro.concepts.constraints import ConstraintSet
from repro.concepts.knowledge import KnowledgeBase
from repro.dom.node import Element

# ---------------------------------------------------------------------------
# knowledge base

_PHONE_PATTERNS = [r"\(\d{3}\)\s*\d{3}[-.]\d{4}", r"\b\d{3}[-.]\d{3}[-.]\d{4}\b"]
_EMAIL_PATTERNS = [r"\b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b"]
_OFFICE_PATTERNS = [r"\b(Room|Rm\.?)\s*\d+[A-Z]?\b", r"\b\d{3,4}\s+[A-Z][a-z]+\s+Hall\b"]


def build_university_knowledge_base() -> KnowledgeBase:
    """The faculty-directory domain: 9 concepts."""

    def concept(name, role, keywords, patterns=(), description=""):
        instances = [ConceptInstance(k) for k in keywords]
        instances.extend(ConceptInstance(p, is_regex=True) for p in patterns)
        return Concept(name, instances, role=role, description=description)

    title = ConceptRole.TITLE
    content = ConceptRole.CONTENT
    concepts = [
        concept(
            "directory", title,
            ["faculty directory", "people", "faculty and staff", "our faculty",
             "department directory"],
            description="The directory page root.",
        ),
        concept(
            "faculty", title,
            ["professor", "prof.", "dr.", "lecturer", "instructor"],
            description="One person's entry (anchored by their title).",
        ),
        concept(
            "research", title,
            ["research interests", "research areas", "interests"],
            description="Research-interest blocks.",
        ),
        concept(
            "office", content, ["office"], _OFFICE_PATTERNS,
            description="Office locations.",
        ),
        concept(
            "phone", content, ["tel", "telephone", "fax"], _PHONE_PATTERNS,
            description="Phone numbers.",
        ),
        concept(
            "email", content, ["e-mail"], _EMAIL_PATTERNS,
            description="Email addresses.",
        ),
        concept(
            "area", content,
            ["databases", "operating systems", "networks", "graphics",
             "artificial intelligence", "theory", "security",
             "information retrieval", "compilers", "architecture"],
            description="Research areas.",
        ),
        concept(
            "course", content,
            [r"\b[A-Z]{2,4}\s?\d{2,3}[A-Z]?\b(?![:\d])"],
            description="Courses taught (by code).",
        ),
        concept(
            "degree", content,
            ["ph.d.", "phd", "m.s.", "b.s.", "doctorate"],
            description="Degrees held.",
        ),
    ]
    # The course concept's only keyword is actually a regex.
    concepts[7].instances = [
        ConceptInstance("course"),
        ConceptInstance(r"\b[A-Z]{2,4}\s?\d{2,3}[A-Z]?\b(?![:\d])", is_regex=True),
    ]
    constraints = ConstraintSet(no_repeat_on_path=True, max_depth=4)
    constraints.add_depth("DIRECTORY", "=", 1)
    return KnowledgeBase("directory", concepts, constraints)


# ---------------------------------------------------------------------------
# data model

FIRST = ("Alice", "Bob", "Carol", "David", "Erika", "Frank", "Grace", "Hiro")
LAST = ("Nguyen", "Okafor", "Petrov", "Quinn", "Rossi", "Sato", "Turner", "Ueda")
TITLES = ("Professor", "Professor", "Lecturer", "Dr.")
HALLS = ("Kemper Hall", "Watson Hall", "Evans Hall", "Soda Hall")
AREAS = (
    "Databases", "Operating Systems", "Networks", "Graphics",
    "Artificial Intelligence", "Theory", "Security", "Information Retrieval",
)
DEPARTMENTS = ("Computer Science", "Electrical Engineering", "Statistics")


@dataclass
class FacultyEntry:
    """One person in the directory."""

    title: str
    name: str
    office: str
    phone: str
    email: str
    areas: list[str] = field(default_factory=list)


@dataclass
class DirectoryData:
    """One department directory page."""

    department: str
    entries: list[FacultyEntry] = field(default_factory=list)


def sample_directory(rng: random.Random) -> DirectoryData:
    """Draw one directory's content."""
    entries = []
    for _ in range(rng.randint(3, 8)):
        first, last = rng.choice(FIRST), rng.choice(LAST)
        entries.append(
            FacultyEntry(
                title=rng.choice(TITLES),
                name=f"{first} {last}",
                office=f"{rng.randint(100, 4999)} {rng.choice(HALLS)}",
                phone=f"({rng.randint(200, 989)}) {rng.randint(200, 989)}-{rng.randint(1000, 9999)}",
                email=f"{first[0].lower()}{last.lower()}@cs.example.edu",
                areas=list(rng.sample(AREAS, rng.randint(1, 3))),
            )
        )
    return DirectoryData(department=rng.choice(DEPARTMENTS), entries=entries)


# ---------------------------------------------------------------------------
# rendering + ground truth


def render_directory(data: DirectoryData, rng: random.Random) -> str:
    """Render with the heading/list idiom (one idiom suffices here; the
    cross-style heterogeneity claim is carried by the other corpora)."""
    parts = [
        f"<html><head><title>{data.department} Faculty Directory</title></head><body>",
        "<h1>Faculty Directory</h1>",
    ]
    for entry in data.entries:
        parts.append(f"<h3>{entry.title} {entry.name}</h3>")
        parts.append("<ul>")
        parts.append(f"<li>{entry.office}</li>")
        parts.append(f"<li>{entry.phone}</li>")
        parts.append(f"<li>{entry.email}</li>")
        parts.append(f"<li>Research interests: {', '.join(entry.areas)}</li>")
        parts.append("</ul>")
    parts.append("</body></html>")
    return "\n".join(parts)


def build_directory_ground_truth(data: DirectoryData) -> Element:
    """The logical concept tree for a rendered directory.

    Same record convention as the resume contact block: the person's
    fields form one record anchored by its leading concept (the office,
    as the author rendered it first), and the research block anchors its
    areas.
    """
    root = Element("DIRECTORY")
    for entry in data.entries:
        person = Element("FACULTY")
        person.set_val(f"{entry.title} {entry.name}")
        office = Element("OFFICE")
        office.set_val(entry.office)
        for tag, value in (("PHONE", entry.phone), ("EMAIL", entry.email)):
            child = Element(tag)
            child.set_val(value)
            office.append_child(child)
        research = Element("RESEARCH")
        research.set_val("Research interests")
        for area in entry.areas:
            area_el = Element("AREA")
            area_el.set_val(area)
            research.append_child(area_el)
        office.append_child(research)
        person.append_child(office)
        root.append_child(person)
    return root


@dataclass
class GeneratedDirectory:
    """One synthetic directory page with scoring context."""

    doc_id: int
    html: str
    data: DirectoryData
    ground_truth: Element


class DirectoryCorpusGenerator:
    """Seeded generator of faculty-directory corpora."""

    def __init__(self, seed: int = 2002) -> None:
        self.seed = seed

    def generate_one(self, doc_id: int) -> GeneratedDirectory:
        rng = random.Random(f"univ:{self.seed}:{doc_id}")
        data = sample_directory(rng)
        return GeneratedDirectory(
            doc_id=doc_id,
            html=render_directory(data, rng),
            data=data,
            ground_truth=build_directory_ground_truth(data),
        )

    def generate(self, count: int) -> list[GeneratedDirectory]:
        return [self.generate_one(i) for i in range(count)]

"""A synthetic product-catalog corpus -- the "broader topic" of Section 5.

Same contract as the resume corpus: one logical data model rendered
through several visual idioms, with the ground-truth concept tree
attached to every document.  Everything downstream (rules, discovery,
mapping) is reused unchanged with the catalog knowledge base -- that is
the point of experiment E12.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.dom.node import Element

# ---------------------------------------------------------------------------
# vocabulary

PRODUCT_ADJECTIVES = (
    "Turbo", "Ultra", "Pro", "Compact", "Deluxe", "Classic", "Power",
    "Smart", "Rapid", "Prime",
)
PRODUCT_NOUNS = (
    "Blender", "Toaster", "Drill", "Keyboard", "Monitor", "Lamp",
    "Heater", "Mixer", "Router", "Scanner", "Chair", "Desk",
)
MANUFACTURERS = (
    "Acme Industries", "Globex Corp.", "Initech Inc.", "Umbrella Company",
    "Stark Industries", "Wayne Industries", "Tyrell Corp.", "Cyberdyne Inc.",
)
CATEGORIES = (
    "Electronics", "Appliances", "Hardware", "Furniture", "Tools",
    "Office Supplies",
)
AVAILABILITY = (
    "In stock", "Out of stock", "Ships in 2-3 weeks", "Backordered",
    "Available", "Pre-order",
)
COLORS = ("Black", "White", "Silver", "Red", "Blue", "Gray", "Beige")
STORES = (
    "Midtown Hardware", "ValueMart Direct", "The Gadget Shed",
    "Office Depot Annex", "HomeTools Warehouse",
)
ORDERING_TEXT = (
    "Call 1-800-555-0199 to place your order",
    "Orders placed before noon are processed the same day",
    "We accept all major credit cards and purchase orders",
)

CATALOG_HEADINGS = ("Product Catalog", "Our Products", "Price List")
ORDERING_HEADINGS = ("How to Order", "Ordering Information", "Shipping Information")


# ---------------------------------------------------------------------------
# data model


@dataclass
class ProductData:
    """One product's logical content."""

    name: str
    sku: str
    price: str
    manufacturer: str
    category: str
    availability: str
    color: str = ""
    weight: str = ""
    warranty: str = ""


@dataclass
class CatalogData:
    """One catalog page's logical content."""

    store: str
    products: list[ProductData] = field(default_factory=list)
    ordering: str = ""


def sample_catalog(rng: random.Random) -> CatalogData:
    """Draw one catalog's content."""
    products = []
    for _ in range(rng.randint(3, 7)):
        adjective = rng.choice(PRODUCT_ADJECTIVES)
        noun = rng.choice(PRODUCT_NOUNS)
        model = rng.randint(100, 9900)
        products.append(
            ProductData(
                name=f"{adjective}{noun} {model}",
                sku=f"{noun[:2].upper()}-{rng.randint(1000, 99999)}",
                price=f"${rng.randint(9, 899)}.{rng.choice(('00', '49', '95', '99'))}",
                manufacturer=rng.choice(MANUFACTURERS),
                category=rng.choice(CATEGORIES),
                availability=rng.choice(AVAILABILITY),
                color=rng.choice(COLORS) if rng.random() < 0.7 else "",
                weight=(
                    f"{rng.randint(1, 40)}.{rng.randint(0, 9)} lbs"
                    if rng.random() < 0.6
                    else ""
                ),
                warranty=(
                    f"{rng.randint(1, 5)}-year limited warranty"
                    if rng.random() < 0.5
                    else ""
                ),
            )
        )
    return CatalogData(
        store=rng.choice(STORES),
        products=products,
        ordering=rng.choice(ORDERING_TEXT) if rng.random() < 0.8 else "",
    )


# ---------------------------------------------------------------------------
# styles

PRODUCT_FIELDS = (
    "sku", "price", "manufacturer", "category", "availability",
    "color", "weight", "warranty",
)

_FIELD_TAGS = {
    "sku": "SKU",
    "price": "PRICE",
    "manufacturer": "MANUFACTURER",
    "category": "CATEGORY",
    "availability": "AVAILABILITY",
    "color": "COLOR",
    "weight": "WEIGHT",
    "warranty": "WARRANTY",
}


def field_values(product: ProductData, order: tuple[str, ...]) -> list[tuple[str, str]]:
    """(concept tag, text) pairs of the product's non-empty fields."""
    return [
        (_FIELD_TAGS[key], getattr(product, key))
        for key in order
        if getattr(product, key)
    ]


@dataclass
class CatalogStyle:
    """One way of rendering catalogs to HTML."""

    name: str
    field_order: tuple[str, ...] = PRODUCT_FIELDS
    # Whether each product gets an "Item:"-style heading the converter
    # can identify as a PRODUCT element.
    product_heading: bool = True

    def render(self, data: CatalogData, rng: random.Random) -> str:
        raise NotImplementedError


class HeadingCatalogStyle(CatalogStyle):
    """h3 product headings with ul field lists."""

    def __init__(self) -> None:
        super().__init__(name="catalog-headings")

    def render(self, data: CatalogData, rng: random.Random) -> str:
        parts = [
            f"<html><head><title>{data.store} Product Catalog</title></head><body>",
            f"<h1>{rng.choice(CATALOG_HEADINGS)}</h1>",
        ]
        for product in data.products:
            parts.append(f"<h3>Item: {product.name}</h3>")
            parts.append("<ul>")
            for _tag, value in field_values(product, self.field_order):
                parts.append(f"<li>{value}</li>")
            parts.append("</ul>")
        if data.ordering:
            parts.append(f"<h3>{rng.choice(ORDERING_HEADINGS)}</h3>")
            parts.append(f"<p>{data.ordering}</p>")
        parts.append("</body></html>")
        return "\n".join(parts)


class TableCatalogStyle(CatalogStyle):
    """One table row per product; no per-product heading."""

    def __init__(self) -> None:
        super().__init__(
            name="catalog-table",
            field_order=("sku", "manufacturer", "category", "price",
                         "availability", "color", "weight", "warranty"),
            product_heading=False,
        )

    def render(self, data: CatalogData, rng: random.Random) -> str:
        parts = [
            f"<html><head><title>{data.store} Price List</title></head><body>",
            f"<h1>{rng.choice(CATALOG_HEADINGS)}</h1>",
            "<table border=1>",
        ]
        for product in data.products:
            cells = [product.name] + [
                value for _tag, value in field_values(product, self.field_order)
            ]
            parts.append(
                "<tr>" + "".join(f"<td>{cell}</td>" for cell in cells) + "</tr>"
            )
        parts.append("</table>")
        if data.ordering:
            parts.append(f"<h2>{rng.choice(ORDERING_HEADINGS)}</h2>")
            parts.append(f"<p>{data.ordering}</p>")
        parts.append("</body></html>")
        return "\n".join(parts)


class DefinitionCatalogStyle(CatalogStyle):
    """dt product headings, dd comma-packed field lines."""

    def __init__(self) -> None:
        super().__init__(
            name="catalog-dl",
            field_order=("price", "sku", "manufacturer", "category",
                         "availability", "color", "weight", "warranty"),
        )

    def render(self, data: CatalogData, rng: random.Random) -> str:
        parts = [
            f"<html><head><title>{data.store} Catalogue</title></head><body>",
            f"<h1>{rng.choice(CATALOG_HEADINGS)}</h1>",
            "<dl>",
        ]
        for product in data.products:
            parts.append(f"<dt><b>Item: {product.name}</b></dt>")
            line = ", ".join(
                value for _tag, value in field_values(product, self.field_order)
            )
            parts.append(f"<dd>{line}</dd>")
        parts.append("</dl>")
        if data.ordering:
            parts.append(f"<h2>{rng.choice(ORDERING_HEADINGS)}</h2>")
            parts.append(f"<p>{data.ordering}</p>")
        parts.append("</body></html>")
        return "\n".join(parts)


CATALOG_STYLES: dict[str, CatalogStyle] = {
    style.name: style
    for style in (
        HeadingCatalogStyle(),
        TableCatalogStyle(),
        DefinitionCatalogStyle(),
    )
}


# ---------------------------------------------------------------------------
# ground truth + generator


def build_catalog_ground_truth(data: CatalogData, style: CatalogStyle) -> Element:
    """The logical concept tree for a rendered catalog.

    Same conventions as the resume truth: each product is a record
    anchored by its leading identified concept; with a product heading,
    the record nests under a ``PRODUCT`` element carrying the heading.
    """
    root = Element("CATALOG")
    for product in data.products:
        fields = field_values(product, style.field_order)
        if not fields:
            continue
        leader_tag, leader_value = fields[0]
        leader = Element(leader_tag)
        leader.set_val(leader_value)
        for tag, value in fields[1:]:
            child = Element(tag)
            child.set_val(value)
            leader.append_child(child)
        if style.product_heading:
            wrapper = Element("PRODUCT")
            wrapper.set_val(f"Item: {product.name}")
            wrapper.append_child(leader)
            root.append_child(wrapper)
        else:
            root.append_child(leader)
    if data.ordering:
        ordering = Element("ORDERING")
        ordering.set_val(data.ordering)
        root.append_child(ordering)
    return root


@dataclass
class GeneratedCatalog:
    """One synthetic catalog page with its scoring context."""

    doc_id: int
    html: str
    data: CatalogData
    style_name: str
    ground_truth: Element


class CatalogCorpusGenerator:
    """Seeded generator of heterogeneous catalog corpora."""

    def __init__(self, seed: int = 2002) -> None:
        self.seed = seed
        self.styles = dict(CATALOG_STYLES)

    def generate_one(self, doc_id: int) -> GeneratedCatalog:
        rng = random.Random(f"catalog:{self.seed}:{doc_id}")
        data = sample_catalog(rng)
        style = self.styles[rng.choice(sorted(self.styles))]
        return GeneratedCatalog(
            doc_id=doc_id,
            html=style.render(data, rng),
            data=data,
            style_name=style.name,
            ground_truth=build_catalog_ground_truth(data, style),
        )

    def generate(self, count: int, *, start_id: int = 0) -> list[GeneratedCatalog]:
        return [self.generate_one(start_id + i) for i in range(count)]

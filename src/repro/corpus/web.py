"""A simulated web graph for the topic crawler.

The paper's corpus came from a crawler "programmed to crawl the Web
looking for HTML documents that looked like resumes" [20].  We simulate
the web it crawled: a deterministic directed graph of pages where some
fraction are resumes (from the corpus generator) and the rest are
plausible non-resume pages, with hyperlinks biased so that resume pages
cluster (personal pages link to other personal pages).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.corpus import vocab
from repro.corpus.generator import GeneratedResume, ResumeCorpusGenerator


@dataclass
class WebPage:
    """One page of the simulated web."""

    url: str
    html: str
    is_resume: bool
    resume: GeneratedResume | None = None
    links: list[str] = field(default_factory=list)


def _noise_page(rng: random.Random, url: str, links: list[str]) -> str:
    title, body = rng.choice(vocab.NOISE_PAGE_TOPICS)
    anchor_html = "".join(
        f'<li><a href="{target}">{target}</a></li>' for target in links
    )
    return (
        f"<html><head><title>{title}</title></head><body>"
        f"<h1>{title}</h1><p>{body}</p><ul>{anchor_html}</ul></body></html>"
    )


class SimulatedWeb:
    """A deterministic web graph of resume and non-resume pages."""

    def __init__(
        self,
        *,
        resume_count: int = 50,
        noise_count: int = 150,
        seed: int = 7,
        generator: ResumeCorpusGenerator | None = None,
        cluster_bias: float = 0.7,
        multipage_fraction: float = 0.0,
    ) -> None:
        if resume_count < 1:
            raise ValueError("need at least one resume page")
        if not 0.0 <= multipage_fraction <= 1.0:
            raise ValueError("multipage_fraction must be in [0, 1]")
        rng = random.Random(seed)
        generator = generator or ResumeCorpusGenerator(seed=seed)
        self.pages: dict[str, WebPage] = {}

        resume_urls = [f"http://people.example.org/~user{i}/resume.html"
                       for i in range(resume_count)]
        noise_urls = [f"http://www.example.org/page{i}.html"
                      for i in range(noise_count)]
        all_urls = resume_urls + noise_urls

        for i, (url, resume) in enumerate(
            zip(resume_urls, generator.generate(resume_count))
        ):
            page = WebPage(url, resume.html, True, resume)
            self.pages[url] = page
            if rng.random() < multipage_fraction:
                self._split_skills_page(page, rng)
        for url in noise_urls:
            self.pages[url] = WebPage(url, "", False)

        # Wire links: every page links to a handful of others; resume
        # pages prefer other resume pages (personal-page clustering).
        for url, page in self.pages.items():
            # Tiny webs cannot supply many distinct targets.
            out_degree = min(rng.randint(2, 6), len(all_urls) - 1)
            targets: set[str] = set()
            attempts = 0
            while len(targets) < out_degree and attempts < 50 * out_degree:
                attempts += 1
                if page.is_resume and rng.random() < cluster_bias:
                    target = rng.choice(resume_urls)
                else:
                    target = rng.choice(all_urls)
                if target != url:
                    targets.add(target)
            page.links = sorted(targets)

        # Render noise pages now that links exist; append links to
        # resume pages as a footer.  Section sub-pages (multi-page
        # resumes) already carry their content and are left alone.
        for url, page in self.pages.items():
            if page.is_resume:
                footer = "".join(
                    f'<a href="{t}">link</a> ' for t in page.links
                )
                page.html = page.html.replace(
                    "</body>", f"<p>{footer}</p></body>"
                )
            elif not page.html:
                page.html = _noise_page(rng, url, page.links)

        self.seed_urls = [resume_urls[0], noise_urls[0] if noise_urls else resume_urls[0]]

    def _split_skills_page(self, page: WebPage, rng: random.Random) -> None:
        """Turn a resume into a multi-page site: the skills section moves
        to a linked sub-page (Section 5's linkage-structure scenario).

        The main page keeps everything else and gains an anchor whose
        text names the section; the resume's ground truth is unchanged
        (it describes the logical document, however many pages carry it).
        """
        resume = page.resume
        assert resume is not None
        skills = list(resume.data.languages) + list(resume.data.systems)
        if not skills:
            return
        sub_url = page.url.rsplit("/", 1)[0] + "/skills.html"
        items = "".join(f"<li>{skill}</li>" for skill in skills)
        sub_html = (
            "<html><head><title>Technical Skills</title></head><body>"
            f"<h2>Technical Skills</h2><ul>{items}</ul></body></html>"
        )
        # Remove the skills section from the main page.  Every style
        # renders the section body between its heading and the next
        # section, so the cheapest faithful edit is re-rendering with
        # empty skills; styles are deterministic given the same rng, so
        # instead we excise the lines mentioning the skills and replace
        # the section heading with the link.
        main_html = page.html
        for skill in skills:
            main_html = main_html.replace(f"<li>{skill}</li>", "")
            main_html = main_html.replace(
                f'<font size="3">{skill}</font><br>', ""
            )
            main_html = main_html.replace(f"<tr><td>{skill}</td></tr>", "")
            main_html = main_html.replace(f"<dd>{skill}</dd>", "")
            main_html = main_html.replace(f"<p>{skill}</p>", "")
        if ", ".join(skills) in main_html:  # paragraph style packs them
            main_html = main_html.replace(f"<p>{', '.join(skills)}</p>", "")
        main_html = main_html.replace(
            "</body>",
            f'<p><a href="{sub_url}">Technical Skills</a></p></body>',
        )
        page.html = main_html
        self.pages[sub_url] = WebPage(sub_url, sub_html, False)

    def fetch(self, url: str) -> WebPage | None:
        """Retrieve a page (``None`` for a dead link)."""
        return self.pages.get(url)

    def __len__(self) -> int:
        return len(self.pages)

    def resume_urls(self) -> set[str]:
        """Ground truth: the URLs that really are resumes."""
        return {url for url, page in self.pages.items() if page.is_resume}

"""HTML malformation injection.

Real crawled HTML of the paper's era was rarely well-formed; Section 2.4
notes the rules tolerate this and that cleansing (HTML Tidy) improves
accuracy.  This module produces controlled malformations for the
resilience ablation (experiment E6).  All transformations operate on the
HTML source text so the parser really has to cope with them.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass


@dataclass
class NoiseConfig:
    """Per-malformation probabilities (each evaluated independently).

    ``rate`` scales all of them at once; ``NoiseConfig(rate=0)`` is a
    no-op.
    """

    rate: float = 0.3
    drop_close_tags: bool = True
    drop_heading_close_tags: bool = True
    uppercase_tags: bool = True
    unquote_attributes: bool = True
    stray_font_tags: bool = True
    double_open_bold: bool = True

    def scaled(self, p: float) -> float:
        return min(1.0, p * self.rate)


_CLOSE_TAG_RE = re.compile(r"</(li|p|td|tr|dd|dt|font|b|i|u)>", re.IGNORECASE)
_HEADING_CLOSE_RE = re.compile(r"</(h[1-6])>", re.IGNORECASE)
_OPEN_TAG_RE = re.compile(r"<([a-zA-Z][a-zA-Z0-9]*)((?:\s[^<>]*)?)>")
_QUOTED_ATTR_RE = re.compile(r'(\s[a-zA-Z-]+=)"([A-Za-z0-9]+)"')


def inject_noise(
    html: str, rng: random.Random, config: NoiseConfig | None = None
) -> str:
    """Return a malformed variant of ``html``.

    Deterministic for a given ``rng`` state.  The logical content is
    never changed -- only the markup degrades -- so ground truth built
    from the clean data model remains valid.
    """
    config = config or NoiseConfig()
    if config.rate <= 0:
        return html

    if config.drop_close_tags:
        html = _CLOSE_TAG_RE.sub(
            lambda m: "" if rng.random() < config.scaled(0.5) else m.group(0),
            html,
        )
    if config.drop_heading_close_tags:
        # A dropped </h2> makes the heading swallow the section body --
        # the malformation HTML Tidy's heading repair exists for.
        html = _HEADING_CLOSE_RE.sub(
            lambda m: "" if rng.random() < config.scaled(0.35) else m.group(0),
            html,
        )
    if config.uppercase_tags:
        html = _OPEN_TAG_RE.sub(
            lambda m: (
                f"<{m.group(1).upper()}{m.group(2)}>"
                if rng.random() < config.scaled(0.4)
                else m.group(0)
            ),
            html,
        )
    if config.unquote_attributes:
        html = _QUOTED_ATTR_RE.sub(
            lambda m: (
                f"{m.group(1)}{m.group(2)}"
                if rng.random() < config.scaled(0.6)
                else m.group(0)
            ),
            html,
        )
    if config.stray_font_tags:
        lines = html.split("\n")
        for index in range(len(lines)):
            if rng.random() < config.scaled(0.1):
                lines[index] = "<font>" + lines[index]
        html = "\n".join(lines)
    if config.double_open_bold and rng.random() < config.scaled(0.5):
        html = html.replace("<b>", "<b><b>", 1)
    return html

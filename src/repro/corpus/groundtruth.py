"""Ground-truth logical trees for generated resumes.

The paper's accuracy figure (Fig. 4) comes from manually inspecting 50
documents and counting wrong parent-child and sibling relationships in
the extracted trees.  Because our corpus is synthetic, the "manual" tree
is constructible: it is the semantically correct concept tree for the
resume's content, given the authoring choices the style made.

Conventions (the human judgments the metric encodes):

* Sections are children of the resume root, in rendered order.
* An education/experience entry nests under its *leading* concept -- the
  first field the author rendered ("often the first object in such a
  group of semantically related objects describes the concept of this
  group", Section 2.3.2; also the homonym discussion for ``date``).
* Contact information is likewise one record (how to reach the person)
  anchored by its leading field, so its remaining fields nest under the
  first one the author rendered.
* Skills are flat siblings under ``SKILLS`` (they are all at the same
  level of abstraction, whatever line-packing the author used).
* Courses carry a term date each (``COURSES`` has ``DATE`` children,
  matching the paper's sample DTD ``<!ELEMENT courses ((#PCDATA),
  date+)>``); award/activity/publication/reference/objective text has no
  lower-level concepts, so those sections are leaves.
"""

from __future__ import annotations

from repro.corpus.model import ResumeData
from repro.corpus.styles import (
    RenderStyle,
    contact_values,
    education_values,
    experience_values,
)
from repro.dom.node import Element

_CONTACT_FIELD_TAGS = {
    "address": "ADDRESS",
    "city": "LOCATION",
    "phone": "PHONE",
    "email": "EMAIL",
    "url": "URL",
}

_EDUCATION_FIELD_TAGS = {
    "date": "DATE",
    "institution": "INSTITUTION",
    "degree": "DEGREE",
    "gpa": "GPA",
}

_EXPERIENCE_FIELD_TAGS = {
    "title": "JOB-TITLE",
    "company": "COMPANY",
    "location": "LOCATION",
    "dates": "DATE",
}


def _entry_tree(
    fields: list[tuple[str, str]]  # (concept tag, value), leader first
) -> Element | None:
    if not fields:
        return None
    leader_tag, leader_value = fields[0]
    leader = Element(leader_tag)
    leader.set_val(leader_value)
    for tag, value in fields[1:]:
        child = Element(tag)
        child.set_val(value)
        leader.append_child(child)
    return leader


def build_ground_truth(data: ResumeData, style: RenderStyle) -> Element:
    """The logical concept tree for ``data`` as authored by ``style``."""
    root = Element("RESUME")
    for section in data.section_names():
        root.append_child(_section_tree(section, data, style))
    return root


def _section_tree(section: str, data: ResumeData, style: RenderStyle) -> Element:
    element = Element(section.upper())
    if section == "contact":
        values = contact_values(data, style.contact_order)
        tags = [
            _CONTACT_FIELD_TAGS[key]
            for key in style.contact_order
            if getattr(data, key)
        ]
        record = _entry_tree(list(zip(tags, values)))
        if record is not None:
            element.append_child(record)
    elif section == "education":
        for entry in data.education:
            keys = [
                key
                for key in style.education_order
                if education_values_single(entry, key)
            ]
            fields = [
                (_EDUCATION_FIELD_TAGS[key], education_values_single(entry, key))
                for key in keys
            ]
            tree = _entry_tree(fields)
            if tree is not None:
                element.append_child(tree)
    elif section == "experience":
        for entry in data.experience:
            keys = [
                key
                for key in style.experience_order
                if experience_values_single(entry, key)
            ]
            fields = [
                (_EXPERIENCE_FIELD_TAGS[key], experience_values_single(entry, key))
                for key in keys
            ]
            tree = _entry_tree(fields)
            if tree is not None:
                element.append_child(tree)
    elif section == "skills":
        for language in data.languages:
            child = Element("PROGRAMMING-LANGUAGE")
            child.set_val(language)
            element.append_child(child)
        for system in data.systems:
            child = Element("OPERATING-SYSTEM")
            child.set_val(system)
            element.append_child(child)
    elif section == "courses":
        for course in data.courses:
            # Courses render as "<name>, <term>"; the term is the DATE.
            child = Element("DATE")
            child.set_val(course.rsplit(", ", 1)[-1])
            element.append_child(child)
    # objective / awards / activities / publications / reference: leaves.
    return element


def education_values_single(entry, key: str) -> str:
    """One education field's text ('' when absent)."""
    return education_values(entry, (key,))[0] if education_values(entry, (key,)) else ""


def experience_values_single(entry, key: str) -> str:
    """One experience field's text ('' when absent)."""
    return (
        experience_values(entry, (key,))[0] if experience_values(entry, (key,)) else ""
    )

"""Simulated resume corpus + topic-specific crawler.

The paper evaluates on "resumes marked up in HTML and which have been
gathered by a Web crawler" programmed "to crawl the Web looking for HTML
documents that looked like resumes" (Section 4).  That corpus is
proprietary and long gone; this package is the substitution documented
in DESIGN.md: a deterministic generator that renders one logical resume
data model through many authorship styles with optional malformation
noise -- giving exactly the paper's premise (homogeneous content,
heterogeneous visual markup) *plus* machine-checkable ground truth.

* :mod:`repro.corpus.model` -- the logical resume data model.
* :mod:`repro.corpus.vocab` -- deterministic fake-data pools.
* :mod:`repro.corpus.styles` -- authorship rendering styles.
* :mod:`repro.corpus.noise` -- HTML malformation injection.
* :mod:`repro.corpus.generator` -- corpus factory with ground truth.
* :mod:`repro.corpus.web` / :mod:`repro.corpus.crawler` -- a simulated
  web graph and the topic crawler that harvests resumes from it.
"""

from repro.corpus.crawler import CrawlReport, TopicCrawler
from repro.corpus.generator import GeneratedResume, ResumeCorpusGenerator
from repro.corpus.model import EducationEntry, ExperienceEntry, ResumeData
from repro.corpus.noise import NoiseConfig, inject_noise
from repro.corpus.styles import STYLES, RenderStyle
from repro.corpus.web import SimulatedWeb, WebPage

__all__ = [
    "ResumeData",
    "EducationEntry",
    "ExperienceEntry",
    "ResumeCorpusGenerator",
    "GeneratedResume",
    "RenderStyle",
    "STYLES",
    "NoiseConfig",
    "inject_noise",
    "SimulatedWeb",
    "WebPage",
    "TopicCrawler",
    "CrawlReport",
]

"""Deterministic fake-data pools for the synthetic resume corpus.

All pools are plain tuples so sampling with a seeded ``random.Random``
is reproducible across runs and platforms.
"""

from __future__ import annotations

FIRST_NAMES = (
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael",
    "Linda", "William", "Elizabeth", "David", "Barbara", "Richard", "Susan",
    "Joseph", "Jessica", "Thomas", "Sarah", "Christopher", "Karen", "Charles",
    "Nancy", "Daniel", "Lisa", "Matthew", "Betty", "Anthony", "Margaret",
    "Mark", "Sandra", "Wei", "Mei", "Raj", "Priya", "Carlos", "Ana",
    "Hiroshi", "Yuki", "Hans", "Ingrid",
)

LAST_NAMES = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Dawson", "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez",
    "Wilson", "Anderson", "Becker", "Taylor", "Moore", "Jackson", "Martin",
    "Lee", "Perez", "Thompson", "White", "Harris", "Chen", "Wang", "Kumar",
    "Patel", "Kim", "Nguyen", "Schmidt", "Tanaka", "Rossi", "Silva",
)

UNIVERSITIES = (
    "University of California at Davis",
    "Stanford University",
    "Massachusetts Institute of Technology",
    "University of Texas at Austin",
    "Carnegie Mellon University",
    "University of Washington",
    "Cornell University",
    "University of Illinois at Urbana-Champaign",
    "Georgia Institute of Technology",
    "University of Michigan",
    "San Jose State University",
    "Purdue University",
    "University of Wisconsin-Madison",
    "Columbia University",
    "De Anza College",
    "Foothill College",
)

DEGREES = (
    "B.S. (Computer Science)",
    "B.S. in Electrical Engineering",
    "B.A. in Mathematics",
    "M.S. (Computer Science)",
    "M.S. in Computer Engineering",
    "Ph.D. in Computer Science",
    "MBA",
    "B.S. in Information Systems",
    "M.A. in Statistics",
    "Bachelor of Science in Physics",
)

MONTHS = (
    "January", "February", "March", "April", "May", "June",
    "July", "August", "September", "October", "November", "December",
)

COMPANIES = (
    "Acme Corp.",
    "IBM Corporation",
    "Sun Microsystems",
    "Oracle Corporation",
    "Hewlett-Packard Company",
    "Netscape Communications",
    "Verity Inc.",
    "Cisco Systems",
    "Intel Corporation",
    "Silicon Graphics",
    "NehaNet Corp.",
    "Excite@Home",
    "Lucent Technologies",
    "Apple Computer",
    "Adobe Systems",
    "Inktomi Corporation",
)

JOB_TITLES = (
    "Software Engineer",
    "Senior Engineer",
    "Member of Technical Staff",
    "Software Developer",
    "Systems Analyst",
    "Database Administrator",
    "Research Assistant",
    "Teaching Assistant",
    "Intern",
    "Project Manager",
    "QA Engineer",
    "Web Developer",
    "Technical Consultant",
    "Network Administrator",
)

CITIES = (
    ("San Jose", "CA", "95131"),
    ("Sunnyvale", "CA", "94089"),
    ("Davis", "CA", "95616"),
    ("San Francisco", "CA", "94102"),
    ("Seattle", "WA", "98101"),
    ("Austin", "TX", "78701"),
    ("Boston", "MA", "02108"),
    ("New York", "NY", "10001"),
    ("Palo Alto", "CA", "94301"),
    ("Mountain View", "CA", "94040"),
)

STREETS = (
    "Main Street", "Oak Avenue", "First Street", "Park Boulevard",
    "Maple Drive", "University Avenue", "El Camino Real", "Castro Street",
    "Market Street", "Lincoln Way",
)

PROGRAMMING_LANGUAGES = (
    "C++", "Java", "C", "Perl", "Python", "JavaScript", "SQL", "HTML",
    "XML", "Fortran", "Pascal", "Lisp", "Visual Basic", "Assembly",
    "Matlab", "Scheme",
)

OPERATING_SYSTEMS = (
    "Unix", "Linux", "Solaris", "Windows NT", "Windows 95", "MacOS",
    "AIX", "HP-UX", "FreeBSD", "MS-DOS",
)

COURSES = (
    "Data Structures and Algorithms",
    "Operating Systems Design",
    "Database Management Systems",
    "Computer Networks",
    "Compiler Construction",
    "Artificial Intelligence",
    "Software Engineering Methods",
    "Computer Architecture",
    "Distributed Systems",
    "Theory of Computation",
    "Numerical Analysis",
    "Computer Graphics",
)

AWARDS = (
    "Dean's List",
    "Phi Beta Kappa",
    "National Merit Scholar",
    "Outstanding Student Award",
    "Best Paper Award",
    "ACM Programming Contest Finalist",
    "Tau Beta Pi Honor Society",
    "Graduate Research Fellowship",
    "Chancellor's Scholarship",
)

ACTIVITIES = (
    "ACM Student Chapter",
    "IEEE Computer Society member",
    "University Chess Club",
    "Volunteer tutoring at local schools",
    "Intramural soccer team",
    "Habitat for Humanity volunteer",
    "Photography club",
    "Marathon running",
)

OBJECTIVES = (
    "Seeking a software engineer position in databases",
    "A challenging position in web information retrieval",
    "To obtain a full-time position developing distributed applications",
    "Seeking an internship in data management research",
    "A senior engineering role with technical leadership responsibilities",
    "To contribute to a dynamic development environment",
)

REFERENCE_LINES = (
    "Available upon request",
    "References available upon request",
    "Available on request",
    "Furnished upon request",
)

PUBLICATION_TITLES = (
    "Efficient Query Processing over Semistructured Data",
    "A Scalable Approach to Web Crawling",
    "Indexing Techniques for XML Repositories",
    "Schema Discovery in Heterogeneous Document Collections",
    "Caching Strategies for Distributed Databases",
    "Wrapper Generation for Online Data Sources",
)

EMAIL_DOMAINS = (
    "cs.ucdavis.edu", "alumni.stanford.edu", "acm.org", "ieee.org",
    "mail.com", "email.com", "techie.net", "webmail.org",
)

# Vocabulary for non-resume noise pages in the simulated web.
NOISE_PAGE_TOPICS = (
    ("Homepage", "Welcome to my homepage. Here are some links to my friends and photos of my cat."),
    ("CS 101 Course Page", "Lecture notes and homework assignments for the introductory programming course."),
    ("Department News", "The department is pleased to announce new faculty hires this fall semester."),
    ("Recipe Collection", "My favorite pasta recipes collected over the years from family and friends."),
    ("Conference Program", "The program committee invites submissions on all aspects of data engineering."),
    ("Sports Club", "Match schedule and league standings for the campus soccer club."),
    ("Travel Diary", "Photos and notes from our summer trip along the Pacific coast."),
)

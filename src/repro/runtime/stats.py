"""Engine instrumentation.

:class:`ChunkStats` is what one worker reports for one chunk of
documents; :class:`EngineStats` is the corpus-level aggregate the
engine, the ``convert-corpus`` CLI, and the Figure 5 scaling harness
all read.  Rule timings come from
:attr:`repro.convert.pipeline.ConversionResult.rule_seconds`, summed
across documents, so "where does the time go" is answerable per stage
without a profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ChunkStats:
    """Per-chunk counters and timings, as measured inside the worker."""

    index: int
    documents: int
    seconds: float = 0.0
    tokens_created: int = 0
    groups_created: int = 0
    nodes_eliminated: int = 0
    input_nodes: int = 0
    concept_nodes: int = 0
    rule_seconds: dict[str, float] = field(default_factory=dict)


@dataclass
class EngineStats:
    """Corpus-level instrumentation of one engine run.

    ``worker_seconds`` is the sum of in-worker chunk times; with ``n``
    busy workers it exceeds ``wall_seconds`` by up to a factor of ``n``
    (that gap *is* the parallel speedup).  ``max_queue_depth`` is the
    largest number of submitted-but-unmerged chunks observed -- it is
    bounded by the engine's backpressure window, which is what keeps
    memory flat on corpora far larger than RAM.
    """

    workers: int = 1
    chunk_size: int = 1
    documents: int = 0
    chunks: int = 0
    wall_seconds: float = 0.0
    worker_seconds: float = 0.0
    max_queue_depth: int = 0
    tokens_created: int = 0
    groups_created: int = 0
    nodes_eliminated: int = 0
    input_nodes: int = 0
    concept_nodes: int = 0
    rule_seconds: dict[str, float] = field(default_factory=dict)
    per_chunk: list[ChunkStats] = field(default_factory=list)

    @property
    def docs_per_second(self) -> float:
        """End-to-end corpus throughput."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.documents / self.wall_seconds

    def absorb(self, chunk: ChunkStats) -> None:
        """Fold one chunk's counters into the aggregate."""
        self.chunks += 1
        self.documents += chunk.documents
        self.worker_seconds += chunk.seconds
        self.tokens_created += chunk.tokens_created
        self.groups_created += chunk.groups_created
        self.nodes_eliminated += chunk.nodes_eliminated
        self.input_nodes += chunk.input_nodes
        self.concept_nodes += chunk.concept_nodes
        for rule, seconds in chunk.rule_seconds.items():
            self.rule_seconds[rule] = self.rule_seconds.get(rule, 0.0) + seconds
        self.per_chunk.append(chunk)

    def summary_rows(self) -> list[list[str]]:
        """(name, value) rows for the CLI report table."""
        return [
            ["documents", str(self.documents)],
            ["chunks", f"{self.chunks} x {self.chunk_size}"],
            ["workers", str(self.workers)],
            ["wall seconds", f"{self.wall_seconds:.2f}"],
            ["worker seconds", f"{self.worker_seconds:.2f}"],
            ["docs/sec", f"{self.docs_per_second:.1f}"],
            ["max queue depth", str(self.max_queue_depth)],
            ["tokens created", str(self.tokens_created)],
            ["groups created", str(self.groups_created)],
            ["nodes eliminated", str(self.nodes_eliminated)],
            ["concept nodes", str(self.concept_nodes)],
        ]

    def rule_rows(self) -> list[list[str]]:
        """(rule, seconds, share) rows, slowest stage first."""
        total = sum(self.rule_seconds.values())
        rows = []
        for rule, seconds in sorted(
            self.rule_seconds.items(), key=lambda item: -item[1]
        ):
            share = seconds / total if total else 0.0
            rows.append([rule, f"{seconds:.3f}", f"{share:.0%}"])
        return rows

"""Engine instrumentation, built on the metrics registry.

:class:`ChunkStats` is the picklable wire record one worker reports for
one chunk of documents.  :class:`EngineStats` is the corpus-level
aggregate the engine, the ``convert-corpus`` CLI, and the Figure 5
scaling harness all read -- since the observability PR it is a *view*
over a :class:`repro.obs.metrics.MetricsRegistry`: every counter it
absorbs lands in named metrics (``repro_engine_documents_total``,
``repro_rule_seconds_total{rule=...}``, a chunk-seconds histogram, ...),
so one engine run exports directly as JSON or Prometheus text and
``repro-web stats`` can re-render a saved snapshot as these same tables.

Rule timings come from
:attr:`repro.convert.pipeline.ConversionResult.rule_seconds`, summed
across documents, so "where does the time go" is answerable per stage
without a profiler.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.quantiles import QuantileDigest, merge_digest_maps

if TYPE_CHECKING:  # pragma: no cover
    from repro.convert.errors import DocumentFailure

# Metric names of the engine's registry schema.
DOCUMENTS = "repro_engine_documents_total"
# Documents dropped by a non-fail-fast error policy, labeled
# {stage="parse"|"tokenize"|...|"worker"} by the pipeline stage (or
# worker crash) that claimed them.
DOCUMENTS_FAILED = "repro_engine_documents_failed_total"
# Worker-pool rebuilds performed by BrokenProcessPool recovery.
POOL_REBUILDS = "repro_engine_pool_rebuilds_total"
CHUNKS = "repro_engine_chunks_total"
TOKENS_CREATED = "repro_engine_tokens_created_total"
GROUPS_CREATED = "repro_engine_groups_created_total"
NODES_ELIMINATED = "repro_engine_nodes_eliminated_total"
INPUT_NODES = "repro_engine_input_nodes_total"
CONCEPT_NODES = "repro_engine_concept_nodes_total"
WORKER_SECONDS = "repro_engine_worker_seconds_total"
# In-worker seconds spent converting documents (the per-document loop
# bodies alone); the gap to WORKER_SECONDS is per-chunk fixed overhead
# (pool scheduling, cache-counter snapshots, payload assembly).
DOC_SECONDS = "repro_engine_doc_seconds_total"
WALL_SECONDS = "repro_engine_wall_seconds"
MAX_QUEUE_DEPTH = "repro_engine_max_queue_depth"
WORKERS = "repro_engine_workers"
CHUNK_SIZE = "repro_engine_chunk_size"
RULE_SECONDS = "repro_rule_seconds_total"
CHUNK_SECONDS_HISTOGRAM = "repro_engine_chunk_seconds"
# Token-decision cache traffic from the fast tagger, labeled
# {cache="synonym"|"bayes", event="hits"|"misses"|"evictions"}.
TAGGER_CACHE_EVENTS = "repro_tagger_cache_events_total"

# Below this wall-clock resolution, documents/wall_seconds stops being a
# throughput and starts being timer noise (sub-millisecond runs round to
# absurd docs/sec figures); the divisor is floored here instead.
MIN_WALL_SECONDS = 1e-3

# Digest key for per-document end-to-end latency (parse through path
# extraction), alongside the per-stage keys from rule_seconds.
DOCUMENT_STAGE = "document"

# Stage order for quantile report tables: pipeline stages first, the
# end-to-end document row last.
STAGE_ORDER = (
    "parse",
    "tidy",
    "tokenize",
    "instance",
    "group",
    "consolidate",
    "root",
    DOCUMENT_STAGE,
)

# How many slowest-document records each chunk ships home (the parent
# keeps the global top K of the per-chunk top Ks).
SLOWEST_PER_CHUNK = 10


def merge_slowest(
    held: list[dict], other: list[dict], *, keep: int = SLOWEST_PER_CHUNK
) -> list[dict]:
    """Top-``keep`` slowest documents across two top-K lists, slowest
    first, index-tiebroken so merging is order-insensitive."""
    combined = sorted(
        held + list(other),
        key=lambda entry: (-entry.get("seconds", 0.0), entry.get("index", 0)),
    )
    return combined[:keep]


@dataclass
class ChunkStats:
    """Per-chunk counters and timings, as measured inside the worker.

    This is the wire format crossing the process boundary (plain
    picklable dataclass); the parent folds it into the registry-backed
    :class:`EngineStats` with :meth:`EngineStats.absorb`.
    """

    index: int
    documents: int
    # Documents a skip/quarantine policy dropped in this chunk, total
    # and broken down by the pipeline stage that failed (``"worker"``
    # for documents whose conversion killed the worker process).
    documents_failed: int = 0
    failures_by_stage: dict[str, int] = field(default_factory=dict)
    seconds: float = 0.0
    # Seconds spent inside the per-document conversion loop (failed
    # documents included); ``seconds - doc_seconds`` is this chunk's
    # fixed overhead, which the adaptive chunk sizer amortizes away.
    doc_seconds: float = 0.0
    tokens_created: int = 0
    groups_created: int = 0
    nodes_eliminated: int = 0
    input_nodes: int = 0
    concept_nodes: int = 0
    rule_seconds: dict[str, float] = field(default_factory=dict)
    # Token-decision cache counter growth during this chunk, per cache
    # ({"synonym": {"hits": ..., "misses": ..., "evictions": ...}});
    # empty when the fast tagger or its memoization is off.
    tagger_cache: dict[str, dict[str, int]] = field(default_factory=dict)
    # Per-stage latency digests ({"parse": ..., "document": ...}): one
    # observation per surviving document per stage, in a mergeable
    # QuantileDigest whose compact tuple state rides the pickle.
    stage_digests: dict[str, QuantileDigest] = field(default_factory=dict)
    # This chunk's top-K slowest documents, slowest first, each with its
    # label-path context ({"doc", "index", "seconds", "root",
    # "label_paths", "input_nodes", "concept_nodes"}).
    slowest_docs: list[dict] = field(default_factory=list)

    def fold(self, other: "ChunkStats") -> None:
        """Accumulate another chunk record into this one (used when
        crash recovery stitches bisection pieces back into the original
        chunk; ``index`` keeps this record's value)."""
        self.documents += other.documents
        self.documents_failed += other.documents_failed
        for stage, count in other.failures_by_stage.items():
            self.failures_by_stage[stage] = (
                self.failures_by_stage.get(stage, 0) + count
            )
        self.seconds += other.seconds
        self.doc_seconds += other.doc_seconds
        self.tokens_created += other.tokens_created
        self.groups_created += other.groups_created
        self.nodes_eliminated += other.nodes_eliminated
        self.input_nodes += other.input_nodes
        self.concept_nodes += other.concept_nodes
        for rule, seconds in other.rule_seconds.items():
            self.rule_seconds[rule] = self.rule_seconds.get(rule, 0.0) + seconds
        for cache_name, counters in other.tagger_cache.items():
            held = self.tagger_cache.setdefault(cache_name, {})
            for event, value in counters.items():
                held[event] = held.get(event, 0) + value
        merge_digest_maps(self.stage_digests, other.stage_digests)
        self.slowest_docs = merge_slowest(self.slowest_docs, other.slowest_docs)

    def observe_document(
        self,
        doc_id: str,
        index: int,
        seconds: float,
        rule_seconds: dict[str, float],
        *,
        context: dict | None = None,
    ) -> None:
        """Fold one surviving document's timings into the chunk digests
        and its slowest-documents candidates."""
        for stage, stage_seconds in rule_seconds.items():
            digest = self.stage_digests.get(stage)
            if digest is None:
                digest = self.stage_digests[stage] = QuantileDigest()
            digest.observe(stage_seconds)
        digest = self.stage_digests.get(DOCUMENT_STAGE)
        if digest is None:
            digest = self.stage_digests[DOCUMENT_STAGE] = QuantileDigest()
        digest.observe(seconds)
        entry = {"doc": doc_id, "index": index, "seconds": round(seconds, 6)}
        if context:
            entry.update(context)
        self.slowest_docs.append(entry)
        if len(self.slowest_docs) > 4 * SLOWEST_PER_CHUNK:
            self.slowest_docs = merge_slowest(self.slowest_docs, [])

    def finalize_slowest(self) -> None:
        """Trim the slowest-documents candidates to the shipped top K."""
        self.slowest_docs = merge_slowest(self.slowest_docs, [])

    # -- wire form ------------------------------------------------------------
    #
    # Every chunk crosses the process boundary as one of these, so the
    # pickle gets the same treatment PathAccumulator received: a
    # version-tagged tuple instead of dataclass dict state (no
    # per-instance field-name strings), with the slowest-document dicts
    # -- whose keys repeat across every row -- packed as one key tuple
    # plus value rows.  The digests already carry their own compact
    # tuple state.  Old dict-state pickles still restore.

    _WIRE_VERSION = 1

    def __getstate__(self):
        slowest = self.slowest_docs
        packed: tuple | list
        if slowest:
            keys = tuple(slowest[0])
            if all(tuple(entry) == keys for entry in slowest):
                packed = (keys, [tuple(entry.values()) for entry in slowest])
            else:
                packed = list(slowest)
        else:
            packed = ((), [])
        return (
            ChunkStats._WIRE_VERSION,
            self.index,
            self.documents,
            self.documents_failed,
            self.failures_by_stage,
            self.seconds,
            self.doc_seconds,
            (
                self.tokens_created,
                self.groups_created,
                self.nodes_eliminated,
                self.input_nodes,
                self.concept_nodes,
            ),
            self.rule_seconds,
            self.tagger_cache,
            self.stage_digests,
            packed,
        )

    def __setstate__(self, state) -> None:
        if isinstance(state, dict):
            # A pre-wire-form pickle (plain dataclass dict state).
            self.__dict__.update(state)
            self.__dict__.setdefault("doc_seconds", 0.0)
            return
        if state[0] != ChunkStats._WIRE_VERSION:
            raise ValueError(f"unknown ChunkStats wire version: {state[0]!r}")
        (
            _version,
            self.index,
            self.documents,
            self.documents_failed,
            self.failures_by_stage,
            self.seconds,
            self.doc_seconds,
            counters,
            self.rule_seconds,
            self.tagger_cache,
            self.stage_digests,
            packed,
        ) = state
        (
            self.tokens_created,
            self.groups_created,
            self.nodes_eliminated,
            self.input_nodes,
            self.concept_nodes,
        ) = counters
        if isinstance(packed, tuple):
            keys, rows = packed
            self.slowest_docs = [dict(zip(keys, row)) for row in rows]
        else:
            self.slowest_docs = list(packed)


def rule_rows_from_registry(registry: MetricsRegistry) -> list[list[str]]:
    """(rule, seconds, share) rows from ``repro_rule_seconds_total``
    counters, slowest stage first -- shared by the engine stats table,
    the serial ``html2xml`` summary, and ``repro-web stats``."""
    timings = {
        metric.label_dict().get("rule", "?"): metric.value  # type: ignore[union-attr]
        for metric in registry.find(RULE_SECONDS)
    }
    total = sum(timings.values())
    rows = []
    for rule, seconds in sorted(timings.items(), key=lambda item: -item[1]):
        share = seconds / total if total else 0.0
        rows.append([rule, f"{seconds:.3f}", f"{share:.0%}"])
    return rows


class EngineStats:
    """Corpus-level instrumentation of one engine run (registry view).

    ``worker_seconds`` is the sum of in-worker chunk times; with ``n``
    busy workers it exceeds ``wall_seconds`` by up to a factor of ``n``
    (that gap *is* the parallel speedup).  ``max_queue_depth`` is the
    largest number of submitted-but-unmerged chunks observed -- it is
    bounded by the engine's backpressure window, which is what keeps
    memory flat on corpora far larger than RAM.

    All counters live in :attr:`registry`; the attribute API
    (``stats.documents`` etc.) is preserved as properties over it.
    """

    def __init__(
        self,
        workers: int = 1,
        chunk_size: int = 1,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.per_chunk: list[ChunkStats] = []
        # Structured failure records collected by the engine's merge loop
        # (parent-side only; counters below persist through the registry,
        # this detail list does not).
        self.failures: list["DocumentFailure"] = []
        # Run-intelligence state merged from chunk digests (parent-side;
        # persisted via the run ledger rather than the registry).
        self.stage_digests: dict[str, QuantileDigest] = {}
        self.slowest_docs: list[dict] = []
        self.workers = workers
        self.chunk_size = chunk_size

    # -- registry-backed attributes ------------------------------------------

    def _count(self, name: str) -> int:
        return int(self.registry.value(name))

    @property
    def workers(self) -> int:
        return int(self.registry.value(WORKERS, default=1))

    @workers.setter
    def workers(self, value: int) -> None:
        self.registry.gauge(WORKERS).set(value)

    @property
    def chunk_size(self) -> int:
        return int(self.registry.value(CHUNK_SIZE, default=1))

    @chunk_size.setter
    def chunk_size(self, value: int) -> None:
        self.registry.gauge(CHUNK_SIZE).set(value)

    @property
    def documents(self) -> int:
        return self._count(DOCUMENTS)

    @property
    def chunks(self) -> int:
        return self._count(CHUNKS)

    @property
    def documents_failed(self) -> int:
        """Documents dropped by the error policy, across all stages."""
        return sum(
            int(metric.value) for metric in self.registry.find(DOCUMENTS_FAILED)
        )

    @property
    def failures_by_stage(self) -> dict[str, int]:
        """Dropped-document counts keyed by failing pipeline stage."""
        return {
            metric.label_dict().get("stage", "?"): int(metric.value)  # type: ignore[union-attr]
            for metric in self.registry.find(DOCUMENTS_FAILED)
        }

    @property
    def pool_rebuilds(self) -> int:
        """Worker-pool rebuilds performed by crash recovery."""
        return self._count(POOL_REBUILDS)

    def record_pool_rebuild(self) -> None:
        self.registry.counter(POOL_REBUILDS).inc()

    @property
    def wall_seconds(self) -> float:
        return self.registry.value(WALL_SECONDS)

    @wall_seconds.setter
    def wall_seconds(self, value: float) -> None:
        self.registry.gauge(WALL_SECONDS).set(value)

    @property
    def worker_seconds(self) -> float:
        return self.registry.value(WORKER_SECONDS)

    @property
    def doc_seconds(self) -> float:
        """In-worker seconds spent in the per-document loop bodies."""
        return self.registry.value(DOC_SECONDS)

    @property
    def max_queue_depth(self) -> int:
        return self._count(MAX_QUEUE_DEPTH)

    @max_queue_depth.setter
    def max_queue_depth(self, value: int) -> None:
        # A high-water mark: registered with merge="max" so registries
        # merged across chunk workers keep the corpus-wide maximum.
        self.registry.gauge(MAX_QUEUE_DEPTH, merge="max").set(value)

    @property
    def tokens_created(self) -> int:
        return self._count(TOKENS_CREATED)

    @property
    def groups_created(self) -> int:
        return self._count(GROUPS_CREATED)

    @property
    def nodes_eliminated(self) -> int:
        return self._count(NODES_ELIMINATED)

    @property
    def input_nodes(self) -> int:
        return self._count(INPUT_NODES)

    @property
    def concept_nodes(self) -> int:
        return self._count(CONCEPT_NODES)

    @property
    def rule_seconds(self) -> dict[str, float]:
        """Per-stage seconds summed over workers, from the registry."""
        return {
            metric.label_dict().get("rule", "?"): metric.value  # type: ignore[union-attr]
            for metric in self.registry.find(RULE_SECONDS)
        }

    @property
    def tagger_cache_events(self) -> dict[str, dict[str, int]]:
        """Per-cache hit/miss/eviction totals, from the registry."""
        events: dict[str, dict[str, int]] = {}
        for metric in self.registry.find(TAGGER_CACHE_EVENTS):
            labels = metric.label_dict()
            cache_events = events.setdefault(labels.get("cache", "?"), {})
            cache_events[labels.get("event", "?")] = int(metric.value)  # type: ignore[union-attr]
        return events

    @property
    def tagger_cache_hit_rate(self) -> float:
        """Hits over lookups across all token-decision caches."""
        hits = 0
        lookups = 0
        for counters in self.tagger_cache_events.values():
            hits += counters.get("hits", 0)
            lookups += counters.get("hits", 0) + counters.get("misses", 0)
        return hits / lookups if lookups else 0.0

    @property
    def docs_per_second(self) -> float:
        """End-to-end corpus throughput.

        The wall clock is floored at :data:`MIN_WALL_SECONDS`: a
        sub-millisecond measurement is timer noise and would otherwise
        round a tiny corpus into a six-figure docs/sec headline.
        """
        if self.wall_seconds <= 0.0 or self.documents == 0:
            return 0.0
        return self.documents / max(self.wall_seconds, MIN_WALL_SECONDS)

    @property
    def docs_per_second_per_worker(self) -> float:
        """Scaling efficiency: corpus throughput per configured worker.

        Flat as workers are added means linear scaling; falling means
        the added workers are buying coordination overhead, not
        throughput (the regression the scaling benchmark gate watches).
        """
        workers = self.workers
        if workers <= 0:
            return 0.0
        return self.docs_per_second / workers

    @property
    def chunk_overhead_fraction(self) -> float:
        """Share of in-worker time *not* spent converting documents.

        ``worker_seconds`` covers whole chunks; ``doc_seconds`` only the
        per-document loop bodies.  The difference is per-chunk fixed
        cost (scheduling, cache-counter snapshots, payload assembly) --
        the quantity adaptive chunk sizing drives down by growing
        chunks until it is amortized.
        """
        worker_seconds = self.worker_seconds
        if worker_seconds <= 0.0:
            return 0.0
        return max(0.0, 1.0 - self.doc_seconds / worker_seconds)

    # -- aggregation ---------------------------------------------------------

    def absorb(self, chunk: ChunkStats) -> None:
        """Fold one chunk's counters into the registry."""
        registry = self.registry
        registry.counter(CHUNKS).inc()
        registry.counter(DOCUMENTS).inc(chunk.documents)
        for stage, count in chunk.failures_by_stage.items():
            registry.counter(DOCUMENTS_FAILED, stage=stage).inc(count)
        registry.counter(WORKER_SECONDS).inc(chunk.seconds)
        registry.counter(DOC_SECONDS).inc(chunk.doc_seconds)
        registry.counter(TOKENS_CREATED).inc(chunk.tokens_created)
        registry.counter(GROUPS_CREATED).inc(chunk.groups_created)
        registry.counter(NODES_ELIMINATED).inc(chunk.nodes_eliminated)
        registry.counter(INPUT_NODES).inc(chunk.input_nodes)
        registry.counter(CONCEPT_NODES).inc(chunk.concept_nodes)
        for rule, seconds in chunk.rule_seconds.items():
            registry.counter(RULE_SECONDS, rule=rule).inc(seconds)
        for cache_name, counters in chunk.tagger_cache.items():
            for event, value in counters.items():
                registry.counter(
                    TAGGER_CACHE_EVENTS, cache=cache_name, event=event
                ).inc(value)
        registry.histogram(CHUNK_SECONDS_HISTOGRAM).observe(chunk.seconds)
        merge_digest_maps(self.stage_digests, chunk.stage_digests)
        self.slowest_docs = merge_slowest(self.slowest_docs, chunk.slowest_docs)
        self.per_chunk.append(chunk)

    @classmethod
    def from_registry(cls, registry: MetricsRegistry) -> "EngineStats":
        """View a saved registry snapshot (``repro-web stats``) as engine
        statistics; ``per_chunk`` detail is not persisted."""
        stats = cls.__new__(cls)
        stats.registry = registry
        stats.per_chunk = []
        stats.failures = []
        stats.stage_digests = {}
        stats.slowest_docs = []
        return stats

    # -- report tables -------------------------------------------------------

    def summary_rows(self) -> list[list[str]]:
        """(name, value) rows for the CLI report table."""
        rows = [
            ["documents", str(self.documents)],
            ["chunks", f"{self.chunks} x {self.chunk_size}"],
        ]
        # Adaptive chunk sizing: when the observed chunk sizes vary,
        # show the range next to the nominal "chunks" row.  The final
        # chunk is excluded -- it is a partial tail under static sizing
        # too, not evidence of adaptation.
        ordered = sorted(self.per_chunk, key=lambda c: c.index)[:-1]
        sizes = [c.documents + c.documents_failed for c in ordered]
        if sizes and min(sizes) != max(sizes):
            rows.append(["chunk sizes", f"{min(sizes)}..{max(sizes)}"])
        rows += [
            ["workers", str(self.workers)],
            ["wall seconds", f"{self.wall_seconds:.2f}"],
            ["worker seconds", f"{self.worker_seconds:.2f}"],
            ["docs/sec", f"{self.docs_per_second:.1f}"],
            ["docs/sec/worker", f"{self.docs_per_second_per_worker:.1f}"],
            ["chunk overhead", f"{self.chunk_overhead_fraction:.0%}"],
            ["max queue depth", str(self.max_queue_depth)],
            ["input nodes", str(self.input_nodes)],
            ["tokens created", str(self.tokens_created)],
            ["groups created", str(self.groups_created)],
            ["nodes eliminated", str(self.nodes_eliminated)],
            ["concept nodes", str(self.concept_nodes)],
        ]
        events = self.tagger_cache_events
        if events:
            hits = sum(c.get("hits", 0) for c in events.values())
            lookups = hits + sum(c.get("misses", 0) for c in events.values())
            rows.append(
                [
                    "tagger cache",
                    f"{hits}/{lookups} hits ({self.tagger_cache_hit_rate:.0%})",
                ]
            )
        rows.extend(self.failure_rows())
        return rows

    def failure_rows(self) -> list[list[str]]:
        """The failure-report section of the summary table.

        Empty on a clean run, so historical reports are unchanged; with
        failures it leads with the total, then one row per failing
        stage, then pool rebuilds when crash recovery ran.
        """
        failed = self.failures_by_stage
        if not failed and not self.pool_rebuilds:
            return []
        rows = [["documents failed", str(self.documents_failed)]]
        for stage, count in sorted(failed.items()):
            rows.append([f"  failed @ {stage}", str(count)])
        if self.pool_rebuilds:
            rows.append(["pool rebuilds", str(self.pool_rebuilds)])
        return rows

    def rule_rows(self) -> list[list[str]]:
        """(rule, seconds, share) rows, slowest stage first."""
        return rule_rows_from_registry(self.registry)

    def stage_quantile_rows(self) -> list[list[str]]:
        """(stage, count, p50/p95/p99 ms) rows from the merged digests,
        pipeline order, end-to-end ``document`` row last."""
        ordered = [s for s in STAGE_ORDER if s in self.stage_digests]
        ordered += sorted(set(self.stage_digests) - set(STAGE_ORDER))
        rows: list[list[str]] = []
        for stage in ordered:
            digest = self.stage_digests[stage]
            if not digest.count:
                continue
            p50, p95, p99 = digest.quantiles()
            rows.append(
                [
                    stage,
                    str(digest.count),
                    f"{p50 * 1e3:.2f}",
                    f"{p95 * 1e3:.2f}",
                    f"{p99 * 1e3:.2f}",
                ]
            )
        return rows

    def slowest_rows(self) -> list[list[str]]:
        """(doc, seconds, label paths, input nodes) rows, slowest first."""
        return [
            [
                str(entry.get("doc", "?")),
                f"{entry.get('seconds', 0.0) * 1e3:.2f}",
                str(entry.get("label_paths", "")),
                str(entry.get("input_nodes", "")),
            ]
            for entry in self.slowest_docs
        ]

    def chunk_seconds_quantile(self, q: float) -> float:
        """Approximate chunk-duration quantile from the registry
        histogram -- available even for snapshots re-loaded by
        ``repro-web stats``, where the digests are not persisted."""
        metric = self.registry.get(CHUNK_SECONDS_HISTOGRAM)
        if not isinstance(metric, Histogram):
            return 0.0
        return metric.quantile(q)

"""Engine-side fault tolerance: worker-crash accounting and recovery.

The conversion-layer vocabulary (:class:`DocumentFailure`,
:class:`ErrorPolicy`, :class:`PipelineStageError`, quarantine writing)
lives in :mod:`repro.convert.errors` so the serial
:meth:`~repro.convert.pipeline.DocumentConverter.convert_many` path can
honor the same policies; this module re-exports it and adds what only
the process-pool engine needs:

* :func:`worker_crash_failure` -- the :class:`DocumentFailure` recorded
  for a document that *killed its worker* (OOM, segfault, ``os._exit``):
  there is no Python exception to capture, so the stage is
  ``WORKER_STAGE`` and the type ``WorkerCrash``.
* :class:`RecoveryBudget` -- the bounded-retry counter for pool
  rebuilds.  A corpus where every chunk keeps breaking the pool must
  abort rather than rebuild forever; the budget raises
  :class:`PoolRebuildExhausted` when spent.
* :func:`split_segment` -- one bisection step over a chunk's sources.
  When a chunk breaks the pool the engine cannot know *which* document
  killed the worker, so it re-runs the chunk in halves, recursing into
  whichever half breaks the pool again, until the killer is isolated as
  a single document and its siblings are salvaged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.convert.errors import (  # noqa: F401  (re-exported fault API)
    ERROR_MODES,
    DocumentFailure,
    ErrorPolicy,
    InjectedFaultError,
    PipelineStageError,
    failure_from_exception,
    truncate_traceback,
    write_quarantine,
)

# The pseudo-stage recorded for documents that took their worker down
# with them (no pipeline stage ever raised).
WORKER_STAGE = "worker"


class PoolRebuildExhausted(RuntimeError):
    """Raised when worker crashes outnumber the rebuild budget."""


@dataclass
class RecoveryBudget:
    """Bounded retries for pool rebuilds during one engine run."""

    limit: int
    spent: int = 0

    def spend(self) -> None:
        self.spent += 1
        if self.spent > self.limit:
            raise PoolRebuildExhausted(
                f"worker pool broke {self.spent} times; "
                f"rebuild budget is {self.limit} (EngineConfig.max_pool_rebuilds)"
            )


def worker_crash_failure(
    doc_id: str, index: int, *, source: str | None = None
) -> DocumentFailure:
    """The failure record for a document whose conversion killed the
    worker process (identified by chunk bisection)."""
    return DocumentFailure(
        doc_id=doc_id,
        index=index,
        stage=WORKER_STAGE,
        error_type="WorkerCrash",
        message="worker process died while converting this document "
        "(BrokenProcessPool; isolated by chunk bisection)",
        source=source,
    )


def split_segment(
    base: int, sources: list[str]
) -> list[tuple[int, list[str]]]:
    """One bisection step: the (base, sources) halves of a multi-document
    segment, in document order.  Callers only split segments of length
    >= 2 (a single document that breaks the pool *is* the killer)."""
    mid = len(sources) // 2
    return [(base, sources[:mid]), (base + mid, sources[mid:])]

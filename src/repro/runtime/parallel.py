"""Generic chunked process-pool map with in-order merge.

:class:`ParallelMapper` extracts the transport pattern of
:class:`~repro.runtime.engine.CorpusEngine` -- chunk the work, build
expensive per-worker state exactly once in a pool initializer, merge
results back **in item order** under a bounded backpressure window --
for workloads that are not HTML conversion.  The first consumer is
parallel repository migration (:mod:`repro.mapping.versioned`), where
the per-worker state is a parsed DTD and the work function replays the
tree-edit mapping layer against it.

The work function and state factory must be module-level callables
(they cross the process boundary by reference).  ``max_workers=1`` runs
inline in the calling process -- no pool, no pickling -- which is the
degenerate case differential tests use, exactly as in the engine.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Callable, Iterable, Iterator, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")

# Per-worker state built once by the pool initializer (the engine's
# per-process converter, generalized).
_WORKER_STATE: object = None
_WORKER_FN: Callable | None = None


def _init_mapper_worker(
    state_factory: Callable[..., object] | None,
    state_args: tuple,
    work_fn: Callable,
) -> None:
    global _WORKER_STATE, _WORKER_FN
    _WORKER_STATE = (
        state_factory(*state_args) if state_factory is not None else None
    )
    _WORKER_FN = work_fn


def _run_mapper_chunk(payload: tuple[int, Sequence]) -> tuple[int, list]:
    index, items = payload
    assert _WORKER_FN is not None, "mapper worker initializer did not run"
    return index, [_WORKER_FN(_WORKER_STATE, item) for item in items]


def _chunked(items: Iterable[Item], size: int) -> Iterator[list[Item]]:
    chunk: list[Item] = []
    for item in items:
        chunk.append(item)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class ParallelMapper:
    """Map ``work_fn(state, item)`` over items, preserving item order.

    ``state_factory(*state_args)`` runs once per worker process and its
    result is passed as ``state`` to every call; errors raised by the
    work function propagate to the caller (migration has no skip
    policy -- a document that cannot be migrated aborts the run).
    """

    def __init__(
        self,
        work_fn: Callable[[object, Item], Result],
        *,
        state_factory: Callable[..., object] | None = None,
        state_args: tuple = (),
        max_workers: int | None = None,
        chunk_size: int = 32,
        max_pending: int | None = None,
    ) -> None:
        self.work_fn = work_fn
        self.state_factory = state_factory
        self.state_args = state_args
        self.max_workers = max_workers
        self.chunk_size = max(1, chunk_size)
        self.max_pending = max_pending

    def resolved_workers(self) -> int:
        if self.max_workers is None:
            return os.cpu_count() or 1
        return max(1, self.max_workers)

    def map(self, items: Iterable[Item]) -> Iterator[Result]:
        """Yield results in item order, chunks streaming as they finish."""
        workers = self.resolved_workers()
        if workers == 1:
            state = (
                self.state_factory(*self.state_args)
                if self.state_factory is not None
                else None
            )
            for chunk in _chunked(items, self.chunk_size):
                for item in chunk:
                    yield self.work_fn(state, item)
            return
        max_pending = (
            self.max_pending if self.max_pending is not None else 2 * workers
        )
        max_pending = max(1, max_pending)
        pending: deque[Future[tuple[int, list]]] = deque()
        with ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_mapper_worker,
            initargs=(self.state_factory, self.state_args, self.work_fn),
        ) as pool:
            for index, chunk in enumerate(_chunked(items, self.chunk_size)):
                pending.append(pool.submit(_run_mapper_chunk, (index, chunk)))
                # Backpressure: drain the oldest chunk (preserving item
                # order) before submitting past the window.
                while len(pending) >= max_pending:
                    _, results = pending.popleft().result()
                    yield from results
            while pending:
                _, results = pending.popleft().result()
                yield from results

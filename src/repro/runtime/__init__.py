"""Parallel streaming runtime (scale-out layer over Sections 2-3).

* :mod:`repro.runtime.engine` -- :class:`CorpusEngine`: chunked
  process-pool conversion with a deterministic in-order merge, plus
  schema discovery over merged path statistics.
* :mod:`repro.runtime.stats` -- :class:`EngineStats` / per-chunk
  instrumentation (rule timings, docs/sec, queue depth, failure
  counts).
* :mod:`repro.runtime.parallel` -- :class:`ParallelMapper`, the generic
  chunked process-pool mapper (in-order results, bounded pending window,
  per-worker initializer state) reused by repository migration.
* :mod:`repro.runtime.faults` -- the fault-tolerance layer:
  :class:`ErrorPolicy` (fail-fast / skip / quarantine),
  :class:`DocumentFailure` records, and worker-crash recovery
  (pool rebuild + chunk bisection) support.

The engine is differentially tested against the serial
:meth:`repro.convert.pipeline.DocumentConverter.convert_many` path:
identical XML bytes per document and an identical discovered DTD for
any worker count -- including corpora with poison documents under a
skip policy, where the engine must equal the serial conversion of the
surviving documents.
"""

from repro.runtime.engine import (
    ChunkPayload,
    CorpusEngine,
    CorpusResult,
    DiscoveryResult,
    EngineConfig,
    EngineRun,
)
from repro.runtime.parallel import ParallelMapper
from repro.runtime.faults import (
    DocumentFailure,
    ErrorPolicy,
    PipelineStageError,
    PoolRebuildExhausted,
    RecoveryBudget,
    worker_crash_failure,
    write_quarantine,
)
from repro.runtime.stats import ChunkStats, EngineStats, rule_rows_from_registry
from repro.schema.accumulator import PathAccumulator

__all__ = [
    "CorpusEngine",
    "EngineConfig",
    "EngineStats",
    "rule_rows_from_registry",
    "ChunkStats",
    "ChunkPayload",
    "CorpusResult",
    "DiscoveryResult",
    "EngineRun",
    "ParallelMapper",
    "PathAccumulator",
    "DocumentFailure",
    "ErrorPolicy",
    "PipelineStageError",
    "PoolRebuildExhausted",
    "RecoveryBudget",
    "worker_crash_failure",
    "write_quarantine",
]

"""The parallel streaming corpus engine.

The paper's pipeline is embarrassingly parallel per document (Section 2
conversion) and its schema discovery (Section 3) only consumes
corpus-level path statistics -- so :class:`CorpusEngine` splits a corpus
into chunks, converts the chunks in a ``ProcessPoolExecutor`` whose
workers each build the :class:`~repro.convert.pipeline.DocumentConverter`
(and its compiled synonym matcher) exactly once, and merges results back
**in document order**::

    sources ──chunk──▶ worker pool (DocumentConverter per process)
                          │  per chunk: XML strings + PathAccumulator
                          ▼           + ChunkStats
            in-order, backpressured merge
                          │
         CorpusResult(xml_documents, accumulator, stats)
                          │
         discover(): mine_frequent_paths ──▶ MajoritySchema ──▶ DTD

Workers never ship trees across the process boundary: a chunk comes back
as serialized XML plus a mergeable
:class:`~repro.schema.accumulator.PathAccumulator`, so peak memory is
bounded by the backpressure window regardless of corpus size, and the
differential test harness can compare the engine byte-for-byte against
the serial :meth:`DocumentConverter.convert_many` path.

With ``max_workers=1`` the engine runs inline in the calling process
(no pool, no pickling) -- the degenerate case the differential tests use
to separate chunking effects from multiprocessing effects.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.concepts.bayes import MultinomialNaiveBayes
from repro.concepts.knowledge import KnowledgeBase
from repro.convert.config import ConversionConfig
from repro.convert.pipeline import DocumentConverter
from repro.runtime.stats import ChunkStats, EngineStats
from repro.schema.accumulator import PathAccumulator
from repro.schema.dtd import DTD, derive_dtd
from repro.schema.frequent import FrequentPathSet, mine_frequent_paths
from repro.schema.majority import MajoritySchema


@dataclass
class EngineConfig:
    """Tuning knobs of the engine.

    ``max_workers=None`` uses every CPU; ``1`` forces the inline serial
    path.  ``chunk_size`` trades scheduling overhead against load
    balance.  ``max_pending`` bounds submitted-but-unmerged chunks
    (default ``2 * workers``): the backpressure window that keeps the
    in-order merge from buffering an unbounded reordering queue.
    """

    max_workers: int | None = None
    chunk_size: int = 16
    max_pending: int | None = None

    def resolved_workers(self) -> int:
        if self.max_workers is None:
            return os.cpu_count() or 1
        return max(1, self.max_workers)

    def resolved_pending(self, workers: int) -> int:
        if self.max_pending is None:
            return max(2, 2 * workers)
        return max(1, self.max_pending)


@dataclass
class ChunkPayload:
    """Everything one worker returns for one chunk."""

    xml: list[str]
    accumulator: PathAccumulator
    stats: ChunkStats


@dataclass
class CorpusResult:
    """Outcome of converting a corpus through the engine."""

    xml_documents: list[str]
    accumulator: PathAccumulator
    stats: EngineStats


@dataclass
class DiscoveryResult:
    """Outcome of schema discovery over accumulated statistics."""

    frequent: FrequentPathSet
    schema: MajoritySchema
    dtd: DTD


@dataclass
class EngineRun:
    """A full convert-then-discover pass."""

    corpus: CorpusResult
    discovery: DiscoveryResult | None = None


# -- worker-side code ---------------------------------------------------------

# One converter per worker process, built by the pool initializer so the
# knowledge base is unpickled and the synonym matcher compiled once, not
# once per chunk.
_WORKER_CONVERTER: DocumentConverter | None = None


def _init_worker(
    kb: KnowledgeBase,
    config: ConversionConfig,
    bayes: MultinomialNaiveBayes | None,
) -> None:
    global _WORKER_CONVERTER
    _WORKER_CONVERTER = DocumentConverter(kb, config, bayes)


def _run_chunk(
    converter: DocumentConverter, index: int, sources: list[str]
) -> ChunkPayload:
    """Convert one chunk: the shared worker/inline code path."""
    started = time.perf_counter()
    stats = ChunkStats(index=index, documents=len(sources))
    xml: list[str] = []
    accumulator = PathAccumulator()
    for source in sources:
        result = converter.convert(source)
        xml.append(result.to_xml())
        accumulator.add_tree(result.root)
        stats.tokens_created += result.tokens_created
        stats.groups_created += result.groups_created
        stats.nodes_eliminated += result.nodes_eliminated
        stats.input_nodes += result.input_nodes
        stats.concept_nodes += result.concept_node_count
        for rule, seconds in result.rule_seconds.items():
            stats.rule_seconds[rule] = stats.rule_seconds.get(rule, 0.0) + seconds
    stats.seconds = time.perf_counter() - started
    return ChunkPayload(xml=xml, accumulator=accumulator, stats=stats)


def _convert_chunk(payload: tuple[int, list[str]]) -> ChunkPayload:
    """Pool task: convert a chunk with the per-process converter."""
    index, sources = payload
    assert _WORKER_CONVERTER is not None, "worker initializer did not run"
    return _run_chunk(_WORKER_CONVERTER, index, sources)


def _chunked(sources: Iterable[str], size: int) -> Iterator[list[str]]:
    chunk: list[str] = []
    for source in sources:
        chunk.append(source)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


# -- the engine ---------------------------------------------------------------


class CorpusEngine:
    """Chunked parallel conversion + streaming schema discovery.

    Construct once per topic, like :class:`DocumentConverter`; the
    knowledge base, conversion config, and optional Bayes tagger are
    shipped to each worker exactly once per engine run.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        config: ConversionConfig | None = None,
        *,
        engine_config: EngineConfig | None = None,
        bayes: MultinomialNaiveBayes | None = None,
    ) -> None:
        self.kb = kb
        self.config = config or ConversionConfig()
        self.engine_config = engine_config or EngineConfig()
        self.bayes = bayes
        self._inline_converter: DocumentConverter | None = None

    # -- conversion ----------------------------------------------------------

    def stream(
        self, sources: Iterable[str], *, stats: EngineStats | None = None
    ) -> Iterator[ChunkPayload]:
        """Yield converted chunks **in document order**.

        Results stream as soon as their chunk (and every earlier chunk)
        finishes; at most ``max_pending`` chunks are in flight, so
        memory stays bounded on arbitrarily large corpora.  Pass a
        :class:`EngineStats` to have counters, timings, and queue-depth
        instrumentation filled in as the stream drains.
        """
        stats = stats if stats is not None else self.new_stats()
        started = time.perf_counter()
        workers = stats.workers
        chunks = enumerate(_chunked(sources, stats.chunk_size))
        try:
            if workers == 1:
                converter = self._converter()
                for index, chunk in chunks:
                    stats.max_queue_depth = max(stats.max_queue_depth, 1)
                    payload = _run_chunk(converter, index, chunk)
                    stats.absorb(payload.stats)
                    yield payload
                return
            max_pending = self.engine_config.resolved_pending(workers)
            with ProcessPoolExecutor(
                max_workers=workers,
                initializer=_init_worker,
                initargs=(self.kb, self.config, self.bayes),
            ) as pool:
                pending: deque[Future[ChunkPayload]] = deque()
                for index, chunk in chunks:
                    pending.append(pool.submit(_convert_chunk, (index, chunk)))
                    stats.max_queue_depth = max(
                        stats.max_queue_depth, len(pending)
                    )
                    # Backpressure: consume the oldest chunk (preserving
                    # document order) before submitting past the window.
                    while len(pending) >= max_pending:
                        payload = pending.popleft().result()
                        stats.absorb(payload.stats)
                        yield payload
                while pending:
                    payload = pending.popleft().result()
                    stats.absorb(payload.stats)
                    yield payload
        finally:
            stats.wall_seconds = time.perf_counter() - started

    def convert_corpus(self, sources: Iterable[str]) -> CorpusResult:
        """Convert a corpus, collecting XML, statistics, and counters.

        The returned ``xml_documents`` are byte-identical to serializing
        the serial :meth:`DocumentConverter.convert_many` results, in
        the same order (the differential tests enforce this).
        """
        stats = self.new_stats()
        xml_documents: list[str] = []
        accumulator = PathAccumulator()
        for payload in self.stream(sources, stats=stats):
            xml_documents.extend(payload.xml)
            accumulator.update(payload.accumulator)
        return CorpusResult(
            xml_documents=xml_documents, accumulator=accumulator, stats=stats
        )

    # -- discovery -----------------------------------------------------------

    def mine(
        self,
        accumulator: PathAccumulator,
        *,
        sup_threshold: float = 0.4,
        ratio_threshold: float = 0.0,
    ) -> FrequentPathSet:
        """Frequent-path mining over accumulated statistics, using the
        topic's constraints and concept alphabet."""
        return mine_frequent_paths(
            accumulator,
            sup_threshold=sup_threshold,
            ratio_threshold=ratio_threshold,
            constraints=self.kb.constraints,
            candidate_labels=self.kb.concept_tags(),
        )

    def discover(
        self,
        accumulator: PathAccumulator,
        *,
        sup_threshold: float = 0.4,
        ratio_threshold: float = 0.0,
        optional_threshold: float | None = None,
    ) -> DiscoveryResult:
        """Majority schema + DTD from accumulated statistics alone."""
        frequent = self.mine(
            accumulator,
            sup_threshold=sup_threshold,
            ratio_threshold=ratio_threshold,
        )
        schema = MajoritySchema.from_frequent_paths(frequent)
        dtd = derive_dtd(
            schema, accumulator, optional_threshold=optional_threshold
        )
        return DiscoveryResult(frequent=frequent, schema=schema, dtd=dtd)

    def run(
        self,
        sources: Iterable[str],
        *,
        sup_threshold: float = 0.4,
        ratio_threshold: float = 0.0,
        optional_threshold: float | None = None,
        discover: bool = True,
    ) -> EngineRun:
        """Convert a corpus and (optionally) discover its schema."""
        corpus = self.convert_corpus(sources)
        discovery = None
        if discover and corpus.stats.documents:
            discovery = self.discover(
                corpus.accumulator,
                sup_threshold=sup_threshold,
                ratio_threshold=ratio_threshold,
                optional_threshold=optional_threshold,
            )
        return EngineRun(corpus=corpus, discovery=discovery)

    # -- internals -----------------------------------------------------------

    def new_stats(self) -> EngineStats:
        """A fresh stats sink sized to this engine's configuration."""
        return EngineStats(
            workers=self.engine_config.resolved_workers(),
            chunk_size=max(1, self.engine_config.chunk_size),
        )

    def _converter(self) -> DocumentConverter:
        """The lazily built converter for the inline (1-worker) path."""
        if self._inline_converter is None:
            self._inline_converter = DocumentConverter(
                self.kb, self.config, self.bayes
            )
        return self._inline_converter

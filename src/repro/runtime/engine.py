"""The parallel streaming corpus engine.

The paper's pipeline is embarrassingly parallel per document (Section 2
conversion) and its schema discovery (Section 3) only consumes
corpus-level path statistics -- so :class:`CorpusEngine` splits a corpus
into chunks, converts the chunks in a ``ProcessPoolExecutor`` whose
workers each build the :class:`~repro.convert.pipeline.DocumentConverter`
(and its compiled synonym matcher) exactly once, and merges results back
**in document order**::

    sources ──chunk──▶ worker pool (DocumentConverter per process)
                          │  per chunk: XML strings + PathAccumulator
                          ▼           + ChunkStats
            in-order, backpressured merge
                          │
         CorpusResult(xml_documents, accumulator, stats)
                          │
         discover(): mine_frequent_paths ──▶ MajoritySchema ──▶ DTD

Workers never ship trees across the process boundary: a chunk comes back
as serialized XML plus a mergeable
:class:`~repro.schema.accumulator.PathAccumulator`, so peak memory is
bounded by the backpressure window regardless of corpus size, and the
differential test harness can compare the engine byte-for-byte against
the serial :meth:`DocumentConverter.convert_many` path.

With ``max_workers=1`` the engine runs inline in the calling process
(no pool, no pickling) -- the degenerate case the differential tests use
to separate chunking effects from multiprocessing effects.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

from repro.concepts.bayes import MultinomialNaiveBayes
from repro.concepts.fastmatch import cache_counter_delta
from repro.concepts.knowledge import KnowledgeBase
from repro.convert.config import ConversionConfig
from repro.convert.pipeline import DocumentConverter
from repro.obs.provenance import ProvenanceLog
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer, resolve_tracer
from repro.runtime.faults import (
    DocumentFailure,
    ErrorPolicy,
    RecoveryBudget,
    failure_from_exception,
    split_segment,
    worker_crash_failure,
    write_quarantine,
)
from repro.runtime.stats import ChunkStats, EngineStats
from repro.schema.accumulator import PathAccumulator
from repro.schema.paths import extract_paths
from repro.schema.dtd import DTD, derive_dtd
from repro.schema.frequent import FrequentPathSet, mine_frequent_paths
from repro.schema.majority import MajoritySchema


@dataclass
class EngineConfig:
    """Tuning knobs of the engine.

    ``max_workers=None`` uses every CPU; ``1`` forces the inline serial
    path.  ``chunk_size`` trades scheduling overhead against load
    balance: an explicit integer pins every chunk to that size (the
    historical behavior, and what the differential tests use), while
    the default ``None`` enables *adaptive* sizing -- chunks start at
    ``min_chunk_size`` and a :class:`ChunkSizer` grows them (up to
    ``max_chunk_size``) until each chunk's measured duration amortizes
    the per-chunk fixed overhead against ``target_chunk_seconds``.
    ``max_pending`` bounds submitted-but-unmerged chunks (default
    ``2 * workers``): the backpressure window that keeps the in-order
    merge from buffering an unbounded reordering queue.  Under adaptive
    sizing the window is counted in *documents* (``max_pending`` times
    the current chunk size) so growing chunks do not multiply the
    buffered volume.
    """

    max_workers: int | None = None
    chunk_size: int | None = None
    # Adaptive-sizing bounds (ignored when chunk_size is an explicit
    # integer): first/smallest chunk size, growth ceiling, and the
    # per-chunk duration to aim for.  50ms per chunk keeps progress
    # reporting and the backpressure window responsive while making the
    # ~1ms fixed cost of scheduling + payload transport <2% overhead.
    min_chunk_size: int = 8
    max_chunk_size: int = 128
    target_chunk_seconds: float = 0.05
    max_pending: int | None = None
    # What to do with documents that fail to convert: "fail_fast" (the
    # historical raise-and-abort default), "skip", "quarantine" (an
    # ErrorPolicy instance carrying the directory), or a mode string.
    error_policy: ErrorPolicy | str = "fail_fast"
    quarantine_dir: str | None = None
    # Bounded-retry budget for BrokenProcessPool recovery: each worker
    # crash costs one pool rebuild (bisecting a chunk with one killer
    # document costs O(log chunk_size) rebuilds).
    max_pool_rebuilds: int = 16

    def resolved_workers(self) -> int:
        if self.max_workers is None:
            return os.cpu_count() or 1
        return max(1, self.max_workers)

    def resolved_pending(self, workers: int) -> int:
        if self.max_pending is None:
            return max(2, 2 * workers)
        return max(1, self.max_pending)

    def resolved_policy(self) -> ErrorPolicy:
        return ErrorPolicy.coerce(
            self.error_policy, quarantine_dir=self.quarantine_dir
        )

    def adaptive_chunking(self) -> bool:
        return self.chunk_size is None

    def resolved_chunk_size(self) -> int:
        """The first chunk's size (and every chunk's, when static)."""
        if self.chunk_size is None:
            return max(1, self.min_chunk_size)
        return max(1, self.chunk_size)


class ChunkSizer:
    """In-flight chunk-size controller.

    Each merged chunk reports its wall time (``ChunkStats.seconds``) and
    its per-document time (``doc_seconds``); the difference is fixed
    overhead that does not shrink with smaller chunks.  While chunks
    finish faster than the target duration the controller grows the
    size toward ``target / per_doc_seconds`` (at most 4x per step, so
    one anomalously fast chunk cannot blow past the cap); if chunks
    overshoot the target badly it backs off by halves.  A static
    configuration never changes size -- the controller is then just the
    place the constant lives.
    """

    def __init__(
        self,
        initial: int,
        cap: int,
        target_seconds: float,
        adaptive: bool,
    ) -> None:
        self.size = max(1, initial)
        self.initial = self.size
        self.cap = max(self.size, cap)
        self.target_seconds = target_seconds
        self.adaptive = adaptive

    @classmethod
    def from_config(cls, config: EngineConfig) -> "ChunkSizer":
        return cls(
            config.resolved_chunk_size(),
            config.max_chunk_size,
            config.target_chunk_seconds,
            config.adaptive_chunking(),
        )

    def observe(self, stats: "ChunkStats") -> None:
        """Adjust the size from one merged chunk's measurements."""
        if not self.adaptive:
            return
        documents = stats.documents + stats.documents_failed
        if documents <= 0 or stats.seconds <= 0.0:
            return
        per_doc = stats.seconds / documents
        desired = max(1, int(self.target_seconds / per_doc)) if per_doc > 0 else self.cap
        if stats.seconds < self.target_seconds:
            grown = max(self.size + 1, min(desired, self.size * 4))
            self.size = min(self.cap, grown)
        elif stats.seconds > 4 * self.target_seconds and self.size > self.initial:
            self.size = max(self.initial, max(self.size // 2, min(desired, self.size)))


@dataclass
class XmlSink:
    """Worker-side XML writer (the engine's write-through mode).

    When conversion output is destined for files anyway, shipping every
    serialized document back through the chunk pickle just to have the
    parent write it is pure transport cost.  A sink travels to each
    worker once (via the pool initializer) and survivors are written in
    the worker, so the payload carries only accumulator + stats.  Writes
    are idempotent full-file replacements: crash-recovery bisection can
    re-run a chunk's surviving documents and simply rewrite their files.
    """

    directory: str

    def write(self, name: str, xml: str) -> None:
        (Path(self.directory) / f"{name}.xml").write_text(xml, encoding="utf-8")

    def prepare(self) -> None:
        """Create the output directory (parent-side, before the pool)."""
        Path(self.directory).mkdir(parents=True, exist_ok=True)


@dataclass
class ChunkPayload:
    """Everything one worker returns for one chunk.

    ``spans``/``events`` carry the worker's serialized observability
    output (``None`` when tracing/provenance is off, or when the chunk
    ran inline and recorded straight into the caller's tracer).
    ``failures`` are the documents a skip/quarantine policy dropped, in
    document order; ``xml`` holds the survivors only.
    """

    xml: list[str]
    accumulator: PathAccumulator
    stats: ChunkStats
    spans: list[dict] | None = None
    events: list[dict] | None = None
    failures: list[DocumentFailure] = field(default_factory=list)


@dataclass
class CorpusResult:
    """Outcome of converting a corpus through the engine.

    ``xml_documents`` holds the surviving documents in corpus order;
    ``failures`` the documents the error policy dropped (empty under
    fail-fast, which raises instead).
    """

    xml_documents: list[str]
    accumulator: PathAccumulator
    stats: EngineStats
    failures: list[DocumentFailure] = field(default_factory=list)


@dataclass
class DiscoveryResult:
    """Outcome of schema discovery over accumulated statistics."""

    frequent: FrequentPathSet
    schema: MajoritySchema
    dtd: DTD


@dataclass
class EngineRun:
    """A full convert-then-discover pass."""

    corpus: CorpusResult
    discovery: DiscoveryResult | None = None


# -- worker-side code ---------------------------------------------------------

# One converter per worker process, built by the pool initializer so the
# knowledge base is unpickled and the synonym matcher compiled once, not
# once per chunk.  The obs flags travel with it: when tracing/provenance
# is requested, each chunk builds its own tracer/log and ships the
# serialized output home in the payload.
_WORKER_CONVERTER: DocumentConverter | None = None
_WORKER_TRACE: bool = False
_WORKER_PROVENANCE: bool = False
_WORKER_POLICY: ErrorPolicy = ErrorPolicy.fail_fast()
_WORKER_COLLECT_XML: bool = True
_WORKER_SINK: XmlSink | None = None

# The parent's converter at pool-spawn time.  Under the fork start
# method the initializer receives the *same objects* the parent passed
# (nothing is pickled), so when the identity check below holds, each
# worker inherits the parent's already-built converter -- compiled
# synonym matcher included -- via copy-on-write instead of rebuilding
# it per process.  Under spawn the initargs arrive as copies, the check
# fails, and each worker builds its own, exactly as before.
_PREFORK_CONVERTER: DocumentConverter | None = None


def _init_worker(
    kb: KnowledgeBase,
    config: ConversionConfig,
    bayes: MultinomialNaiveBayes | None,
    trace: bool = False,
    provenance: bool = False,
    policy: ErrorPolicy | None = None,
    collect_xml: bool = True,
    sink: XmlSink | None = None,
) -> None:
    global _WORKER_CONVERTER, _WORKER_TRACE, _WORKER_PROVENANCE, _WORKER_POLICY
    global _WORKER_COLLECT_XML, _WORKER_SINK
    prebuilt = _PREFORK_CONVERTER
    if (
        prebuilt is not None
        and prebuilt.kb is kb
        and prebuilt.config is config
        and prebuilt.bayes is bayes
    ):
        _WORKER_CONVERTER = prebuilt
    else:
        _WORKER_CONVERTER = DocumentConverter(kb, config, bayes)
    _WORKER_TRACE = trace
    _WORKER_PROVENANCE = provenance
    _WORKER_POLICY = policy if policy is not None else ErrorPolicy.fail_fast()
    _WORKER_COLLECT_XML = collect_xml
    _WORKER_SINK = sink


def _run_chunk(
    converter: DocumentConverter,
    index: int,
    base: int,
    sources: list[str],
    tracer: Tracer | NullTracer = NULL_TRACER,
    provenance: ProvenanceLog | None = None,
    policy: ErrorPolicy = ErrorPolicy.fail_fast(),
    collect_xml: bool = True,
    sink: XmlSink | None = None,
    names: Sequence[str] | None = None,
) -> ChunkPayload:
    """Convert one chunk: the shared worker/inline code path.

    ``base`` is the corpus-wide index of the chunk's first document, so
    provenance events and spans key documents by their global position
    regardless of which worker converted them.

    Per-document isolation: under a non-fail-fast ``policy`` a document
    whose conversion raises becomes a :class:`DocumentFailure` in the
    payload (with the source attached when the policy quarantines) and
    its siblings convert exactly as they would alone.  Fail-fast lets
    the exception propagate -- the historical behavior.

    Transport control: with ``collect_xml=False`` survivors' XML stays
    out of the payload (discovery-only callers never pay to ship it);
    an :class:`XmlSink` writes each survivor -- named by ``names`` when
    the caller supplied original stems, by global position otherwise --
    from inside the worker.  With neither, documents are not even
    serialized.
    """
    started = time.perf_counter()
    stats = ChunkStats(index=index, documents=0)
    xml: list[str] = []
    failures: list[DocumentFailure] = []
    accumulator = PathAccumulator()
    need_xml = collect_xml or sink is not None
    # Token-decision caches persist across chunks inside one converter;
    # snapshotting around the chunk yields this chunk's traffic alone.
    cache_before = converter.tagger_cache_counters()
    with tracer.span("engine.chunk", chunk=index, documents=len(sources)):
        for offset, source in enumerate(sources):
            doc_id = f"doc{base + offset:04d}"
            doc_started = time.perf_counter()
            try:
                result = converter.convert(
                    source, doc_id=doc_id, tracer=tracer, provenance=provenance
                )
                doc_xml = result.to_xml() if need_xml else None
            except Exception as exc:
                stats.doc_seconds += time.perf_counter() - doc_started
                if policy.is_fail_fast:
                    raise
                failure = failure_from_exception(
                    doc_id,
                    base + offset,
                    exc,
                    source=source if policy.captures_source else None,
                )
                failures.append(failure)
                stats.documents_failed += 1
                stats.failures_by_stage[failure.stage] = (
                    stats.failures_by_stage.get(failure.stage, 0) + 1
                )
                if provenance is not None:
                    provenance.error_event(
                        doc_id,
                        failure.stage,
                        failure.error_type,
                        failure.message,
                        index=failure.index,
                    )
                continue
            if doc_xml is not None:
                if sink is not None:
                    sink.write(
                        names[offset] if names is not None else doc_id, doc_xml
                    )
                if collect_xml:
                    xml.append(doc_xml)
            with tracer.span("discover.extract_paths", doc=doc_id):
                doc_paths = extract_paths(result.root)
                accumulator.add(doc_paths)
            concept_nodes = result.concept_node_count
            stats.documents += 1
            stats.tokens_created += result.tokens_created
            stats.groups_created += result.groups_created
            stats.nodes_eliminated += result.nodes_eliminated
            stats.input_nodes += result.input_nodes
            stats.concept_nodes += concept_nodes
            for rule, seconds in result.rule_seconds.items():
                stats.rule_seconds[rule] = stats.rule_seconds.get(rule, 0.0) + seconds
            # Run intelligence: per-stage + end-to-end latency into the
            # chunk's mergeable digests, plus slowest-document context.
            doc_elapsed = time.perf_counter() - doc_started
            stats.doc_seconds += doc_elapsed
            stats.observe_document(
                doc_id,
                base + offset,
                doc_elapsed,
                result.rule_seconds,
                context={
                    "root": result.root.tag,
                    "label_paths": len(doc_paths.paths),
                    "input_nodes": result.input_nodes,
                    "concept_nodes": concept_nodes,
                },
            )
    stats.finalize_slowest()
    stats.tagger_cache = cache_counter_delta(
        cache_before, converter.tagger_cache_counters()
    )
    stats.seconds = time.perf_counter() - started
    return ChunkPayload(
        xml=xml, accumulator=accumulator, stats=stats, failures=failures
    )


def _convert_chunk(
    payload: tuple[int, int, list[str], list[str] | None]
) -> ChunkPayload:
    """Pool task: convert a chunk with the per-process converter."""
    index, base, sources, names = payload
    assert _WORKER_CONVERTER is not None, "worker initializer did not run"
    kill_marker = _WORKER_CONVERTER.config.chaos_kill_marker
    if kill_marker and any(kill_marker in source for source in sources):
        # Chaos hook: die the way an OOM-killed or segfaulted worker
        # does -- no exception, no cleanup, just a vanished process.
        os._exit(1)
    tracer: Tracer | NullTracer = Tracer(id_prefix="w") if _WORKER_TRACE else NULL_TRACER
    provenance = ProvenanceLog() if _WORKER_PROVENANCE else None
    chunk = _run_chunk(
        _WORKER_CONVERTER,
        index,
        base,
        sources,
        tracer,
        provenance,
        _WORKER_POLICY,
        _WORKER_COLLECT_XML,
        _WORKER_SINK,
        names,
    )
    if _WORKER_TRACE:
        chunk.spans = tracer.export()
    if provenance is not None:
        chunk.events = provenance.events
    return chunk


@dataclass
class _ChunkTask:
    """A submitted chunk, kept resubmittable for crash recovery."""

    index: int
    base: int
    sources: list[str]
    # Sink file stems for this chunk's documents (None when the caller
    # did not name them; the sink then falls back to global positions).
    names: list[str] | None = None

    def args(self) -> tuple[int, int, list[str], list[str] | None]:
        return (self.index, self.base, self.sources, self.names)


def _chunked(sources: Iterable[str], sizer: ChunkSizer) -> Iterator[list[str]]:
    """Split ``sources`` into chunks, re-reading the sizer's current
    size at every chunk boundary (adaptive sizing adjusts it while the
    stream drains)."""
    chunk: list[str] = []
    for source in sources:
        chunk.append(source)
        if len(chunk) >= sizer.size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


# -- the engine ---------------------------------------------------------------


class CorpusEngine:
    """Chunked parallel conversion + streaming schema discovery.

    Construct once per topic, like :class:`DocumentConverter`; the
    knowledge base, conversion config, and optional Bayes tagger are
    shipped to each worker exactly once per engine run.
    """

    def __init__(
        self,
        kb: KnowledgeBase,
        config: ConversionConfig | None = None,
        *,
        engine_config: EngineConfig | None = None,
        bayes: MultinomialNaiveBayes | None = None,
    ) -> None:
        self.kb = kb
        self.config = config or ConversionConfig()
        self.engine_config = engine_config or EngineConfig()
        self.bayes = bayes
        self._inline_converter: DocumentConverter | None = None

    # -- conversion ----------------------------------------------------------

    def stream(
        self,
        sources: Iterable[str],
        *,
        stats: EngineStats | None = None,
        tracer: Tracer | NullTracer | None = None,
        provenance: ProvenanceLog | None = None,
        progress: Callable[[EngineStats], None] | None = None,
        collect_xml: bool = True,
        xml_sink: XmlSink | str | None = None,
        names: Sequence[str] | None = None,
    ) -> Iterator[ChunkPayload]:
        """Yield converted chunks **in document order**.

        Results stream as soon as their chunk (and every earlier chunk)
        finishes; at most ``max_pending`` chunks are in flight, so
        memory stays bounded on arbitrarily large corpora.  Pass a
        :class:`EngineStats` to have counters, timings, and queue-depth
        instrumentation filled in as the stream drains.

        With a recording ``tracer``/``provenance``, workers build their
        own tracer per chunk and ship serialized spans/events back; the
        merge loop re-parents the spans under this tracer's current span
        (namespaced by chunk index) and appends the events in document
        order -- the cross-process half of the span tree.

        ``progress`` (e.g. a :class:`repro.obs.progress.ProgressReporter`)
        is called with the updated stats after every chunk merge --
        the live progress/ETA hook.

        Transport: ``collect_xml=False`` keeps survivors' XML out of
        the payloads (``payload.xml`` comes back empty) for callers that
        only need accumulator + stats; ``xml_sink`` (an :class:`XmlSink`
        or a directory path) writes each survivor to a file from inside
        the worker, named by the aligned ``names`` sequence when given,
        by global document position otherwise.
        """
        stats = stats if stats is not None else self.new_stats()
        tracer = resolve_tracer(tracer)
        policy = self.engine_config.resolved_policy()
        sink = (
            XmlSink(str(xml_sink))
            if xml_sink is not None and not isinstance(xml_sink, XmlSink)
            else xml_sink
        )
        if sink is not None:
            sink.prepare()
        sizer = ChunkSizer.from_config(self.engine_config)
        started = time.perf_counter()
        workers = stats.workers
        chunks = enumerate(_chunked(sources, sizer))
        doc_cursor = 0

        def chunk_names(base: int, count: int) -> list[str] | None:
            if names is None:
                return None
            return list(names[base : base + count])

        def merge(payload: ChunkPayload) -> ChunkPayload:
            stats.absorb(payload.stats)
            sizer.observe(payload.stats)
            # Wall clock advances at every merge, so an abandoned stream
            # still reports the time actually spent (not a close/GC-time
            # reading, and never a stale 0.0).
            stats.wall_seconds = time.perf_counter() - started
            if payload.spans:
                tracer.adopt(
                    payload.spans, prefix=f"c{payload.stats.index}."
                )
            if payload.events and provenance is not None:
                provenance.extend(payload.events)
            for failure in payload.failures:
                stats.failures.append(failure)
                if policy.mode == "quarantine":
                    write_quarantine(policy.quarantine_dir, failure)
            if progress is not None:
                progress(stats)
            return payload

        if workers == 1:
            converter = self._converter()
            try:
                for index, chunk in chunks:
                    stats.max_queue_depth = max(stats.max_queue_depth, 1)
                    # Inline: record straight into the caller's tracer --
                    # nothing to re-parent, payload.spans stays None.
                    payload = _run_chunk(
                        converter, index, doc_cursor, chunk, tracer,
                        provenance, policy, collect_xml, sink,
                        chunk_names(doc_cursor, len(chunk)),
                    )
                    doc_cursor += len(chunk)
                    yield merge(payload)
            finally:
                stats.wall_seconds = time.perf_counter() - started
            return

        max_pending = self.engine_config.resolved_pending(workers)
        budget = RecoveryBudget(self.engine_config.max_pool_rebuilds)
        obs = (tracer.enabled, provenance is not None, collect_xml, sink)
        pool = self._spawn_pool(workers, policy, *obs)
        pending: deque[tuple[_ChunkTask, Future[ChunkPayload]]] = deque()
        pending_docs = 0
        interrupted = False

        def window_full() -> bool:
            # Static sizing keeps the historical chunk-count window;
            # adaptive sizing counts *documents* (max_pending chunks of
            # the current size) so the buffered volume stays bounded as
            # chunks grow, and the many small warm-up chunks do not
            # throttle the pool.
            if sizer.adaptive:
                return pending_docs >= max_pending * sizer.size
            return len(pending) >= max_pending

        try:
            for index, chunk in chunks:
                task = _ChunkTask(
                    index, doc_cursor, chunk,
                    chunk_names(doc_cursor, len(chunk)),
                )
                doc_cursor += len(chunk)
                pending.append((task, pool.submit(_convert_chunk, task.args())))
                pending_docs += len(chunk)
                stats.max_queue_depth = max(
                    stats.max_queue_depth, len(pending)
                )
                # Backpressure: consume the oldest chunk (preserving
                # document order) before submitting past the window.
                while pending and window_full():
                    payload, pool = self._next_payload(
                        pending, pool, workers, policy, budget, stats, obs
                    )
                    pending_docs -= (
                        payload.stats.documents + payload.stats.documents_failed
                    )
                    yield merge(payload)
            while pending:
                payload, pool = self._next_payload(
                    pending, pool, workers, policy, budget, stats, obs
                )
                pending_docs -= (
                    payload.stats.documents + payload.stats.documents_failed
                )
                yield merge(payload)
        except BaseException:
            # Any exceptional exit -- the consumer closing the stream
            # (GeneratorExit), Ctrl-C (KeyboardInterrupt), a progress
            # callback raising, or a conversion error under fail-fast --
            # must not block on in-flight chunks (the old `with pool:`
            # exit did, leaking the caller's time into generator close);
            # cancel queued ones and let workers die with the pool.
            interrupted = True
            raise
        finally:
            stats.wall_seconds = time.perf_counter() - started
            pool.shutdown(wait=not interrupted, cancel_futures=interrupted)

    def convert_corpus(
        self,
        sources: Iterable[str],
        *,
        tracer: Tracer | NullTracer | None = None,
        provenance: ProvenanceLog | None = None,
        progress: Callable[[EngineStats], None] | None = None,
        collect_xml: bool = True,
        xml_sink: XmlSink | str | None = None,
        names: Sequence[str] | None = None,
    ) -> CorpusResult:
        """Convert a corpus, collecting XML, statistics, and counters.

        The returned ``xml_documents`` are byte-identical to serializing
        the serial :meth:`DocumentConverter.convert_many` results, in
        the same order (the differential tests enforce this -- with
        tracing on or off).  With ``collect_xml=False`` the result's
        ``xml_documents`` is empty and only accumulator/stats/failures
        come home; ``xml_sink``/``names`` are forwarded to
        :meth:`stream` for worker-side file output.
        """
        tracer = resolve_tracer(tracer)
        stats = self.new_stats()
        xml_documents: list[str] = []
        failures: list[DocumentFailure] = []
        accumulator = PathAccumulator()
        with tracer.span("engine.convert_corpus") as span:
            for payload in self.stream(
                sources,
                stats=stats,
                tracer=tracer,
                provenance=provenance,
                progress=progress,
                collect_xml=collect_xml,
                xml_sink=xml_sink,
                names=names,
            ):
                xml_documents.extend(payload.xml)
                failures.extend(payload.failures)
                accumulator.update(payload.accumulator)
            span.set(
                documents=stats.documents,
                chunks=stats.chunks,
                documents_failed=stats.documents_failed,
            )
        return CorpusResult(
            xml_documents=xml_documents,
            accumulator=accumulator,
            stats=stats,
            failures=failures,
        )

    # -- discovery -----------------------------------------------------------

    def mine(
        self,
        accumulator: PathAccumulator,
        *,
        sup_threshold: float = 0.4,
        ratio_threshold: float = 0.0,
        tracer: Tracer | NullTracer | None = None,
    ) -> FrequentPathSet:
        """Frequent-path mining over accumulated statistics, using the
        topic's constraints and concept alphabet."""
        tracer = resolve_tracer(tracer)
        with tracer.span("discover.mine_frequent") as span:
            frequent = mine_frequent_paths(
                accumulator,
                sup_threshold=sup_threshold,
                ratio_threshold=ratio_threshold,
                constraints=self.kb.constraints,
                candidate_labels=self.kb.concept_tags(),
            )
            span.set(
                frequent_paths=len(frequent.paths),
                nodes_explored=frequent.nodes_explored,
            )
        return frequent

    def discover(
        self,
        accumulator: PathAccumulator,
        *,
        sup_threshold: float = 0.4,
        ratio_threshold: float = 0.0,
        optional_threshold: float | None = None,
        tracer: Tracer | NullTracer | None = None,
    ) -> DiscoveryResult:
        """Majority schema + DTD from accumulated statistics alone."""
        tracer = resolve_tracer(tracer)
        frequent = self.mine(
            accumulator,
            sup_threshold=sup_threshold,
            ratio_threshold=ratio_threshold,
            tracer=tracer,
        )
        with tracer.span("discover.majority_schema") as span:
            schema = MajoritySchema.from_frequent_paths(frequent)
            span.set(elements=schema.element_count())
        dtd = derive_dtd(
            schema,
            accumulator,
            optional_threshold=optional_threshold,
            tracer=tracer,
        )
        return DiscoveryResult(frequent=frequent, schema=schema, dtd=dtd)

    def run(
        self,
        sources: Iterable[str],
        *,
        sup_threshold: float = 0.4,
        ratio_threshold: float = 0.0,
        optional_threshold: float | None = None,
        discover: bool = True,
        tracer: Tracer | NullTracer | None = None,
        provenance: ProvenanceLog | None = None,
        progress: Callable[[EngineStats], None] | None = None,
        collect_xml: bool = True,
        xml_sink: XmlSink | str | None = None,
        names: Sequence[str] | None = None,
    ) -> EngineRun:
        """Convert a corpus and (optionally) discover its schema."""
        tracer = resolve_tracer(tracer)
        with tracer.span("engine.run"):
            corpus = self.convert_corpus(
                sources,
                tracer=tracer,
                provenance=provenance,
                progress=progress,
                collect_xml=collect_xml,
                xml_sink=xml_sink,
                names=names,
            )
            discovery = None
            # Schema discovery needs surviving documents: an empty corpus
            # -- or one where the error policy dropped *every* document --
            # yields discovery=None rather than mining an empty
            # accumulator into a degenerate schema.
            if discover and corpus.stats.documents:
                discovery = self.discover(
                    corpus.accumulator,
                    sup_threshold=sup_threshold,
                    ratio_threshold=ratio_threshold,
                    optional_threshold=optional_threshold,
                    tracer=tracer,
                )
        return EngineRun(corpus=corpus, discovery=discovery)

    # -- worker-crash recovery ----------------------------------------------

    def _spawn_pool(
        self,
        workers: int,
        policy: ErrorPolicy,
        trace: bool,
        provenance_on: bool,
        collect_xml: bool = True,
        sink: XmlSink | None = None,
    ) -> ProcessPoolExecutor:
        # Build (or reuse) the converter parent-side before forking so
        # workers can inherit it copy-on-write -- _init_worker checks
        # that its initargs are these same objects before reusing it.
        global _PREFORK_CONVERTER
        _PREFORK_CONVERTER = self._converter()
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=(
                self.kb,
                self.config,
                self.bayes,
                trace,
                provenance_on,
                policy,
                collect_xml,
                sink,
            ),
        )

    def _rebuild_pool(
        self,
        pool: ProcessPoolExecutor,
        workers: int,
        policy: ErrorPolicy,
        budget: RecoveryBudget,
        stats: EngineStats,
        obs: tuple[bool, bool, bool, "XmlSink | None"],
    ) -> ProcessPoolExecutor:
        """Replace a broken pool (bounded by the recovery budget)."""
        budget.spend()
        stats.record_pool_rebuild()
        pool.shutdown(wait=False, cancel_futures=True)
        return self._spawn_pool(workers, policy, *obs)

    def _next_payload(
        self,
        pending: deque[tuple[_ChunkTask, Future[ChunkPayload]]],
        pool: ProcessPoolExecutor,
        workers: int,
        policy: ErrorPolicy,
        budget: RecoveryBudget,
        stats: EngineStats,
        obs: tuple[bool, bool, bool, "XmlSink | None"],
    ) -> tuple[ChunkPayload, ProcessPoolExecutor]:
        """The oldest pending chunk's payload, recovering worker crashes.

        A dead worker surfaces as ``BrokenProcessPool`` on whichever
        future is awaited -- not necessarily the chunk that killed it.
        Under fail-fast the error propagates (historical behavior);
        otherwise the pool is rebuilt, the awaited chunk is re-run with
        bisection (isolating any killer documents it contains as
        :class:`DocumentFailure` records while salvaging its siblings),
        and every other in-flight chunk is resubmitted in order, so the
        in-order merge semantics survive the crash.
        """
        task, future = pending.popleft()
        try:
            return future.result(), pool
        except BrokenProcessPool:
            if policy.is_fail_fast:
                raise
            pool = self._rebuild_pool(pool, workers, policy, budget, stats, obs)
            payload, pool = self._salvage_chunk(
                pool, task, workers, policy, budget, stats, obs
            )
            # Every other in-flight future died with the pool; resubmit
            # the chunks in their original order on the rebuilt pool.
            for position, (other, _dead) in enumerate(pending):
                pending[position] = (
                    other, pool.submit(_convert_chunk, other.args())
                )
            return payload, pool

    def _salvage_chunk(
        self,
        pool: ProcessPoolExecutor,
        task: _ChunkTask,
        workers: int,
        policy: ErrorPolicy,
        budget: RecoveryBudget,
        stats: EngineStats,
        obs: tuple[bool, bool, bool, "XmlSink | None"],
    ) -> tuple[ChunkPayload, ProcessPoolExecutor]:
        """Re-run one chunk, bisecting around worker-killing documents.

        The chunk's sources are processed as a worklist of contiguous
        segments: a segment that converts cleanly is kept whole; one
        that breaks the pool again is split in half (single documents
        are the proven killers and become ``stage="worker"`` failures).
        The surviving pieces are stitched back into a single payload
        with the chunk's original index, so the caller's in-order merge
        never notices the detour.  Sink writes are idempotent full-file
        replacements, so a re-run segment's survivors simply overwrite
        the files any pre-crash attempt already produced.
        """
        segments: deque[tuple[int, list[str]]] = deque(
            [(task.base, task.sources)]
        )
        pieces: list[tuple[int, ChunkPayload | DocumentFailure]] = []
        while segments:
            base, sources = segments.popleft()
            names = (
                None
                if task.names is None
                else task.names[base - task.base : base - task.base + len(sources)]
            )
            future = pool.submit(
                _convert_chunk, (task.index, base, sources, names)
            )
            try:
                pieces.append((base, future.result()))
            except BrokenProcessPool:
                pool = self._rebuild_pool(
                    pool, workers, policy, budget, stats, obs
                )
                if len(sources) == 1:
                    pieces.append(
                        (
                            base,
                            worker_crash_failure(
                                f"doc{base:04d}",
                                base,
                                source=sources[0]
                                if policy.captures_source
                                else None,
                            ),
                        )
                    )
                else:
                    for segment in reversed(split_segment(base, sources)):
                        segments.appendleft(segment)
        return self._stitch_chunk(task.index, pieces, obs[1]), pool

    @staticmethod
    def _stitch_chunk(
        index: int,
        pieces: list[tuple[int, ChunkPayload | DocumentFailure]],
        provenance_on: bool,
    ) -> ChunkPayload:
        """Reassemble bisection pieces into one in-order chunk payload."""
        xml: list[str] = []
        accumulator = PathAccumulator()
        stats = ChunkStats(index=index, documents=0)
        spans: list[dict] = []
        events: list[dict] = []
        failures: list[DocumentFailure] = []
        for base, piece in sorted(pieces, key=lambda item: item[0]):
            if isinstance(piece, DocumentFailure):
                stats.documents_failed += 1
                stats.failures_by_stage[piece.stage] = (
                    stats.failures_by_stage.get(piece.stage, 0) + 1
                )
                failures.append(piece)
                if provenance_on:
                    log = ProvenanceLog()
                    log.error_event(
                        piece.doc_id,
                        piece.stage,
                        piece.error_type,
                        piece.message,
                        index=piece.index,
                    )
                    events.extend(log.events)
                continue
            xml.extend(piece.xml)
            accumulator.update(piece.accumulator)
            stats.fold(piece.stats)
            if piece.spans:
                # Each piece came from a fresh worker tracer whose span
                # ids restart at w1; namespace per segment so the chunk
                # prefix applied at adopt time stays collision-free.
                for span in piece.spans:
                    span = dict(span)
                    span["id"] = f"b{base}.{span['id']}"
                    if span.get("parent") is not None:
                        span["parent"] = f"b{base}.{span['parent']}"
                    spans.append(span)
            if piece.events:
                events.extend(piece.events)
            failures.extend(piece.failures)
        return ChunkPayload(
            xml=xml,
            accumulator=accumulator,
            stats=stats,
            spans=spans or None,
            events=events or None,
            failures=failures,
        )

    # -- internals -----------------------------------------------------------

    def new_stats(self) -> EngineStats:
        """A fresh stats sink sized to this engine's configuration."""
        return EngineStats(
            workers=self.engine_config.resolved_workers(),
            chunk_size=self.engine_config.resolved_chunk_size(),
        )

    def _converter(self) -> DocumentConverter:
        """The lazily built converter for the inline (1-worker) path."""
        if self._inline_converter is None:
            self._inline_converter = DocumentConverter(
                self.kb, self.config, self.bayes
            )
        return self._inline_converter

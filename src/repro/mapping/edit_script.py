"""Approximate edit scripts between ordered trees.

The Zhang--Shasha algorithm in :mod:`repro.mapping.tree_edit` yields the
optimal *distance*; for diagnostics ("what did the mapping actually
change?") a concrete operation list is more useful than a number.  This
module produces one by recursive alignment: children are matched with a
longest-common-subsequence over their labels, matched pairs recurse,
unmatched nodes become delete/insert (or relabel when exactly one of
each remains in place).

The script's cost is an upper bound on the optimal edit distance (every
script transforms ``a`` into ``b``; the optimum is the cheapest one) --
tests assert that invariant against the exact distance.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dom.node import Element


class EditOp(enum.Enum):
    """Kinds of edit operations."""

    RELABEL = "relabel"
    DELETE = "delete"
    INSERT = "insert"


@dataclass(frozen=True)
class EditStep:
    """One operation, located by the label path of the affected node."""

    op: EditOp
    path: tuple[str, ...]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.op.value} at /{'/'.join(self.path)}: {self.detail}"


def _lcs_pairs(
    left: list[Element], right: list[Element]
) -> list[tuple[int, int]]:
    """Index pairs of a longest common subsequence by element tag."""
    n, m = len(left), len(right)
    table = [[0] * (m + 1) for _ in range(n + 1)]
    for i in range(n - 1, -1, -1):
        for j in range(m - 1, -1, -1):
            if left[i].tag == right[j].tag:
                table[i][j] = table[i + 1][j + 1] + 1
            else:
                table[i][j] = max(table[i + 1][j], table[i][j + 1])
    pairs: list[tuple[int, int]] = []
    i = j = 0
    while i < n and j < m:
        if left[i].tag == right[j].tag:
            pairs.append((i, j))
            i += 1
            j += 1
        elif table[i + 1][j] >= table[i][j + 1]:
            i += 1
        else:
            j += 1
    return pairs


def _subtree_size(element: Element) -> int:
    return 1 + sum(_subtree_size(child) for child in element.element_children())


def approximate_edit_script(
    source: Element, target: Element
) -> list[EditStep]:
    """An edit script transforming ``source`` into ``target``.

    Not guaranteed minimal (see module docstring), but sound: its cost
    upper-bounds the Zhang--Shasha distance.
    """
    steps: list[EditStep] = []

    def walk(a: Element, b: Element, path: tuple[str, ...]) -> None:
        if a.tag != b.tag:
            steps.append(
                EditStep(EditOp.RELABEL, path, f"{a.tag} -> {b.tag}")
            )
        left = a.element_children()
        right = b.element_children()
        matched = _lcs_pairs(left, right)
        matched_left = {i for i, _j in matched}
        matched_right = {j for _i, j in matched}
        unmatched_left = [x for i, x in enumerate(left) if i not in matched_left]
        unmatched_right = [x for j, x in enumerate(right) if j not in matched_right]

        def same_side_of_all_matches() -> bool:
            li = next(i for i, x in enumerate(left) if i not in matched_left)
            rj = next(j for j, x in enumerate(right) if j not in matched_right)
            return all((li < i) == (rj < j) for i, j in matched)

        # A lone unmatched node on each side is a relabel opportunity --
        # but only when the tags differ (equal tags that the LCS skipped
        # mean crossed positions) AND the pair sits on the same side of
        # every matched pair.  A crossing is a real reorder and must be
        # paid for as delete+insert: ordered-tree edits have no free
        # moves.
        if (
            len(unmatched_left) == 1
            and len(unmatched_right) == 1
            and unmatched_left[0].tag != unmatched_right[0].tag
            and same_side_of_all_matches()
        ):
            walk(
                unmatched_left[0],
                unmatched_right[0],
                path + (unmatched_left[0].tag,),
            )
            unmatched_left = []
            unmatched_right = []

        # Removing or adding a subtree costs one operation per node.
        for node in unmatched_left:
            size = _subtree_size(node)
            steps.append(
                EditStep(
                    EditOp.DELETE, path + (node.tag,), f"subtree of {size} node(s)"
                )
            )
            steps.extend(
                EditStep(EditOp.DELETE, path + (node.tag,), "descendant")
                for _ in range(size - 1)
            )
        for node in unmatched_right:
            size = _subtree_size(node)
            steps.append(
                EditStep(
                    EditOp.INSERT, path + (node.tag,), f"subtree of {size} node(s)"
                )
            )
            steps.extend(
                EditStep(EditOp.INSERT, path + (node.tag,), "descendant")
                for _ in range(size - 1)
            )
        for i, j in matched:
            walk(left[i], right[j], path + (left[i].tag,))

    walk(source, target, (source.tag,))
    return steps


def script_cost(steps: list[EditStep]) -> int:
    """Unit cost of a script (one per operation)."""
    return len(steps)

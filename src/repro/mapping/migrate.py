"""Repository schema migration.

When the corpus's authoring habits drift (see :mod:`repro.schema.diff`),
the majority schema is re-discovered -- and the repository's existing
documents must follow it.  :func:`migrate_repository` replays the
document mapping component against the new DTD for every stored
document, producing a migrated repository plus an account of what it
cost.  This is the maintenance loop the paper's Introduction contrasts
with handcrafted wrappers ("every change of format would require a new
handcrafted wrapper").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dom.treeops import clone
from repro.mapping.conform import conform_document
from repro.mapping.repository import XMLRepository
from repro.mapping.tree_edit import tree_edit_distance
from repro.mapping.validate import validate_document
from repro.schema.dtd import DTD


@dataclass
class MigrationReport:
    """What a migration did."""

    documents: int = 0
    already_conforming: int = 0
    migrated: int = 0
    total_operations: int = 0
    edit_distances: list[float] = field(default_factory=list)

    @property
    def avg_edit_distance(self) -> float:
        """Mean structural change per migrated document."""
        if not self.edit_distances:
            return 0.0
        return sum(self.edit_distances) / len(self.edit_distances)


def migrate_repository(
    repository: XMLRepository,
    new_dtd: DTD,
    *,
    measure_distance: bool = True,
) -> tuple[XMLRepository, MigrationReport]:
    """Move every document of ``repository`` onto ``new_dtd``.

    Returns a fresh repository (the input is not mutated) and the
    migration report.  ``measure_distance=False`` skips the Zhang--Shasha
    measurement for speed on large stores.
    """
    migrated = XMLRepository(new_dtd)
    report = MigrationReport()
    for document in repository.documents:
        report.documents += 1
        copy = clone(document)
        if not validate_document(copy, new_dtd):
            migrated.documents.append(copy)
            migrated.stats.documents += 1
            migrated.stats.conforming_on_arrival += 1
            report.already_conforming += 1
            continue
        outcome = conform_document(copy, new_dtd)
        remaining = validate_document(copy, new_dtd)
        if remaining:
            raise AssertionError(
                f"migration left violations: {[str(v) for v in remaining[:3]]}"
            )
        if measure_distance:
            report.edit_distances.append(tree_edit_distance(document, copy))
        migrated.documents.append(copy)
        migrated.stats.documents += 1
        migrated.stats.repaired += 1
        migrated.stats.total_repair_operations += outcome.total_operations
        report.migrated += 1
        report.total_operations += outcome.total_operations
    return migrated, report

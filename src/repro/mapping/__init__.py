"""Document Mapping Component (Section 5, companion papers [11, 13]).

"The Document Mapping component ... converts non-conforming XML
documents using a tree-edit distance algorithm so that they eventually
conform to the derived DTD and can easily be integrated into an XML
document repository."

* :mod:`repro.mapping.tree_edit` -- Zhang--Shasha ordered tree edit
  distance, implemented from scratch.
* :mod:`repro.mapping.validate` -- DTD conformance checking.
* :mod:`repro.mapping.conform` -- DTD-guided document repair.
* :mod:`repro.mapping.repository` -- the XML repository that integrates
  conformed documents.
* :mod:`repro.mapping.versioned` -- the on-disk versioned repository
  (immutable version directories, atomic ``CURRENT`` pointer, rollback)
  with parallel document migration between schema versions.
"""

from repro.mapping.conform import ConformResult, conform_document
from repro.mapping.edit_script import approximate_edit_script
from repro.mapping.migrate import MigrationReport, migrate_repository
from repro.mapping.persistence import load_repository, save_repository
from repro.mapping.repository import XMLRepository
from repro.mapping.tree_edit import tree_edit_distance
from repro.mapping.validate import Violation, validate_document
from repro.mapping.versioned import (
    VersionedRepository,
    migrate_documents,
)

__all__ = [
    "tree_edit_distance",
    "validate_document",
    "Violation",
    "conform_document",
    "ConformResult",
    "XMLRepository",
    "save_repository",
    "load_repository",
    "migrate_repository",
    "MigrationReport",
    "approximate_edit_script",
    "VersionedRepository",
    "migrate_documents",
]

"""Ordered tree edit distance (Zhang & Shasha, 1989), from scratch.

The document mapping component measures how far a document is from the
majority schema's shape with the classic ordered-tree edit distance:
minimum number of node insertions, deletions, and relabelings turning
one tree into the other.  The algorithm follows the original dynamic
program over postorder numbering, leftmost-leaf descendants ``l()``, and
keyroots, with O(n1 * n2 * min(depth, leaves)^2) time.
"""

from __future__ import annotations

from typing import Callable

from repro.dom.node import Element, Node, Text

# Cost functions: (label_a or None, label_b or None) -> cost.  ``None``
# encodes the empty side of an insertion/deletion.
CostFn = Callable[[str | None, str | None], float]


def default_cost(a: str | None, b: str | None) -> float:
    """Unit costs: insert 1, delete 1, relabel 1 (0 when labels match)."""
    if a is None or b is None:
        return 1.0
    return 0.0 if a == b else 1.0


def _node_label(node: Node) -> str:
    if isinstance(node, Text):
        return "#text"
    assert isinstance(node, Element)
    return node.tag


class _AnnotatedTree:
    """Postorder numbering, l() table, and keyroots of a tree."""

    def __init__(self, root: Node, *, include_text: bool) -> None:
        self.labels: list[str] = []
        self.lmld: list[int] = []  # leftmost leaf descendant, postorder ids
        self._postorder(root, include_text)
        self.keyroots = self._keyroots()

    def _postorder(self, root: Node, include_text: bool) -> None:
        # Returns postorder ids via an explicit stack to survive deep trees.
        def children_of(node: Node) -> list[Node]:
            if isinstance(node, Element):
                if include_text:
                    return list(node.children)
                return list(node.element_children())
            return []

        # Each frame: (node, child_iter, first_leaf_id or None)
        stack: list[list] = [[root, iter(children_of(root)), None]]
        while stack:
            frame = stack[-1]
            node, child_iter, first_leaf = frame
            child = next(child_iter, None)
            if child is not None:
                stack.append([child, iter(children_of(child)), None])
                continue
            stack.pop()
            index = len(self.labels)
            self.labels.append(_node_label(node))
            own_lmld = first_leaf if first_leaf is not None else index
            self.lmld.append(own_lmld)
            if stack:
                parent = stack[-1]
                if parent[2] is None:
                    parent[2] = own_lmld

    def _keyroots(self) -> list[int]:
        # A keyroot is the highest node of each distinct l() value.
        highest: dict[int, int] = {}
        for index, leaf in enumerate(self.lmld):
            highest[leaf] = index  # postorder: later index = higher node
        return sorted(highest.values())

    def __len__(self) -> int:
        return len(self.labels)


def tree_edit_distance(
    tree_a: Node,
    tree_b: Node,
    *,
    cost: CostFn = default_cost,
    include_text: bool = False,
) -> float:
    """Minimum-cost edit script turning ``tree_a`` into ``tree_b``.

    ``include_text`` controls whether text leaves participate (schema
    comparisons want elements only, which is the default).
    """
    a = _AnnotatedTree(tree_a, include_text=include_text)
    b = _AnnotatedTree(tree_b, include_text=include_text)
    if len(a) == 0 or len(b) == 0:
        raise ValueError("cannot compute distance for an empty tree")

    treedist = [[0.0] * len(b) for _ in range(len(a))]

    for i in a.keyroots:
        for j in b.keyroots:
            _compute_treedist(a, b, i, j, cost, treedist)
    return treedist[len(a) - 1][len(b) - 1]


def _compute_treedist(
    a: _AnnotatedTree,
    b: _AnnotatedTree,
    i: int,
    j: int,
    cost: CostFn,
    treedist: list[list[float]],
) -> None:
    li, lj = a.lmld[i], b.lmld[j]
    m = i - li + 2
    n = j - lj + 2
    forest = [[0.0] * n for _ in range(m)]

    for x in range(1, m):
        forest[x][0] = forest[x - 1][0] + cost(a.labels[li + x - 1], None)
    for y in range(1, n):
        forest[0][y] = forest[0][y - 1] + cost(None, b.labels[lj + y - 1])

    for x in range(1, m):
        node_a = li + x - 1
        for y in range(1, n):
            node_b = lj + y - 1
            if a.lmld[node_a] == li and b.lmld[node_b] == lj:
                # Both prefixes are whole trees rooted at node_a/node_b.
                forest[x][y] = min(
                    forest[x - 1][y] + cost(a.labels[node_a], None),
                    forest[x][y - 1] + cost(None, b.labels[node_b]),
                    forest[x - 1][y - 1] + cost(a.labels[node_a], b.labels[node_b]),
                )
                treedist[node_a][node_b] = forest[x][y]
            else:
                xa = a.lmld[node_a] - li
                yb = b.lmld[node_b] - lj
                forest[x][y] = min(
                    forest[x - 1][y] + cost(a.labels[node_a], None),
                    forest[x][y - 1] + cost(None, b.labels[node_b]),
                    forest[xa][yb] + treedist[node_a][node_b],
                )


def tree_distance_normalized(
    tree_a: Node, tree_b: Node, *, include_text: bool = False
) -> float:
    """Edit distance normalized to ``[0, 1]``.

    The divisor is the sum of the tree sizes -- the cost of deleting one
    tree entirely and inserting the other, an upper bound on the
    distance -- so 0 means identical and 1 means nothing shared.
    """
    a_size = len(_AnnotatedTree(tree_a, include_text=include_text))
    b_size = len(_AnnotatedTree(tree_b, include_text=include_text))
    distance = tree_edit_distance(tree_a, tree_b, include_text=include_text)
    return distance / max(a_size + b_size, 1)

"""Versioned repository layout with parallel migration and rollback.

When the evolving schema bumps (:mod:`repro.schema.evolution`), the
repository's existing documents must follow it -- and they must be able
to come *back* if the bump turns out to be noise.  This module stores a
repository as a sequence of immutable version directories plus an
atomically updated ``CURRENT`` pointer::

    repo/
      CURRENT                 -- {"version": 3}  (atomic rename commit)
      versions/
        v0001/  v0002/  v0003/   -- each a full save_repository() dir

Every publish allocates the next version number and writes a complete
directory (staged under a temp name, renamed into place), so a reader
following ``CURRENT`` never observes a half-written store and
``rollback`` is just repointing ``CURRENT`` at the previous version --
the superseded directories stay on disk until explicitly pruned.

Migration productionizes ``examples/schema_evolution.py``'s serial
sketch: documents are replayed through the existing tree-edit mapping
layer (:func:`repro.mapping.conform.conform_document`) **in parallel**
via :class:`repro.runtime.parallel.ParallelMapper` -- the corpus
engine's transport pattern with a parsed DTD as the per-worker state --
and every migrated document is re-validated against the new DTD before
the new version is published.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING

from repro.dom.serialize import to_xml_document
from repro.dom.treeops import clone
from repro.mapping.conform import conform_document
from repro.mapping.migrate import MigrationReport
from repro.mapping.persistence import (
    ENCODING,
    load_repository,
    load_xml_document,
    save_repository,
    write_repository_dir,
)
from repro.mapping.repository import RepositoryStats, XMLRepository
from repro.mapping.tree_edit import tree_edit_distance
from repro.mapping.validate import validate_document
from repro.runtime.parallel import ParallelMapper
from repro.schema.dtd import DTD

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.metrics import MetricsRegistry

VERSIONS_DIR = "versions"
CURRENT_NAME = "CURRENT"

# -- metric names (registered only when a registry is supplied) ---------------

MIGRATION_DOCUMENTS = "repro_migration_documents_total"
MIGRATION_OPERATIONS = "repro_migration_repair_operations_total"
MIGRATION_SECONDS = "repro_migration_seconds_total"


# -- parallel migration (worker side) -----------------------------------------


def _migration_state(
    dtd_text: str, root_name: str, measure_distance: bool
) -> tuple[DTD, bool]:
    """Per-worker state: the target DTD parsed exactly once."""
    return DTD.parse(dtd_text, root_name=root_name), measure_distance


def _migrate_one(state: tuple[DTD, bool], xml_text: str) -> dict:
    """Migrate one serialized document onto the per-worker DTD.

    Returns the migrated XML plus the accounting the report needs.  The
    post-repair validation mirrors :func:`repro.mapping.migrate.
    migrate_repository`: repair is designed to be complete, so residue
    is a bug, not a skippable document.
    """
    dtd, measure_distance = state
    root = load_xml_document(xml_text)
    if not validate_document(root, dtd):
        return {
            "xml": to_xml_document(root),
            "conforming": True,
            "operations": 0,
            "distance": None,
        }
    original = clone(root) if measure_distance else None
    outcome = conform_document(root, dtd)
    remaining = validate_document(root, dtd)
    if remaining:
        raise AssertionError(
            f"migration left violations: {[str(v) for v in remaining[:3]]}"
        )
    distance = (
        tree_edit_distance(original, root) if measure_distance else None
    )
    return {
        "xml": to_xml_document(root),
        "conforming": False,
        "operations": outcome.total_operations,
        "distance": distance,
    }


def migrate_documents(
    xml_documents: list[str],
    new_dtd: DTD,
    *,
    max_workers: int | None = 1,
    chunk_size: int = 32,
    measure_distance: bool = True,
) -> tuple[list[str], MigrationReport]:
    """Migrate serialized documents onto ``new_dtd`` in parallel.

    Returns the migrated XML (document order preserved) and a
    :class:`~repro.mapping.migrate.MigrationReport` identical to what
    the serial :func:`~repro.mapping.migrate.migrate_repository` path
    reports for the same input.
    """
    mapper = ParallelMapper(
        _migrate_one,
        state_factory=_migration_state,
        state_args=(new_dtd.render(), new_dtd.root_name, measure_distance),
        max_workers=max_workers,
        chunk_size=chunk_size,
    )
    report = MigrationReport()
    migrated_xml: list[str] = []
    for result in mapper.map(xml_documents):
        report.documents += 1
        migrated_xml.append(result["xml"])
        if result["conforming"]:
            report.already_conforming += 1
            continue
        report.migrated += 1
        report.total_operations += result["operations"]
        if result["distance"] is not None:
            report.edit_distances.append(result["distance"])
    return migrated_xml, report


# -- the versioned store ------------------------------------------------------


class VersionedRepository:
    """A repository stored as immutable versions plus a CURRENT pointer."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    # -- layout --------------------------------------------------------------

    @property
    def versions_dir(self) -> Path:
        return self.root / VERSIONS_DIR

    @property
    def current_path(self) -> Path:
        return self.root / CURRENT_NAME

    def version_dir(self, version: int) -> Path:
        return self.versions_dir / f"v{version:04d}"

    def exists(self) -> bool:
        return self.current_path.exists()

    def versions(self) -> list[int]:
        """All published version numbers, ascending."""
        if not self.versions_dir.exists():
            return []
        found = []
        for entry in self.versions_dir.iterdir():
            name = entry.name
            if entry.is_dir() and name.startswith("v") and name[1:].isdigit():
                found.append(int(name[1:]))
        return sorted(found)

    def current_version(self) -> int | None:
        if not self.current_path.exists():
            return None
        pointer = json.loads(self.current_path.read_text(encoding=ENCODING))
        return pointer["version"]

    # -- reading -------------------------------------------------------------

    def load(self, version: int | None = None) -> XMLRepository:
        """Load a version (default: the one CURRENT points at)."""
        if version is None:
            version = self.current_version()
            if version is None:
                raise ValueError(f"{self.root}: no CURRENT version published")
        directory = self.version_dir(version)
        if not directory.exists():
            raise ValueError(f"{self.root}: version {version} does not exist")
        return load_repository(directory)

    def document_xml(self, version: int | None = None) -> list[str]:
        """The stored documents of a version as serialized XML text.

        Reads the files directly (no tree rebuild) -- the transport form
        parallel migration wants.
        """
        if version is None:
            version = self.current_version()
            if version is None:
                raise ValueError(f"{self.root}: no CURRENT version published")
        directory = self.version_dir(version)
        manifest = json.loads(
            (directory / "manifest.json").read_text(encoding=ENCODING)
        )
        return [
            (directory / name).read_text(encoding=ENCODING)
            for name in manifest["documents"]
        ]

    # -- writing -------------------------------------------------------------

    def _set_current(self, version: int) -> None:
        """Atomically repoint CURRENT (write-temp + rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        temp = self.current_path.with_name(CURRENT_NAME + ".tmp")
        temp.write_text(
            json.dumps({"version": version}) + "\n", encoding=ENCODING
        )
        os.replace(temp, self.current_path)

    def publish(
        self,
        repository: XMLRepository,
        *,
        schema_version: int | None = None,
    ) -> int:
        """Write a new version directory and repoint CURRENT to it.

        The directory is staged under a temporary name and renamed into
        place, so a concurrent reader either sees the complete new
        version or none at all.
        """
        version = (self.versions()[-1] + 1) if self.versions() else 1
        final = self.version_dir(version)
        staging = self.versions_dir / f".staging-v{version:04d}"
        self.versions_dir.mkdir(parents=True, exist_ok=True)
        save_repository(repository, staging, schema_version=schema_version)
        os.replace(staging, final)
        self._set_current(version)
        return version

    def publish_xml(
        self,
        dtd: DTD,
        xml_documents: list[str],
        stats: RepositoryStats,
        *,
        schema_version: int | None = None,
    ) -> int:
        """Publish from already-serialized documents (migration output)."""
        version = (self.versions()[-1] + 1) if self.versions() else 1
        final = self.version_dir(version)
        staging = self.versions_dir / f".staging-v{version:04d}"
        self.versions_dir.mkdir(parents=True, exist_ok=True)
        write_repository_dir(
            staging, dtd, xml_documents, stats, schema_version=schema_version
        )
        os.replace(staging, final)
        self._set_current(version)
        return version

    def rollback(self) -> int:
        """Repoint CURRENT at the previous version; returns it.

        The rolled-back version's directory stays on disk, so a
        subsequent :meth:`activate` can roll forward again.
        """
        current = self.current_version()
        if current is None:
            raise ValueError(f"{self.root}: nothing published to roll back")
        earlier = [v for v in self.versions() if v < current]
        if not earlier:
            raise ValueError(
                f"{self.root}: version {current} has no predecessor"
            )
        previous = earlier[-1]
        self._set_current(previous)
        return previous

    def activate(self, version: int) -> None:
        """Repoint CURRENT at an existing version (roll forward/back)."""
        if version not in self.versions():
            raise ValueError(f"{self.root}: version {version} does not exist")
        self._set_current(version)

    # -- migration -----------------------------------------------------------

    def migrate(
        self,
        new_dtd: DTD,
        *,
        schema_version: int | None = None,
        max_workers: int | None = 1,
        chunk_size: int = 32,
        measure_distance: bool = True,
        registry: "MetricsRegistry | None" = None,
    ) -> tuple[int, MigrationReport]:
        """Migrate the CURRENT version onto ``new_dtd`` as a new version.

        Every document is replayed through the tree-edit mapping layer
        in parallel and re-validated against ``new_dtd``; the migrated
        store is published as the next version (the old one remains for
        rollback).  Returns ``(new_version, report)``.
        """
        started = time.perf_counter()
        source_xml = self.document_xml()
        migrated_xml, report = migrate_documents(
            source_xml,
            new_dtd,
            max_workers=max_workers,
            chunk_size=chunk_size,
            measure_distance=measure_distance,
        )
        stats = RepositoryStats(
            documents=len(migrated_xml),
            conforming_on_arrival=report.already_conforming,
            repaired=report.migrated,
            rejected=0,
            total_repair_operations=report.total_operations,
        )
        version = self.publish_xml(
            new_dtd, migrated_xml, stats, schema_version=schema_version
        )
        if registry is not None:
            registry.counter(MIGRATION_DOCUMENTS).inc(report.documents)
            registry.counter(MIGRATION_OPERATIONS).inc(report.total_operations)
            registry.counter(MIGRATION_SECONDS).inc(
                time.perf_counter() - started
            )
        return version, report

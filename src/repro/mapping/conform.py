"""DTD-guided document repair.

Transforms a converted XML document so it conforms exactly to the
derived DTD -- the paper's argument for the majority schema is precisely
that it makes this transformation reasonable ("Data Guides or lower
bound schemas do not suffice for this task", Section 5).

Repair operations, applied top-down per element:

1. *Unwrap/absorb undeclared children.*  A child whose name is not in
   the parent's content model is unwrapped (its children take its place,
   giving declared grandchildren a second chance); text accumulated in
   its ``val`` moves to the parent so no information is lost.
2. *Merge over-occurrences.*  Extra occurrences of a non-repetitive
   particle merge into the first occurrence (children appended, ``val``
   concatenated).
3. *Reorder.*  Declared children are stably rearranged into content-model
   order.
4. *Insert missing required elements.*  An empty element is created for
   a required particle with no occurrence.

Every operation is counted; the total is the *repair cost*, which the
benchmarks compare against the Zhang--Shasha edit distance and across
schema types (experiment E7/E9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dom.node import Element
from repro.schema.dtd import DTD, Multiplicity


@dataclass
class ConformResult:
    """A repaired document and the operations it took."""

    root: Element
    unwrapped: int = 0
    merged: int = 0
    reordered: int = 0
    inserted: int = 0
    dropped: int = 0

    @property
    def total_operations(self) -> int:
        """The repair cost."""
        return self.unwrapped + self.merged + self.reordered + self.inserted + self.dropped


def conform_document(
    root: Element, dtd: DTD, *, lowercase: bool = True
) -> ConformResult:
    """Repair ``root`` in place until it conforms to ``dtd``.

    The root element must already carry the DTD's root name (documents
    produced by the converter always do); a mismatched root is renamed
    and counted as one operation.
    """
    result = ConformResult(root)

    def name_of(element: Element) -> str:
        return element.tag.lower() if lowercase else element.tag

    if name_of(root) != dtd.root_name:
        root.tag = dtd.root_name.upper() if lowercase else dtd.root_name
        result.merged += 1

    _conform_element(root, dtd, result, name_of, synth_chain=(), synthesized=set())
    return result


def _conform_element(
    element: Element,
    dtd: DTD,
    result: ConformResult,
    name_of,
    synth_chain: tuple[str, ...],
    synthesized: set[int],
) -> None:
    declaration = dtd.elements.get(name_of(element))
    if declaration is None:
        return
    declared = [particle.name for particle in declaration.particles]
    declared_set = set(declared)

    # 1. Unwrap undeclared children (repeatedly: unwrapping may surface
    # new undeclared grandchildren).
    changed = True
    while changed:
        changed = False
        for child in list(element.element_children()):
            if name_of(child) in declared_set:
                continue
            element.append_val(child.get_val())
            grandchildren = list(child.children)
            if grandchildren:
                child.replace_with(*grandchildren)
                result.unwrapped += 1
            else:
                child.detach()
                result.dropped += 1
            changed = True

    # 2. Merge over-occurrences of non-repetitive particles.
    for particle in declaration.particles:
        if particle.multiplicity in (Multiplicity.PLUS, Multiplicity.STAR):
            continue
        occurrences = [
            child
            for child in element.element_children()
            if name_of(child) == particle.name
        ]
        if len(occurrences) <= 1:
            continue
        keeper = occurrences[0]
        for extra in occurrences[1:]:
            keeper.append_val(extra.get_val())
            for grandchild in list(extra.children):
                keeper.append_child(grandchild)
            extra.detach()
            result.merged += 1

    # 3. Reorder children into content-model order (stable).
    order_index = {name: i for i, name in enumerate(declared)}
    children = element.element_children()
    desired = sorted(
        children, key=lambda child: order_index.get(name_of(child), len(declared))
    )
    if [id(c) for c in children] != [id(c) for c in desired]:
        for child in children:
            child.detach()
        for child in desired:
            element.append_child(child)
        result.reordered += 1

    # 4. Insert missing required elements, at their declared position.
    # Document-driven recursion always terminates (documents are finite),
    # but chains of *synthesized* fillers could recurse forever on a DTD
    # whose required-child graph has a label cycle (derive_dtd breaks
    # such cycles, but hand-written or parsed DTDs may carry them) --
    # so a filler whose label already occurs among its synthesized
    # ancestors is not created.
    if id(element) in synthesized:
        own_chain = synth_chain + (name_of(element),)
    else:
        own_chain = (name_of(element),)
    for position, particle in enumerate(declaration.particles):
        if particle.multiplicity not in (Multiplicity.ONE, Multiplicity.PLUS):
            continue
        if particle.name in own_chain:
            continue
        present = any(
            name_of(child) == particle.name for child in element.element_children()
        )
        if present:
            continue
        tag = particle.name.upper() if name_of(element) != element.tag else particle.name
        filler = Element(tag)
        insert_at = _insertion_index(element, declaration, position, name_of)
        element.insert_child(insert_at, filler)
        synthesized.add(id(filler))
        result.inserted += 1

    for child in element.element_children():
        _conform_element(
            child, dtd, result, name_of,
            synth_chain=own_chain, synthesized=synthesized,
        )


def _insertion_index(element: Element, declaration, particle_position: int, name_of) -> int:
    """Index at which a filler for particle ``particle_position`` belongs."""
    earlier = {p.name for p in declaration.particles[:particle_position]}
    index = 0
    for i, child in enumerate(element.children):
        if isinstance(child, Element) and name_of(child) in earlier:
            index = i + 1
    return index

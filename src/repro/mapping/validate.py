"""DTD conformance checking.

A document conforms to a derived DTD when every element is declared and
every element's child sequence matches its declaration's content model
(a sequence of uniquely named particles with multiplicities, as produced
by :func:`repro.schema.dtd.derive_dtd`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dom.node import Element
from repro.schema.dtd import DTD, Multiplicity


class ViolationKind(enum.Enum):
    """What went wrong at one tree position."""

    UNDECLARED_ELEMENT = "undeclared-element"
    UNEXPECTED_CHILD = "unexpected-child"
    MISSING_CHILD = "missing-child"
    TOO_MANY = "too-many-occurrences"
    WRONG_ORDER = "wrong-order"
    WRONG_ROOT = "wrong-root"


@dataclass(frozen=True)
class Violation:
    """One conformance violation, located by a label path."""

    kind: ViolationKind
    path: tuple[str, ...]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.kind.value} at /{'/'.join(self.path)}: {self.detail}"


def _name_of(element: Element, *, lowercase: bool) -> str:
    return element.tag.lower() if lowercase else element.tag


def validate_element(
    element: Element,
    dtd: DTD,
    path: tuple[str, ...],
    violations: list[Violation],
    *,
    lowercase: bool,
) -> None:
    name = _name_of(element, lowercase=lowercase)
    declaration = dtd.elements.get(name)
    if declaration is None:
        violations.append(
            Violation(ViolationKind.UNDECLARED_ELEMENT, path, f"<{name}> not declared")
        )
        return

    children = element.element_children()
    child_names = [_name_of(child, lowercase=lowercase) for child in children]
    declared_order = [particle.name for particle in declaration.particles]
    declared_set = set(declared_order)

    for child_name in child_names:
        if child_name not in declared_set:
            violations.append(
                Violation(
                    ViolationKind.UNEXPECTED_CHILD,
                    path,
                    f"<{child_name}> not in content model of <{name}>",
                )
            )

    counts = {part: child_names.count(part) for part in declared_order}
    for particle in declaration.particles:
        count = counts[particle.name]
        required = particle.multiplicity in (Multiplicity.ONE, Multiplicity.PLUS)
        single = particle.multiplicity in (Multiplicity.ONE, Multiplicity.OPTIONAL)
        if required and count == 0:
            violations.append(
                Violation(
                    ViolationKind.MISSING_CHILD,
                    path,
                    f"<{name}> requires <{particle.name}>",
                )
            )
        if single and count > 1:
            violations.append(
                Violation(
                    ViolationKind.TOO_MANY,
                    path,
                    f"<{particle.name}> occurs {count}x but is not repetitive",
                )
            )

    # Order check: the declared children present must appear in declared
    # order (runs of a repeated name count as one position).
    present_sequence = [n for n in child_names if n in declared_set]
    collapsed: list[str] = []
    for child_name in present_sequence:
        if not collapsed or collapsed[-1] != child_name:
            collapsed.append(child_name)
    expected = [n for n in declared_order if n in collapsed]
    if collapsed != expected and len(set(collapsed)) == len(collapsed):
        violations.append(
            Violation(
                ViolationKind.WRONG_ORDER,
                path,
                f"children of <{name}> are {collapsed}, declared order is {expected}",
            )
        )
    elif len(set(collapsed)) != len(collapsed):
        # A name reappears after other names intervened -- that can never
        # match a sequence content model.
        violations.append(
            Violation(
                ViolationKind.WRONG_ORDER,
                path,
                f"children of <{name}> interleave: {collapsed}",
            )
        )

    for child in children:
        child_name = _name_of(child, lowercase=lowercase)
        if child_name in declared_set:
            validate_element(
                child, dtd, path + (child_name,), violations, lowercase=lowercase
            )


def validate_document(
    root: Element, dtd: DTD, *, lowercase: bool = True
) -> list[Violation]:
    """All conformance violations of ``root`` against ``dtd``.

    ``lowercase`` maps the upper-case concept tags of converted documents
    onto the lower-case DTD element names (the paper's convention).  An
    empty result means the document conforms.
    """
    violations: list[Violation] = []
    root_name = _name_of(root, lowercase=lowercase)
    if root_name != dtd.root_name:
        violations.append(
            Violation(
                ViolationKind.WRONG_ROOT,
                (),
                f"root is <{root_name}>, DTD expects <{dtd.root_name}>",
            )
        )
        return violations
    validate_element(root, dtd, (root_name,), violations, lowercase=lowercase)
    return violations


def conforms(root: Element, dtd: DTD, *, lowercase: bool = True) -> bool:
    """True when the document has no violations."""
    return not validate_document(root, dtd, lowercase=lowercase)

"""The XML repository: the integration target of the whole pipeline.

"If the input XML documents need to be integrated into some kind of XML
repository, the majority schema can be used to translate the input XML
documents so that they conform exactly to the majority schema"
(Section 1).  The repository holds a DTD and documents that conform to
it; non-conforming documents are repaired on insertion by the document
mapping component.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dom.node import Element
from repro.dom.path import find_all
from repro.dom.serialize import to_xml_document
from repro.mapping.conform import ConformResult, conform_document
from repro.mapping.validate import validate_document
from repro.schema.dtd import DTD


@dataclass
class RepositoryStats:
    """Aggregate insertion statistics."""

    documents: int = 0
    conforming_on_arrival: int = 0
    repaired: int = 0
    rejected: int = 0
    total_repair_operations: int = 0

    @property
    def repair_rate(self) -> float:
        """Fraction of accepted documents that needed repair."""
        accepted = self.conforming_on_arrival + self.repaired
        return self.repaired / accepted if accepted else 0.0


class XMLRepository:
    """A DTD-typed store of XML documents.

    ``max_repair_operations`` bounds how much surgery insertion may
    perform: documents needing more are rejected (callers can inspect
    :attr:`stats` and loosen the bound or the schema thresholds).
    """

    def __init__(self, dtd: DTD, *, max_repair_operations: int | None = None) -> None:
        self.dtd = dtd
        self.max_repair_operations = max_repair_operations
        self.documents: list[Element] = []
        self.stats = RepositoryStats()
        # The evolution schema version this repository's DTD came from
        # (None for repositories outside an evolution workflow); carried
        # through the manifest by the persistence layer.
        self.schema_version: int | None = None
        self._index = None  # lazily built, invalidated on insert

    def insert(self, root: Element) -> ConformResult | None:
        """Insert a document, repairing it to conform first.

        Returns the :class:`ConformResult` describing the repair (zero
        operations when the document already conformed), or ``None`` when
        the document was rejected by the repair budget.  The input tree
        is mutated by the repair.
        """
        self.stats.documents += 1
        self._index = None
        violations = validate_document(root, self.dtd)
        if not violations:
            self.documents.append(root)
            self.stats.conforming_on_arrival += 1
            return ConformResult(root)
        result = conform_document(root, self.dtd)
        if (
            self.max_repair_operations is not None
            and result.total_operations > self.max_repair_operations
        ):
            self.stats.rejected += 1
            return None
        remaining = validate_document(root, self.dtd)
        if remaining:
            # Repair is designed to be complete; any residue is a bug.
            raise AssertionError(
                f"repair left violations: {[str(v) for v in remaining[:3]]}"
            )
        self.documents.append(root)
        self.stats.repaired += 1
        self.stats.total_repair_operations += result.total_operations
        return result

    def __len__(self) -> int:
        return len(self.documents)

    # -- querying ------------------------------------------------------------

    def query(self, path: str) -> list[Element]:
        """All elements matching a slash path (e.g. ``RESUME/EDUCATION``)
        across the stored documents."""
        results: list[Element] = []
        for document in self.documents:
            results.extend(find_all(document, path))
        return results

    def values(self, path: str) -> list[str]:
        """The ``val`` attributes of all elements matching ``path``."""
        return [el.get_val() for el in self.query(path) if el.get_val()]

    def path_index(self):
        """The Section 3.3 path index over the stored documents.

        Built lazily on first use, invalidated by inserts.  Exact label
        paths resolve through it without tree walks::

            repo.path_index().values(("RESUME", "EDUCATION", "DATE"))
        """
        if self._index is None:
            from repro.schema.index import PathIndex

            self._index = PathIndex.from_documents(self.documents)
        return self._index

    def query_path(self, path: tuple[str, ...]) -> list[Element]:
        """All elements realizing an exact label path, via the index."""
        return self.path_index().elements(path)

    def export(self) -> list[str]:
        """All documents serialized as XML text."""
        return [to_xml_document(document) for document in self.documents]

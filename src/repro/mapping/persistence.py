"""Repository persistence: save/load an XML repository to/from disk.

The Quixote prototype ([11]) the paper mentions builds durable "XML
repositories from topic specific Web documents"; this module provides
the storage layer: a directory holding the DTD, one XML file per
document, and a JSON manifest with the insertion statistics.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.dom.node import Element
from repro.dom.serialize import to_xml_document
from repro.dom.treeops import iter_elements
from repro.htmlparse.parser import parse_fragment
from repro.mapping.repository import XMLRepository
from repro.schema.dtd import DTD

MANIFEST_NAME = "manifest.json"
DTD_NAME = "schema.dtd"


def load_xml_document(text: str) -> Element:
    """Parse serialized converted-XML back into an element tree.

    The HTML parser accepts the XML subset the serializer emits but
    lower-cases tags; converted documents carry upper-case concept tags,
    which are restored here.
    """
    fragment = parse_fragment(text)
    elements = fragment.element_children()
    if not elements:
        raise ValueError("no element found in XML text")
    root = elements[-1]
    root.detach()
    for element in iter_elements(root):
        element.tag = element.tag.upper()
    return root


def save_repository(repository: XMLRepository, directory: str | Path) -> Path:
    """Write a repository to ``directory`` (created if needed)."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    (target / DTD_NAME).write_text(repository.dtd.render())
    names = []
    for index, document in enumerate(repository.documents):
        name = f"doc{index:05d}.xml"
        (target / name).write_text(to_xml_document(document))
        names.append(name)
    manifest = {
        "format": "repro-xml-repository/1",
        "root_name": repository.dtd.root_name,
        "documents": names,
        "stats": {
            "documents": repository.stats.documents,
            "conforming_on_arrival": repository.stats.conforming_on_arrival,
            "repaired": repository.stats.repaired,
            "rejected": repository.stats.rejected,
            "total_repair_operations": repository.stats.total_repair_operations,
        },
    }
    (target / MANIFEST_NAME).write_text(json.dumps(manifest, indent=2))
    return target


def load_repository(directory: str | Path) -> XMLRepository:
    """Read a repository previously written by :func:`save_repository`.

    Loaded documents are re-validated against the stored DTD; a document
    that no longer conforms (external modification) raises
    :class:`ValueError` rather than silently repairing it.
    """
    source = Path(directory)
    manifest = json.loads((source / MANIFEST_NAME).read_text())
    if manifest.get("format") != "repro-xml-repository/1":
        raise ValueError(f"unrecognized repository format in {source}")
    dtd = DTD.parse(
        (source / DTD_NAME).read_text(), root_name=manifest["root_name"]
    )
    repository = XMLRepository(dtd)
    from repro.mapping.validate import validate_document

    for name in manifest["documents"]:
        document = load_xml_document((source / name).read_text())
        violations = validate_document(document, dtd)
        if violations:
            raise ValueError(
                f"{name} no longer conforms to the stored DTD: {violations[0]}"
            )
        repository.documents.append(document)
    stats = manifest.get("stats", {})
    repository.stats.documents = stats.get("documents", len(repository.documents))
    repository.stats.conforming_on_arrival = stats.get("conforming_on_arrival", 0)
    repository.stats.repaired = stats.get("repaired", 0)
    repository.stats.rejected = stats.get("rejected", 0)
    repository.stats.total_repair_operations = stats.get(
        "total_repair_operations", 0
    )
    return repository

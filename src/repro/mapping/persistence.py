"""Repository persistence: save/load an XML repository to/from disk.

The Quixote prototype ([11]) the paper mentions builds durable "XML
repositories from topic specific Web documents"; this module provides
the storage layer: a directory holding the DTD, one XML file per
document, and a JSON manifest with the insertion statistics.

All files are read and written as UTF-8 explicitly -- repository
round-trips must not depend on the platform locale (PCDATA routinely
carries non-ASCII names and punctuation).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.dom.node import Element
from repro.dom.serialize import to_xml_document
from repro.dom.treeops import iter_elements
from repro.htmlparse.parser import parse_fragment
from repro.mapping.repository import RepositoryStats, XMLRepository
from repro.schema.dtd import DTD

MANIFEST_NAME = "manifest.json"
DTD_NAME = "schema.dtd"

ENCODING = "utf-8"


def load_xml_document(text: str) -> Element:
    """Parse serialized converted-XML back into an element tree.

    This is the inverse of :func:`repro.dom.serialize.to_xml_document`
    for converted documents, whose element tags are upper-case concept
    names: the HTML parser accepts the XML subset the serializer emits
    but lower-cases every tag, so tags are restored by upper-casing.
    That is the pinned contract -- input whose original tags were not
    all upper-case comes back upper-cased, which is why this loader is
    only used for converted-document XML.

    A document with multiple top-level elements is a hard error: the
    serializer never produces one, so extra roots mean the file was
    corrupted or hand-edited, and silently keeping one root (and
    dropping the others) would lose data.
    """
    fragment = parse_fragment(text)
    elements = fragment.element_children()
    if not elements:
        raise ValueError("no element found in XML text")
    if len(elements) > 1:
        tags = ", ".join(element.tag for element in elements)
        raise ValueError(
            f"expected exactly one root element, found {len(elements)} ({tags})"
        )
    root = elements[0]
    root.detach()
    for element in iter_elements(root):
        element.tag = element.tag.upper()
    return root


def write_repository_dir(
    directory: str | Path,
    dtd: DTD,
    xml_documents: list[str],
    stats: RepositoryStats,
    *,
    schema_version: int | None = None,
) -> Path:
    """Write one repository directory from already-serialized documents.

    The lower-level half of :func:`save_repository`, shared with the
    versioned layout (:mod:`repro.mapping.versioned`) whose parallel
    migration transports documents as XML text and should not re-build
    trees just to serialize them again.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    (target / DTD_NAME).write_text(dtd.render(), encoding=ENCODING)
    names = []
    for index, xml in enumerate(xml_documents):
        name = f"doc{index:05d}.xml"
        (target / name).write_text(xml, encoding=ENCODING)
        names.append(name)
    manifest = {
        "format": "repro-xml-repository/1",
        "root_name": dtd.root_name,
        "documents": names,
        "stats": {
            "documents": stats.documents,
            "conforming_on_arrival": stats.conforming_on_arrival,
            "repaired": stats.repaired,
            "rejected": stats.rejected,
            "total_repair_operations": stats.total_repair_operations,
        },
    }
    if schema_version is not None:
        manifest["schema_version"] = schema_version
    (target / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2), encoding=ENCODING
    )
    return target


def save_repository(
    repository: XMLRepository,
    directory: str | Path,
    *,
    schema_version: int | None = None,
) -> Path:
    """Write a repository to ``directory`` (created if needed)."""
    if schema_version is None:
        schema_version = repository.schema_version
    return write_repository_dir(
        directory,
        repository.dtd,
        [to_xml_document(document) for document in repository.documents],
        repository.stats,
        schema_version=schema_version,
    )


def load_repository(directory: str | Path) -> XMLRepository:
    """Read a repository previously written by :func:`save_repository`.

    Loaded documents are re-validated against the stored DTD; a document
    that no longer conforms (external modification) raises
    :class:`ValueError` rather than silently repairing it.
    """
    source = Path(directory)
    manifest = json.loads((source / MANIFEST_NAME).read_text(encoding=ENCODING))
    if manifest.get("format") != "repro-xml-repository/1":
        raise ValueError(f"unrecognized repository format in {source}")
    dtd = DTD.parse(
        (source / DTD_NAME).read_text(encoding=ENCODING),
        root_name=manifest["root_name"],
    )
    repository = XMLRepository(dtd)
    repository.schema_version = manifest.get("schema_version")
    from repro.mapping.validate import validate_document

    for name in manifest["documents"]:
        document = load_xml_document(
            (source / name).read_text(encoding=ENCODING)
        )
        violations = validate_document(document, dtd)
        if violations:
            raise ValueError(
                f"{name} no longer conforms to the stored DTD: {violations[0]}"
            )
        repository.documents.append(document)
    stats = manifest.get("stats", {})
    rejected = stats.get("rejected", 0)
    repaired = stats.get("repaired", 0)
    # Rejected documents were never written to disk, so the on-disk
    # document count understates insertion attempts: the fallback for a
    # manifest without an explicit total is stored + rejected, and the
    # conforming-on-arrival fallback keeps repair_rate consistent
    # (accepted = conforming + repaired = stored documents).
    repository.stats.documents = stats.get(
        "documents", len(repository.documents) + rejected
    )
    repository.stats.conforming_on_arrival = stats.get(
        "conforming_on_arrival", len(repository.documents) - repaired
    )
    repository.stats.repaired = repaired
    repository.stats.rejected = rejected
    repository.stats.total_repair_operations = stats.get(
        "total_repair_operations", 0
    )
    return repository

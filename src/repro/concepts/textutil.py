"""Word-level text utilities shared by matching and classification."""

from __future__ import annotations

import re

_WORD_RE = re.compile(r"[A-Za-z0-9][A-Za-z0-9+#./'-]*")


def words(text: str) -> list[str]:
    """Split text into word tokens.

    Keeps intra-word punctuation that matters in the resume domain:
    ``C++``, ``C#``, ``B.S.``, ``3.8/4.0``, ``object-oriented``.
    """
    return _WORD_RE.findall(text)


def normalize_word(word: str) -> str:
    """Canonical form of a word for frequency counting: lower-case,
    trailing periods stripped (``B.S.`` and ``B.S`` coincide)."""
    return word.lower().rstrip(".")


def normalized_words(text: str) -> list[str]:
    """Normalized word tokens of ``text``."""
    return [normalize_word(w) for w in words(text)]


def squeeze_whitespace(text: str) -> str:
    """Collapse whitespace runs to single spaces and trim."""
    return re.sub(r"\s+", " ", text).strip()

"""The knowledge base: concepts + constraints, with (de)serialization."""

from __future__ import annotations

import json
from typing import Iterable, Iterator, Optional

from repro.concepts.concept import Concept, ConceptInstance, ConceptRole
from repro.concepts.constraints import (
    ConstraintSet,
    DepthConstraint,
    ParentConstraint,
    SiblingConstraint,
)


class KnowledgeBase:
    """All domain knowledge for one topic.

    "Concepts are provided by a single user initiating the document
    transformation process" (Section 2.2) -- in code, the user builds one
    of these (or loads it from JSON) and hands it to the converter.
    """

    def __init__(
        self,
        topic: str,
        concepts: Iterable[Concept] = (),
        constraints: Optional[ConstraintSet] = None,
    ) -> None:
        self.topic = topic
        self._concepts: dict[str, Concept] = {}
        for concept in concepts:
            self.add(concept)
        self.constraints = constraints if constraints is not None else ConstraintSet()

    # -- concept registry ---------------------------------------------------

    def add(self, concept: Concept) -> Concept:
        """Register a concept; duplicate names are an error."""
        key = concept.name.lower()
        if key in self._concepts:
            raise ValueError(f"duplicate concept: {concept.name}")
        self._concepts[key] = concept
        return concept

    def get(self, name: str) -> Concept:
        """Look up a concept by (case-insensitive) name."""
        return self._concepts[name.lower()]

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._concepts

    def __iter__(self) -> Iterator[Concept]:
        return iter(self._concepts.values())

    def __len__(self) -> int:
        return len(self._concepts)

    def concept_names(self) -> list[str]:
        """All concept names, in registration order."""
        return [c.name for c in self._concepts.values()]

    def concept_tags(self) -> set[str]:
        """The XML element names contributed by this knowledge base."""
        return {c.tag for c in self._concepts.values()}

    def by_role(self, role: ConceptRole) -> list[Concept]:
        """Concepts with the given role (title vs content)."""
        return [c for c in self._concepts.values() if c.role is role]

    def total_instances(self) -> int:
        """Total number of concept instances across all concepts."""
        return sum(c.instance_count() for c in self._concepts.values())

    def concept_for_tag(self, tag: str) -> Optional[Concept]:
        """The concept whose element tag is ``tag``, or ``None``."""
        return self._concepts.get(tag.lower())

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """Plain-data form suitable for JSON round-tripping."""
        return {
            "topic": self.topic,
            "concepts": [
                {
                    "name": c.name,
                    "role": c.role.value,
                    "description": c.description,
                    "instances": [
                        {"pattern": i.pattern, "is_regex": i.is_regex}
                        for i in c.instances
                    ],
                }
                for c in self._concepts.values()
            ],
            "constraints": {
                "parents": [
                    {"parent": p.parent, "child": p.child, "negated": p.negated}
                    for p in self.constraints.parents
                ],
                "siblings": [
                    {"left": s.left, "right": s.right, "negated": s.negated}
                    for s in self.constraints.siblings
                ],
                "depths": [
                    {
                        "concept": d.concept,
                        "op": d.op,
                        "bound": d.bound,
                        "negated": d.negated,
                    }
                    for d in self.constraints.depths
                ],
                "no_repeat_on_path": self.constraints.no_repeat_on_path,
                "max_depth": self.constraints.max_depth,
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "KnowledgeBase":
        """Inverse of :meth:`to_dict`."""
        concepts = []
        for cdata in data.get("concepts", ()):
            instances = [
                ConceptInstance(i["pattern"], bool(i.get("is_regex", False)))
                for i in cdata.get("instances", ())
            ]
            concepts.append(
                Concept(
                    cdata["name"],
                    instances,
                    role=ConceptRole(cdata.get("role", "content")),
                    description=cdata.get("description", ""),
                )
            )
        raw = data.get("constraints", {})
        constraints = ConstraintSet(
            parents=[
                ParentConstraint(p["parent"], p["child"], bool(p.get("negated")))
                for p in raw.get("parents", ())
            ],
            siblings=[
                SiblingConstraint(s["left"], s["right"], bool(s.get("negated")))
                for s in raw.get("siblings", ())
            ],
            depths=[
                DepthConstraint(
                    d["concept"], d["op"], int(d["bound"]), bool(d.get("negated"))
                )
                for d in raw.get("depths", ())
            ],
            no_repeat_on_path=bool(raw.get("no_repeat_on_path", False)),
            max_depth=raw.get("max_depth"),
        )
        return cls(data.get("topic", "unknown"), concepts, constraints)

    def to_json(self, *, indent: int = 2) -> str:
        """Serialize to a JSON string."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "KnowledgeBase":
        """Load from a JSON string produced by :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

"""Concept constraints (Section 2.2) and their evaluation.

Three constraint forms are supported, each negatable:

* ``parent(c1, c2)`` -- ``c1`` is a (not necessarily direct) ancestor of
  ``c2`` wherever both occur on a path.
* ``sibling(c1, c2)`` -- ``c1`` and ``c2`` occur at the same level of
  abstraction (used by the instance rule to pick token decompositions).
* ``depth(c) OP d`` with ``OP`` in ``{=, <, >}`` -- ``c`` may only occur
  at depths satisfying the comparison (root's children have depth 1).

A :class:`ConstraintSet` additionally carries two corpus-wide switches the
paper's evaluation uses (Section 4.2): ``no_repeat_on_path`` (a concept
name cannot appear twice on a label path) and ``max_depth``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class ParentConstraint:
    """``[not] parent(parent, child)``."""

    parent: str
    child: str
    negated: bool = False

    def satisfied_by_path(self, labels: Sequence[str]) -> bool:
        """Check the constraint against one root-emanating label path."""
        if self.child not in labels or self.parent not in labels:
            return True
        is_ancestor = labels.index(self.parent) < labels.index(self.child)
        return not is_ancestor if self.negated else is_ancestor


@dataclass(frozen=True)
class SiblingConstraint:
    """``[not] sibling(left, right)`` -- same level of abstraction."""

    left: str
    right: str
    negated: bool = False

    def allows_pair(self, a: str, b: str) -> bool:
        """Whether labels ``a`` and ``b`` may be siblings."""
        mentioned = {self.left, self.right} == {a, b} or (
            self.left == self.right == a == b
        )
        if not mentioned:
            return True
        return not self.negated


@dataclass(frozen=True)
class DepthConstraint:
    """``[not] depth(concept) OP bound`` with OP in ``{'=', '<', '>'}``."""

    concept: str
    op: str
    bound: int
    negated: bool = False

    def __post_init__(self) -> None:
        if self.op not in ("=", "<", ">"):
            raise ValueError(f"invalid depth operator: {self.op!r}")

    def allows_depth(self, depth: int) -> bool:
        """Whether the concept may occur at ``depth``."""
        if self.op == "=":
            holds = depth == self.bound
        elif self.op == "<":
            holds = depth < self.bound
        else:
            holds = depth > self.bound
        return not holds if self.negated else holds


class ConstraintSet:
    """A collection of concept constraints with path-checking helpers.

    Constraints "do not have to be complete" (Section 2.2) -- anything not
    mentioned is permitted.
    """

    def __init__(
        self,
        parents: Iterable[ParentConstraint] = (),
        siblings: Iterable[SiblingConstraint] = (),
        depths: Iterable[DepthConstraint] = (),
        *,
        no_repeat_on_path: bool = False,
        max_depth: int | None = None,
    ) -> None:
        self.parents = list(parents)
        self.siblings = list(siblings)
        self.depths = list(depths)
        self.no_repeat_on_path = no_repeat_on_path
        self.max_depth = max_depth
        self._depths_by_concept: dict[str, list[DepthConstraint]] = {}
        for constraint in self.depths:
            self._depths_by_concept.setdefault(constraint.concept, []).append(
                constraint
            )

    # -- construction ----------------------------------------------------

    def add_parent(self, parent: str, child: str, *, negated: bool = False) -> None:
        """Add a ``parent`` constraint."""
        self.parents.append(ParentConstraint(parent, child, negated))

    def add_sibling(self, left: str, right: str, *, negated: bool = False) -> None:
        """Add a ``sibling`` constraint."""
        self.siblings.append(SiblingConstraint(left, right, negated))

    def add_depth(
        self, concept: str, op: str, bound: int, *, negated: bool = False
    ) -> None:
        """Add a ``depth`` constraint."""
        constraint = DepthConstraint(concept, op, bound, negated)
        self.depths.append(constraint)
        self._depths_by_concept.setdefault(concept, []).append(constraint)

    def is_empty(self) -> bool:
        """True when no constraint of any kind is present."""
        return not (
            self.parents
            or self.siblings
            or self.depths
            or self.no_repeat_on_path
            or self.max_depth is not None
        )

    # -- checks ------------------------------------------------------------

    def allows_depth(self, concept: str, depth: int) -> bool:
        """Whether ``concept`` may occur at ``depth`` (root children = 1)."""
        if self.max_depth is not None and depth > self.max_depth:
            return False
        return all(
            c.allows_depth(depth) for c in self._depths_by_concept.get(concept, ())
        )

    def allows_sibling_pair(self, a: str, b: str) -> bool:
        """Whether labels ``a`` and ``b`` may be siblings."""
        return all(c.allows_pair(a, b) for c in self.siblings)

    def allows_path(self, labels: Sequence[str]) -> bool:
        """Whether a root-emanating label path (root excluded from depth
        counting: ``labels[0]`` is at depth 1) satisfies every constraint.

        This is the pruning predicate for frequent-path discovery: a path
        that violates any constraint cannot be part of the majority schema
        and none of its extensions need to be explored (Section 4.2).
        """
        if self.no_repeat_on_path and len(set(labels)) != len(labels):
            return False
        if self.max_depth is not None and len(labels) > self.max_depth:
            return False
        for depth, label in enumerate(labels, start=1):
            if not self.allows_depth(label, depth):
                return False
        return all(c.satisfied_by_path(labels) for c in self.parents)

"""A product-catalog knowledge base -- the paper's "broader topic".

Section 5: "the goal ... is to build XML repositories capturing linked
HTML documents pertaining to broader topics such as product catalogs or
University Web sites."  This module supplies the domain knowledge for
the product-catalog topic used by :mod:`repro.corpus.catalog` and the
cross-topic experiment (E12): the framework itself is unchanged -- only
this knowledge base differs from the resume setup, which is precisely
the paper's portability claim.
"""

from __future__ import annotations

from repro.concepts.concept import Concept, ConceptInstance, ConceptRole
from repro.concepts.constraints import ConstraintSet
from repro.concepts.knowledge import KnowledgeBase

_PRICE_PATTERNS = [
    r"\$\s?\d{1,6}(,\d{3})*(\.\d{2})?",
    r"\b\d+\.\d{2}\s?(USD|dollars)\b",
]

_SKU_PATTERNS = [
    r"\b[A-Z]{2,4}-\d{3,6}\b",
    r"\bmodel\s+no\.?\s*[A-Z0-9-]+\b",
    r"\bpart\s*#\s*[A-Z0-9-]+\b",
]

_WEIGHT_PATTERNS = [
    r"\b\d+(\.\d+)?\s?(lbs?|pounds|kg|kilograms|oz|ounces|g|grams)\b",
]

_WARRANTY_PATTERNS = [
    r"\b\d+[\s-]?(year|month|day)s?\s+(limited\s+)?warranty\b",
]


def _concept(name, role, keywords, patterns=None, description=""):
    instances = [ConceptInstance(k) for k in keywords]
    for pattern in patterns or ():
        instances.append(ConceptInstance(pattern, is_regex=True))
    return Concept(name, instances, role=role, description=description)


def build_catalog_knowledge_base() -> KnowledgeBase:
    """The product-catalog domain: 12 concepts, 4 title / 8 content."""
    title = ConceptRole.TITLE
    content = ConceptRole.CONTENT

    concepts = [
        # ----- title concepts (catalog page sections) -----
        _concept(
            "catalog", title,
            ["product catalog", "catalogue", "our products", "product listing",
             "price list"],
            description="The catalog page root / title.",
        ),
        _concept(
            "product", title,
            ["item", "product details"],
            description="One product entry.",
        ),
        _concept(
            "specifications", title,
            ["specs", "technical specifications", "technical data",
             "product specifications", "features"],
            description="Specification block of a product.",
        ),
        _concept(
            "ordering", title,
            ["how to order", "order information", "ordering information",
             "shipping", "shipping information"],
            description="Ordering / shipping information section.",
        ),
        # ----- content concepts -----
        _concept(
            "price", content,
            ["msrp", "retail price", "sale price", "our price"],
            _PRICE_PATTERNS,
            description="Prices.",
        ),
        _concept(
            "sku", content,
            ["item number", "catalog number", "model number"],
            _SKU_PATTERNS,
            description="Stock-keeping identifiers.",
        ),
        _concept(
            "manufacturer", content,
            ["made by", "brand", "manufactured by", "inc.", "corp.",
             "company", "industries"],
            description="Manufacturer / brand.",
        ),
        _concept(
            "category", content,
            ["electronics", "appliances", "hardware", "furniture", "tools",
             "office supplies", "sporting goods", "garden"],
            description="Product category names.",
        ),
        _concept(
            "availability", content,
            ["in stock", "out of stock", "backordered", "ships in",
             "available", "discontinued", "pre-order"],
            description="Stock status phrases.",
        ),
        _concept(
            "weight", content,
            ["shipping weight"],
            _WEIGHT_PATTERNS,
            description="Weights.",
        ),
        _concept(
            "warranty", content,
            ["guarantee", "money-back"],
            _WARRANTY_PATTERNS,
            description="Warranty statements.",
        ),
        _concept(
            "color", content,
            ["black", "white", "silver", "red", "blue", "green", "beige",
             "gray", "brown"],
            description="Color options.",
        ),
    ]

    constraints = ConstraintSet(no_repeat_on_path=True, max_depth=4)
    for concept in concepts:
        if concept.role is ConceptRole.TITLE and concept.name == "catalog":
            constraints.add_depth(concept.tag, "=", 1)
    return KnowledgeBase("catalog", concepts, constraints)

"""Fast-path concept tagging (perf optimisation of Section 2.3.1).

Profiling shows the concept instance rule dominating conversion
wall-clock: the naive :class:`~repro.concepts.matcher.SynonymMatcher`
runs every compiled instance pattern's ``finditer`` over every token --
O(|instances| x |tokens|) regex scans per document.  This module
replaces that with:

* :class:`AhoCorasickAutomaton` -- a dependency-free Aho-Corasick
  automaton over all *literal* (non-regex) synonym instances: one
  case-folded pass over the token finds every keyword occurrence at
  once.  Regex instances (dates, GPAs, phone numbers, ...) keep their
  exact per-pattern ``finditer`` semantics, gated by a single combined
  alternation prefilter so tokens without any regex hit cost one scan.
* :class:`LRUCache` / :class:`CachedBayes` -- bounded memoization of
  per-token decisions.  Topic-specific corpora repeat headings
  ("Education", "Experience") and boilerplate tokens heavily, so the
  synonym match list and the Bayes ``(label, margin)`` prediction for a
  given token text are computed once and replayed.  Hit/miss/eviction
  counters feed the engine's :class:`~repro.obs.metrics.MetricsRegistry`.

Equivalence guarantee
---------------------
:meth:`FastSynonymMatcher.find_all` returns the **exact** match list of
the naive matcher -- same ``InstanceMatch`` starts/ends/specificities,
same greedy non-overlap resolution -- for every input:

* Literal keywords are matched over an ASCII-case-folded copy of the
  token (``str.translate`` with an A-Z table), which coincides with
  ``re.IGNORECASE`` on ASCII text; the automaton hits are then filtered
  through the same word-boundary checks (``(?<![A-Za-z0-9])`` /
  ``(?![A-Za-z0-9])``) the compiled patterns assert, and through
  ``finditer``'s per-pattern left-to-right non-overlap rule.
* Non-ASCII tokens and non-ASCII keywords fall back to the compiled
  regex path, so Unicode case-folding corner cases never diverge.
* Regex instances run their own ``finditer`` exactly as before --
  a combined alternation can only tell *whether* some regex matches
  (its per-position alternative preference differs from running each
  pattern separately), so it is used strictly as a prefilter.

The differential tests (fast on vs. off, byte-identical XML and DTD
over the golden corpus) and the hypothesis property test
(``tests/test_properties_fastmatch.py``) enforce this contract the same
way the serial-vs-parallel harness guards the engine.
"""

from __future__ import annotations

import re
from collections import OrderedDict, deque
from typing import Iterator, Optional

from repro.concepts.bayes import MultinomialNaiveBayes
from repro.concepts.knowledge import KnowledgeBase
from repro.concepts.matcher import InstanceMatch, SynonymMatcher

# Entries per token-decision LRU; ~one topic corpus's distinct tokens.
DEFAULT_CACHE_SIZE = 4096

# ASCII case folding: coincides with re.IGNORECASE for ASCII patterns
# over ASCII text (non-ASCII text takes the compiled-regex fallback).
_ASCII_FOLD = {code: code + 32 for code in range(ord("A"), ord("Z") + 1)}
_ASCII_ALNUM = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"
)

# Regex constructs whose meaning changes when patterns are renumbered
# inside a combined alternation (backreferences, conditionals): any
# pattern using them disables the prefilter rather than risking a false
# negative.
_UNSAFE_TO_COMBINE = re.compile(r"\\\d|\(\?P=|\(\?\(")

_MISS = object()


class LRUCache:
    """A bounded least-recently-used cache with observability counters.

    Values must never be ``None``-ambiguous to callers -- :meth:`get`
    returns ``None`` on miss -- so cache immutable tuples, not bare
    ``None``-able scalars.
    """

    __slots__ = ("capacity", "hits", "misses", "evictions", "_data")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("LRU capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[str, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: str) -> object | None:
        value = self._data.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: str, value: object) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
        data[key] = value
        if len(data) > self.capacity:
            data.popitem(last=False)
            self.evictions += 1

    def counters(self) -> dict[str, int]:
        """Monotonic counters, mergeable across snapshots."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        self._data.clear()


class AhoCorasickAutomaton:
    """Classic Aho-Corasick keyword automaton (goto/fail/output).

    Built once over the case-folded keyword list; :meth:`find` streams
    ``(keyword_id, end_position)`` hits in end-position order during a
    single left-to-right pass over the text.
    """

    __slots__ = ("_goto", "_fail", "_out")

    def __init__(self, keywords: list[str]) -> None:
        goto: list[dict[str, int]] = [{}]
        out: list[tuple[int, ...]] = [()]
        for keyword_id, word in enumerate(keywords):
            state = 0
            for char in word:
                nxt = goto[state].get(char)
                if nxt is None:
                    goto.append({})
                    out.append(())
                    nxt = len(goto) - 1
                    goto[state][char] = nxt
                state = nxt
            out[state] += (keyword_id,)
        fail = [0] * len(goto)
        queue: deque[int] = deque(goto[0].values())
        while queue:
            state = queue.popleft()
            for char, nxt in goto[state].items():
                queue.append(nxt)
                fallback = fail[state]
                while fallback and char not in goto[fallback]:
                    fallback = fail[fallback]
                target = goto[fallback].get(char, 0)
                fail[nxt] = target if target != nxt else 0
                out[nxt] += out[fail[nxt]]
        self._goto = goto
        self._fail = fail
        self._out = out

    @property
    def state_count(self) -> int:
        return len(self._goto)

    def find(self, text: str) -> Iterator[tuple[int, int]]:
        """Yield ``(keyword_id, end)`` for every occurrence in ``text``."""
        goto = self._goto
        fail = self._fail
        out = self._out
        state = 0
        for position, char in enumerate(text):
            while state and char not in goto[state]:
                state = fail[state]
            state = goto[state].get(char, 0)
            if out[state]:
                end = position + 1
                for keyword_id in out[state]:
                    yield keyword_id, end


class FastSynonymMatcher:
    """Drop-in :class:`SynonymMatcher` with an automaton fast path.

    Same ``find_all``/``find_best``/``classify`` surface and -- by the
    module's equivalence guarantee -- same results; one automaton pass
    plus at most one alternation scan per token instead of one regex
    scan per instance, and an LRU replay for repeated token texts.
    """

    def __init__(
        self, kb: KnowledgeBase, *, cache_size: int = DEFAULT_CACHE_SIZE
    ) -> None:
        self.kb = kb
        self.cache: LRUCache | None = (
            LRUCache(cache_size) if cache_size > 0 else None
        )
        self._naive: SynonymMatcher | None = None
        # (tag, length, check_prefix_boundary, check_suffix_boundary)
        # per automaton keyword, aligned with the keyword-id space.
        literal_info: list[tuple[str, int, bool, bool]] = []
        keywords: list[str] = []
        regex_instances: list[tuple[str, re.Pattern[str]]] = []
        combinable: list[str] = []
        can_combine = True
        for concept in kb:
            for instance in concept.iter_instances():
                if instance.is_regex or not instance.pattern.isascii():
                    # Non-ASCII literals keep their compiled pattern so
                    # Unicode case folding matches the naive matcher.
                    regex_instances.append((concept.tag, instance.compile()))
                    if instance.is_regex and _UNSAFE_TO_COMBINE.search(
                        instance.pattern
                    ):
                        can_combine = False
                    else:
                        combinable.append(
                            instance.pattern
                            if instance.is_regex
                            else re.escape(instance.pattern)
                        )
                elif instance.pattern:
                    pattern = instance.pattern
                    literal_info.append(
                        (
                            concept.tag,
                            len(pattern),
                            pattern[:1].isalnum(),
                            pattern[-1:].isalnum(),
                        )
                    )
                    keywords.append(pattern.translate(_ASCII_FOLD))
        self._literal_info = literal_info
        self._automaton = AhoCorasickAutomaton(keywords)
        self._regex_instances = regex_instances
        self._regex_prefilter: re.Pattern[str] | None = None
        if regex_instances and can_combine:
            try:
                self._regex_prefilter = re.compile(
                    "|".join(f"(?:{pattern})" for pattern in combinable),
                    re.IGNORECASE,
                )
            except re.error:
                self._regex_prefilter = None

    # -- the SynonymMatcher surface ------------------------------------------

    def find_all(self, text: str) -> list[InstanceMatch]:
        """Every instance match in ``text``, in document order.

        Same contract (and same output) as
        :meth:`SynonymMatcher.find_all`; results for repeated token
        texts replay from the LRU cache.
        """
        cache = self.cache
        if cache is not None:
            cached = cache.get(text)
            if cached is not None:
                return list(cached)  # type: ignore[arg-type]
        kept = self._find_all_uncached(text)
        if cache is not None:
            cache.put(text, tuple(kept))
        return kept

    def find_best(self, text: str) -> InstanceMatch | None:
        """The single best match for a token, or ``None``."""
        matches = self.find_all(text)
        if not matches:
            return None
        return max(matches, key=lambda m: (m.specificity, -m.start))

    def classify(self, text: str) -> str | None:
        """The concept tag for ``text``, or ``None`` when unidentified."""
        best = self.find_best(text)
        return best.concept_tag if best else None

    # -- internals -----------------------------------------------------------

    def _find_all_uncached(self, text: str) -> list[InstanceMatch]:
        if not text.isascii():
            # Unicode case folding is regex territory; stay exact.
            return self._naive_matcher().find_all(text)
        raw = self._literal_matches(text)
        raw.extend(self._regex_matches(text))
        raw.sort(key=lambda m: (m.start, -m.specificity, m.concept_tag))
        kept: list[InstanceMatch] = []
        last_end = -1
        for match in raw:
            if match.start >= last_end:
                kept.append(match)
                last_end = match.end
        return kept

    def _literal_matches(self, text: str) -> list[InstanceMatch]:
        folded = text.translate(_ASCII_FOLD)
        info = self._literal_info
        length = len(folded)
        raw: list[InstanceMatch] = []
        # finditer semantics per keyword: a scan resumes at the end of
        # the previous (boundary-valid) occurrence, so occurrences of a
        # keyword overlapping its own previous match are discarded.
        resume_at: dict[int, int] = {}
        for keyword_id, end in self._automaton.find(folded):
            tag, pattern_length, check_prefix, check_suffix = info[keyword_id]
            start = end - pattern_length
            if check_prefix and start > 0 and folded[start - 1] in _ASCII_ALNUM:
                continue
            if check_suffix and end < length and folded[end] in _ASCII_ALNUM:
                continue
            if start < resume_at.get(keyword_id, 0):
                continue
            resume_at[keyword_id] = end
            raw.append(InstanceMatch(tag, start, end, text[start:end]))
        return raw

    def _regex_matches(self, text: str) -> list[InstanceMatch]:
        if not self._regex_instances:
            return []
        prefilter = self._regex_prefilter
        if prefilter is not None and prefilter.search(text) is None:
            return []
        raw: list[InstanceMatch] = []
        for tag, pattern in self._regex_instances:
            for found in pattern.finditer(text):
                if found.start() == found.end():
                    continue
                raw.append(
                    InstanceMatch(tag, found.start(), found.end(), found.group(0))
                )
        return raw

    def _naive_matcher(self) -> SynonymMatcher:
        if self._naive is None:
            self._naive = SynonymMatcher(self.kb)
        return self._naive


class CachedBayes:
    """LRU-memoized view over a trained :class:`MultinomialNaiveBayes`.

    Duck-types the classifier surface the instance rule consumes
    (:meth:`is_trained` / :meth:`predict` / :meth:`classify`).  Keys are
    ASCII-case-folded token texts -- prediction is case-insensitive
    (word normalization lower-cases), so "EDUCATION" and "Education"
    share one entry.  The underlying classifier's ``version`` counter is
    checked on every lookup so online training invalidates the cache.
    """

    def __init__(
        self,
        bayes: MultinomialNaiveBayes,
        *,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        self.bayes = bayes
        self.cache: LRUCache | None = (
            LRUCache(cache_size) if cache_size > 0 else None
        )
        self._seen_version = bayes.version

    def is_trained(self) -> bool:
        return self.bayes.is_trained()

    def predict(self, text: str) -> tuple[Optional[str], float]:
        cache = self.cache
        if cache is None:
            return self.bayes.predict(text)
        if self.bayes.version != self._seen_version:
            cache.clear()
            self._seen_version = self.bayes.version
        key = text.translate(_ASCII_FOLD)
        cached = cache.get(key)
        if cached is not None:
            return cached  # type: ignore[return-value]
        decision = self.bayes.predict(text)
        cache.put(key, decision)
        return decision

    def classify(self, text: str) -> Optional[str]:
        label, _margin = self.predict(text)
        return label


def cache_counter_delta(
    before: dict[str, dict[str, int]], after: dict[str, dict[str, int]]
) -> dict[str, dict[str, int]]:
    """Per-cache counter growth between two snapshots.

    All-zero caches are dropped so idle snapshots (fast tagger off, or a
    chunk with no tokens) serialize to an empty dict.
    """
    delta: dict[str, dict[str, int]] = {}
    for cache_name, counters in after.items():
        base = before.get(cache_name, {})
        grown = {
            key: value - base.get(key, 0) for key, value in counters.items()
        }
        if any(grown.values()):
            delta[cache_name] = grown
    return delta

"""Multinomial naive-Bayes token classifier (Section 2.3.1, way 2).

"For Bayes classifier, the user gives examples on how to associate tokens
with concept instances by labeling some input HTML documents.  Based on
these examples, the Bayes classifier computes the statistics of
associating words in the token with concept instances.  Given a new
resume document, the classifier classifies each token as a concept
instance with the highest probability."

Implemented from scratch: Laplace-smoothed multinomial model over the
word features of :mod:`repro.concepts.textutil`, with an explicit
``unknown`` outcome -- the paper relies on tokens "classified as
'unknown'" as user feedback (Section 2.3.1), so the classifier abstains
when the winning log-odds margin is below ``margin_threshold`` or when no
training word is present in the token at all.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.concepts.textutil import normalized_words


@dataclass(frozen=True)
class _FoldedTables:
    """Train-time-folded inference tables.

    ``key`` fingerprints the training state (version counter + alpha)
    the tables were derived from, so mutation after folding triggers a
    rebuild instead of serving stale probabilities.
    """

    key: tuple[int, float]
    priors: dict[str, float]
    word_logprob: dict[str, dict[str, float]]
    unknown_logprob: dict[str, float]


class MultinomialNaiveBayes:
    """Laplace-smoothed multinomial naive Bayes over token words."""

    def __init__(self, *, alpha: float = 1.0, margin_threshold: float = 0.0) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = alpha
        self.margin_threshold = margin_threshold
        self._word_counts: dict[str, Counter[str]] = defaultdict(Counter)
        self._class_word_totals: Counter[str] = Counter()
        self._class_doc_counts: Counter[str] = Counter()
        self._vocabulary: set[str] = set()
        self._total_docs = 0
        # Folded inference tables (see _folded); rebuilt lazily whenever
        # training data or alpha changes.  version lets caching wrappers
        # (repro.concepts.fastmatch.CachedBayes) invalidate memoized
        # predictions after online training.
        self.version = 0
        self._tables: _FoldedTables | None = None

    # -- training -----------------------------------------------------------

    def fit(self, examples: Iterable[tuple[str, str]]) -> "MultinomialNaiveBayes":
        """Train on ``(token_text, concept_tag)`` pairs.

        May be called repeatedly; counts accumulate (online training, the
        feedback loop of Section 2.3.1).
        """
        for text, label in examples:
            self.add_example(text, label)
        return self

    def add_example(self, text: str, label: str) -> None:
        """Add one labeled token."""
        words = normalized_words(text)
        if not words:
            return
        counts = self._word_counts[label]
        for word in words:
            counts[word] += 1
            self._vocabulary.add(word)
        self._class_word_totals[label] += len(words)
        self._class_doc_counts[label] += 1
        self._total_docs += 1
        self.version += 1
        self._tables = None

    @property
    def classes(self) -> list[str]:
        """Labels seen during training, sorted."""
        return sorted(self._class_doc_counts)

    @property
    def vocabulary_size(self) -> int:
        """Number of distinct training words."""
        return len(self._vocabulary)

    def is_trained(self) -> bool:
        """True once at least one example has been absorbed."""
        return self._total_docs > 0

    # -- inference ----------------------------------------------------------

    def _folded(self) -> "_FoldedTables":
        """Per-class log-probability tables, folded once after training.

        Inference then reduces to dict lookups plus additions: the same
        ``log((count + alpha) / denom)`` expressions the naive formula
        evaluates per word per call, computed once per distinct
        ``(label, word)`` instead.  Scores are bit-identical because the
        folded values come from the identical float expressions and are
        summed in the same word order.
        """
        tables = self._tables
        if tables is None or tables.key != (self.version, self.alpha):
            vocab = len(self._vocabulary) or 1
            priors: dict[str, float] = {}
            word_logprob: dict[str, dict[str, float]] = {}
            unknown_logprob: dict[str, float] = {}
            for label in self._class_doc_counts:
                priors[label] = math.log(
                    self._class_doc_counts[label] / self._total_docs
                )
                denom = self._class_word_totals[label] + self.alpha * vocab
                counts = self._word_counts.get(label, {})
                word_logprob[label] = {
                    word: math.log((count + self.alpha) / denom)
                    for word, count in counts.items()
                }
                unknown_logprob[label] = math.log(self.alpha / denom)
            tables = self._tables = _FoldedTables(
                (self.version, self.alpha), priors, word_logprob, unknown_logprob
            )
        return tables

    def _score_words(self, words: Sequence[str]) -> dict[str, float]:
        tables = self._folded()
        scores: dict[str, float] = {}
        for label, prior in tables.priors.items():
            table = tables.word_logprob[label]
            unknown = tables.unknown_logprob[label]
            scores[label] = prior + sum(table.get(word, unknown) for word in words)
        return scores

    def log_posteriors(self, text: str) -> dict[str, float]:
        """Unnormalized log posterior per class for ``text``."""
        if not self.is_trained():
            raise RuntimeError("classifier has not been trained")
        return self._score_words(normalized_words(text))

    def predict(self, text: str) -> tuple[Optional[str], float]:
        """Best label and its winning margin (nats) for ``text``.

        Returns ``(None, 0.0)`` when the classifier abstains: the token
        shares no word with the training data, or the margin between the
        best and second-best class is below ``margin_threshold``.
        """
        words = normalized_words(text)
        if not words or not any(word in self._vocabulary for word in words):
            return None, 0.0
        scores = self._score_words(words)
        ranked = sorted(scores.items(), key=lambda kv: kv[1], reverse=True)
        best_label, best_score = ranked[0]
        margin = best_score - ranked[1][1] if len(ranked) > 1 else math.inf
        if margin < self.margin_threshold:
            return None, margin
        return best_label, margin

    def classify(self, text: str) -> Optional[str]:
        """The concept tag for ``text``, or ``None`` (token "unknown").

        Interchangeable with
        :meth:`repro.concepts.matcher.SynonymMatcher.classify`.
        """
        label, _margin = self.predict(text)
        return label

    # -- diagnostics --------------------------------------------------------

    def evaluate(self, examples: Sequence[tuple[str, str]]) -> float:
        """Accuracy over labeled tokens, abstentions counted as errors."""
        if not examples:
            return 0.0
        correct = sum(1 for text, label in examples if self.classify(text) == label)
        return correct / len(examples)

    def unknown_ratio(self, texts: Sequence[str]) -> float:
        """Fraction of tokens on which the classifier abstains.

        The paper suggests using "the ratio between identified and
        unidentifiable tokens ... as a feedback to the user" who then adds
        training data (Section 2.3.1).
        """
        if not texts:
            return 0.0
        unknown = sum(1 for text in texts if self.classify(text) is None)
        return unknown / len(texts)

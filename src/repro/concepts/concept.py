"""Concepts and concept instances (Section 2.2).

A *concept* names a kind of information object in the topic domain and
supplies the element name used in the output XML.  Each concept carries a
set of *concept instances*: "text patterns and keywords as they might
occur in topic specific HTML documents", always including the concept's
own name.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field
from typing import Iterator, Optional


class ConceptRole(enum.Enum):
    """Role split used by the paper's constraint experiment (Section 4.2).

    *Title names* "are likely to be the title of a resume, and hence can
    only occur as first level nodes"; *content names* can only occur at
    depth greater than one.
    """

    TITLE = "title"
    CONTENT = "content"


@dataclass(frozen=True)
class ConceptInstance:
    """One keyword or text pattern identifying a concept.

    ``pattern`` is either a plain keyword (matched case-insensitively on
    word boundaries) or, when ``is_regex`` is true, a regular expression
    matched case-insensitively anywhere in the token.  Regex instances
    model measurement-type instances such as dates or GPA strings that no
    keyword list could enumerate.
    """

    pattern: str
    is_regex: bool = False

    def compile(self) -> re.Pattern[str]:
        """The compiled matcher for this instance (memoized).

        The pattern is compiled at most once per instance; repeated
        callers (:meth:`Concept.first_match`, every matcher built over
        the same knowledge base) share the cached ``re.Pattern``.
        """
        cached = self.__dict__.get("_compiled")
        if cached is None:
            if self.is_regex:
                cached = re.compile(self.pattern, re.IGNORECASE)
            else:
                escaped = re.escape(self.pattern)
                # Word-boundary semantics that tolerate the pattern itself
                # starting/ending with punctuation (e.g. "C++").
                prefix = r"(?<![A-Za-z0-9])" if self.pattern[:1].isalnum() else ""
                suffix = r"(?![A-Za-z0-9])" if self.pattern[-1:].isalnum() else ""
                cached = re.compile(prefix + escaped + suffix, re.IGNORECASE)
            # Frozen dataclass: memoize past the __setattr__ guard.  The
            # cache is not a field, so equality/hash stay pattern-based.
            object.__setattr__(self, "_compiled", cached)
        return cached


@dataclass
class Concept:
    """A named concept with its instances.

    ``name`` doubles as the XML element tag (upper-cased at tagging time
    to distinguish recovered concept elements from residual HTML markup).
    """

    name: str
    instances: list[ConceptInstance] = field(default_factory=list)
    role: ConceptRole = ConceptRole.CONTENT
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name or not re.match(r"^[A-Za-z][A-Za-z0-9_-]*$", self.name):
            raise ValueError(f"invalid concept name: {self.name!r}")
        # Section 2.2: the instance set "also includes the name of the
        # concept" -- add it unless the caller already did.
        if not any(
            not inst.is_regex and inst.pattern.lower() == self.name.lower()
            for inst in self.instances
        ):
            self.instances.insert(0, ConceptInstance(self.name))

    @property
    def tag(self) -> str:
        """The element name this concept contributes to XML output."""
        return self.name.upper()

    def add_keyword(self, keyword: str) -> None:
        """Register an additional keyword instance."""
        self.instances.append(ConceptInstance(keyword))

    def add_pattern(self, regex: str) -> None:
        """Register an additional regex instance."""
        self.instances.append(ConceptInstance(regex, is_regex=True))

    def iter_instances(self) -> Iterator[ConceptInstance]:
        """All instances, concept-name instance first."""
        return iter(self.instances)

    def instance_count(self) -> int:
        """Number of instances (the concept-name instance included)."""
        return len(self.instances)

    def first_match(self, text: str) -> Optional[re.Match[str]]:
        """Leftmost match of any instance in ``text``, or ``None``."""
        best: Optional[re.Match[str]] = None
        for instance in self.instances:
            found = instance.compile().search(text)
            if found and (
                best is None
                or found.start() < best.start()
                or (found.start() == best.start() and found.end() > best.end())
            ):
                best = found
        return best

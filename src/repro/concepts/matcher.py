"""Synonym-based concept instance identification (Section 2.3.1, way 1).

"It is simply checked whether for a concept instance a match (synonym)
can be found in the token."  The matcher reports *all* instance matches
with their positions so the instance rule can split tokens that contain
several instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.concepts.knowledge import KnowledgeBase


@dataclass(frozen=True)
class InstanceMatch:
    """One instance occurrence inside a token's text.

    ``start``/``end`` delimit the matched substring; ``specificity`` is
    the match length, used to rank overlapping matches (longer keyword
    wins: "bachelor of science" over "science").
    """

    concept_tag: str
    start: int
    end: int
    matched_text: str

    @property
    def specificity(self) -> int:
        return self.end - self.start


class SynonymMatcher:
    """Finds concept instances in token text by keyword/pattern matching."""

    def __init__(self, kb: KnowledgeBase) -> None:
        self.kb = kb
        # Pre-compile every instance once.
        self._compiled = [
            (concept.tag, instance.compile())
            for concept in kb
            for instance in concept.iter_instances()
        ]

    def find_all(self, text: str) -> list[InstanceMatch]:
        """Every instance match in ``text``, in document order.

        Overlapping matches are resolved greedily: matches are considered
        in order of (earlier start, longer match), and a match is kept
        only when it does not overlap an already-kept one.  This yields a
        deterministic, non-overlapping cover of the token.
        """
        raw: list[InstanceMatch] = []
        for tag, pattern in self._compiled:
            for found in pattern.finditer(text):
                if found.start() == found.end():
                    continue
                raw.append(
                    InstanceMatch(tag, found.start(), found.end(), found.group(0))
                )
        raw.sort(key=lambda m: (m.start, -m.specificity, m.concept_tag))
        kept: list[InstanceMatch] = []
        last_end = -1
        for match in raw:
            if match.start >= last_end:
                kept.append(match)
                last_end = match.end
        return kept

    def find_best(self, text: str) -> InstanceMatch | None:
        """The single best match for a token, or ``None``.

        "Best" is the longest match; ties break on earlier position.  The
        instance rule uses this when exactly one concept should label the
        whole token.
        """
        matches = self.find_all(text)
        if not matches:
            return None
        return max(matches, key=lambda m: (m.specificity, -m.start))

    def classify(self, text: str) -> str | None:
        """The concept tag for ``text``, or ``None`` when unidentified.

        This is the matcher's face to the instance rule; it is
        interchangeable with
        :meth:`repro.concepts.bayes.MultinomialNaiveBayes.classify`.
        """
        best = self.find_best(text)
        return best.concept_tag if best else None

"""Topic-specific domain knowledge (Section 2.2).

The only mandatory user input to the conversion process is a set of
*topic concepts*, each with *concept instances* (keywords and text
patterns); *concept constraints* are optional and speed up schema
discovery (Section 4.2).

* :mod:`repro.concepts.concept` -- :class:`Concept`/:class:`ConceptInstance`.
* :mod:`repro.concepts.constraints` -- parent/sibling/depth constraints.
* :mod:`repro.concepts.knowledge` -- the :class:`KnowledgeBase` container.
* :mod:`repro.concepts.resume_kb` -- the paper's resume domain: 24
  concepts, 233 instances, 11 title / 13 content names.
* :mod:`repro.concepts.matcher` -- synonym-based instance identification.
* :mod:`repro.concepts.fastmatch` -- the Aho-Corasick tagging fast path
  (automaton + memoized token decisions), differentially equivalent to
  the naive matcher.
* :mod:`repro.concepts.bayes` -- the multinomial naive-Bayes classifier
  alternative ([12] in the paper).
"""

from repro.concepts.bayes import MultinomialNaiveBayes
from repro.concepts.concept import Concept, ConceptInstance, ConceptRole
from repro.concepts.fastmatch import (
    AhoCorasickAutomaton,
    CachedBayes,
    FastSynonymMatcher,
    LRUCache,
)
from repro.concepts.discovery import (
    InstanceProposal,
    augment_knowledge_base,
    propose_instances,
)
from repro.concepts.constraints import (
    ConstraintSet,
    DepthConstraint,
    ParentConstraint,
    SiblingConstraint,
)
from repro.concepts.knowledge import KnowledgeBase
from repro.concepts.matcher import InstanceMatch, SynonymMatcher
from repro.concepts.resume_kb import build_resume_knowledge_base

__all__ = [
    "Concept",
    "ConceptInstance",
    "ConceptRole",
    "ConstraintSet",
    "ParentConstraint",
    "SiblingConstraint",
    "DepthConstraint",
    "KnowledgeBase",
    "SynonymMatcher",
    "FastSynonymMatcher",
    "AhoCorasickAutomaton",
    "CachedBayes",
    "LRUCache",
    "InstanceMatch",
    "MultinomialNaiveBayes",
    "build_resume_knowledge_base",
    "InstanceProposal",
    "propose_instances",
    "augment_knowledge_base",
]

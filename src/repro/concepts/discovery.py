"""Automatic discovery of concept instances (Section 5, future work).

"We are currently investigating more sophisticated heuristics and
automated discovery methods for concepts and concept instances from HTML
documents.  In particular, we are developing different methods to
automatically extract concept instances from a training set of HTML
documents and thus to further automate the process."

This module implements the natural contrastive method: given labeled
tokens (the same channel the Bayes classifier trains on), score each
word and bigram by how exclusively it appears under one concept, and
propose the high-purity, high-frequency ones as new keyword instances.
Proposals the knowledge base already covers are suppressed, so the
output is exactly the delta a user would otherwise add by hand.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Iterable

from repro.concepts.knowledge import KnowledgeBase
from repro.concepts.matcher import SynonymMatcher
from repro.concepts.textutil import normalized_words

# Words too generic to ever propose, whatever their statistics.
STOPWORDS = frozenset(
    """a an and are as at be by for from in into is of on or the to with
    upon was were will""".split()
)

DEFAULT_MIN_COUNT = 3
DEFAULT_MIN_PURITY = 0.8


@dataclass(frozen=True)
class InstanceProposal:
    """One proposed keyword for a concept."""

    concept_tag: str
    keyword: str
    count: int
    purity: float  # fraction of the keyword's occurrences under this concept

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"{self.concept_tag} <- {self.keyword!r} (n={self.count}, purity={self.purity:.2f})"


def _features(text: str) -> list[str]:
    """Words and adjacent bigrams of a token text."""
    tokens = [w for w in normalized_words(text) if w not in STOPWORDS]
    features = list(tokens)
    features.extend(
        f"{first} {second}" for first, second in zip(tokens, tokens[1:])
    )
    return features


def propose_instances(
    examples: Iterable[tuple[str, str]],
    *,
    kb: KnowledgeBase | None = None,
    min_count: int = DEFAULT_MIN_COUNT,
    min_purity: float = DEFAULT_MIN_PURITY,
    max_per_concept: int = 10,
) -> list[InstanceProposal]:
    """Mine keyword proposals from labeled ``(token text, concept tag)``.

    A feature (word or bigram) is proposed for the concept under which
    it occurs most, provided it occurs at least ``min_count`` times and
    at least ``min_purity`` of its occurrences are under that concept.
    When ``kb`` is given, features an existing instance already matches
    are filtered out (the proposal set is the *new* knowledge), and
    bigram proposals subsume their component words.
    """
    per_feature: dict[str, Counter[str]] = defaultdict(Counter)
    for text, label in examples:
        for feature in set(_features(text)):
            per_feature[feature][label] += 1

    matcher = SynonymMatcher(kb) if kb is not None else None
    raw: list[InstanceProposal] = []
    for feature, counts in per_feature.items():
        label, top = counts.most_common(1)[0]
        total = sum(counts.values())
        if top < min_count or top / total < min_purity:
            continue
        if len(feature) < 3 or feature.isdigit():
            continue
        if matcher is not None:
            existing = matcher.find_best(feature)
            if existing is not None and existing.specificity >= len(feature) - 1:
                continue  # the KB already knows this one
        raw.append(InstanceProposal(label, feature, top, top / total))

    # Bigrams subsume their component words for the same concept.
    bigram_words = {
        (p.concept_tag, word)
        for p in raw
        if " " in p.keyword
        for word in p.keyword.split()
    }
    filtered = [
        p
        for p in raw
        if " " in p.keyword or (p.concept_tag, p.keyword) not in bigram_words
    ]

    filtered.sort(key=lambda p: (p.concept_tag, -p.count, p.keyword))
    limited: list[InstanceProposal] = []
    taken: Counter[str] = Counter()
    for proposal in filtered:
        if taken[proposal.concept_tag] < max_per_concept:
            limited.append(proposal)
            taken[proposal.concept_tag] += 1
    return limited


def augment_knowledge_base(
    kb: KnowledgeBase, proposals: Iterable[InstanceProposal]
) -> int:
    """Add proposed keywords to their concepts; returns how many were
    added.  Proposals for unknown concept tags are skipped."""
    added = 0
    for proposal in proposals:
        concept = kb.concept_for_tag(proposal.concept_tag)
        if concept is None:
            continue
        concept.add_keyword(proposal.keyword)
        added += 1
    return added

"""The resume domain knowledge base used throughout the evaluation.

Section 4 of the paper: "There are 24 concept names and a total of 233
concept instances specified as domain knowledge" and Section 4.2: "Out of
the 24 concept names, 11 are title names and 13 are content names", with
title names restricted to depth 1, content names to depth > 1, no concept
repeated along a label path, and no concept deeper than 4.

This module reconstructs a knowledge base with exactly those counts.  The
individual keywords are of course our own (the paper does not list them);
they were chosen to cover the vocabulary of the synthetic resume corpus
plus common real-world variants, the same way a user of the system would
assemble them "after inspecting a few of the retrieved HTML documents".
"""

from __future__ import annotations

from repro.concepts.concept import Concept, ConceptInstance, ConceptRole
from repro.concepts.constraints import ConstraintSet
from repro.concepts.knowledge import KnowledgeBase

# Regex instances for measurement-type concepts.
_DATE_PATTERNS = [
    # "June 1996", "Jun. 1996"
    r"\b(Jan(uary)?|Feb(ruary)?|Mar(ch)?|Apr(il)?|May|Jun(e)?|Jul(y)?|"
    r"Aug(ust)?|Sep(t(ember)?)?|Oct(ober)?|Nov(ember)?|Dec(ember)?)\.?,?\s+\d{4}\b",
    # "1996 - 1998", "1996-present"
    r"\b(19|20)\d{2}\s*(-|–|to)\s*((19|20)\d{2}|present|now|current)\b",
    # "06/1996", "6/96"
    r"\b\d{1,2}/\d{2,4}\b",
    # bare year
    r"\b(19|20)\d{2}\b",
    # "Summer 1997"
    r"\b(Spring|Summer|Fall|Autumn|Winter)\s+\d{4}\b",
]

_GPA_PATTERNS = [
    r"\bGPA\b[:\s]*\d\.\d+(\s*/\s*\d\.\d+)?",
    r"\b\d\.\d{1,2}\s*/\s*4\.0\b",
    r"\bgrade\s+point\s+average\b",
]

_PHONE_PATTERNS = [
    r"\(\d{3}\)\s*\d{3}[-.\s]\d{4}",
    r"\b\d{3}[-.]\d{3}[-.]\d{4}\b",
    r"\+\d{1,2}\s*\(?\d{3}\)?\s*\d{3}[-.\s]\d{4}",
]

_EMAIL_PATTERNS = [
    r"\b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b",
]

_ADDRESS_PATTERNS = [
    r"\b\d+\s+[A-Z][A-Za-z]*\s+(St(reet)?|Ave(nue)?|Blvd|Boulevard|Road|Rd|Dr(ive)?|Lane|Ln|Way|Court|Ct)\b",
    r"\bP\.?\s?O\.?\s*Box\s+\d+\b",
]

_URL_PATTERNS = [
    r"\bhttps?://[^\s<>\"']+",
    r"\bwww\.[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b",
]


def _concept(
    name: str,
    role: ConceptRole,
    keywords: list[str],
    patterns: list[str] | None = None,
    description: str = "",
) -> Concept:
    instances = [ConceptInstance(k) for k in keywords]
    for pattern in patterns or ():
        instances.append(ConceptInstance(pattern, is_regex=True))
    return Concept(name, instances, role=role, description=description)


def build_resume_knowledge_base() -> KnowledgeBase:
    """Build the 24-concept / 233-instance resume knowledge base.

    Title concepts (11) carry ``depth = 1`` constraints; content concepts
    (13) carry ``depth > 1``; globally no concept repeats along a path and
    ``max_depth`` is 4 -- exactly the constraint classes of Section 4.2.
    """
    title = ConceptRole.TITLE
    content = ConceptRole.CONTENT

    concepts = [
        # ----- 11 title concepts (resume section headings) -----
        _concept(
            "resume",
            title,
            ["curriculum vitae", "vitae", "cv", "résumé"],
            description="Document root / title of the whole resume.",
        ),
        _concept(
            "contact",
            title,
            ["contact information", "contact info", "personal information",
             "personal details", "personal data"],
            description="Contact information section.",
        ),
        _concept(
            "objective",
            title,
            ["career objective", "professional objective", "employment objective",
             "career goal", "goal", "summary", "professional summary", "profile"],
            description="Career objective / summary section.",
        ),
        _concept(
            "education",
            title,
            ["educational background", "academic background", "academic history",
             "education and training", "qualifications", "academic qualifications"],
            description="Education section.",
        ),
        _concept(
            "experience",
            title,
            ["work experience", "professional experience", "employment",
             "employment history", "work history", "professional background",
             "relevant experience", "industry experience", "internships"],
            description="Work experience section.",
        ),
        _concept(
            "skills",
            title,
            ["technical skills", "computer skills", "skill set", "skills summary",
             "technical expertise", "areas of expertise", "competencies",
             "technical summary", "strengths"],
            description="Skills section.",
        ),
        _concept(
            "courses",
            title,
            ["coursework", "relevant coursework", "relevant courses",
             "courses taken", "selected courses", "course work"],
            description="Courses / coursework section.",
        ),
        _concept(
            "awards",
            title,
            ["honors", "honors and awards", "awards and honors", "achievements",
             "accomplishments", "scholarships", "distinctions"],
            description="Awards and honors section.",
        ),
        _concept(
            "activities",
            title,
            ["extracurricular activities", "interests", "hobbies",
             "professional activities", "memberships", "affiliations",
             "volunteer work", "community service"],
            description="Activities / interests section.",
        ),
        _concept(
            "reference",
            title,
            ["references", "references available upon request",
             "referees", "recommendations"],
            description="References section.",
        ),
        _concept(
            "publications",
            title,
            ["papers", "selected publications", "journal articles",
             "conference papers", "presentations", "patents"],
            description="Publications section.",
        ),
        # ----- 13 content concepts -----
        _concept(
            "institution",
            content,
            ["university", "college", "institute", "school", "academy",
             "polytechnic", "universidad", "université"],
            description="Degree-granting institution.",
        ),
        _concept(
            "degree",
            content,
            ["b.s.", "bs", "b.a.", "ba", "m.s.", "ms", "m.a.", "ma",
             "ph.d.", "phd", "mba", "bachelor", "bachelors",
             "bachelor of science", "bachelor of arts", "master", "masters",
             "master of science", "master of arts", "doctorate", "minor in",
             "major in", "certificate"],
            description="Academic degree.",
        ),
        _concept(
            "date",
            content,
            ["present", "current"],
            _DATE_PATTERNS,
            description="Dates and date ranges (measurement-type concept).",
        ),
        _concept(
            "gpa",
            content,
            [],
            _GPA_PATTERNS,
            description="Grade point average.",
        ),
        _concept(
            "company",
            content,
            ["inc.", "inc", "corp.", "corporation", "llc", "ltd.",
             "co.", "company", "laboratories", "labs", "systems",
             "microsystems", "communications", "technologies"],
            description="Employer organization.",
        ),
        _concept(
            "job-title",
            content,
            ["engineer", "software engineer", "senior engineer", "developer",
             "software developer", "programmer", "analyst", "systems analyst",
             "consultant", "manager", "project manager", "director", "intern",
             "research assistant", "teaching assistant", "administrator",
             "architect", "member of technical staff"],
            description="Position / job title.",
        ),
        _concept(
            "location",
            content,
            ["california", "new york", "texas", "washington", "boston",
             "san jose", "san francisco", "sunnyvale", "davis", "seattle",
             "austin", "palo alto"],
            description="City / state / country.",
        ),
        _concept(
            "phone",
            content,
            ["telephone", "tel", "fax", "mobile", "cell"],
            _PHONE_PATTERNS,
            description="Telephone numbers.",
        ),
        _concept(
            "email",
            content,
            ["e-mail", "electronic mail"],
            _EMAIL_PATTERNS,
            description="Email addresses.",
        ),
        _concept(
            "address",
            content,
            ["street", "apt", "suite", "p.o. box"],
            _ADDRESS_PATTERNS,
            description="Postal addresses.",
        ),
        _concept(
            "programming-language",
            content,
            ["c++", "c#", "java", "python", "perl", "fortran", "cobol",
             "pascal", "lisp", "scheme", "prolog", "javascript",
             "visual basic", "assembly", "sql", "html", "xml",
             "matlab", "shell"],
            description="Programming languages / markup.",
        ),
        _concept(
            "operating-system",
            content,
            ["unix", "linux", "solaris", "windows", "windows nt", "macos",
             "mac os", "aix", "hp-ux", "freebsd", "ms-dos"],
            description="Operating systems.",
        ),
        _concept(
            "url",
            content,
            ["homepage", "home page", "website", "web site"],
            _URL_PATTERNS,
            description="Web addresses.",
        ),
    ]

    constraints = ConstraintSet(no_repeat_on_path=True, max_depth=4)
    for concept in concepts:
        if concept.role is ConceptRole.TITLE:
            constraints.add_depth(concept.tag, "=", 1)
        else:
            constraints.add_depth(concept.tag, ">", 1)

    kb = KnowledgeBase("resume", concepts, constraints)
    return kb

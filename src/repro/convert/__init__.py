"""Document conversion: HTML trees to concept-tagged XML (Section 2).

The four restructuring rules, applied in order by
:class:`repro.convert.pipeline.DocumentConverter`:

1. :mod:`repro.convert.tokenize_rule` -- text nodes to ``<TOKEN>`` nodes
   at punctuation delimiters (text rule 1).
2. :mod:`repro.convert.instance_rule` -- tokens to concept elements, with
   unidentified text pushed to the parent's ``val`` (text rule 2).
3. :mod:`repro.convert.grouping_rule` -- siblings between repeated group
   tags sink under ``GROUP`` nodes (structure rule 1).
4. :mod:`repro.convert.consolidation_rule` -- bottom-up elimination of all
   remaining HTML/temporary markup (structure rule 2).
"""

from repro.convert.config import ConversionConfig
from repro.convert.consolidation_rule import apply_consolidation_rule
from repro.convert.grouping_rule import apply_grouping_rule
from repro.convert.instance_rule import apply_instance_rule
from repro.convert.linked import LinkedConversionResult, LinkedDocumentConverter
from repro.convert.pipeline import ConversionResult, DocumentConverter
from repro.convert.tokenize_rule import TOKEN_TAG, apply_tokenization_rule

__all__ = [
    "ConversionConfig",
    "DocumentConverter",
    "ConversionResult",
    "LinkedDocumentConverter",
    "LinkedConversionResult",
    "apply_tokenization_rule",
    "apply_instance_rule",
    "apply_grouping_rule",
    "apply_consolidation_rule",
    "TOKEN_TAG",
]

"""The consolidation rule (Section 2.3.2, structure rule 2).

The final, bottom-up rule.  It eliminates every remaining non-concept
node (residual HTML markup and temporary ``GROUP`` nodes), exploiting the
observation that "often the first object in such a group of semantically
related objects describes the concept of this group":

* a childless non-concept node is deleted;
* a non-concept node whose tag is a *list tag*, or whose children all
  carry the same element name, is replaced by its children (the sibling
  relationship is preserved by "pushing up" the children);
* otherwise the node is replaced by its first concept child, and the
  remaining children become that child's children (Figure 1).

Accumulated ``val`` text on an eliminated node is never dropped: it moves
to the node's replacement (first concept child) or to its parent.
"""

from __future__ import annotations

from repro.concepts.knowledge import KnowledgeBase
from repro.convert.config import ConversionConfig
from repro.convert.grouping_rule import GROUP_TAG
from repro.dom.node import Element, Node
from repro.dom.treeops import iter_postorder


def is_concept_node(node: Node, concept_tags: frozenset[str] | set[str]) -> bool:
    """True when ``node`` is an element already related to a concept."""
    return isinstance(node, Element) and node.tag in concept_tags


def apply_consolidation_rule(
    root: Element,
    kb: KnowledgeBase,
    config: ConversionConfig | None = None,
) -> int:
    """Consolidate the tree under ``root`` (the root itself is kept).

    Returns the number of nodes eliminated.  After this rule, every
    element strictly below ``root`` carries a concept name.
    """
    config = config or ConversionConfig()
    concept_tags = {concept.tag for concept in kb}
    eliminated = 0
    for node in list(iter_postorder(root)):
        if node is root or not isinstance(node, Element) or node.parent is None:
            continue
        if node.tag in concept_tags:
            continue
        _eliminate(node, concept_tags, config)
        eliminated += 1
    return eliminated


def _children_push_up(node: Element, config: ConversionConfig) -> bool:
    """Whether ``node``'s children stay siblings when ``node`` goes away."""
    if node.tag.lower() in config.list_tags:
        return True
    element_children = node.element_children()
    if len(element_children) >= 2 and len(element_children) == len(node.children):
        first_tag = element_children[0].tag
        return all(child.tag == first_tag for child in element_children)
    return False


def _eliminate(
    node: Element,
    concept_tags: set[str],
    config: ConversionConfig,
) -> None:
    parent = node.parent
    assert parent is not None

    if not node.children:
        # Childless markup carries no structure; its text (if any) must
        # survive on the parent.
        parent.append_val(node.get_val())
        node.detach()
        return

    children = list(node.children)
    if _children_push_up(node, config):
        parent.append_val(node.get_val())
        node.replace_with(*children)
        return

    first_concept = next(
        (child for child in children if is_concept_node(child, concept_tags)),
        None,
    )
    if first_concept is None:
        # No concept child to take over: preserve the siblings.
        parent.append_val(node.get_val())
        node.replace_with(*children)
        return

    # The first concept child replaces the node; its former siblings
    # become its children (Figure 1).
    assert isinstance(first_concept, Element)
    first_concept.append_val(node.get_val())
    rest = [child for child in children if child is not first_concept]
    node.replace_with(first_concept)
    for sibling in rest:
        first_concept.append_child(sibling)


def residual_markup_tags(root: Element, kb: KnowledgeBase) -> set[str]:
    """Tags below ``root`` that are neither concepts nor ``GROUP``.

    Diagnostic helper: after consolidation this must be empty for every
    node except the root.
    """
    concept_tags = {concept.tag for concept in kb}
    residual: set[str] = set()
    for node in iter_postorder(root):
        if (
            isinstance(node, Element)
            and node is not root
            and node.tag not in concept_tags
            and node.tag != GROUP_TAG
        ):
            residual.add(node.tag)
    return residual

"""The tokenization rule (Section 2.3.1, text rule 1).

"A tokenization rule takes an HTML text node and replaces it by n >= 1
token nodes of the pattern ``<TOKEN>text</TOKEN>``."  Topic sentences are
split at punctuation delimiters (``;``, ``,``, ``:`` by default); the
resulting token nodes are later consumed by the concept instance rule.
"""

from __future__ import annotations

from repro.concepts.textutil import squeeze_whitespace
from repro.convert.config import ConversionConfig
from repro.dom.node import Element, Text
from repro.dom.treeops import iter_preorder

TOKEN_TAG = "TOKEN"


def split_topic_sentence(text: str, delimiters: tuple[str, ...]) -> list[str]:
    """Split a topic sentence into token texts at delimiter characters.

    Delimiters inside numbers are protected: the comma in ``10,000`` and
    the colon in ``10:30`` do not separate information components, and
    naive splitting there would shred dates and GPAs.  Empty fragments are
    dropped; whitespace is squeezed.
    """
    delimiter_set = set(delimiters)
    pieces: list[str] = []
    current: list[str] = []
    for index, char in enumerate(text):
        if char in delimiter_set:
            prev_char = text[index - 1] if index > 0 else ""
            next_char = text[index + 1] if index + 1 < len(text) else ""
            if prev_char.isdigit() and next_char.isdigit():
                current.append(char)
                continue
            if char == ":" and text[index + 1 : index + 3] == "//":
                # URL scheme separator ("http://..."), not a delimiter.
                current.append(char)
                continue
            pieces.append("".join(current))
            current = []
        else:
            current.append(char)
    pieces.append("".join(current))
    tokens = [squeeze_whitespace(piece) for piece in pieces]
    return [token for token in tokens if token]


def apply_tokenization_rule(
    root: Element, config: ConversionConfig | None = None
) -> int:
    """Replace every text node under ``root`` by ``<TOKEN>`` elements.

    Operates top-down over the whole tree; returns the number of token
    nodes created.  A text node yielding no tokens (pure punctuation or
    whitespace) is simply removed.
    """
    config = config or ConversionConfig()
    created = 0
    for node in list(iter_preorder(root)):
        if not isinstance(node, Text) or node.parent is None:
            continue
        tokens = split_topic_sentence(node.text, config.delimiters)
        replacements = []
        for token_text in tokens:
            token = Element(TOKEN_TAG)
            token.append_child(Text(token_text))
            replacements.append(token)
        node.replace_with(*replacements)
        created += len(replacements)
    return created


def token_text(token: Element) -> str:
    """The text carried by a ``<TOKEN>`` element."""
    return token.inner_text()

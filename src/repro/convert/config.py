"""Configuration of the conversion rules.

Defaults reproduce the annotation of tags from Section 4:

* punctuation used in tokenization: ``;``, ``,``, ``:``
* group tags: headings, ``div``, ``p``, ``tr``, ``dt``, ``dd``, ``li``,
  ``title``, ``u``, ``strong``, ``b``, ``em``, ``i`` (weighted)
* list tags: ``body``, ``table``, ``dl``, ``ul``, ``ol``, ``dir``, ``menu``
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.htmlparse.taginfo import DEFAULT_GROUP_TAG_WEIGHTS, DEFAULT_LIST_TAGS

DEFAULT_DELIMITERS = (";", ",", ":")


@dataclass
class ConversionConfig:
    """Knobs of the document conversion process.

    ``tagger`` selects the instance-identification channel: ``"synonym"``
    (keyword/pattern matching), ``"bayes"`` (a trained classifier must be
    supplied to the converter), or ``"hybrid"`` (synonyms first, Bayes for
    tokens the synonym matcher leaves unidentified).
    """

    delimiters: tuple[str, ...] = DEFAULT_DELIMITERS
    # Route instance identification through the Aho-Corasick fast path
    # (repro.concepts.fastmatch): one automaton pass per token plus
    # memoized token decisions, differentially guaranteed to emit the
    # same matches as the naive per-pattern matcher.
    fast_tagger: bool = True
    # Route HTML parsing through the bulk-scanning tokenizer
    # (repro.htmlparse.tokenizer fast path): one master-regex match per
    # markup construct instead of per-character stepping, differentially
    # guaranteed to emit the same token stream (spans included) as the
    # legacy scanner.
    fast_parser: bool = True
    # Route HTML cleansing through the single-snapshot tidy
    # (repro.htmlparse.tidy fast path): one materialized postorder feeds
    # all six fix-up passes instead of six full traversals,
    # differentially guaranteed to produce the same tree as the legacy
    # pass-per-traversal cleanser.
    fast_tidy: bool = True
    # Entries in each token-decision LRU (synonym match lists and Bayes
    # predictions are cached separately); 0 disables memoization while
    # keeping the automaton.
    tagger_cache_size: int = 4096
    group_tag_weights: dict[str, int] = field(
        default_factory=lambda: dict(DEFAULT_GROUP_TAG_WEIGHTS)
    )
    list_tags: frozenset[str] = DEFAULT_LIST_TAGS
    apply_tidy: bool = True
    tagger: str = "synonym"
    # Minimum number of equal-tag sibling leaders required before the
    # grouping rule fires for that tag (2 = repeated markup only).
    min_group_leaders: int = 2
    # Minimum characters for a token to be worth classifying; shorter
    # fragments (stray bullets, lone punctuation survivors) pass straight
    # to the parent's ``val``.
    min_token_length: int = 1
    # Split tokens in which the synonym matcher finds several instances
    # (Section 2.3.1, case 1, second paragraph).
    split_multi_instance_tokens: bool = True
    # Consult sibling constraints when decomposing multi-instance tokens.
    use_sibling_constraints: bool = True
    # Connector words: consecutive instance matches separated only by
    # these words belong to one named entity ("University OF California
    # AT Davis") and are merged instead of split.
    merge_connectors: frozenset[str] = frozenset(
        {"of", "at", "the", "in", "for", "and", "&", "de", "la", "del", "von"}
    )
    # Chaos-testing hooks (fault-injection suite + chaos-smoke CI job).
    # When a source document contains ``chaos_fail_marker`` the pipeline
    # raises InjectedFaultError (stage "inject"); when it contains
    # ``chaos_kill_marker`` an engine *worker process* hard-exits before
    # converting it (os._exit -- exercises BrokenProcessPool recovery;
    # ignored on the inline/serial paths, which have no worker to kill).
    chaos_fail_marker: str | None = None
    chaos_kill_marker: str | None = None

    def __post_init__(self) -> None:
        if self.tagger not in ("synonym", "bayes", "hybrid"):
            raise ValueError(f"unknown tagger: {self.tagger!r}")
        if not self.delimiters:
            raise ValueError("at least one delimiter is required")
        if self.tagger_cache_size < 0:
            raise ValueError("tagger_cache_size must be >= 0")
        for delimiter in self.delimiters:
            if len(delimiter) != 1:
                raise ValueError(f"delimiters must be single characters: {delimiter!r}")

    def group_tags(self) -> frozenset[str]:
        """The set of tags participating in the grouping rule."""
        return frozenset(self.group_tag_weights)

"""The end-to-end document conversion pipeline (Section 2).

:class:`DocumentConverter` wires the four restructuring rules together:
parse (+ optional cleansing), tokenization, instance identification,
grouping, consolidation, and finally rooting of the result under the
topic's root concept element.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.concepts.bayes import MultinomialNaiveBayes
from repro.concepts.fastmatch import CachedBayes, FastSynonymMatcher
from repro.concepts.knowledge import KnowledgeBase
from repro.concepts.matcher import SynonymMatcher
from repro.convert.config import ConversionConfig
from repro.convert.consolidation_rule import apply_consolidation_rule
from repro.convert.errors import (
    ErrorPolicy,
    InjectedFaultError,
    PipelineStageError,
    failure_from_exception,
    write_quarantine,
)
from repro.convert.grouping_rule import apply_grouping_rule
from repro.convert.instance_rule import InstanceRuleStats, apply_instance_rule
from repro.convert.tokenize_rule import apply_tokenization_rule
from repro.dom.node import Element
from repro.dom.serialize import to_xml_document
from repro.dom.treeops import clone, count_elements, tree_size
from repro.htmlparse.parser import body_of, parse_html
from repro.htmlparse.tidy import tidy
from repro.obs.provenance import ProvenanceLog
from repro.obs.tracer import NullTracer, Tracer, resolve_tracer


@dataclass
class ConversionResult:
    """Outcome of converting one HTML document.

    ``root`` is the XML document root (a concept element); the counters
    feed the evaluation harness (e.g. concept nodes per document for the
    Figure 4/5 experiments).
    """

    root: Element
    instance_stats: InstanceRuleStats
    tokens_created: int = 0
    groups_created: int = 0
    nodes_eliminated: int = 0
    input_nodes: int = 0
    # Wall seconds per pipeline stage ("parse", "tidy", "tokenize",
    # "instance", "group", "consolidate", "root") -- feeds EngineStats.
    rule_seconds: dict[str, float] = field(default_factory=dict)
    # End-to-end wall seconds for the whole conversion; unlike
    # ``sum(rule_seconds.values())`` it includes inter-stage overhead,
    # so the engine's per-document latency digest uses it directly.
    total_seconds: float = 0.0

    @property
    def concept_node_count(self) -> int:
        """Number of concept elements in the output (root included)."""
        return count_elements(self.root)

    def to_xml(self) -> str:
        """The result as a serialized XML document."""
        return to_xml_document(self.root)


@dataclass
class DocumentConverter:
    """Converts topic-specific HTML documents into XML documents.

    Construct once per topic (the knowledge base and compiled synonym
    matcher are reused across documents) and call :meth:`convert` per
    document.
    """

    kb: KnowledgeBase
    config: ConversionConfig = field(default_factory=ConversionConfig)
    bayes: MultinomialNaiveBayes | None = None

    def __post_init__(self) -> None:
        # The fast tagger is built once per converter -- i.e. once per
        # engine worker process -- so the automaton construction and the
        # token-decision caches amortize over every document converted.
        self._matcher: SynonymMatcher | FastSynonymMatcher
        self._tagger_bayes: MultinomialNaiveBayes | CachedBayes | None
        if self.config.fast_tagger:
            self._matcher = FastSynonymMatcher(
                self.kb, cache_size=self.config.tagger_cache_size
            )
            self._tagger_bayes = (
                CachedBayes(self.bayes, cache_size=self.config.tagger_cache_size)
                if self.bayes is not None
                else None
            )
        else:
            self._matcher = SynonymMatcher(self.kb)
            self._tagger_bayes = self.bayes
        self._root_tag = self._pick_root_tag()

    def tagger_cache_counters(self) -> dict[str, dict[str, int]]:
        """Hit/miss/eviction counters per token-decision cache.

        Empty when the fast tagger (or its memoization) is off.  The
        engine snapshots this around each chunk and ships the delta home
        in :class:`~repro.runtime.stats.ChunkStats`.
        """
        counters: dict[str, dict[str, int]] = {}
        if (
            isinstance(self._matcher, FastSynonymMatcher)
            and self._matcher.cache is not None
        ):
            counters["synonym"] = self._matcher.cache.counters()
        if (
            isinstance(self._tagger_bayes, CachedBayes)
            and self._tagger_bayes.cache is not None
        ):
            counters["bayes"] = self._tagger_bayes.cache.counters()
        return counters

    def _pick_root_tag(self) -> str:
        """The element name for document roots: the topic's own concept
        when one exists, otherwise the upper-cased topic name."""
        if self.kb.topic in self.kb:
            return self.kb.get(self.kb.topic).tag
        return self.kb.topic.upper()

    # -- public API ----------------------------------------------------------

    def convert(
        self,
        html: str | Element,
        *,
        copy: bool = True,
        doc_id: str | None = None,
        tracer: Tracer | NullTracer | None = None,
        provenance: ProvenanceLog | None = None,
    ) -> ConversionResult:
        """Convert one HTML document (source text or pre-parsed tree).

        Conversion restructures its working tree in place, so a
        pre-parsed ``Element`` input is defensively cloned by default --
        converting the same tree twice yields identical results.  Pass
        ``copy=False`` to consume a throwaway tree without the cloning
        cost (the historical behavior); the input is then mutated and
        must not be reused.  String inputs are parsed fresh and never
        need the guard.

        ``doc_id``/``tracer``/``provenance`` are the observability hooks:
        each pipeline stage gets a span, and with a provenance log each
        rule application plus every concept-instance decision is recorded
        as an event.  All three default to off and leave the hot path
        untouched.
        """
        tracer = resolve_tracer(tracer)
        timings: dict[str, float] = {}
        convert_started = time.perf_counter()
        # Any stage failure is re-raised as PipelineStageError naming the
        # stage underway -- what a non-fail-fast corpus run records as
        # the failure's pipeline stage.
        stage = "inject"
        try:
            marker = self.config.chaos_fail_marker
            if marker and isinstance(html, str) and marker in html:
                raise InjectedFaultError(
                    f"chaos fault marker {marker!r} present in source"
                )
            with tracer.span("convert.document", doc=doc_id) as doc_span:
                stage = "parse"
                started = time.perf_counter()
                with tracer.span("convert.parse"):
                    if isinstance(html, str):
                        document = parse_html(html, fast=self.config.fast_parser)
                    else:
                        document = clone(html) if copy else html
                timings["parse"] = time.perf_counter() - started
                input_nodes = tree_size(document)
                if self.config.apply_tidy:
                    stage = "tidy"
                    started = time.perf_counter()
                    with tracer.span("convert.tidy"):
                        tidy(document, fast=self.config.fast_tidy)
                    timings["tidy"] = time.perf_counter() - started
                work_root = self._content_root(document)

                stage = "tokenize"
                started = time.perf_counter()
                with tracer.span("convert.tokenize") as span:
                    tokens = apply_tokenization_rule(work_root, self.config)
                    span.set(tokens=tokens)
                timings["tokenize"] = time.perf_counter() - started
                stage = "instance"
                started = time.perf_counter()
                with tracer.span("convert.instance") as span:
                    stats = apply_instance_rule(
                        work_root,
                        self.kb,
                        self.config,
                        matcher=self._matcher,
                        bayes=self._tagger_bayes,
                        doc_id=doc_id,
                        provenance=provenance,
                    )
                    span.set(
                        identified=stats.identified,
                        unidentified=stats.unidentified,
                    )
                timings["instance"] = time.perf_counter() - started
                stage = "group"
                started = time.perf_counter()
                with tracer.span("convert.group") as span:
                    groups = apply_grouping_rule(work_root, self.config)
                    span.set(groups=groups)
                timings["group"] = time.perf_counter() - started
                stage = "consolidate"
                started = time.perf_counter()
                with tracer.span("convert.consolidate") as span:
                    eliminated = apply_consolidation_rule(
                        work_root, self.kb, self.config
                    )
                    span.set(eliminated=eliminated)
                timings["consolidate"] = time.perf_counter() - started
                stage = "root"
                started = time.perf_counter()
                root = self._rootify(work_root)
                timings["root"] = time.perf_counter() - started
                doc_span.set(input_nodes=input_nodes)
        except PipelineStageError:
            raise
        except Exception as exc:
            raise PipelineStageError(stage, doc_id) from exc

        if provenance is not None:
            provenance.rule_event(
                doc_id, "tokenize", timings["tokenize"], tokens_created=tokens
            )
            provenance.rule_event(
                doc_id,
                "instance",
                timings["instance"],
                identified=stats.identified,
                unidentified=stats.unidentified,
                split_tokens=stats.split_tokens,
                elements_created=stats.elements_created,
            )
            provenance.rule_event(
                doc_id, "group", timings["group"], groups_created=groups
            )
            provenance.rule_event(
                doc_id,
                "consolidate",
                timings["consolidate"],
                nodes_eliminated=eliminated,
            )
        return ConversionResult(
            root,
            stats,
            tokens_created=tokens,
            groups_created=groups,
            nodes_eliminated=eliminated,
            input_nodes=input_nodes,
            rule_seconds=timings,
            total_seconds=time.perf_counter() - convert_started,
        )

    def convert_many(
        self,
        documents: list[str],
        *,
        error_policy: "ErrorPolicy | str | None" = None,
        failures: "list | None" = None,
    ) -> list[ConversionResult]:
        """Convert a corpus of HTML source strings, serially.

        This is the reference implementation the parallel
        :class:`repro.runtime.CorpusEngine` is differentially tested
        against; for large corpora prefer the engine.

        ``error_policy`` (an :class:`~repro.convert.errors.ErrorPolicy`
        or a mode string) governs documents that fail to convert: the
        default fail-fast re-raises (the historical behavior); ``skip``
        and ``quarantine`` drop the document from the results, append a
        :class:`~repro.convert.errors.DocumentFailure` to ``failures``
        (when a list is supplied), and -- under quarantine -- save the
        offending source plus an error JSON to the policy's directory.
        Surviving documents convert exactly as they would alone, so the
        result equals ``convert_many`` of the corpus minus the poison
        documents.
        """
        policy = ErrorPolicy.coerce(error_policy)
        results: list[ConversionResult] = []
        for position, source in enumerate(documents):
            try:
                results.append(self.convert(source))
            except Exception as exc:
                if policy.is_fail_fast:
                    raise
                failure = failure_from_exception(
                    f"doc{position:04d}",
                    position,
                    exc,
                    source=source if policy.captures_source else None,
                )
                if policy.mode == "quarantine":
                    write_quarantine(policy.quarantine_dir, failure)
                if failures is not None:
                    failures.append(failure)
        return results

    # -- internals -----------------------------------------------------------

    def _content_root(self, document: Element) -> Element:
        """The subtree the rules operate on: the body, with the document
        ``<title>`` (a group tag in the paper's annotation) moved to the
        front so its text participates in concept identification."""
        body = body_of(document)
        for child in document.element_children():
            if child.tag == "head":
                for head_child in child.element_children():
                    if head_child.tag == "title":
                        head_child.detach()
                        body.insert_child(0, head_child)
                        break
                break
        return body

    def _rootify(self, work_root: Element) -> Element:
        """Wrap the consolidated content in the topic root element.

        When consolidation already produced a single root-concept child,
        that child *is* the document; otherwise a fresh root element
        adopts the remaining top-level nodes.
        """
        element_children = work_root.element_children()
        if (
            len(element_children) == 1
            and len(work_root.children) == 1
            and element_children[0].tag == self._root_tag
        ):
            root = element_children[0]
            root.detach()
            root.append_val(work_root.get_val())
            return root
        root = Element(self._root_tag)
        root.set_val(work_root.get_val())
        for child in list(work_root.children):
            if isinstance(child, Element) and child.tag == self._root_tag:
                # Top-level RESUME nodes (document/page titles) merge into
                # the root rather than nesting a resume inside a resume.
                root.append_val(child.get_val())
                child.detach()
                for grandchild in list(child.children):
                    root.append_child(grandchild)
            else:
                root.append_child(child)
        return root

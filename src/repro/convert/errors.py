"""Structured conversion failures and the policies that govern them.

Real-web corpora are heterogeneously authored; at scale, documents that
crash some pipeline stage are a *counted outcome*, not an exceptional
one.  This module defines the vocabulary the fault-tolerance layer is
built from:

* :class:`PipelineStageError` -- the exception
  :meth:`repro.convert.pipeline.DocumentConverter.convert` wraps any
  stage failure in, so callers learn *which* of the four rules (or
  parse/tidy) rejected the document without the pipeline growing
  per-stage error handling.
* :class:`DocumentFailure` -- the picklable record a failure becomes
  under a non-fail-fast policy: document id, corpus position, pipeline
  stage, exception type, message, and a truncated traceback.  Workers
  ship these home instead of raising.
* :class:`ErrorPolicy` -- what to do when a document fails:
  ``fail_fast`` (raise, the historical behavior and the default),
  ``skip`` (record and continue), or ``quarantine`` (record, continue,
  and save the offending source plus an error JSON to a directory).

These live at the conversion layer (not :mod:`repro.runtime`) because
the serial :meth:`convert_many` path honors the same policies; the
engine-side machinery (worker-crash recovery, chunk bisection) builds
on top in :mod:`repro.runtime.faults`.
"""

from __future__ import annotations

import json
import traceback as traceback_module
from dataclasses import dataclass
from pathlib import Path

# Keep shipped tracebacks bounded: chunk payloads cross the process
# boundary and quarantine JSONs should stay human-sized.
TRACEBACK_LIMIT = 2000

ERROR_MODES = ("fail_fast", "skip", "quarantine")


class PipelineStageError(Exception):
    """A conversion-pipeline stage raised while converting one document.

    ``stage`` is the pipeline stage name ("parse", "tidy", "tokenize",
    "instance", "group", "consolidate", "root", or "inject" for chaos
    faults); the original exception is chained as ``__cause__``.
    """

    def __init__(self, stage: str, doc_id: str | None = None) -> None:
        self.stage = stage
        self.doc_id = doc_id
        where = f" ({doc_id})" if doc_id else ""
        super().__init__(f"conversion failed in stage {stage!r}{where}")

    def __reduce__(self):
        # args holds the formatted message, not (stage, doc_id); without
        # this, crossing a process boundary (fail-fast in a pool worker)
        # re-inits with the message as the stage and nests the text.
        return (type(self), (self.stage, self.doc_id))


class InjectedFaultError(RuntimeError):
    """Raised by the pipeline's chaos hook (``chaos_fail_marker``)."""


@dataclass
class DocumentFailure:
    """One document that could not be converted.

    ``index`` is the document's corpus-wide position (the position its
    XML would have occupied in the output); ``source`` carries the
    offending HTML only under a quarantine policy, so skip-mode payloads
    stay small.
    """

    doc_id: str
    index: int
    stage: str
    error_type: str
    message: str
    traceback: str = ""
    source: str | None = None

    def to_json(self) -> dict:
        """The JSON-serializable record (without the source text)."""
        return {
            "doc_id": self.doc_id,
            "index": self.index,
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }


@dataclass(frozen=True)
class ErrorPolicy:
    """What a corpus run does with a document that fails to convert."""

    mode: str = "fail_fast"
    quarantine_dir: str | None = None

    def __post_init__(self) -> None:
        if self.mode not in ERROR_MODES:
            raise ValueError(
                f"unknown error policy {self.mode!r}; expected one of {ERROR_MODES}"
            )
        if self.mode == "quarantine" and not self.quarantine_dir:
            raise ValueError("quarantine policy needs a quarantine_dir")

    # -- constructors --------------------------------------------------------

    @classmethod
    def fail_fast(cls) -> "ErrorPolicy":
        return cls("fail_fast")

    @classmethod
    def skip(cls) -> "ErrorPolicy":
        return cls("skip")

    @classmethod
    def quarantine(cls, directory: str | Path) -> "ErrorPolicy":
        return cls("quarantine", str(directory))

    @classmethod
    def coerce(
        cls,
        value: "ErrorPolicy | str | None",
        *,
        quarantine_dir: str | Path | None = None,
    ) -> "ErrorPolicy":
        """Normalize a policy spelled as an instance, a mode string
        (``-``/``_`` both accepted), or ``None`` (= fail fast)."""
        if value is None:
            return cls.fail_fast()
        if isinstance(value, ErrorPolicy):
            return value
        mode = value.replace("-", "_")
        if mode == "quarantine":
            if quarantine_dir is None:
                raise ValueError("quarantine policy needs a quarantine_dir")
            return cls.quarantine(quarantine_dir)
        return cls(mode)

    # -- predicates ----------------------------------------------------------

    @property
    def is_fail_fast(self) -> bool:
        return self.mode == "fail_fast"

    @property
    def captures_source(self) -> bool:
        """Whether failure records should carry the offending source."""
        return self.mode == "quarantine"


def truncate_traceback(exc: BaseException) -> str:
    """The exception's formatted traceback, tail-truncated to the wire
    budget (the tail names the raising frame, the useful part)."""
    text = "".join(
        traceback_module.format_exception(type(exc), exc, exc.__traceback__)
    )
    if len(text) > TRACEBACK_LIMIT:
        return "...[truncated]...\n" + text[-TRACEBACK_LIMIT:]
    return text


def failure_from_exception(
    doc_id: str,
    index: int,
    exc: BaseException,
    *,
    source: str | None = None,
) -> DocumentFailure:
    """Build the structured record for one failed document.

    A :class:`PipelineStageError` contributes its stage and is unwrapped
    to the underlying cause for type/message; anything else is
    attributed to the whole conversion (stage ``"convert"``).
    """
    if isinstance(exc, PipelineStageError):
        stage = exc.stage
        cause = exc.__cause__ if exc.__cause__ is not None else exc
    else:
        stage = "convert"
        cause = exc
    return DocumentFailure(
        doc_id=doc_id,
        index=index,
        stage=stage,
        error_type=type(cause).__name__,
        message=str(cause),
        traceback=truncate_traceback(exc),
        source=source,
    )


def write_quarantine(directory: str | Path, failure: DocumentFailure) -> Path:
    """Save one failed document to the quarantine directory.

    Writes ``<doc_id>.html`` (the offending source, empty when the
    failure carries none -- e.g. a worker crash mid-pickle) and
    ``<doc_id>.error.json`` (the structured failure record).  Returns
    the error-JSON path.
    """
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    (target / f"{failure.doc_id}.html").write_text(
        failure.source or "", encoding="utf-8"
    )
    error_path = target / f"{failure.doc_id}.error.json"
    error_path.write_text(
        json.dumps(failure.to_json(), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return error_path

"""Conversion of linked (multi-page) documents -- Section 5 future work.

"We are in particular interested in incorporating linkage structures
among HTML documents.  We hope that this will give our approach the
flexibility to integrate even more heterogeneous, multi-topic HTML
documents into XML repositories."

Personal sites of the paper's era often split a resume across pages
("Publications", "Technical Skills" as separate pages linked from the
main one).  :class:`LinkedDocumentConverter` recovers the logical whole:

1. convert the main page normally;
2. scan the main page's anchors; an anchor whose text matches a *title
   concept* (a section name) announces that the section lives behind the
   link;
3. fetch and convert each such page, and graft the section it contributes
   into the main document (merging with an existing same-concept section
   when the main page had a stub).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.concepts.concept import ConceptRole
from repro.concepts.matcher import SynonymMatcher
from repro.convert.pipeline import ConversionResult, DocumentConverter
from repro.dom.node import Element
from repro.dom.treeops import iter_elements
from repro.htmlparse.parser import parse_html

# A fetch function: URL -> HTML source, or None for a dead link.
FetchFn = Callable[[str], Optional[str]]


@dataclass(frozen=True)
class TopicLink:
    """An anchor pointing at a section page."""

    href: str
    anchor_text: str
    concept_tag: str


@dataclass
class LinkedConversionResult:
    """A merged conversion plus provenance of the grafted sections."""

    result: ConversionResult
    followed: list[TopicLink] = field(default_factory=list)
    grafted_sections: list[str] = field(default_factory=list)

    @property
    def root(self) -> Element:
        return self.result.root


def extract_topic_links(html: str, matcher: SynonymMatcher, kb) -> list[TopicLink]:
    """Anchors whose text names a title concept of the topic.

    Only title-role concepts qualify: a link reading "Stanford
    University" is a reference, not a section page.
    """
    title_tags = {concept.tag for concept in kb.by_role(ConceptRole.TITLE)}
    links: list[TopicLink] = []
    seen: set[str] = set()
    document = parse_html(html)
    for element in iter_elements(document):
        if element.tag != "a":
            continue
        href = element.attrs.get("href", "")
        text = element.inner_text()
        if not href or not text:
            continue
        best = matcher.find_best(text)
        if best is None or best.concept_tag not in title_tags:
            continue
        # The match must dominate the anchor text, not be incidental.
        if best.specificity < len(text.strip()) * 0.5:
            continue
        if href not in seen:
            seen.add(href)
            links.append(TopicLink(href, text.strip(), best.concept_tag))
    return links


@dataclass
class LinkedDocumentConverter:
    """Converts a page and the section pages it links to, as one document."""

    converter: DocumentConverter
    fetch: FetchFn
    max_links: int = 8

    def __post_init__(self) -> None:
        self._matcher = SynonymMatcher(self.converter.kb)

    def convert(self, html: str) -> LinkedConversionResult:
        """Convert ``html`` plus the topic-linked pages it references."""
        links = extract_topic_links(html, self._matcher, self.converter.kb)
        outcome = LinkedConversionResult(self.converter.convert(html))
        for link in links[: self.max_links]:
            sub_html = self.fetch(link.href)
            if sub_html is None:
                continue
            sub_result = self.converter.convert(sub_html)
            grafted = self._graft(outcome.root, sub_result.root, link.concept_tag)
            if grafted:
                outcome.followed.append(link)
                outcome.grafted_sections.extend(grafted)
        return outcome

    def _graft(
        self, main_root: Element, sub_root: Element, concept_tag: str
    ) -> list[str]:
        """Move matching sections of ``sub_root`` into ``main_root``.

        Sections carrying ``concept_tag`` merge into the main document's
        same-tag section when one exists (content children appended),
        otherwise they are appended as new sections.  Returns the tags of
        the grafted sections.
        """
        sections = [
            child
            for child in sub_root.element_children()
            if child.tag == concept_tag
        ]
        if sections:
            # A single-topic sub-page often converts to section stubs
            # (page title, heading) followed by the section's content at
            # the same level -- no repeated markup means the grouping
            # rule had nothing to sink the content under.  Re-associate:
            # content follows its heading, so every non-section sibling
            # after a stub belongs to the most recent stub.
            current: Element | None = None
            for child in list(sub_root.children):
                if isinstance(child, Element) and child.tag == concept_tag:
                    current = child
                elif current is not None:
                    current.append_child(child)
        elif sub_root.tag == concept_tag:
            # The whole sub-document may BE the section (its root took
            # the concept's name during rootification).
            sections = [sub_root]
        else:
            return []
        grafted: list[str] = []
        existing = next(
            (
                child
                for child in main_root.element_children()
                if child.tag == concept_tag
            ),
            None,
        )
        for section in sections:
            section.detach()
            if existing is not None:
                existing.append_val(section.get_val())
                for child in list(section.children):
                    existing.append_child(child)
            else:
                main_root.append_child(section)
                existing = section
            grafted.append(concept_tag)
        return grafted

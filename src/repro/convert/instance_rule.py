"""The concept instance rule (Section 2.3.1, text rule 2).

For each ``<TOKEN>`` produced by the tokenization rule:

* **Case 1** -- an instance is identified: the token is replaced by
  ``<C val="text"/>`` where ``C`` is the concept's element name.  When
  *several* instances are found in one token (delimiters were missing or
  inconsistent), the token is decomposed: each identified instance claims
  the text from its position up to the next instance's position, and the
  text before the first instance is passed to the parent's ``val``.
  Sibling constraints, when available, veto decompositions that would put
  forbidden concept pairs next to each other.
* **Case 2** -- no instance is identified: the token node is deleted and
  its text is passed to the parent's ``val`` ("child nodes detail
  information represented by parent nodes at a lower level of
  abstraction"; no text is ever lost).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.concepts.bayes import MultinomialNaiveBayes
from repro.concepts.fastmatch import CachedBayes, FastSynonymMatcher
from repro.concepts.knowledge import KnowledgeBase
from repro.concepts.matcher import InstanceMatch, SynonymMatcher

# Either matcher implementation satisfies the rule's contract; the fast
# variant is differentially guaranteed to produce the same match lists.
Matcher = SynonymMatcher | FastSynonymMatcher
Classifier = MultinomialNaiveBayes | CachedBayes
from repro.convert.config import ConversionConfig
from repro.convert.tokenize_rule import TOKEN_TAG, token_text
from repro.dom.node import Element
from repro.dom.treeops import iter_preorder
from repro.obs.provenance import ProvenanceLog, node_label_path

# Bayes margin is +inf when only one class is trained; clamp so the
# provenance JSON stays strictly valid (json.dumps(inf) is not JSON).
_MAX_CONFIDENCE = 1e6


@dataclass
class InstanceRuleStats:
    """Bookkeeping for the user-feedback loop of Section 2.3.1.

    ``identified``/``unidentified`` count tokens; their ratio is the
    signal the paper suggests showing the user ("provide more training
    data ... or associate more concept instances with concepts").
    """

    identified: int = 0
    unidentified: int = 0
    split_tokens: int = 0
    elements_created: int = 0
    by_concept: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> int:
        return self.identified + self.unidentified

    @property
    def unidentified_ratio(self) -> float:
        """Fraction of tokens no concept instance was found in."""
        return self.unidentified / self.total if self.total else 0.0

    def _count(self, tag: str) -> None:
        self.by_concept[tag] = self.by_concept.get(tag, 0) + 1


def apply_instance_rule(
    root: Element,
    kb: KnowledgeBase,
    config: ConversionConfig | None = None,
    *,
    matcher: Matcher | None = None,
    bayes: Classifier | None = None,
    doc_id: str | None = None,
    provenance: ProvenanceLog | None = None,
) -> InstanceRuleStats:
    """Resolve every ``<TOKEN>`` under ``root`` into concept elements.

    ``matcher`` defaults to a fresh matcher over ``kb`` -- the
    :class:`FastSynonymMatcher` automaton when ``config.fast_tagger`` is
    on, the naive :class:`SynonymMatcher` otherwise.  With
    ``config.tagger`` in ``("bayes", "hybrid")`` a trained ``bayes``
    classifier must be supplied.  With a ``provenance`` log every token
    decision is recorded as a ``concept`` event keyed by ``doc_id`` and
    the token's label path *before* the rewrite.
    """
    config = config or ConversionConfig()
    if config.tagger in ("bayes", "hybrid") and (bayes is None or not bayes.is_trained()):
        raise ValueError(f"tagger {config.tagger!r} requires a trained Bayes classifier")
    if matcher is None:
        if config.fast_tagger:
            matcher = FastSynonymMatcher(kb, cache_size=config.tagger_cache_size)
        else:
            matcher = SynonymMatcher(kb)
    stats = InstanceRuleStats()
    for node in list(iter_preorder(root)):
        if isinstance(node, Element) and node.tag == TOKEN_TAG and node.parent is not None:
            _resolve_token(node, kb, config, matcher, bayes, stats, doc_id, provenance)
    return stats


def _match_confidence(matched: str, text: str) -> float:
    """Synonym-decision confidence: fraction of the token text matched."""
    return len(matched) / len(text) if text else 0.0


def _resolve_token(
    token: Element,
    kb: KnowledgeBase,
    config: ConversionConfig,
    matcher: Matcher,
    bayes: Classifier | None,
    stats: InstanceRuleStats,
    doc_id: str | None = None,
    provenance: ProvenanceLog | None = None,
) -> None:
    parent = token.parent
    assert parent is not None
    text = token_text(token)
    # The label path must be taken while the token is still in the tree.
    node_path = node_label_path(token) if provenance is not None else ""
    if len(text) < config.min_token_length:
        parent.append_val(text)
        token.detach()
        if provenance is not None:
            provenance.concept_event(
                doc_id, node_path, "unlabeled", text=text, reason="short"
            )
        return

    matches: list[InstanceMatch] = []
    if config.tagger in ("synonym", "hybrid"):
        matches = matcher.find_all(text)
    if not matches and config.tagger in ("bayes", "hybrid") and bayes is not None:
        label, margin = bayes.predict(text)
        if label is not None:
            _emit_single(token, label, text, stats)
            if provenance is not None:
                provenance.concept_event(
                    doc_id,
                    node_path,
                    "bayes",
                    concept=label,
                    confidence=min(margin, _MAX_CONFIDENCE),
                    text=text,
                )
            return

    if not matches:
        # Case 2: unidentified -- text passes to the parent.
        parent.append_val(text)
        token.detach()
        stats.unidentified += 1
        if provenance is not None:
            provenance.concept_event(doc_id, node_path, "unlabeled", text=text)
        return

    if len(matches) == 1 or not config.split_multi_instance_tokens:
        best = max(matches, key=lambda m: (m.specificity, -m.start))
        _emit_single(token, best.concept_tag, text, stats)
        if provenance is not None:
            provenance.concept_event(
                doc_id,
                node_path,
                "synonym",
                concept=best.concept_tag,
                confidence=_match_confidence(best.matched_text, text),
                text=text,
                matched=best.matched_text,
            )
        return

    _emit_split(token, matches, text, kb, config, stats, doc_id, node_path, provenance)


def _emit_single(token: Element, tag: str, text: str, stats: InstanceRuleStats) -> None:
    element = Element(tag)
    element.set_val(text)
    token.replace_with(element)
    stats.identified += 1
    stats.elements_created += 1
    stats._count(tag)


def _merge_connected(
    matches: list[InstanceMatch], text: str, config: ConversionConfig
) -> list[InstanceMatch]:
    """Merge consecutive matches joined only by connector words.

    "University of California at Davis" yields instance matches for
    ``University`` (institution), ``California`` and ``Davis`` (location);
    the gaps are pure connectors, so the whole phrase is one named entity
    and is claimed by the leftmost match's concept.
    """
    if not config.merge_connectors or len(matches) < 2:
        return matches
    merged = [matches[0]]
    for match in matches[1:]:
        gap = text[merged[-1].end : match.start]
        gap_words = gap.replace(",", " ").split()
        if gap_words and all(
            word.lower() in config.merge_connectors for word in gap_words
        ):
            previous = merged[-1]
            merged[-1] = InstanceMatch(
                previous.concept_tag,
                previous.start,
                match.end,
                text[previous.start : match.end],
            )
        else:
            merged.append(match)
    return merged


def _emit_split(
    token: Element,
    matches: list[InstanceMatch],
    text: str,
    kb: KnowledgeBase,
    config: ConversionConfig,
    stats: InstanceRuleStats,
    doc_id: str | None = None,
    node_path: str = "",
    provenance: ProvenanceLog | None = None,
) -> None:
    """Case 1 with several instances: decompose the token.

    Consecutive matches whose concepts may not be siblings (per the
    constraint set) are reduced by dropping the less specific match, so
    its text stays attached to the surviving neighbour -- this is the
    "concept constraints describing typical sibling relationships can be
    employed in order to determine a proper decomposition" refinement.
    """
    parent = token.parent
    assert parent is not None
    matches = _merge_connected(matches, text, config)
    kept: list[InstanceMatch] = []
    for match in matches:
        if (
            config.use_sibling_constraints
            and kept
            and not kb.constraints.allows_sibling_pair(
                kept[-1].concept_tag, match.concept_tag
            )
        ):
            if match.specificity > kept[-1].specificity:
                kept[-1] = match
            continue
        kept.append(match)

    if len(kept) == 1:
        _emit_single(token, kept[0].concept_tag, text, stats)
        if provenance is not None:
            provenance.concept_event(
                doc_id,
                node_path,
                "synonym",
                concept=kept[0].concept_tag,
                confidence=_match_confidence(kept[0].matched_text, text),
                text=text,
                matched=kept[0].matched_text,
            )
        return

    # Text before the first identified instance goes to the parent.
    prefix = text[: kept[0].start].strip()
    if prefix:
        parent.append_val(prefix)

    elements: list[Element] = []
    for i, match in enumerate(kept):
        end = kept[i + 1].start if i + 1 < len(kept) else len(text)
        segment = text[match.start : end].strip()
        element = Element(match.concept_tag)
        element.set_val(segment)
        elements.append(element)
        stats.elements_created += 1
        stats._count(match.concept_tag)
        if provenance is not None:
            provenance.concept_event(
                doc_id,
                node_path,
                "synonym",
                concept=match.concept_tag,
                confidence=_match_confidence(match.matched_text, text),
                text=segment,
                matched=match.matched_text,
                split=True,
            )
    token.replace_with(*elements)
    stats.identified += 1
    stats.split_tokens += 1

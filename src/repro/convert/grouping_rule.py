"""The grouping rule (Section 2.3.2, structure rule 1).

"Given sibling nodes N1,...,Nk in the document tree that all have the
same markup tag.  Then all sibling nodes S1,...,Sn that occur between Ni
and Ni+1 are grouped under a new node with the (temporary) label GROUP,
and this node becomes a child of node Ni.  All sibling nodes right to Nk
are grouped in the same way."

Weights on group tags order the work at each level ("grouping right
siblings of nodes marked with h1 has a higher priority than grouping
right siblings of nodes marked with p at the same level"); because each
group sinks below its leader, lower-priority tags are handled when the
rule reaches the next level down -- the rule operates top-down.
"""

from __future__ import annotations

from repro.convert.config import ConversionConfig
from repro.dom.node import Element, Node

GROUP_TAG = "GROUP"


def apply_grouping_rule(root: Element, config: ConversionConfig | None = None) -> int:
    """Apply the grouping rule top-down under ``root``.

    Returns the number of ``GROUP`` nodes created.  Newly created groups
    are themselves visited (their contents may contain lower-priority
    group tags), so repeated markup at every level of abstraction sinks
    into a logical nesting.
    """
    config = config or ConversionConfig()
    created = 0
    queue: list[Element] = [root]
    while queue:
        element = queue.pop(0)
        created += _group_children(element, config)
        queue.extend(element.element_children())
    return created


def _leader_tag(element: Element, config: ConversionConfig) -> str | None:
    """The highest-weight group tag occurring >= 2 times among children.

    A single occurrence gives no evidence of sectioning, so it never
    drives grouping -- this keeps e.g. a lone ``<p>`` from swallowing the
    rest of the document.
    """
    counts: dict[str, int] = {}
    for child in element.element_children():
        if child.tag in config.group_tag_weights:
            counts[child.tag] = counts.get(child.tag, 0) + 1
    candidates = [
        tag for tag, count in counts.items() if count >= config.min_group_leaders
    ]
    if not candidates:
        return None
    return max(candidates, key=lambda tag: config.group_tag_weights[tag])


def _group_children(element: Element, config: ConversionConfig) -> int:
    tag = _leader_tag(element, config)
    if tag is None:
        return 0
    created = 0
    children = list(element.children)
    leaders = [
        child for child in children if isinstance(child, Element) and child.tag == tag
    ]
    # Partition the siblings after each leader (up to the next leader).
    leader_ids = {id(leader) for leader in leaders}
    current_leader: Element | None = None
    buckets: dict[int, list[Node]] = {id(leader): [] for leader in leaders}
    for child in children:
        if id(child) in leader_ids:
            current_leader = child  # type: ignore[assignment]
        elif current_leader is not None:
            buckets[id(current_leader)].append(child)
        # Siblings left of the first leader stay where they are.
    for leader in leaders:
        members = buckets[id(leader)]
        if not members:
            continue
        group = Element(GROUP_TAG)
        for member in members:
            group.append_child(member)
        leader.append_child(group)
        created += 1
    return created


def is_group(node: Node) -> bool:
    """True for temporary ``GROUP`` nodes."""
    return isinstance(node, Element) and node.tag == GROUP_TAG

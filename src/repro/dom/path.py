"""Minimal slash-separated path queries over document trees.

This is deliberately far smaller than XPath: the schema and evaluation
code only ever needs ``a/b/c`` descent from a context element, with ``*``
as a single-level wildcard and ``//`` for descendant hops (XPath
semantics: ``a//b`` matches any ``b`` below an ``a``).
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.dom.node import Element

# Marker inserted into the step list wherever the query said '//'.
_DESCEND = "//"


def _parse(path: str) -> list[str]:
    """Split a query into steps, inserting descend markers for '//'."""
    steps: list[str] = []
    if path.startswith("//"):
        steps.append(_DESCEND)
        path = path[2:]
    while path:
        if path.startswith("/"):
            path = path[1:]
            if path.startswith("/"):
                steps.append(_DESCEND)
                path = path[1:]
            continue
        cut = path.find("/")
        if cut == -1:
            steps.append(path)
            path = ""
        else:
            steps.append(path[:cut])
            path = path[cut:]
    return steps


def _match_step(element: Element, step: str) -> bool:
    return step == "*" or element.tag == step


def _descendants(element: Element) -> Iterator[Element]:
    for child in element.element_children():
        yield child
        yield from _descendants(child)


def _walk(frontier: list[Element], steps: list[str], *, anchored: bool) -> list[Element]:
    """Advance ``frontier`` through ``steps``.

    ``anchored`` means the first plain step must match the frontier
    elements themselves (the query's first step names the context);
    afterwards plain steps match children.
    """
    for step in steps:
        if step == _DESCEND:
            expanded: list[Element] = []
            seen: set[int] = set()
            for element in frontier:
                for descendant in _descendants(element):
                    if id(descendant) not in seen:
                        seen.add(id(descendant))
                        expanded.append(descendant)
            frontier = expanded
            anchored = True  # descend step yields candidates to match directly
            continue
        if anchored:
            frontier = [el for el in frontier if _match_step(el, step)]
            anchored = False
        else:
            frontier = [
                child
                for el in frontier
                for child in el.element_children()
                if _match_step(child, step)
            ]
    return frontier


def iter_matches(context: Element, path: str) -> Iterator[Element]:
    """Yield elements matching ``path`` relative to ``context``.

    A path starting with ``//`` searches all descendants; otherwise the
    first step must match ``context`` itself.
    """
    steps = _parse(path)
    if not steps:
        return
    yield from _walk([context], steps, anchored=True)


def find_all(context: Element, path: str) -> list[Element]:
    """All elements matching ``path`` under ``context``."""
    return list(iter_matches(context, path))


def find_first(context: Element, path: str) -> Optional[Element]:
    """First element matching ``path`` under ``context``, or ``None``."""
    for element in iter_matches(context, path):
        return element
    return None

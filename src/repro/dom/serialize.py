"""Serialization of document trees to XML and HTML text."""

from __future__ import annotations

from repro.dom.node import Element, Node, Text

_XML_ESCAPES = {"&": "&amp;", "<": "&lt;", ">": "&gt;"}
_ATTR_ESCAPES = {**_XML_ESCAPES, '"': "&quot;"}

# HTML elements serialized without a closing tag.
_VOID_TAGS = frozenset(
    "area base br col embed hr img input link meta param source track wbr".split()
)


def escape_text(text: str) -> str:
    """Escape character data for XML/HTML output."""
    for raw, esc in _XML_ESCAPES.items():
        text = text.replace(raw, esc)
    return text


def escape_attr(text: str) -> str:
    """Escape an attribute value for double-quoted output."""
    for raw, esc in _ATTR_ESCAPES.items():
        text = text.replace(raw, esc)
    return text


def _attrs_string(element: Element) -> str:
    if not element.attrs:
        return ""
    parts = [f'{name}="{escape_attr(value)}"' for name, value in element.attrs.items()]
    return " " + " ".join(parts)


def to_xml(node: Node, *, indent: int = 2, _level: int = 0) -> str:
    """Render a tree as pretty-printed XML.

    Leaf elements render as self-closing tags, matching the element
    patterns shown in the paper (``<INSTITUTION val="..."/>``).
    """
    pad = " " * (indent * _level)
    if isinstance(node, Text):
        return f"{pad}{escape_text(node.text)}"
    assert isinstance(node, Element)
    attrs = _attrs_string(node)
    if not node.children:
        return f"{pad}<{node.tag}{attrs}/>"
    lines = [f"{pad}<{node.tag}{attrs}>"]
    for child in node.children:
        lines.append(to_xml(child, indent=indent, _level=_level + 1))
    lines.append(f"{pad}</{node.tag}>")
    return "\n".join(lines)


def to_xml_document(root: Element, *, indent: int = 2) -> str:
    """Render a complete XML document with an XML declaration."""
    return '<?xml version="1.0" encoding="UTF-8"?>\n' + to_xml(root, indent=indent)


def to_html(node: Node) -> str:
    """Render a tree as compact HTML (void tags are not closed)."""
    if isinstance(node, Text):
        return escape_text(node.text)
    assert isinstance(node, Element)
    attrs = _attrs_string(node)
    tag = node.tag.lower()
    if tag in _VOID_TAGS and not node.children:
        return f"<{tag}{attrs}>"
    inner = "".join(to_html(child) for child in node.children)
    return f"<{tag}{attrs}>{inner}</{tag}>"

"""Ordered-tree document model.

The paper treats every document (HTML input, intermediate, and XML output)
as an ordered tree whose nodes carry a tag and a ``val`` attribute of type
CDATA (Section 2.3).  This package provides that model:

* :mod:`repro.dom.node` -- :class:`Element` and :class:`Text` nodes.
* :mod:`repro.dom.treeops` -- traversals, structural equality, cloning.
* :mod:`repro.dom.serialize` -- XML and HTML writers.
* :mod:`repro.dom.path` -- simple slash-separated path queries.
"""

from repro.dom.node import Element, Node, Text
from repro.dom.path import find_all, find_first
from repro.dom.serialize import to_html, to_xml
from repro.dom.treeops import (
    clone,
    deep_equal,
    iter_postorder,
    iter_preorder,
    tree_depth,
    tree_signature,
    tree_size,
)

__all__ = [
    "Node",
    "Element",
    "Text",
    "clone",
    "deep_equal",
    "iter_preorder",
    "iter_postorder",
    "tree_size",
    "tree_depth",
    "tree_signature",
    "to_xml",
    "to_html",
    "find_first",
    "find_all",
]

"""Traversals and structural operations on ordered trees."""

from __future__ import annotations

from typing import Callable, Iterator, Optional

from repro.dom.node import Element, Node, Text


def iter_preorder(root: Node) -> Iterator[Node]:
    """Yield nodes in document (preorder, left-to-right) order."""
    stack: list[Node] = [root]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Element):
            stack.extend(reversed(node.children))


def iter_postorder(root: Node) -> Iterator[Node]:
    """Yield nodes bottom-up; children always precede their parent."""
    # An explicit stack keeps very deep (malformed) documents from
    # exhausting the recursion limit.
    stack: list[tuple[Node, bool]] = [(root, False)]
    while stack:
        node, expanded = stack.pop()
        if expanded or not isinstance(node, Element) or not node.children:
            yield node
            continue
        stack.append((node, True))
        stack.extend((child, False) for child in reversed(node.children))


def collect_postorder(root: Node) -> list[Node]:
    """Materialized postorder, same order as ``list(iter_postorder())``.

    Two-sweep form: a right-to-left preorder (one plain stack push/pop
    per node) reversed at the end -- no ``(node, expanded)`` marker
    tuples and no generator frame, which makes it the cheap way to
    snapshot a tree before a mutating pass.
    """
    out: list[Node] = []
    stack: list[Node] = [root]
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, Element) and node.children:
            # Plain-order push means the rightmost child pops first:
            # ``out`` fills with the *reversed* postorder.
            stack.extend(node.children)
    out.reverse()
    return out


def iter_elements(root: Node) -> Iterator[Element]:
    """Yield only the element nodes, in preorder."""
    for node in iter_preorder(root):
        if isinstance(node, Element):
            yield node


def tree_size(root: Node) -> int:
    """Total number of nodes in the tree."""
    return sum(1 for _ in iter_preorder(root))


def tree_depth(root: Node) -> int:
    """Number of edges on the longest root-to-leaf path."""
    if not isinstance(root, Element) or not root.children:
        return 0
    return 1 + max(tree_depth(child) for child in root.children)


def clone(node: Node) -> Node:
    """Deep-copy a subtree (the copy is detached)."""
    if isinstance(node, Text):
        return Text(node.text)
    assert isinstance(node, Element)
    copy = Element(node.tag, dict(node.attrs))
    for child in node.children:
        copy.append_child(clone(child))
    return copy


def deep_equal(a: Node, b: Node, *, compare_attrs: bool = True) -> bool:
    """Structural equality of two subtrees.

    With ``compare_attrs=False`` only tags and tree shape are compared,
    which is what the schema-level comparisons need.
    """
    if isinstance(a, Text) or isinstance(b, Text):
        return isinstance(a, Text) and isinstance(b, Text) and a.text == b.text
    assert isinstance(a, Element) and isinstance(b, Element)
    if a.tag != b.tag:
        return False
    if compare_attrs and a.attrs != b.attrs:
        return False
    if len(a.children) != len(b.children):
        return False
    return all(
        deep_equal(ca, cb, compare_attrs=compare_attrs)
        for ca, cb in zip(a.children, b.children)
    )


def tree_signature(node: Node, *, include_val: bool = False) -> str:
    """A canonical string for a subtree's shape.

    Used to detect groups of similarly structured siblings (consolidation
    rule) and to unify similar schema components.  Text nodes collapse to
    ``#text`` so signatures reflect structure, not content.
    """
    if isinstance(node, Text):
        return "#text"
    assert isinstance(node, Element)
    label = node.tag
    if include_val and node.get_val():
        label += f"[{node.get_val()}]"
    if not node.children:
        return label
    inner = ",".join(
        tree_signature(child, include_val=include_val) for child in node.children
    )
    return f"{label}({inner})"


def find_elements(
    root: Node, predicate: Callable[[Element], bool]
) -> list[Element]:
    """All elements (preorder) satisfying ``predicate``."""
    return [el for el in iter_elements(root) if predicate(el)]


def first_element(
    root: Node, predicate: Callable[[Element], bool]
) -> Optional[Element]:
    """First element (preorder) satisfying ``predicate``, or ``None``."""
    for el in iter_elements(root):
        if predicate(el):
            return el
    return None


def count_elements(root: Node, tag: Optional[str] = None) -> int:
    """Number of elements in the tree, optionally restricted to ``tag``."""
    if tag is None:
        return sum(1 for _ in iter_elements(root))
    return sum(1 for el in iter_elements(root) if el.tag == tag)

"""Ordered-tree nodes.

Two concrete node kinds exist, mirroring the fragment of DOM the paper
relies on (Section 2.3, "we consider an input HTML document as XML
document ... represented as an ordered tree"):

* :class:`Element` -- a tagged node with attributes and ordered children.
* :class:`Text` -- a leaf carrying character data.

Every element has a ``val`` attribute slot (possibly empty); the
conversion rules accumulate text that could not be classified into the
``val`` attribute of the nearest concept ancestor, so ``val`` gets
first-class helpers (:meth:`Element.get_val`, :meth:`Element.append_val`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class Node:
    """Base class for tree nodes.

    Maintains the parent pointer; child bookkeeping lives on
    :class:`Element`.  Nodes are identity-hashable: two structurally equal
    nodes are still distinct tree positions (the schema-discovery code
    depends on that).
    """

    __slots__ = ("parent",)

    def __init__(self) -> None:
        self.parent: Optional[Element] = None

    # -- tree position ------------------------------------------------

    def root(self) -> "Node":
        """Return the root of the tree containing this node."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def depth(self) -> int:
        """Number of edges from the root to this node (root has depth 0)."""
        depth = 0
        node = self
        while node.parent is not None:
            node = node.parent
            depth += 1
        return depth

    def index_in_parent(self) -> int:
        """Position of this node among its parent's children.

        Raises :class:`ValueError` for a detached node.
        """
        if self.parent is None:
            raise ValueError("node has no parent")
        for i, child in enumerate(self.parent.children):
            if child is self:
                return i
        raise AssertionError("corrupt tree: node not among parent's children")

    def ancestors(self) -> Iterator["Element"]:
        """Yield ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def next_sibling(self) -> Optional["Node"]:
        """The sibling immediately to the right, or ``None``."""
        if self.parent is None:
            return None
        idx = self.index_in_parent()
        siblings = self.parent.children
        if idx + 1 < len(siblings):
            return siblings[idx + 1]
        return None

    def previous_sibling(self) -> Optional["Node"]:
        """The sibling immediately to the left, or ``None``."""
        if self.parent is None:
            return None
        idx = self.index_in_parent()
        if idx > 0:
            return self.parent.children[idx - 1]
        return None

    # -- mutation ------------------------------------------------------

    def detach(self) -> "Node":
        """Remove this node from its parent (no-op when already detached)."""
        if self.parent is not None:
            self.parent.remove_child(self)
        return self

    def replace_with(self, *nodes: "Node") -> None:
        """Replace this node in its parent by ``nodes`` (in order)."""
        if self.parent is None:
            raise ValueError("cannot replace a detached node")
        parent = self.parent
        idx = self.index_in_parent()
        parent.remove_child(self)
        for offset, node in enumerate(nodes):
            parent.insert_child(idx + offset, node)


class Text(Node):
    """A text leaf."""

    __slots__ = ("text",)

    def __init__(self, text: str) -> None:
        super().__init__()
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        preview = self.text if len(self.text) <= 40 else self.text[:37] + "..."
        return f"Text({preview!r})"


class Element(Node):
    """A tagged node with attributes and an ordered child list.

    ``tag`` is stored as given; HTML parsing lower-cases tags, concept
    tagging upper-cases them, so comparisons in rule code are done through
    the helpers in :mod:`repro.htmlparse.taginfo` rather than raw equality
    against mixed-case literals.
    """

    __slots__ = ("tag", "attrs", "children")

    def __init__(
        self,
        tag: str,
        attrs: Optional[dict[str, str]] = None,
        children: Optional[Iterable[Node]] = None,
    ) -> None:
        super().__init__()
        self.tag = tag
        self.attrs: dict[str, str] = dict(attrs) if attrs else {}
        self.children: list[Node] = []
        if children:
            for child in children:
                self.append_child(child)

    # -- children ------------------------------------------------------

    def append_child(self, node: Node) -> Node:
        """Append ``node`` as the last child (detaching it first)."""
        node.detach()
        node.parent = self
        self.children.append(node)
        return node

    def adopt_new(self, node: Node) -> Node:
        """Append a node the caller guarantees is parentless.

        Skips :meth:`append_child`'s detach bookkeeping; tree builders
        use it for freshly constructed nodes, where the detach scan over
        the old parent's child list is pure overhead.
        """
        node.parent = self
        self.children.append(node)
        return node

    def adopt_all(self, nodes: Iterable[Node]) -> None:
        """Bulk :meth:`adopt_new`: append nodes the caller guarantees
        are parentless, without per-node detach scans."""
        children = self.children
        for node in nodes:
            node.parent = self
            children.append(node)

    def take_children(self) -> list[Node]:
        """Detach and return all children in one pass.

        The per-child alternative (``detach()`` in a loop) rescans the
        shrinking child list once per child; this is the O(n) form the
        tidy fast path splices with.
        """
        children = self.children
        self.children = []
        for child in children:
            child.parent = None
        return children

    def insert_child(self, index: int, node: Node) -> Node:
        """Insert ``node`` at ``index`` (detaching it first)."""
        node.detach()
        node.parent = self
        self.children.insert(index, node)
        return node

    def remove_child(self, node: Node) -> Node:
        """Remove a direct child; raises :class:`ValueError` otherwise."""
        for i, child in enumerate(self.children):
            if child is node:
                del self.children[i]
                node.parent = None
                return node
        raise ValueError(f"{node!r} is not a child of {self!r}")

    def element_children(self) -> list["Element"]:
        """The children that are elements, in order."""
        return [c for c in self.children if isinstance(c, Element)]

    def text_children(self) -> list[Text]:
        """The children that are text nodes, in order."""
        return [c for c in self.children if isinstance(c, Text)]

    # -- text and the ``val`` attribute ---------------------------------

    def get_val(self) -> str:
        """The node's ``val`` attribute ('' when absent)."""
        return self.attrs.get("val", "")

    def set_val(self, value: str) -> None:
        """Set the ``val`` attribute (deleting it when empty)."""
        if value:
            self.attrs["val"] = value
        else:
            self.attrs.pop("val", None)

    def append_val(self, value: str) -> None:
        """Append text to ``val``, separating accumulated pieces by a space.

        The concept-instance rule pushes unidentified token text to the
        parent through this method (Section 2.3.1, case 2).
        """
        value = value.strip()
        if not value:
            return
        existing = self.get_val()
        self.set_val(f"{existing} {value}".strip() if existing else value)

    def inner_text(self) -> str:
        """All descendant text, in document order, space-joined."""
        pieces: list[str] = []
        stack: list[Node] = list(reversed(self.children))
        while stack:
            node = stack.pop()
            if isinstance(node, Text):
                if node.text.strip():
                    pieces.append(node.text.strip())
            else:
                assert isinstance(node, Element)
                stack.extend(reversed(node.children))
        return " ".join(pieces)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        val = self.attrs.get("val")
        suffix = f" val={val!r}" if val else ""
        return f"Element(<{self.tag}>{suffix}, {len(self.children)} children)"

"""Observability layer: tracing, metrics, and provenance.

Three independent primitives, all default-off with near-zero disabled
cost, thread through the conversion/discovery pipeline:

* :mod:`repro.obs.tracer` -- hierarchical :class:`Span` tracing with a
  context-manager API and cross-process re-parenting (worker chunks
  serialize spans; the engine grafts them under its own span tree).
* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms; the engine's ``EngineStats`` is a
  view over one; exports JSON and Prometheus text exposition.
* :mod:`repro.obs.provenance` -- per-document JSONL events: one record
  per rule application and per concept-instance decision (synonym match
  vs. Bayes posterior vs. unlabeled, with confidence), keyed by doc id
  and node label path.

The run-intelligence layer builds on them:

* :mod:`repro.obs.quantiles` -- :class:`QuantileDigest`, a mergeable
  (monoid) log-bucket latency digest shipped per chunk and merged
  parent-side, yielding per-stage and per-document p50/p95/p99.
* :mod:`repro.obs.runlog` -- the persistent append-only run ledger
  (:class:`RunLedger`) plus the regression detector shared by
  ``repro-web runs`` and the benchmark CI gate.
* :mod:`repro.obs.progress` -- :class:`ProgressReporter`, rate-limited
  live progress/ETA on stderr, auto-disabled off-TTY.
* :mod:`repro.obs.chrometrace` -- span-tree export to Chrome
  trace-event JSON (Perfetto/chrome://tracing), with cross-process
  worker spans re-based onto the parent timeline.

:mod:`repro.obs.validate` checks emitted artifacts against the
checked-in ``trace_schema.json`` / ``runlog_schema.json`` (used by CI
and ``repro-web validate-obs``); :mod:`repro.obs.export` holds the file
writers/loaders.
"""

from repro.obs.chrometrace import (
    spans_to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.export import load_metrics, write_metrics, write_trace_jsonl
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SECONDS_BUCKETS,
)
from repro.obs.progress import ProgressReporter
from repro.obs.provenance import ProvenanceLog, node_label_path
from repro.obs.quantiles import QuantileDigest, merge_digest_maps
from repro.obs.runlog import (
    Regression,
    RunLedger,
    bench_regressions,
    build_evolution_record,
    build_run_record,
    compare_records,
    config_fingerprint,
    detect_history_regressions,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer, resolve_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "ProvenanceLog",
    "node_label_path",
    "ProgressReporter",
    "QuantileDigest",
    "merge_digest_maps",
    "Regression",
    "RunLedger",
    "bench_regressions",
    "build_evolution_record",
    "build_run_record",
    "compare_records",
    "config_fingerprint",
    "detect_history_regressions",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "resolve_tracer",
    "spans_to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_trace_jsonl",
    "write_metrics",
    "load_metrics",
]

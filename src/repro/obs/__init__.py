"""Observability layer: tracing, metrics, and provenance.

Three independent primitives, all default-off with near-zero disabled
cost, thread through the conversion/discovery pipeline:

* :mod:`repro.obs.tracer` -- hierarchical :class:`Span` tracing with a
  context-manager API and cross-process re-parenting (worker chunks
  serialize spans; the engine grafts them under its own span tree).
* :mod:`repro.obs.metrics` -- a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms; the engine's ``EngineStats`` is a
  view over one; exports JSON and Prometheus text exposition.
* :mod:`repro.obs.provenance` -- per-document JSONL events: one record
  per rule application and per concept-instance decision (synonym match
  vs. Bayes posterior vs. unlabeled, with confidence), keyed by doc id
  and node label path.

:mod:`repro.obs.validate` checks emitted artifacts against the
checked-in ``trace_schema.json`` (used by CI and
``repro-web validate-obs``); :mod:`repro.obs.export` holds the file
writers/loaders.
"""

from repro.obs.export import load_metrics, write_metrics, write_trace_jsonl
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SECONDS_BUCKETS,
)
from repro.obs.provenance import ProvenanceLog, node_label_path
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer, resolve_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SECONDS_BUCKETS",
    "ProvenanceLog",
    "node_label_path",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "resolve_tracer",
    "write_trace_jsonl",
    "write_metrics",
    "load_metrics",
]

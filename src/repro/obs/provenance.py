"""Per-document provenance: why each node of the output looks the way
it does.

Two record kinds, both plain dicts destined for JSONL:

* ``rule`` -- one record per conversion-rule application per document
  (rule name, wall seconds, the rule's own counters), so "which rule
  rewrote this document, and what did it do" is answerable offline.
* ``concept`` -- one record per concept-instance decision of the
  instance rule (Section 2.3.1), keyed by document id and the token's
  label path at decision time: ``decision`` is ``synonym`` (a matched
  keyword, confidence = matched fraction of the token text), ``bayes``
  (classifier win, confidence = log-odds margin in nats), or
  ``unlabeled`` (the token text passed to the parent ``val``).  Split
  tokens emit one ``synonym`` record per surviving instance with
  ``split: true``.

A :class:`ProvenanceLog` is just an ordered list of these dicts; worker
processes ship their chunk's events back to the parent, which extends
its own log, so event order follows document order exactly like the
engine's XML output.  When provenance is off, every instrumented call
site holds ``None`` and skips event construction entirely.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable

from repro.dom.node import Element, Node

_TEXT_SNIPPET = 80


class ProvenanceLog:
    """An append-only list of provenance event dicts."""

    def __init__(self) -> None:
        self.events: list[dict] = []

    def __len__(self) -> int:
        return len(self.events)

    def rule_event(
        self, doc_id: str | None, rule: str, seconds: float, **counters: object
    ) -> None:
        """Record one rule application on one document."""
        self.events.append(
            {
                "kind": "rule",
                "doc": doc_id,
                "rule": rule,
                "seconds": round(seconds, 6),
                **counters,
            }
        )

    def concept_event(
        self,
        doc_id: str | None,
        node_path: str,
        decision: str,
        *,
        concept: str | None = None,
        confidence: float = 0.0,
        text: str = "",
        **extra: object,
    ) -> None:
        """Record one concept-instance decision on one token."""
        self.events.append(
            {
                "kind": "concept",
                "doc": doc_id,
                "node_path": node_path,
                "decision": decision,
                "concept": concept,
                "confidence": round(float(confidence), 6),
                "text": text[:_TEXT_SNIPPET],
                **extra,
            }
        )

    def error_event(
        self,
        doc_id: str | None,
        stage: str,
        error_type: str,
        message: str,
        *,
        index: int | None = None,
        **extra: object,
    ) -> None:
        """Record one document the error policy dropped.

        ``stage`` is the pipeline stage that failed (``"worker"`` when
        the document killed its worker process); ``index`` is the
        document's corpus-wide position.  Error events interleave with
        rule/concept events in document order, so the provenance log
        answers "what happened to doc N" uniformly for survivors and
        casualties.
        """
        event: dict = {
            "kind": "error",
            "doc": doc_id,
            "stage": stage,
            "error": error_type,
            "message": message[:_TEXT_SNIPPET * 4],
        }
        if index is not None:
            event["index"] = index
        event.update(extra)
        self.events.append(event)

    def extend(self, events: Iterable[dict]) -> None:
        """Append events shipped from another process."""
        self.events.extend(events)

    def by_kind(self, kind: str) -> list[dict]:
        return [event for event in self.events if event.get("kind") == kind]

    def write_jsonl(self, path: str | Path) -> int:
        """Write one JSON object per line; returns the record count.
        Parent directories are created for nested output paths."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(self.events)


def node_label_path(node: Node) -> str:
    """The node's slash path from its tree root, with sibling indices.

    ``RESUME/SECTION[1]/TOKEN[4]`` names the fifth element child of the
    second section -- stable against text siblings, and computed *before*
    the instance rule rewrites the token, so it addresses the input
    position the decision was made at.
    """
    segments: list[str] = []
    current: Node | None = node
    while current is not None:
        if isinstance(current, Element):
            parent = current.parent
            if parent is None:
                segments.append(current.tag)
            else:
                index = parent.element_children().index(current)
                segments.append(f"{current.tag}[{index}]")
        current = current.parent
    return "/".join(reversed(segments))

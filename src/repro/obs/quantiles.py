"""Mergeable streaming quantile digests over log-spaced fixed buckets.

:class:`QuantileDigest` answers "what were p50/p95/p99 of this latency"
without retaining observations: values land in a fixed, *global* layout
of log-spaced buckets, so any two digests built by this module merge by
adding sparse bucket counts.  Like
:class:`repro.schema.accumulator.PathAccumulator`, merging is a
commutative monoid::

    merge(a, b) == merge(b, a)                      (commutative)
    merge(merge(a, b), c) == merge(a, merge(b, c))  (associative)
    merge(a, QuantileDigest()) == a                 (identity)

Bucket counts and extrema are exact integers/comparisons, so the laws
hold exactly for everything :meth:`quantile` reads; only ``total`` (the
running sum) is a float whose re-associated additions round in the usual
IEEE way.  That is what lets the engine ship one digest per chunk in
:class:`~repro.runtime.stats.ChunkStats` and merge parent-side: the
merged digest's quantiles are *identical* to a serial run's digest over
the same per-document values, regardless of chunking or worker count.

**Resolution.**  With ``buckets_per_decade = 16`` adjacent bucket bounds
differ by ``10 ** (1/16)`` (~15.5%); quantiles interpolate in log space
inside one bucket and are clamped to the observed min/max.  The
estimate always lands in the same bucket as the true order statistic,
so it is within one bucket width (~16%) of it in the worst case --
typically about half that, since interpolation centers mid-bucket.  The layout spans ``lo = 1e-6`` seconds to ``1e6`` seconds
(12 decades, 192 buckets); values at or below ``lo`` (including zero --
sub-resolution timer readings) fall into the first bucket, values beyond
the top into the last, and both stay honest through the exact min/max.
"""

from __future__ import annotations

from math import floor, log10
from typing import Iterable, Mapping

# The one global bucket layout: every digest in the process (and every
# digest crossing the process boundary) uses it, which is what makes
# merge compatibility a non-event.  Kept as explicit constructor
# defaults so tests can build coarser layouts and the merge-layout
# guard stays honest.
DEFAULT_LO = 1e-6
DEFAULT_BUCKETS_PER_DECADE = 16
DEFAULT_DECADES = 12

# Quantiles every report/ledger surface renders.
REPORT_QUANTILES = (0.5, 0.95, 0.99)


class QuantileDigest:
    """A sparse, mergeable, fixed-layout log-bucket latency digest."""

    __slots__ = (
        "lo",
        "buckets_per_decade",
        "decades",
        "counts",
        "count",
        "total",
        "min_value",
        "max_value",
    )

    def __init__(
        self,
        *,
        lo: float = DEFAULT_LO,
        buckets_per_decade: int = DEFAULT_BUCKETS_PER_DECADE,
        decades: int = DEFAULT_DECADES,
    ) -> None:
        if lo <= 0:
            raise ValueError("lo must be positive")
        if buckets_per_decade < 1 or decades < 1:
            raise ValueError("need at least one bucket per decade and one decade")
        self.lo = float(lo)
        self.buckets_per_decade = int(buckets_per_decade)
        self.decades = int(decades)
        # Sparse: bucket index -> observation count.  Most stages hit a
        # handful of adjacent buckets, so the wire form stays tiny.
        self.counts: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min_value = 0.0
        self.max_value = 0.0

    # -- layout ---------------------------------------------------------------

    @property
    def bucket_count(self) -> int:
        return self.buckets_per_decade * self.decades

    def layout(self) -> tuple[float, int, int]:
        return (self.lo, self.buckets_per_decade, self.decades)

    def bucket_index(self, value: float) -> int:
        """The (clamped) bucket a value falls into."""
        if value <= self.lo:
            return 0
        index = int(floor(log10(value / self.lo) * self.buckets_per_decade))
        if index < 0:
            return 0
        last = self.bucket_count - 1
        return index if index < last else last

    def bucket_bounds(self, index: int) -> tuple[float, float]:
        """``(low, high]`` value bounds of one bucket (bucket 0's low
        bound is 0: it also holds sub-``lo`` and zero observations)."""
        step = 10.0 ** (1.0 / self.buckets_per_decade)
        high = self.lo * step ** (index + 1)
        low = 0.0 if index == 0 else self.lo * step**index
        return (low, high)

    @property
    def relative_error(self) -> float:
        """Documented worst-case relative quantile error (one bucket).

        :meth:`quantile` returns a value inside the bucket holding the
        true order statistic, so the two differ by at most the bucket's
        high/low ratio -- a full bucket width, reached when rank
        interpolation sits at one bucket edge while the true value sits
        at the other.  The typical error is about half this.
        """
        return 10.0 ** (1.0 / self.buckets_per_decade) - 1.0

    # -- observation ----------------------------------------------------------

    def observe(self, value: float) -> None:
        value = float(value)
        if value < 0.0:
            value = 0.0
        index = self.bucket_index(value)
        self.counts[index] = self.counts.get(index, 0) + 1
        if self.count == 0:
            self.min_value = value
            self.max_value = value
        else:
            if value < self.min_value:
                self.min_value = value
            if value > self.max_value:
                self.max_value = value
        self.count += 1
        self.total += value

    def observe_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.observe(value)

    # -- monoid ---------------------------------------------------------------

    def update(self, other: "QuantileDigest") -> None:
        """In-place merge (the engine's parent-side hot path)."""
        if other.layout() != self.layout():
            raise ValueError(
                f"digest layout mismatch: {self.layout()} vs {other.layout()}"
            )
        if other.count == 0:
            return
        if self.count == 0:
            self.min_value = other.min_value
            self.max_value = other.max_value
        else:
            if other.min_value < self.min_value:
                self.min_value = other.min_value
            if other.max_value > self.max_value:
                self.max_value = other.max_value
        for index, count in other.counts.items():
            self.counts[index] = self.counts.get(index, 0) + count
        self.count += other.count
        self.total += other.total

    def merge(self, other: "QuantileDigest") -> "QuantileDigest":
        """Pure merge: a new digest, neither operand mutated."""
        merged = self.copy()
        merged.update(other)
        return merged

    def copy(self) -> "QuantileDigest":
        clone = QuantileDigest(
            lo=self.lo,
            buckets_per_decade=self.buckets_per_decade,
            decades=self.decades,
        )
        clone.counts = dict(self.counts)
        clone.count = self.count
        clone.total = self.total
        clone.min_value = self.min_value
        clone.max_value = self.max_value
        return clone

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QuantileDigest):
            return NotImplemented
        return (
            self.layout() == other.layout()
            and self.counts == other.counts
            and self.count == other.count
            and self.total == other.total
            and self.min_value == other.min_value
            and self.max_value == other.max_value
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"QuantileDigest(count={self.count}, "
            f"p50={self.quantile(0.5):.6f}, p95={self.quantile(0.95):.6f})"
        )

    # -- quantiles ------------------------------------------------------------

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile of the observed values.

        Reads only bucket counts and the exact min/max, so serial and
        merged digests over the same observations answer identically.
        Returns 0.0 for an empty digest.
        """
        if self.count == 0:
            return 0.0
        if q <= 0.0:
            return self.min_value
        if q >= 1.0:
            return self.max_value
        rank = q * (self.count - 1)
        cumulative = 0
        for index in sorted(self.counts):
            bucket = self.counts[index]
            if rank < cumulative + bucket:
                low, high = self.bucket_bounds(index)
                fraction = (rank - cumulative + 0.5) / bucket
                fraction = min(1.0, max(0.0, fraction))
                if low <= 0.0:
                    value = high * fraction
                else:
                    value = low * (high / low) ** fraction
                return min(self.max_value, max(self.min_value, value))
            cumulative += bucket
        return self.max_value

    def quantiles(self, qs: Iterable[float] = REPORT_QUANTILES) -> list[float]:
        return [self.quantile(q) for q in qs]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        """The JSON-ready quantile summary the run ledger persists."""
        return {
            "count": self.count,
            "sum": round(self.total, 9),
            "min": round(self.min_value, 9),
            "max": round(self.max_value, 9),
            "p50": round(self.quantile(0.5), 9),
            "p95": round(self.quantile(0.95), 9),
            "p99": round(self.quantile(0.99), 9),
        }

    # -- serialization --------------------------------------------------------
    #
    # One compact tuple serves both pickle (the ChunkStats wire format
    # crossing the engine's process boundary) and JSON; sparse counts
    # travel as parallel (indices, counts) lists.

    def __getstate__(self) -> tuple:
        indices = sorted(self.counts)
        return (
            self.lo,
            self.buckets_per_decade,
            self.decades,
            indices,
            [self.counts[index] for index in indices],
            self.count,
            self.total,
            self.min_value,
            self.max_value,
        )

    def __setstate__(self, state: tuple) -> None:
        (
            lo,
            buckets_per_decade,
            decades,
            indices,
            counts,
            count,
            total,
            min_value,
            max_value,
        ) = state
        self.lo = lo
        self.buckets_per_decade = buckets_per_decade
        self.decades = decades
        self.counts = dict(zip(indices, counts))
        self.count = count
        self.total = total
        self.min_value = min_value
        self.max_value = max_value

    def to_json(self) -> dict:
        return {
            "lo": self.lo,
            "buckets_per_decade": self.buckets_per_decade,
            "decades": self.decades,
            "indices": sorted(self.counts),
            "counts": [self.counts[index] for index in sorted(self.counts)],
            "count": self.count,
            "total": self.total,
            "min": self.min_value,
            "max": self.max_value,
        }

    @classmethod
    def from_json(cls, data: Mapping) -> "QuantileDigest":
        digest = cls(
            lo=data.get("lo", DEFAULT_LO),
            buckets_per_decade=data.get(
                "buckets_per_decade", DEFAULT_BUCKETS_PER_DECADE
            ),
            decades=data.get("decades", DEFAULT_DECADES),
        )
        digest.counts = {
            int(index): int(count)
            for index, count in zip(data.get("indices", []), data.get("counts", []))
        }
        digest.count = int(data.get("count", 0))
        digest.total = float(data.get("total", 0.0))
        digest.min_value = float(data.get("min", 0.0))
        digest.max_value = float(data.get("max", 0.0))
        return digest


def merge_digest_maps(
    held: dict[str, QuantileDigest], other: Mapping[str, QuantileDigest]
) -> None:
    """Fold a ``{stage: digest}`` map into another, in place -- the
    parent-side merge of per-chunk stage digests."""
    for stage, digest in other.items():
        mine = held.get(stage)
        if mine is None:
            held[stage] = digest.copy()
        else:
            mine.update(digest)

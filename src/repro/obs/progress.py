"""Rate-limited live progress/ETA reporting for long corpus runs.

A :class:`ProgressReporter` is the engine's ``progress`` hook: the merge
loop calls it with the run's :class:`~repro.runtime.stats.EngineStats`
after every chunk merge, and it renders a single self-overwriting
stderr line::

    [repro-web]  312/1000 docs  31%  847.2 docs/s  ETA 0.8s  (2 failed)

Three properties keep it safe to leave on by default:

* **Rate-limited** -- at most one render per ``min_interval`` seconds
  (plus a final one from :meth:`finish`), so a million-document run
  costs a handful of writes per second, not one per chunk.
* **Auto-disabled off-TTY** -- when the target stream is not a terminal
  (CI logs, pipes) nothing is written unless the caller forces
  ``enabled=True`` (the CLI's ``--progress``); ``--quiet`` forces it
  off.  A disabled reporter's ``__call__`` is a cheap early return.
* **Out-of-band** -- it writes to stderr only and never touches the
  conversion output, so XML/DTD bytes are identical with progress on or
  off (the run-intelligence differential tests pin this).

The ETA comes from the merged chunk stats: documents finished so far
over elapsed wall time, extrapolated to the remaining document count
(unknown totals render without the ETA/percent fields).
"""

from __future__ import annotations

import sys
import time
from typing import Callable, Protocol, TextIO


class _StatsLike(Protocol):  # pragma: no cover - typing aid
    documents: int
    documents_failed: int
    wall_seconds: float


# Rate computations floor elapsed time here: a first-tick merge can
# arrive with microseconds on the clock, and dividing by it would print
# an absurd six-figure docs/s (and a bogus near-zero ETA) before the
# run settles.  Mirrors stats.MIN_WALL_SECONDS.
MIN_RATE_ELAPSED = 1e-3


def _default_enabled(stream: TextIO) -> bool:
    isatty = getattr(stream, "isatty", None)
    try:
        return bool(isatty()) if callable(isatty) else False
    except (OSError, ValueError):
        return False


class ProgressReporter:
    """Renders live progress for one engine run; call :meth:`finish` (or
    use as a context manager) to terminate the line."""

    def __init__(
        self,
        total: int | None = None,
        *,
        stream: TextIO | None = None,
        min_interval: float = 0.2,
        enabled: bool | None = None,
        clock: Callable[[], float] = time.monotonic,
        label: str = "repro-web",
    ) -> None:
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = min_interval
        self.enabled = (
            _default_enabled(self.stream) if enabled is None else enabled
        )
        self.clock = clock
        self.label = label
        self.renders = 0
        self._last_render = float("-inf")
        self._last_width = 0
        self._finished = False

    # -- engine hook ----------------------------------------------------------

    def __call__(self, stats: _StatsLike) -> None:
        """The engine's per-merge progress hook."""
        if not self.enabled:
            return
        now = self.clock()
        if now - self._last_render < self.min_interval:
            return
        self._last_render = now
        self._render(stats.documents, stats.documents_failed, stats.wall_seconds)

    def finish(self, stats: _StatsLike | None = None) -> None:
        """Render one final line (ignoring the rate limit) and end it.

        Idempotent, and a no-op when nothing was ever rendered and no
        final stats were supplied: a run that never drew a progress line
        (or an exception path calling ``finish()`` defensively) must not
        emit a stray newline into captured stderr."""
        if not self.enabled or self._finished:
            return
        if stats is not None:
            self._render(
                stats.documents, stats.documents_failed, stats.wall_seconds
            )
        self._finished = True
        if self.renders == 0:
            return
        self.stream.write("\n")
        self.stream.flush()

    def __enter__(self) -> "ProgressReporter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.finish()

    # -- rendering ------------------------------------------------------------

    def format_line(self, done: int, failed: int, elapsed: float) -> str:
        """The progress line for a given state (exposed for tests).

        Degenerate inputs stay sane: zero/negative elapsed never
        divides by zero, sub-millisecond first ticks are floored to
        :data:`MIN_RATE_ELAPSED` so the rate (and the ETA derived from
        it) is never garbage, and a zero rate suppresses the ETA field
        entirely rather than extrapolating from nothing."""
        rate = done / max(elapsed, MIN_RATE_ELAPSED) if done > 0 else 0.0
        parts = [f"[{self.label}] "]
        if self.total is not None and self.total > 0:
            finished = done + failed
            percent = min(1.0, finished / self.total)
            parts.append(f" {done}/{self.total} docs  {percent:.0%}")
        else:
            parts.append(f" {done} docs")
        parts.append(f"  {rate:.1f} docs/s")
        if self.total is not None and rate > 0:
            remaining = max(0, self.total - done - failed)
            parts.append(f"  ETA {remaining / rate:.1f}s")
        if failed:
            parts.append(f"  ({failed} failed)")
        return "".join(parts)

    def _render(self, done: int, failed: int, elapsed: float) -> None:
        line = self.format_line(done, failed, elapsed)
        # Overwrite the previous line in place; pad with spaces when the
        # new line is shorter so stale characters never linger.
        padding = " " * max(0, self._last_width - len(line))
        self.stream.write("\r" + line + padding)
        self.stream.flush()
        self._last_width = len(line)
        self.renders += 1

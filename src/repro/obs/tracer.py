"""Hierarchical span tracing for the conversion/discovery pipeline.

A :class:`Span` is one timed region (a rule application, a chunk, a
discovery stage) with a name, attributes, and a parent -- together the
spans of one run form a tree whose root is the engine run and whose
leaves are individual rule applications.  :class:`Tracer` hands out
spans through a context-manager API::

    with tracer.span("convert.tokenize", doc="doc0003") as span:
        tokens = apply_tokenization_rule(...)
        span.set(tokens=tokens)

The default everywhere is :data:`NULL_TRACER`, whose :meth:`span` is a
reusable no-op context manager -- no span objects, no clock reads, no
allocation -- so the instrumented hot path costs one method call per
stage when tracing is off.

**Crossing the process boundary.**  Worker processes cannot share a
tracer, so each chunk worker builds its own, serializes its spans with
:meth:`Tracer.export`, and ships plain dicts back in the chunk payload.
The parent re-parents them with :meth:`Tracer.adopt`: span ids are
namespaced by a per-chunk prefix (keeping them unique corpus-wide) and
roots of the worker's span forest are attached under the parent's
current span.  Span clocks are ``time.perf_counter`` readings, which are
process-local: durations (``seconds``) are always meaningful, absolute
``start``/``end`` values only within one process.
"""

from __future__ import annotations

import time
from typing import Iterator, Mapping


class Span:
    """One timed, named, attributed region of the pipeline."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attrs")

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: str | None = None,
        start: float = 0.0,
        end: float = 0.0,
        attrs: dict | None = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end = end
        self.attrs = attrs if attrs is not None else {}

    @property
    def seconds(self) -> float:
        """Wall-clock duration of the span."""
        return max(0.0, self.end - self.start)

    def set(self, **attrs: object) -> None:
        """Attach attributes to the span (counters, ids, outcomes)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict:
        """JSONL-ready representation (``kind`` discriminates records)."""
        return {
            "kind": "span",
            "name": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "start": self.start,
            "end": self.end,
            "seconds": self.seconds,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Span":
        return cls(
            name=data["name"],
            span_id=data["id"],
            parent_id=data.get("parent"),
            start=float(data.get("start", 0.0)),
            end=float(data.get("end", 0.0)),
            attrs=dict(data.get("attrs", {})),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, id={self.span_id!r}, {self.seconds:.6f}s)"


class _SpanContext:
    """Context manager that times one span and registers it on exit."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._span.start = time.perf_counter()
        self._tracer._stack.append(self._span.span_id)
        return self._span

    def __exit__(self, *exc_info: object) -> None:
        self._span.end = time.perf_counter()
        self._tracer._stack.pop()
        self._tracer.spans.append(self._span)


class Tracer:
    """Collects a tree of spans; the active ("recording") tracer."""

    enabled = True

    def __init__(self, *, id_prefix: str = "s") -> None:
        self.spans: list[Span] = []
        self._stack: list[str] = []
        self._id_prefix = id_prefix
        self._next_id = 0

    def span(self, name: str, **attrs: object) -> _SpanContext:
        """A context manager for one timed span, nested under the
        currently open span (if any)."""
        self._next_id += 1
        span = Span(
            name,
            f"{self._id_prefix}{self._next_id}",
            parent_id=self.current_span_id,
            attrs=dict(attrs) if attrs else {},
        )
        return _SpanContext(self, span)

    @property
    def current_span_id(self) -> str | None:
        """Id of the innermost open span, or ``None`` at the top level."""
        return self._stack[-1] if self._stack else None

    # -- serialization across the process boundary ---------------------------

    def export(self) -> list[dict]:
        """Spans as plain dicts, completion order (children first)."""
        return [span.to_dict() for span in self.spans]

    def adopt(
        self,
        span_dicts: list[dict],
        *,
        parent_id: str | None = None,
        prefix: str = "",
    ) -> list[Span]:
        """Graft serialized spans from another process into this tracer.

        Every span id (and internal parent reference) is namespaced with
        ``prefix`` so ids stay unique after merging many workers; spans
        that were roots in the worker (no parent) are re-parented under
        ``parent_id`` (defaulting to this tracer's current span).
        """
        if parent_id is None:
            parent_id = self.current_span_id
        adopted: list[Span] = []
        for data in span_dicts:
            span = Span.from_dict(data)
            span.span_id = prefix + span.span_id
            if span.parent_id is None:
                span.parent_id = parent_id
            else:
                span.parent_id = prefix + span.parent_id
            self.spans.append(span)
            adopted.append(span)
        return adopted

    # -- queries (tests, reports) --------------------------------------------

    def by_name(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    def names(self) -> set[str]:
        return {span.name for span in self.spans}

    def children_of(self, span_id: str) -> list[Span]:
        return [span for span in self.spans if span.parent_id == span_id]

    def iter_dicts(self) -> Iterator[dict]:
        for span in self.spans:
            yield span.to_dict()


class _NullSpan:
    """The do-nothing span yielded when tracing is off."""

    __slots__ = ()

    name = ""
    span_id = ""
    parent_id = None
    start = 0.0
    end = 0.0
    seconds = 0.0

    def set(self, **attrs: object) -> None:
        pass

    @property
    def attrs(self) -> dict:
        return {}


class _NullSpanContext:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return _NULL_SPAN

    def __exit__(self, *exc_info: object) -> None:
        pass


class NullTracer:
    """No-op tracer: the default on every instrumented code path.

    ``span`` returns a shared, stateless context manager -- no clock
    reads, no allocations -- so leaving instrumentation in place costs
    one attribute lookup and one call per stage.
    """

    enabled = False

    def span(self, name: str, **attrs: object) -> _NullSpanContext:
        return _NULL_CONTEXT

    @property
    def current_span_id(self) -> None:
        return None

    def export(self) -> list[dict]:
        return []

    def adopt(self, span_dicts: list[dict], **kwargs: object) -> list[Span]:
        return []


_NULL_SPAN = _NullSpan()
_NULL_CONTEXT = _NullSpanContext()
NULL_TRACER = NullTracer()


def resolve_tracer(tracer: "Tracer | NullTracer | None") -> "Tracer | NullTracer":
    """``tracer`` if given, else the shared no-op tracer."""
    return tracer if tracer is not None else NULL_TRACER

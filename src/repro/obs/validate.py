"""Validation of emitted observability artifacts.

Two artifact classes are validated, both in CI (see the ``obs-validate``
workflow job) and by ``repro-web validate-obs``:

* the ``--trace-out`` JSONL (span + provenance records) against the
  checked-in schema ``trace_schema.json`` shipped inside this package --
  a deliberately small, dependency-free schema dialect: per-record-kind
  required/optional field types (``string``, ``number``, ``boolean``,
  ``object``, ``null``, unions with ``|``), enums, and a *coverage*
  section naming the span names and event kinds a healthy full-pipeline
  run must emit;
* the ``--metrics-out`` output: Prometheus text exposition (every sample
  matches the line grammar, every series has a ``# TYPE``, histograms
  carry ``+Inf``/``_sum``/``_count``) or the registry JSON snapshot
  (must round-trip through :meth:`MetricsRegistry.from_json`).

All validators return a list of human-readable error strings; empty
means valid.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterable

from repro.obs.metrics import MetricsRegistry

_SCHEMA_PATH = Path(__file__).with_name("trace_schema.json")
_RUNLOG_SCHEMA_PATH = Path(__file__).with_name("runlog_schema.json")

_TYPE_CHECKS = {
    "string": lambda v: isinstance(v, str),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "null": lambda v: v is None,
}


def load_schema(path: str | Path | None = None) -> dict:
    """The checked-in trace schema (or one loaded from ``path``)."""
    return json.loads(Path(path or _SCHEMA_PATH).read_text(encoding="utf-8"))


def _check_type(value: object, spec: str) -> bool:
    return any(
        _TYPE_CHECKS[alternative](value) for alternative in spec.split("|")
    )


def validate_record(record: object, schema: dict, where: str = "") -> list[str]:
    """Errors in one parsed JSONL record (empty list = valid)."""
    prefix = f"{where}: " if where else ""
    if not isinstance(record, dict):
        return [f"{prefix}record is not a JSON object"]
    kind = record.get("kind")
    spec = schema["records"].get(kind)
    if spec is None:
        return [f"{prefix}unknown record kind {kind!r}"]
    errors: list[str] = []
    known = {**spec["required"], **spec.get("optional", {})}
    for field, type_spec in spec["required"].items():
        if field not in record:
            errors.append(f"{prefix}{kind} record missing field {field!r}")
        elif not _check_type(record[field], type_spec):
            errors.append(
                f"{prefix}{kind}.{field} has type "
                f"{type(record[field]).__name__}, wanted {type_spec}"
            )
    for field, type_spec in spec.get("optional", {}).items():
        if field in record and not _check_type(record[field], type_spec):
            errors.append(
                f"{prefix}{kind}.{field} has type "
                f"{type(record[field]).__name__}, wanted {type_spec}"
            )
    if not spec.get("allow_extra", False):
        for field in record:
            if field not in known:
                errors.append(f"{prefix}{kind} record has unknown field {field!r}")
    for enum_key, allowed in schema.get("enums", {}).items():
        enum_kind, _, enum_field = enum_key.partition(".")
        if kind == enum_kind and enum_field in record:
            if record[enum_field] not in allowed:
                errors.append(
                    f"{prefix}{kind}.{enum_field} value "
                    f"{record[enum_field]!r} not in {allowed}"
                )
    return errors


def validate_trace_lines(
    lines: Iterable[str],
    *,
    schema: dict | None = None,
    require_coverage: bool = False,
) -> list[str]:
    """Validate JSONL trace content line by line.

    ``require_coverage`` additionally enforces the schema's coverage
    section: every listed span name and event kind must occur at least
    once -- the acceptance bar for a full convert+discover run.
    """
    schema = schema or load_schema()
    errors: list[str] = []
    seen_span_names: set[str] = set()
    seen_kinds: set[str] = set()
    count = 0
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: invalid JSON ({exc})")
            continue
        errors.extend(validate_record(record, schema, where=f"line {number}"))
        if isinstance(record, dict):
            seen_kinds.add(record.get("kind", ""))
            if record.get("kind") == "span":
                seen_span_names.add(record.get("name", ""))
    if count == 0:
        errors.append("trace is empty")
    if require_coverage:
        coverage = schema.get("coverage", {})
        for name in coverage.get("span_names", []):
            if name not in seen_span_names:
                errors.append(f"coverage: no span named {name!r}")
        for kind in coverage.get("event_kinds", []):
            if kind not in seen_kinds:
                errors.append(f"coverage: no {kind!r} record")
    return errors


def validate_trace_file(
    path: str | Path,
    *,
    schema: dict | None = None,
    require_coverage: bool = False,
) -> list[str]:
    """Validate a ``--trace-out`` JSONL file."""
    text = Path(path).read_text(encoding="utf-8")
    return validate_trace_lines(
        text.splitlines(), schema=schema, require_coverage=require_coverage
    )


# -- run ledger ---------------------------------------------------------------


def load_runlog_schema(path: str | Path | None = None) -> dict:
    """The checked-in run-ledger schema (or one loaded from ``path``)."""
    return json.loads(Path(path or _RUNLOG_SCHEMA_PATH).read_text(encoding="utf-8"))


def validate_runlog_lines(
    lines: Iterable[str], *, schema: dict | None = None
) -> list[str]:
    """Validate run-ledger JSONL content line by line (same record
    dialect as the trace schema; every record must be ``kind: "run"``)."""
    schema = schema or load_runlog_schema()
    errors: list[str] = []
    count = 0
    for number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        count += 1
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            errors.append(f"line {number}: invalid JSON ({exc})")
            continue
        errors.extend(validate_record(record, schema, where=f"line {number}"))
    if count == 0:
        errors.append("run ledger is empty")
    return errors


def validate_runlog_file(
    path: str | Path, *, schema: dict | None = None
) -> list[str]:
    """Validate a ``--runlog`` ledger file."""
    text = Path(path).read_text(encoding="utf-8")
    return validate_runlog_lines(text.splitlines(), schema=schema)


# -- Prometheus text exposition ----------------------------------------------

_PROM_NAME = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_PROM_TYPE_RE = re.compile(
    rf"^# TYPE ({_PROM_NAME}) (counter|gauge|histogram|summary|untyped)$"
)
_PROM_HELP_RE = re.compile(rf"^# HELP {_PROM_NAME} .*$")
# One `name="value"` pair: the value is a quoted string whose inner
# characters are anything except a raw quote/backslash, or a backslash
# escape.  A naive `[^{}]*` label block would reject legitimate escaped
# quotes and label values containing `{`/`}` (document ids and label
# paths can carry all of these).
_PROM_LABEL = r'[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
_PROM_SAMPLE_RE = re.compile(
    rf"^({_PROM_NAME})"
    rf"(\{{{_PROM_LABEL}(?:,{_PROM_LABEL})*,?\}})?"
    rf" ([0-9eE+.\-]+|NaN|[+-]Inf)(\s+\d+)?$"
)


def validate_prometheus_text(text: str) -> list[str]:
    """Errors in a Prometheus text-exposition document."""
    errors: list[str] = []
    declared: dict[str, str] = {}
    samples: list[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            type_match = _PROM_TYPE_RE.match(line)
            if type_match:
                declared[type_match.group(1)] = type_match.group(2)
            elif not _PROM_HELP_RE.match(line):
                errors.append(f"line {number}: malformed comment {line!r}")
            continue
        sample = _PROM_SAMPLE_RE.match(line)
        if not sample:
            errors.append(f"line {number}: malformed sample {line!r}")
            continue
        samples.append(sample.group(1))
    if not samples:
        errors.append("no samples in exposition output")
    for name in samples:
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in declared and base not in declared:
            errors.append(f"sample {name!r} has no # TYPE declaration")
    for name, kind in declared.items():
        if kind == "histogram":
            for suffix in ("_bucket", "_sum", "_count"):
                if name + suffix not in samples:
                    errors.append(f"histogram {name!r} missing {suffix} samples")
    return errors


def validate_metrics_file(path: str | Path) -> list[str]:
    """Validate a ``--metrics-out`` file (.prom exposition or .json)."""
    target = Path(path)
    text = target.read_text(encoding="utf-8")
    if target.suffix in (".prom", ".txt"):
        return validate_prometheus_text(text)
    try:
        registry = MetricsRegistry.from_json(json.loads(text))
    except (json.JSONDecodeError, KeyError, ValueError) as exc:
        return [f"metrics JSON does not round-trip: {exc}"]
    if len(registry) == 0:
        return ["metrics JSON contains no metrics"]
    return []

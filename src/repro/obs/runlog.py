"""The persistent run ledger and the benchmark regression detector.

Every engine run can append one self-describing JSON record (``kind:
"run"``) to an append-only JSONL **ledger**: run id, config fingerprint,
corpus size, per-stage latency quantiles (from the mergeable
:class:`~repro.obs.quantiles.QuantileDigest` the chunks ship home),
docs/sec, failure breakdown, tagger-cache hit rates, and the top-K
slowest documents with their label-path context.  ``repro-web report``
renders a record; ``repro-web runs`` lists the ledger and diffs the
latest run against its history.

The **regression detector** is one comparator used three ways:

* latest ledger record vs. the median of earlier same-configuration
  records (``repro-web runs --check``),
* a fresh benchmark result vs. the committed ``BENCH_engine.json`` /
  ``BENCH_tagging.json`` baselines (the ``obs-report-smoke`` CI job),
* any two records a caller hands it.

Throughput-like metrics (``docs_per_second``, ``*_per_sec``,
``speedup``, ``ratio``) regress by *dropping*; latency quantiles
(stage/document p95) regress by *rising*.  Either direction is flagged
when the relative change crosses the threshold (default 20%).

Ledger records validate against the checked-in ``runlog_schema.json``
(same dependency-free schema dialect as ``trace_schema.json``), so a
ledger written on one machine is checkable anywhere.
"""

from __future__ import annotations

import hashlib
import json
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.stats import EngineStats

RUNLOG_VERSION = 1

# How many slowest documents a run record retains.
SLOWEST_KEPT = 10

# Metric-name fragments the benchmark walker treats as throughput
# (higher is better); everything else it ignores unless quantile-shaped.
_THROUGHPUT_MARKERS = ("per_sec", "per_second", "speedup", "ratio")


# -- run records --------------------------------------------------------------


def _canonical(value: object) -> str:
    """A process-independent textual form of a config value.

    ``repr`` alone is not stable across interpreter invocations for
    unordered collections (string hash randomization reorders set and
    dict iteration), which would make two identical runs fingerprint
    differently -- so sets are sorted and mappings key-sorted first.
    """
    if isinstance(value, Mapping):
        items = sorted(value.items(), key=lambda kv: repr(kv[0]))
        return "{" + ",".join(
            f"{_canonical(k)}:{_canonical(v)}" for k, v in items
        ) + "}"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(v) for v in value)) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    return repr(value)


def config_fingerprint(*parts: object) -> str:
    """A short stable digest of run configuration.

    Dataclasses contribute their field dict, mappings their sorted
    items, everything else its canonical ``repr`` -- enough to tell
    "same code, same knobs" runs apart from reconfigured ones without
    serializing whole objects into the ledger.  Stable across separate
    interpreter processes (see :func:`_canonical`).
    """
    canonical: list[str] = []
    for part in parts:
        state = getattr(part, "__dict__", None)
        if isinstance(part, Mapping):
            state = dict(part)
        if isinstance(state, dict) and state:
            canonical.append(
                json.dumps(
                    {key: _canonical(value) for key, value in state.items()},
                    sort_keys=True,
                )
            )
        else:
            canonical.append(_canonical(part))
    digest = hashlib.sha256("\x1f".join(canonical).encode()).hexdigest()
    return digest[:16]


def new_run_id(*, clock=time.time) -> str:
    """A unique, chronologically sortable run id."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime(clock()))
    return f"run-{stamp}-{uuid.uuid4().hex[:8]}"


def build_run_record(
    stats: "EngineStats",
    *,
    run_id: str | None = None,
    fingerprint: str = "",
    topic: str = "",
    corpus_size: int | None = None,
    timestamp: float | None = None,
    extra: Mapping[str, object] | None = None,
) -> dict:
    """One ledger record for a finished engine run."""
    now = time.time() if timestamp is None else timestamp
    stage_quantiles = {
        stage: digest.summary()
        for stage, digest in sorted(stats.stage_digests.items())
        if digest.count
    }
    record: dict = {
        "kind": "run",
        "version": RUNLOG_VERSION,
        "run_id": run_id or new_run_id(clock=lambda: now),
        "timestamp": round(now, 3),
        "time_iso": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
        "topic": topic,
        "config_fingerprint": fingerprint,
        "workers": stats.workers,
        "chunk_size": stats.chunk_size,
        "documents": stats.documents,
        "documents_failed": stats.documents_failed,
        "corpus_size": (
            corpus_size
            if corpus_size is not None
            else stats.documents + stats.documents_failed
        ),
        "wall_seconds": round(stats.wall_seconds, 6),
        "worker_seconds": round(stats.worker_seconds, 6),
        "docs_per_second": round(stats.docs_per_second, 3),
        "failures_by_stage": dict(sorted(stats.failures_by_stage.items())),
        "pool_rebuilds": stats.pool_rebuilds,
        "cache": {
            "hit_rate": round(stats.tagger_cache_hit_rate, 4),
            "events": {
                cache: dict(sorted(counters.items()))
                for cache, counters in sorted(stats.tagger_cache_events.items())
            },
        },
        "stage_quantiles": stage_quantiles,
        "slowest_documents": list(stats.slowest_docs[:SLOWEST_KEPT]),
    }
    if extra:
        record.update(extra)
    return record


def build_evolution_record(
    outcome,
    *,
    run_id: str | None = None,
    topic: str = "",
    timestamp: float | None = None,
    migration: Mapping[str, object] | None = None,
    repository_version: int | None = None,
    extra: Mapping[str, object] | None = None,
) -> dict:
    """One ledger record (``kind: "evolution"``) for a schema fold.

    ``outcome`` is a :class:`~repro.schema.evolution.FoldOutcome`;
    ``migration`` and ``repository_version`` describe what the fold did
    to a versioned repository, when one was attached.
    """
    now = time.time() if timestamp is None else timestamp
    record: dict = {
        "kind": "evolution",
        "version": RUNLOG_VERSION,
        "run_id": run_id or new_run_id(clock=lambda: now),
        "timestamp": round(now, 3),
        "time_iso": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime(now)),
        "topic": topic,
        "documents_folded": outcome.documents_folded,
        "total_documents": outcome.total_documents,
        "schema_version": outcome.version,
        "bumped": outcome.bumped,
        "derived": outcome.derived,
        "compacted": outcome.compacted,
        "paths_added": len(outcome.diff.added) if outcome.diff else 0,
        "paths_removed": len(outcome.diff.removed) if outcome.diff else 0,
        "migration": dict(migration) if migration else None,
        "repository_version": repository_version,
    }
    if extra:
        record.update(extra)
    return record


class RunLedger:
    """Append-only JSONL ledger of run records."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def append(self, record: dict) -> dict:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
        return record

    def records(self) -> list[dict]:
        """All parseable records, oldest first (blank lines skipped)."""
        if not self.path.exists():
            return []
        records = []
        for line in self.path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict):
                records.append(record)
        return records

    def latest(self) -> dict | None:
        records = self.records()
        return records[-1] if records else None

    def find(self, run_id: str) -> dict | None:
        for record in self.records():
            if record.get("run_id") == run_id:
                return record
        return None

    def __len__(self) -> int:
        return len(self.records())


# -- regression detection -----------------------------------------------------


@dataclass
class Regression:
    """One flagged metric change between a baseline and a current run."""

    metric: str
    baseline: float
    current: float
    change: float  # signed relative change, e.g. -0.31 = 31% drop
    direction: str  # "drop" | "rise"

    @property
    def message(self) -> str:
        verb = "dropped" if self.direction == "drop" else "rose"
        return (
            f"{self.metric} {verb} {abs(self.change):.0%}: "
            f"{self.baseline:g} -> {self.current:g}"
        )


def _relative_change(baseline: float, current: float) -> float:
    if baseline == 0:
        return 0.0
    return (current - baseline) / baseline


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def compare_records(
    current: Mapping,
    baseline: Mapping,
    *,
    threshold: float = 0.2,
    min_latency_delta: float = 0.005,
) -> list[Regression]:
    """Regressions of one run record against a baseline record.

    Flags: ``docs_per_second`` drops, and per-stage / per-document p95
    rises, beyond ``threshold`` relative change.  Stages present in only
    one record are skipped (nothing to compare).

    A p95 rise must also exceed ``min_latency_delta`` seconds in
    absolute terms: sub-millisecond stage latencies jitter by integer
    multiples run to run, and a 5x rise on a 0.2 ms stage is scheduler
    noise, not a regression worth failing CI over.
    """
    regressions: list[Regression] = []
    base_rate = float(baseline.get("docs_per_second", 0.0) or 0.0)
    cur_rate = float(current.get("docs_per_second", 0.0) or 0.0)
    if base_rate > 0:
        change = _relative_change(base_rate, cur_rate)
        if change <= -threshold:
            regressions.append(
                Regression("docs_per_second", base_rate, cur_rate, change, "drop")
            )
    base_stages = baseline.get("stage_quantiles", {}) or {}
    cur_stages = current.get("stage_quantiles", {}) or {}
    for stage in sorted(set(base_stages) & set(cur_stages)):
        base_p95 = float(base_stages[stage].get("p95", 0.0) or 0.0)
        cur_p95 = float(cur_stages[stage].get("p95", 0.0) or 0.0)
        if base_p95 <= 0:
            continue
        if cur_p95 - base_p95 < min_latency_delta:
            continue
        change = _relative_change(base_p95, cur_p95)
        if change >= threshold:
            regressions.append(
                Regression(f"{stage}.p95", base_p95, cur_p95, change, "rise")
            )
    return regressions


def baseline_of_history(
    history: Iterable[Mapping], latest: Mapping
) -> dict | None:
    """A synthetic baseline record: the per-metric median over earlier
    records comparable to ``latest`` (same config fingerprint and worker
    count -- reconfigured runs are expected to perform differently)."""
    comparable = [
        record
        for record in history
        if record is not latest
        and record.get("config_fingerprint") == latest.get("config_fingerprint")
        and record.get("workers") == latest.get("workers")
    ]
    if not comparable:
        return None
    baseline: dict = {
        "run_id": f"median-of-{len(comparable)}",
        "docs_per_second": _median(
            [float(r.get("docs_per_second", 0.0) or 0.0) for r in comparable]
        ),
        "stage_quantiles": {},
    }
    stages: set[str] = set()
    for record in comparable:
        stages.update((record.get("stage_quantiles") or {}).keys())
    for stage in stages:
        p95s = [
            float(r["stage_quantiles"][stage].get("p95", 0.0) or 0.0)
            for r in comparable
            if stage in (r.get("stage_quantiles") or {})
        ]
        if p95s:
            baseline["stage_quantiles"][stage] = {"p95": _median(p95s)}
    return baseline


def detect_history_regressions(
    records: list[dict], *, threshold: float = 0.2
) -> tuple[dict | None, list[Regression]]:
    """Diff the ledger's latest record against its comparable history.

    Returns ``(baseline, regressions)``; baseline is ``None`` (and the
    list empty) when there is no comparable history to judge against.
    """
    if not records:
        return None, []
    latest = records[-1]
    baseline = baseline_of_history(records[:-1], latest)
    if baseline is None:
        return None, []
    return baseline, compare_records(latest, baseline, threshold=threshold)


def bench_regressions(
    current: Mapping,
    baseline: Mapping,
    *,
    threshold: float = 0.2,
    prefix: str = "",
) -> list[Regression]:
    """Throughput regressions between two benchmark JSON documents.

    Walks both trees in parallel; numeric leaves whose key names a
    throughput (``*_per_sec``, ``speedup``, ``ratio``, ...) are flagged
    when the current value drops more than ``threshold`` below the
    baseline.  Keys present in only one tree are ignored, so the
    detector survives benchmark files growing new sections.
    """
    regressions: list[Regression] = []
    for key in sorted(set(current) & set(baseline)):
        path = f"{prefix}.{key}" if prefix else str(key)
        cur, base = current[key], baseline[key]
        if isinstance(cur, Mapping) and isinstance(base, Mapping):
            regressions.extend(
                bench_regressions(
                    cur, base, threshold=threshold, prefix=path
                )
            )
            continue
        if not isinstance(cur, (int, float)) or not isinstance(base, (int, float)):
            continue
        if isinstance(cur, bool) or isinstance(base, bool):
            continue
        if not any(marker in str(key) for marker in _THROUGHPUT_MARKERS):
            continue
        if base <= 0:
            continue
        change = _relative_change(float(base), float(cur))
        if change <= -threshold:
            regressions.append(
                Regression(path, float(base), float(cur), change, "drop")
            )
    return regressions

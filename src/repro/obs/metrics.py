"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The registry is the single numeric sink of the pipeline: the engine's
:class:`~repro.runtime.stats.EngineStats` is a view over one, the serial
CLI path shares the same per-rule counters, and both export formats --
JSON (re-loadable, rendered by ``repro-web stats``) and the Prometheus
text exposition format -- read straight from it.

Metrics are identified by ``(name, labels)``; names follow Prometheus
conventions (``repro_engine_documents_total``), labels are a small
``key=value`` set (``repro_rule_seconds_total{rule="instance"}``).
Histograms use *cumulative upper-bound* buckets (``le`` semantics: an
observation equal to a bound falls into that bound's bucket), so the
exposition output is valid Prometheus histogram data.

Everything is picklable and mergeable: worker processes can fill a
registry and the parent folds it in with :meth:`MetricsRegistry.merge`
(counters and histogram buckets add; gauges take the other side's value).
"""

from __future__ import annotations

import json
import re
from bisect import bisect_left
from typing import Iterator, Mapping, Sequence

LabelSet = tuple[tuple[str, str], ...]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

# Default bucket bounds for wall-clock seconds (sub-ms to tens of
# seconds -- one document converts in milliseconds, a chunk in tens of
# milliseconds, a corpus in seconds).
SECONDS_BUCKETS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


def _labelset(labels: Mapping[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the 0.0.4 text format: backslash,
    double-quote, and newline (in that order -- backslash first, or the
    escapes themselves would be re-escaped).  Label values reaching the
    exposition can contain all three: document ids come from arbitrary
    file stems and label paths from document content."""
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _escape_help_text(text: str) -> str:
    """Escape ``# HELP`` text: only backslash and newline (the 0.0.4
    format does *not* escape double quotes in help text)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _render_labels(labels: LabelSet, extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [*labels, *extra]
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + inner + "}"


class Metric:
    """Base: a named, labeled metric."""

    kind = "untyped"

    def __init__(self, name: str, labels: LabelSet) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for key, _value in labels:
            if not _LABEL_RE.match(key):
                raise ValueError(f"invalid label name {key!r}")
        self.name = name
        self.labels = labels

    def label_dict(self) -> dict[str, str]:
        return dict(self.labels)


class Counter(Metric):
    """A monotonically increasing sum."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet) -> None:
        super().__init__(name, labels)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


GAUGE_MERGE_MODES = ("last", "max", "min", "sum")


class Gauge(Metric):
    """A value that can go up and down (set wins over arithmetic).

    ``merge_mode`` is the cross-registry aggregation hint consulted by
    :meth:`MetricsRegistry.merge`: ``"last"`` (the historical
    last-writer-wins), ``"max"``/``"min"`` for high/low-water marks that
    must survive merging chunk-worker registries, or ``"sum"``.
    Without it, a per-worker high-water mark like queue depth would be
    silently understated by whichever worker merged last.
    """

    kind = "gauge"

    def __init__(
        self, name: str, labels: LabelSet, merge_mode: str = "last"
    ) -> None:
        super().__init__(name, labels)
        if merge_mode not in GAUGE_MERGE_MODES:
            raise ValueError(f"unknown gauge merge mode {merge_mode!r}")
        self.value: float = 0.0
        self.merge_mode = merge_mode

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def max(self, value: float) -> None:
        """Keep the running maximum (queue depths, high-water marks)."""
        if value > self.value:
            self.value = float(value)


class Histogram(Metric):
    """Fixed-bucket histogram with cumulative ``le`` export semantics.

    ``bucket_counts[i]`` counts observations ``<= bounds[i]`` and
    ``> bounds[i-1]`` (non-cumulative storage); the final implicit
    ``+Inf`` bucket is ``bucket_counts[-1]``.  Rendering accumulates.
    """

    kind = "histogram"

    def __init__(
        self, name: str, labels: LabelSet, bounds: Sequence[float]
    ) -> None:
        super().__init__(name, labels)
        ordered = tuple(float(b) for b in bounds)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError("histogram bounds must be sorted and distinct")
        self.bounds = ordered
        self.bucket_counts = [0] * (len(ordered) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> list[int]:
        """Counts per ``le`` bound, cumulative, ``+Inf`` last."""
        out: list[int] = []
        running = 0
        for count in self.bucket_counts:
            running += count
            out.append(running)
        return out

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile by linear interpolation within the
        containing bucket (Prometheus ``histogram_quantile`` semantics:
        the first bucket interpolates from 0; ranks landing in the
        ``+Inf`` bucket return the largest finite bound).  Returns 0.0
        for an empty histogram."""
        if self.count == 0:
            return 0.0
        q = min(1.0, max(0.0, q))
        rank = q * self.count
        cumulative = 0
        for index, count in enumerate(self.bucket_counts):
            if count == 0:
                continue
            if rank <= cumulative + count:
                if index >= len(self.bounds):
                    return self.bounds[-1]
                low = self.bounds[index - 1] if index > 0 else 0.0
                high = self.bounds[index]
                fraction = (rank - cumulative) / count
                return low + (high - low) * min(1.0, max(0.0, fraction))
            cumulative += count
        return self.bounds[-1]


class MetricsRegistry:
    """A mutable collection of metrics, mergeable and exportable."""

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, LabelSet], Metric] = {}
        # Optional per-name help text, emitted as `# HELP` lines by the
        # Prometheus exposition (name-level, like TYPE: one line per
        # metric family regardless of label sets).
        self._help: dict[str, str] = {}

    # -- registration --------------------------------------------------------

    def describe(self, name: str, text: str) -> None:
        """Attach help text to a metric family (first writer wins)."""
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        self._help.setdefault(name, text)

    def help_text(self, name: str) -> str | None:
        return self._help.get(name)

    def _get_or_create(self, cls, name: str, labels: LabelSet, *args) -> Metric:
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = cls(name, labels, *args)
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, _labelset(labels))

    def gauge(self, name: str, *, merge: str | None = None, **labels: str) -> Gauge:
        """A gauge; ``merge`` sets its cross-registry aggregation mode
        (``"last"``/``"max"``/``"min"``/``"sum"``) on first registration
        and must agree on re-registration (``None`` = don't care)."""
        metric = self._get_or_create(
            Gauge, name, _labelset(labels), merge if merge is not None else "last"
        )
        assert isinstance(metric, Gauge)
        if merge is not None and metric.merge_mode != merge:
            raise ValueError(
                f"gauge {name!r} already registered with merge mode "
                f"{metric.merge_mode!r}, not {merge!r}"
            )
        return metric

    def histogram(
        self,
        name: str,
        *,
        buckets: Sequence[float] = SECONDS_BUCKETS,
        **labels: str,
    ) -> Histogram:
        metric = self._get_or_create(Histogram, name, _labelset(labels), buckets)
        assert isinstance(metric, Histogram)
        if metric.bounds != tuple(float(b) for b in buckets):
            raise ValueError(f"histogram {name!r} re-registered with new buckets")
        return metric

    # -- reading -------------------------------------------------------------

    def __iter__(self) -> Iterator[Metric]:
        return iter(sorted(self._metrics.values(), key=lambda m: (m.name, m.labels)))

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels: str) -> Metric | None:
        return self._metrics.get((name, _labelset(labels)))

    def value(self, name: str, default: float = 0.0, **labels: str) -> float:
        """Scalar value of a counter/gauge, ``default`` when absent."""
        metric = self.get(name, **labels)
        if metric is None or isinstance(metric, Histogram):
            return default
        return metric.value  # type: ignore[union-attr]

    def find(self, name: str) -> list[Metric]:
        """Every metric registered under ``name``, any label set."""
        return [m for m in self if m.name == name]

    # -- merging -------------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in: counters and histogram buckets add;
        gauges aggregate per their ``merge_mode`` (``"last"`` -- the
        historical last-writer-wins default -- ``"max"``, ``"min"``, or
        ``"sum"``), so high-water marks merged from chunk workers keep
        the corpus-wide extreme instead of the last worker's value."""
        for name, text in other._help.items():
            self._help.setdefault(name, text)
        for metric in other:
            if isinstance(metric, Counter):
                self._get_or_create(Counter, metric.name, metric.labels).inc(
                    metric.value
                )
            elif isinstance(metric, Gauge):
                fresh = (metric.name, metric.labels) not in self._metrics
                held = self._get_or_create(
                    Gauge, metric.name, metric.labels, metric.merge_mode
                )
                assert isinstance(held, Gauge)
                mode = held.merge_mode
                if fresh or mode == "last":
                    held.set(metric.value)
                elif mode == "max":
                    held.max(metric.value)
                elif mode == "min":
                    if metric.value < held.value:
                        held.set(metric.value)
                else:  # sum
                    held.inc(metric.value)
            elif isinstance(metric, Histogram):
                held = self._get_or_create(
                    Histogram, metric.name, metric.labels, metric.bounds
                )
                assert isinstance(held, Histogram)
                if held.bounds != metric.bounds:
                    raise ValueError(
                        f"histogram {metric.name!r} bucket mismatch on merge"
                    )
                for i, count in enumerate(metric.bucket_counts):
                    held.bucket_counts[i] += count
                held.sum += metric.sum
                held.count += metric.count

    # -- export --------------------------------------------------------------

    def to_json(self) -> dict:
        """A JSON-serializable snapshot (inverse of :meth:`from_json`)."""
        metrics = []
        for metric in self:
            entry: dict = {
                "name": metric.name,
                "kind": metric.kind,
                "labels": metric.label_dict(),
            }
            if isinstance(metric, Histogram):
                entry["buckets"] = list(metric.bounds)
                entry["counts"] = list(metric.bucket_counts)
                entry["sum"] = metric.sum
                entry["count"] = metric.count
            else:
                entry["value"] = metric.value  # type: ignore[union-attr]
                if isinstance(metric, Gauge) and metric.merge_mode != "last":
                    entry["merge"] = metric.merge_mode
            metrics.append(entry)
        snapshot: dict = {"metrics": metrics}
        if self._help:
            snapshot["help"] = dict(sorted(self._help.items()))
        return snapshot

    @classmethod
    def from_json(cls, data: dict) -> "MetricsRegistry":
        """Rebuild a registry saved by :meth:`to_json`."""
        registry = cls()
        for name, text in data.get("help", {}).items():
            registry.describe(name, text)
        for entry in data.get("metrics", []):
            labels = entry.get("labels", {})
            kind = entry.get("kind")
            if kind == "counter":
                registry.counter(entry["name"], **labels).inc(entry["value"])
            elif kind == "gauge":
                registry.gauge(
                    entry["name"], merge=entry.get("merge"), **labels
                ).set(entry["value"])
            elif kind == "histogram":
                histogram = registry.histogram(
                    entry["name"], buckets=entry["buckets"], **labels
                )
                histogram.bucket_counts = list(entry["counts"])
                histogram.sum = float(entry["sum"])
                histogram.count = int(entry["count"])
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
        return registry

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        typed: set[str] = set()
        for metric in self:
            if metric.name not in typed:
                typed.add(metric.name)
                help_text = self._help.get(metric.name)
                if help_text is not None:
                    lines.append(
                        f"# HELP {metric.name} {_escape_help_text(help_text)}"
                    )
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            if isinstance(metric, Histogram):
                cumulative = metric.cumulative_counts()
                for bound, count in zip(metric.bounds, cumulative):
                    labels = _render_labels(metric.labels, (("le", repr(bound)),))
                    lines.append(f"{metric.name}_bucket{labels} {count}")
                inf_labels = _render_labels(metric.labels, (("le", "+Inf"),))
                lines.append(f"{metric.name}_bucket{inf_labels} {metric.count}")
                plain = _render_labels(metric.labels)
                lines.append(f"{metric.name}_sum{plain} {_num(metric.sum)}")
                lines.append(f"{metric.name}_count{plain} {metric.count}")
            else:
                labels = _render_labels(metric.labels)
                lines.append(f"{metric.name}{labels} {_num(metric.value)}")  # type: ignore[union-attr]
        return "\n".join(lines) + "\n"


def _num(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))

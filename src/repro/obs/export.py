"""Writers and loaders for observability artifacts.

One trace file carries both span records and provenance events (each
line is self-describing via its ``kind`` field); metrics files pick
their format by extension -- ``.prom``/``.txt`` get the Prometheus text
exposition, everything else the JSON registry snapshot that
``repro-web stats`` can re-render.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.provenance import ProvenanceLog
from repro.obs.tracer import NullTracer, Tracer

PROMETHEUS_SUFFIXES = (".prom", ".txt")


def write_trace_jsonl(
    path: str | Path,
    tracer: "Tracer | NullTracer | None" = None,
    provenance: ProvenanceLog | None = None,
) -> int:
    """Write spans then provenance events as JSONL; returns line count.

    Parent directories are created, so CLI-supplied nested paths
    (``--trace-out runs/today/trace.jsonl``) work without a manual
    ``mkdir``.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with target.open("w", encoding="utf-8") as handle:
        if tracer is not None:
            for span_dict in tracer.export():
                handle.write(json.dumps(span_dict, sort_keys=True) + "\n")
                written += 1
        if provenance is not None:
            for event in provenance.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
                written += 1
    return written


def write_metrics(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write a registry snapshot, format chosen by file extension.

    Parent directories are created (nested ``--metrics-out`` paths).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if target.suffix in PROMETHEUS_SUFFIXES:
        target.write_text(registry.render_prometheus(), encoding="utf-8")
    else:
        target.write_text(registry.render_json(), encoding="utf-8")
    return target


def load_metrics(path: str | Path) -> MetricsRegistry:
    """Load a registry saved as JSON by :func:`write_metrics`.

    Prometheus exposition output is one-way (it drops bucket layouts'
    identity and metric kinds are text comments); re-rendering tables
    needs the JSON snapshot.
    """
    target = Path(path)
    if target.suffix in PROMETHEUS_SUFFIXES:
        raise ValueError(
            "Prometheus exposition files cannot be re-loaded; "
            "save metrics as .json to render them with 'repro-web stats'"
        )
    return MetricsRegistry.from_json(json.loads(target.read_text(encoding="utf-8")))

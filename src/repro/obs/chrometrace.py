"""Chrome trace-event export of the span tree.

:func:`spans_to_chrome_trace` turns the tracer's span dicts (the same
records ``--trace-out`` writes as JSONL) into the Trace Event Format
that ``chrome://tracing`` and Perfetto load: one complete (``"X"``)
event per span, timestamps in microseconds, plus ``thread_name``
metadata events naming each track.

**Cross-process re-basing.**  Span clocks are per-process
``time.perf_counter`` readings: durations are always meaningful, but
absolute ``start`` values only agree within one process.  Spans adopted
from a worker chunk carry namespaced ids (``c3.w7``; bisection pieces
``c3.b16.w7``), so every span's *clock domain* is recoverable as the id
prefix up to the last ``.`` (empty for the parent process).  Each domain
becomes its own track (``tid``), and its timestamps are re-based onto
the parent timeline by aligning the domain's earliest span start with
the start of the span its roots were re-parented under -- the chunk
visibly nests inside ``engine.convert_corpus`` without pretending we
know exactly when the worker ran.

:func:`validate_chrome_trace` is the dependency-free checker CI and
``repro-web validate-obs --chrome`` run over emitted files: valid
trace-event JSON, required fields per phase, non-negative durations,
matched ``B``/``E`` pairs, and per-track events that strictly nest (no
partial overlap) -- the invariants Perfetto's importer relies on.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Mapping, Sequence

_US = 1e6  # seconds -> microseconds


def _domain_of(span_id: str) -> str:
    """The clock domain of a span id: everything before the last dot."""
    dot = span_id.rfind(".")
    return span_id[:dot] if dot >= 0 else ""


def spans_to_chrome_trace(
    span_dicts: Sequence[Mapping],
    *,
    pid: int = 1,
    process_name: str = "repro-web",
) -> dict:
    """Convert exported span dicts into a Chrome trace-event document."""
    spans = [dict(span) for span in span_dicts]
    by_id = {span["id"]: span for span in spans}

    # Group spans into clock domains and find each domain's time base.
    domains: dict[str, list[dict]] = {}
    for span in spans:
        domains.setdefault(_domain_of(span["id"]), []).append(span)
    starts = {
        domain: min(span["start"] for span in members)
        for domain, members in domains.items()
    }

    # The parent domain anchors the timeline at zero; every other domain
    # is shifted so its first span starts where its re-parent target
    # (a span of an already-placed domain) starts.  Domains are placed
    # shortest-prefix first, so bisection domains (c3.b16) resolve
    # against their chunk domain (c3) if that is where their roots hang.
    offsets: dict[str, float] = {}
    for domain in sorted(domains, key=lambda name: (name.count("."), name)):
        if domain == "":
            offsets[domain] = -starts.get("", 0.0)
            continue
        anchor = 0.0
        for span in domains[domain]:
            parent_id = span.get("parent")
            if parent_id is None:
                continue
            parent = by_id.get(parent_id)
            if parent is None:
                continue
            parent_domain = _domain_of(parent["id"])
            if parent_domain != domain and parent_domain in offsets:
                anchor = parent["start"] + offsets[parent_domain]
                break
        offsets[domain] = anchor - starts[domain]

    # Deterministic integer tids: the parent domain is tid 0, adopted
    # domains follow in sorted order.
    ordered = sorted(domains, key=lambda name: (name != "", name))
    tids = {domain: tid for tid, domain in enumerate(ordered)}

    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for domain in ordered:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tids[domain],
                "args": {"name": domain if domain else "main"},
            }
        )
    for domain in ordered:
        offset = offsets[domain]
        tid = tids[domain]
        # Stable ordering: by re-based start, longest span first on ties
        # so parents precede children in the event list.
        members = sorted(
            domains[domain],
            key=lambda span: (span["start"], -(span["end"] - span["start"])),
        )
        for span in members:
            ts = round((span["start"] + offset) * _US, 3)
            dur = round(max(0.0, span["end"] - span["start"]) * _US, 3)
            args = {"id": span["id"]}
            if span.get("parent") is not None:
                args["parent"] = span["parent"]
            for key, value in sorted(span.get("attrs", {}).items()):
                if isinstance(value, (str, int, float, bool)) or value is None:
                    args[key] = value
            events.append(
                {
                    "name": span["name"],
                    "ph": "X",
                    "ts": ts,
                    "dur": dur,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"producer": process_name, "spans": len(spans)},
    }


def write_chrome_trace(
    path: str | Path,
    span_dicts: Sequence[Mapping],
    *,
    pid: int = 1,
    process_name: str = "repro-web",
) -> Path:
    """Write a Chrome trace-event JSON file (parents created)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    document = spans_to_chrome_trace(
        span_dicts, pid=pid, process_name=process_name
    )
    target.write_text(json.dumps(document, sort_keys=True), encoding="utf-8")
    return target


# -- validation ---------------------------------------------------------------

_PHASES = {"X", "B", "E", "M", "i", "C"}


def validate_chrome_trace(document: object) -> list[str]:
    """Errors in a parsed trace-event document (empty list = valid).

    Checks the invariants the acceptance bar names: well-formed
    trace-event JSON (an object with a ``traceEvents`` list, or a bare
    list), required fields per event, non-negative ``X`` durations,
    matched ``B``/``E`` pairs per track, and per-track ``X`` events that
    nest strictly (two events on one track are either disjoint or one
    contains the other) with monotone begin timestamps.
    """
    errors: list[str] = []
    if isinstance(document, dict):
        events = document.get("traceEvents")
        if not isinstance(events, list):
            return ["traceEvents is missing or not a list"]
    elif isinstance(document, list):
        events = document
    else:
        return ["trace document is neither an object nor a list"]

    tracks: dict[tuple, list[tuple[float, float]]] = {}
    open_b: dict[tuple, list[float]] = {}
    for number, event in enumerate(events):
        where = f"event {number}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: missing name")
        if "pid" not in event or "tid" not in event:
            errors.append(f"{where}: missing pid/tid")
            continue
        track = (event["pid"], event["tid"])
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            errors.append(f"{where}: missing numeric ts")
            continue
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or isinstance(dur, bool):
                errors.append(f"{where}: X event missing numeric dur")
                continue
            if dur < 0:
                errors.append(f"{where}: negative duration {dur}")
                continue
            tracks.setdefault(track, []).append((float(ts), float(ts) + float(dur)))
        elif phase == "B":
            open_b.setdefault(track, []).append(float(ts))
        elif phase == "E":
            stack = open_b.get(track)
            if not stack:
                errors.append(f"{where}: E without matching B on track {track}")
                continue
            begin = stack.pop()
            if float(ts) < begin:
                errors.append(
                    f"{where}: E at {ts} precedes its B at {begin} on {track}"
                )
    for track, stack in open_b.items():
        for begin in stack:
            errors.append(f"unmatched B at {begin} on track {track}")

    # Per-track X events must strictly nest.  Sweep in start order
    # (longest first on ties) with a stack of open intervals: an event
    # starting inside an open interval must also end inside it.
    for track, intervals in tracks.items():
        stack: list[float] = []
        for start, end in sorted(intervals, key=lambda pair: (pair[0], -pair[1])):
            while stack and stack[-1] <= start:
                stack.pop()
            if stack and end > stack[-1]:
                errors.append(
                    f"track {track}: event [{start}, {end}] partially "
                    f"overlaps an open event ending at {stack[-1]}"
                )
                continue
            stack.append(end)
    return errors


def validate_chrome_trace_file(path: str | Path) -> list[str]:
    """Validate a trace-event JSON file on disk."""
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        return [f"cannot read trace-event JSON: {exc}"]
    return validate_chrome_trace(document)

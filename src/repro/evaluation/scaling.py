"""Scalability measurement (Section 4.3 / Figure 5).

The paper measures end-to-end running time (conversion + schema
discovery) for datasets of increasing size and reports a "very strong
linear relationship" with the number of concept nodes (and with the
number of nodes and of documents).  Absolute times are hardware-bound
(the paper used a Pentium 266); the reproducible claim is the *linear
shape*, so this module reports the least-squares fit and its R².

The sweep is driven by :class:`repro.runtime.CorpusEngine`, which also
yields per-stage timings (:class:`~repro.runtime.stats.EngineStats`) for
every point and, with ``max_workers > 1``, a parallel variant of the
experiment -- the "how fast can this corpus go on this hardware"
companion to the paper's single-core curve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.concepts.knowledge import KnowledgeBase
from repro.convert.config import ConversionConfig
from repro.corpus.generator import ResumeCorpusGenerator
from repro.obs.tracer import NullTracer, Tracer, resolve_tracer
from repro.runtime.engine import CorpusEngine, EngineConfig
from repro.runtime.stats import EngineStats


@dataclass
class ScalingPoint:
    """One measurement of the sweep."""

    documents: int
    nodes: int
    concept_nodes: int
    seconds: float
    # Per-stage engine instrumentation for this sweep point (None for
    # hand-built reports in unit tests).
    engine_stats: EngineStats | None = None


@dataclass
class ScalingReport:
    """The Figure 5 series plus linear fits."""

    points: list[ScalingPoint] = field(default_factory=list)

    def _fit(self, xs: list[float], ys: list[float]) -> tuple[float, float]:
        """Least-squares slope and R² (computed without numpy so the
        library core stays dependency-free)."""
        n = len(xs)
        if n < 2:
            return 0.0, 0.0
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        sxx = sum((x - mean_x) ** 2 for x in xs)
        sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        if sxx == 0:
            return 0.0, 0.0
        slope = sxy / sxx
        intercept = mean_y - slope * mean_x
        ss_res = sum((y - (slope * x + intercept)) ** 2 for x, y in zip(xs, ys))
        ss_tot = sum((y - mean_y) ** 2 for y in ys)
        r2 = 1.0 - ss_res / ss_tot if ss_tot else 1.0
        return slope, r2

    def fit_against(self, measure: str) -> tuple[float, float]:
        """(slope, R²) of seconds against 'documents' | 'nodes' |
        'concept_nodes'."""
        xs = [float(getattr(p, measure)) for p in self.points]
        ys = [p.seconds for p in self.points]
        return self._fit(xs, ys)

    @property
    def seconds_per_document(self) -> float:
        """Average wall time per document at the largest sweep point."""
        if not self.points:
            return 0.0
        last = self.points[-1]
        return last.seconds / last.documents if last.documents else 0.0


def run_scaling_experiment(
    kb: KnowledgeBase,
    sizes: list[int],
    *,
    seed: int = 1966,
    sup_threshold: float = 0.4,
    config: ConversionConfig | None = None,
    max_workers: int = 1,
    chunk_size: int = 16,
    tracer: "Tracer | NullTracer | None" = None,
) -> ScalingReport:
    """Time the full pipeline (convert + mine) at each corpus size.

    Documents are generated outside the timed region; the clock covers
    exactly what the paper timed (restructuring + schema discovery).
    The sweep runs through :class:`repro.runtime.CorpusEngine`, so
    ``max_workers`` extends Figure 5 with parallel sweep points and each
    :class:`ScalingPoint` carries the engine's per-stage instrumentation
    (``max_workers=1`` is the paper's serial setting).  A recording
    ``tracer`` wraps each sweep point in a ``scaling.point`` span whose
    children are the engine's own conversion/discovery spans.
    """
    tracer = resolve_tracer(tracer)
    generator = ResumeCorpusGenerator(seed=seed)
    engine = CorpusEngine(
        kb,
        config or ConversionConfig(),
        engine_config=EngineConfig(max_workers=max_workers, chunk_size=chunk_size),
    )
    report = ScalingReport()
    for size in sizes:
        corpus = generator.generate_html(size)
        with tracer.span("scaling.point", documents=size) as point_span:
            started = time.perf_counter()
            result = engine.convert_corpus(corpus, tracer=tracer)
            engine.mine(
                result.accumulator, sup_threshold=sup_threshold, tracer=tracer
            )
            elapsed = time.perf_counter() - started
            point_span.set(
                seconds=round(elapsed, 6),
                concept_nodes=result.stats.concept_nodes,
            )
        report.points.append(
            ScalingPoint(
                documents=size,
                nodes=result.stats.input_nodes,
                concept_nodes=result.stats.concept_nodes,
                seconds=elapsed,
                engine_stats=result.stats,
            )
        )
    return report

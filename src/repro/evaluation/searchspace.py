"""Concept-constraint search-space accounting (Section 4.2).

The paper's arithmetic, reproduced exactly:

* Exhaustive enumeration of label paths "up to length 4" over 24 concept
  names explores ``24^5 - 1 = 7,962,623`` nodes.
* With the constraints (11 title names only at depth 1, 13 content names
  only below, no repetition along a path, nothing deeper than depth 4
  counting the root as depth 1) the space shrinks to
  ``1 + 11 + 11*13 + 11*13*12 = 1,871`` nodes (0.023%).
* "Without extending nodes with zero support, the actual number of nodes
  explored is 73" -- data dependent; we report the analogous number for
  the synthetic corpus.

Note on depth conventions: the paper counts the root as depth 1, so
"depth greater than 4" allows three constrained levels below the root;
:func:`paper_constraints` therefore sets ``max_depth = 3`` in our
root-exclusive convention.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.concepts.concept import ConceptRole
from repro.concepts.constraints import ConstraintSet
from repro.concepts.knowledge import KnowledgeBase
from repro.schema.frequent import mine_frequent_paths
from repro.schema.paths import DocumentPaths


def paper_exhaustive_count(num_concepts: int = 24, path_length: int = 4) -> int:
    """The paper's exhaustive search-space formula: ``n^(L+1) - 1``."""
    return num_concepts ** (path_length + 1) - 1


def paper_constraints(kb: KnowledgeBase) -> ConstraintSet:
    """The Section 4.2 constraint classes, built from the KB's roles."""
    constraints = ConstraintSet(no_repeat_on_path=True, max_depth=3)
    for concept in kb:
        if concept.role is ConceptRole.TITLE:
            constraints.add_depth(concept.tag, "=", 1)
        else:
            constraints.add_depth(concept.tag, ">", 1)
    return constraints


def count_constrained_paths(
    kb: KnowledgeBase, constraints: ConstraintSet | None = None
) -> int:
    """Number of constraint-admissible label paths (the root included).

    Depth-first enumeration over concept tags; each admissible path is
    one node of the search-space tree.  With the paper's constraints and
    the 24-concept resume KB this is exactly 1,871.
    """
    constraints = constraints if constraints is not None else paper_constraints(kb)
    tags = sorted(kb.concept_tags())
    count = 1  # the root node

    def extend(path: tuple[str, ...]) -> None:
        nonlocal count
        for tag in tags:
            candidate = path + (tag,)
            if constraints.allows_path(candidate):
                count += 1
                extend(candidate)

    extend(())
    return count


@dataclass
class SearchSpaceReport:
    """The three Section 4.2 numbers, plus context."""

    exhaustive_nodes: int
    constrained_nodes: int
    explored_nodes: int
    positive_support_nodes: int
    frequent_paths: int

    @property
    def constrained_fraction(self) -> float:
        """Paper: 0.023%."""
        return 100.0 * self.constrained_nodes / self.exhaustive_nodes

    @property
    def explored_fraction(self) -> float:
        """Paper: 0.0009%."""
        return 100.0 * self.positive_support_nodes / self.exhaustive_nodes


def run_search_space_experiment(
    kb: KnowledgeBase,
    documents: list[DocumentPaths],
    *,
    sup_threshold: float = 0.4,
    ratio_threshold: float = 0.0,
) -> SearchSpaceReport:
    """Reproduce the Section 4.2 accounting on a converted corpus.

    ``explored_nodes`` counts candidates generated when only prefixes
    meeting the support threshold are extended (the miner's real work);
    ``positive_support_nodes`` counts those that actually occur in the
    data -- the analog of the paper's 73.
    """
    constraints = paper_constraints(kb)
    result = mine_frequent_paths(
        documents,
        sup_threshold=sup_threshold,
        ratio_threshold=ratio_threshold,
        constraints=constraints,
        candidate_labels=kb.concept_tags(),
    )
    return SearchSpaceReport(
        exhaustive_nodes=paper_exhaustive_count(len(kb)),
        constrained_nodes=count_constrained_paths(kb, constraints),
        explored_nodes=result.nodes_explored,
        positive_support_nodes=result.nodes_counted,
        frequent_paths=len(result.paths),
    )

"""Data-extraction accuracy (Section 4.1 / Figure 4).

The paper counts "the number of wrong parent-child and sibling
relationships in the extracted tree", where moving "a node and its
siblings together to make up for one parent-child relationship that has
been incorrectly identified ... is counted as one logical error".

The mechanical version of that metric used here mirrors the "group
move" accounting:

1. Both trees are reduced to multisets of *group edges*: one entry
   ``(parent_label, child_label)`` per parent **node instance** having at
   least one ``child_label`` child (a run of same-labelled siblings under
   one parent is one group).
2. Group edges present in the extraction but not the truth are *surplus*;
   the reverse are *deficits*.
3. A surplus ``(P, c)`` paired with a deficit ``(Q, c)`` is a group that
   must move from under a ``P`` node to under a ``Q`` node.  All child
   labels moving between the same ``(P, Q)`` node pair move *together* --
   "a node and its siblings together" -- and cost **one** logical error
   (per node-instance pair).
4. A leftover surplus whose destination already received a move from the
   same source (and holds that label in the truth) rides along for free;
   any other leftover surplus (spurious group) or deficit (missing group)
   costs one error each.

The percentage denominator is the number of concept nodes in the
extracted document ("Num. of Errors / Num. of keyword nodes" in
Figure 4's axis label).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.dom.node import Element
from repro.schema.paths import LabelPath


def _label_path_counts(root: Element) -> Counter[LabelPath]:
    counts: Counter[LabelPath] = Counter()
    stack: list[tuple[Element, LabelPath]] = [(root, (root.tag,))]
    while stack:
        element, path = stack.pop()
        counts[path] += 1
        for child in element.element_children():
            stack.append((child, path + (child.tag,)))
    return counts


def _group_edges(root: Element) -> Counter[tuple[str, str]]:
    """Multiset of (parent label, child label) group edges.

    One entry per parent *node instance* per distinct child label: a run
    of five DATE children under one EDUCATION node is a single group.
    """
    edges: Counter[tuple[str, str]] = Counter()
    stack: list[Element] = [root]
    while stack:
        element = stack.pop()
        child_labels = {child.tag for child in element.element_children()}
        for label in child_labels:
            edges[(element.tag, label)] += 1
        stack.extend(element.element_children())
    return edges


def _count_group_moves(
    extracted: Counter[tuple[str, str]], truth: Counter[tuple[str, str]]
) -> tuple[int, int, int]:
    """(errors, surplus_edges, deficit_edges) per the module docstring."""
    surplus: Counter[tuple[str, str]] = Counter()
    deficit: Counter[tuple[str, str]] = Counter()
    for edge in set(extracted) | set(truth):
        have = extracted.get(edge, 0)
        want = truth.get(edge, 0)
        if have > want:
            surplus[edge] = have - want
        elif have < want:
            deficit[edge] = want - have

    # Pair surplus with deficit per child label: each pairing is a move
    # of that group from source parent to destination parent.
    moves: Counter[tuple[str, str]] = Counter()  # (src parent, dst parent)
    moved_by_pair: dict[tuple[str, str], Counter[str]] = {}
    child_labels = {c for _p, c in surplus} & {c for _p, c in deficit}
    for child in sorted(child_labels):
        sources = sorted(
            (p for (p, c) in surplus if c == child),
        )
        destinations = sorted(
            (p for (p, c) in deficit if c == child),
        )
        for src in sources:
            if not destinations:
                break
            available = surplus[(src, child)]
            while available and destinations:
                dst = destinations[0]
                take = min(available, deficit[(dst, child)])
                moved_by_pair.setdefault((src, dst), Counter())[child] += take
                surplus[(src, child)] -= take
                deficit[(dst, child)] -= take
                available -= take
                if deficit[(dst, child)] == 0:
                    destinations.pop(0)
    surplus = +surplus
    deficit = +deficit
    for pair, by_child in moved_by_pair.items():
        moves[pair] = max(by_child.values())

    errors = sum(moves.values())
    # Leftover surplus: absorbed when its source already sends a move to
    # a destination that holds this label in the truth.
    for (src, child), count in surplus.items():
        absorbed = any(
            pair[0] == src and truth.get((pair[1], child), 0) > 0
            for pair in moves
        )
        if not absorbed:
            errors += count
    errors += sum(deficit.values())
    return errors, sum(surplus.values()), sum(deficit.values())


@dataclass
class DocumentErrors:
    """Error accounting for one document."""

    doc_id: int
    errors: int
    extracted_nodes: int
    truth_nodes: int
    surplus_paths: int
    deficit_paths: int

    @property
    def error_percentage(self) -> float:
        """Errors over extracted concept ("keyword") nodes, in percent."""
        if self.extracted_nodes == 0:
            return 100.0 if self.errors else 0.0
        return 100.0 * self.errors / self.extracted_nodes


def count_logical_errors(
    extracted: Element, truth: Element, *, doc_id: int = 0
) -> DocumentErrors:
    """Logical errors of one extracted tree against its ground truth."""
    extracted_edges = _group_edges(extracted)
    truth_edges = _group_edges(truth)
    errors, surplus, deficit = _count_group_moves(extracted_edges, truth_edges)
    return DocumentErrors(
        doc_id=doc_id,
        errors=errors,
        extracted_nodes=sum(_label_path_counts(extracted).values()),
        truth_nodes=sum(_label_path_counts(truth).values()),
        surplus_paths=surplus,
        deficit_paths=deficit,
    )


# Figure 4's histogram bands (% error per document).
FIGURE4_BANDS: tuple[tuple[float, float], ...] = (
    (0.0, 4.0),
    (4.0, 8.0),
    (8.0, 12.0),
    (12.0, 16.0),
    (16.0, 20.0),
    (20.0, 24.0),
)


@dataclass
class AccuracyReport:
    """Corpus-level accuracy summary (the numbers Section 4.1 quotes)."""

    documents: list[DocumentErrors] = field(default_factory=list)

    @property
    def document_count(self) -> int:
        return len(self.documents)

    @property
    def avg_errors_per_document(self) -> float:
        """Paper: 3.9."""
        if not self.documents:
            return 0.0
        return sum(d.errors for d in self.documents) / len(self.documents)

    @property
    def avg_concept_nodes_per_document(self) -> float:
        """Paper: 53.7."""
        if not self.documents:
            return 0.0
        return sum(d.extracted_nodes for d in self.documents) / len(self.documents)

    @property
    def avg_error_percentage(self) -> float:
        """Paper: 9.2%."""
        if not self.documents:
            return 0.0
        return sum(d.error_percentage for d in self.documents) / len(self.documents)

    @property
    def accuracy(self) -> float:
        """Paper: 90.8%."""
        return 100.0 - self.avg_error_percentage

    def histogram(
        self, bands: tuple[tuple[float, float], ...] = FIGURE4_BANDS
    ) -> list[tuple[str, int]]:
        """Documents per error-percentage band (Figure 4's bars).

        The last band is closed on the right; documents beyond it land
        in an overflow band so none silently disappears.
        """
        rows: list[tuple[str, int]] = []
        for low, high in bands:
            count = sum(
                1
                for d in self.documents
                if low <= d.error_percentage < high
                or (high == bands[-1][1] and d.error_percentage == high)
            )
            rows.append((f"{low:g}-{high:g}", count))
        overflow = sum(
            1 for d in self.documents if d.error_percentage > bands[-1][1]
        )
        if overflow:
            rows.append((f">{bands[-1][1]:g}", overflow))
        return rows


def evaluate_accuracy(
    pairs: list[tuple[Element, Element]],
) -> AccuracyReport:
    """Score a corpus of ``(extracted, ground_truth)`` tree pairs."""
    report = AccuracyReport()
    for doc_id, (extracted, truth) in enumerate(pairs):
        report.documents.append(
            count_logical_errors(extracted, truth, doc_id=doc_id)
        )
    return report

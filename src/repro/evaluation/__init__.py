"""Evaluation harness for the paper's experiments (Section 4).

* :mod:`repro.evaluation.accuracy` -- logical-error counting against
  ground truth (Figure 4).
* :mod:`repro.evaluation.searchspace` -- constraint search-space
  accounting (Section 4.2).
* :mod:`repro.evaluation.scaling` -- runtime scalability sweeps
  (Figure 5).
* :mod:`repro.evaluation.report` -- plain-text tables and histograms.
"""

from repro.evaluation.accuracy import (
    AccuracyReport,
    DocumentErrors,
    count_logical_errors,
    evaluate_accuracy,
)
from repro.evaluation.report import format_histogram, format_table
from repro.evaluation.scaling import ScalingPoint, ScalingReport, run_scaling_experiment
from repro.evaluation.searchspace import SearchSpaceReport, run_search_space_experiment

__all__ = [
    "count_logical_errors",
    "DocumentErrors",
    "AccuracyReport",
    "evaluate_accuracy",
    "SearchSpaceReport",
    "run_search_space_experiment",
    "ScalingPoint",
    "ScalingReport",
    "run_scaling_experiment",
    "format_table",
    "format_histogram",
]

"""Plain-text rendering of benchmark tables and histograms."""

from __future__ import annotations

from typing import Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], *, title: str = ""
) -> str:
    """Render an aligned fixed-width table.

    Numbers are right-aligned, everything else left-aligned; floats are
    shown with four significant decimals.
    """

    def cell(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    text_rows = [[cell(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows)) if text_rows else len(headers[i])
        for i in range(len(headers))
    ]

    def align(value: str, width: int, numeric: bool) -> str:
        return value.rjust(width) if numeric else value.ljust(width)

    numeric_cols = [
        all(_is_number(r[i]) for r in text_rows) if text_rows else False
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(
            "  ".join(
                align(v, w, num) for v, w, num in zip(row, widths, numeric_cols)
            )
        )
    return "\n".join(lines)


def _is_number(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True


def format_histogram(
    bands: Sequence[tuple[str, int]], *, title: str = "", width: int = 40
) -> str:
    """Render labelled counts as an ASCII bar chart (Figure 4 style)."""
    peak = max((count for _label, count in bands), default=1) or 1
    label_width = max((len(label) for label, _count in bands), default=0)
    lines = [title] if title else []
    for label, count in bands:
        bar = "#" * round(width * count / peak)
        lines.append(f"{label.rjust(label_width)} | {bar} {count}")
    return "\n".join(lines)

"""Request/result wire contracts for the conversion service.

Everything that crosses the HTTP boundary is defined here, parsed with
explicit validation (a :class:`ContractError` maps to a 400), so the
server and batcher never see malformed input.  The split mirrors the
request-contract / result-contract / store layering of analyzer-style
pipelines: contracts here, artifacts in :mod:`repro.service.state`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# One document's HTML; resumes are kilobytes, so this is generous while
# still bounding what a single request can pin in memory.
MAX_SOURCE_BYTES = 4 * 1024 * 1024
# Documents per batch request: larger batches gain nothing over the
# micro-batcher's own coalescing and would bypass queue backpressure.
MAX_BATCH_DOCUMENTS = 256

DEFAULT_TOPIC = "resume"


class ContractError(ValueError):
    """A request failed contract validation (HTTP 400)."""

    def __init__(self, message: str, *, field_name: str | None = None) -> None:
        self.field_name = field_name
        where = f"{field_name}: " if field_name else ""
        super().__init__(f"{where}{message}")


def _require_mapping(data: object) -> dict:
    if not isinstance(data, dict):
        raise ContractError("request body must be a JSON object")
    return data


def _parse_source(value: object, *, field_name: str = "source") -> str:
    if not isinstance(value, str):
        raise ContractError("must be an HTML string", field_name=field_name)
    if not value.strip():
        raise ContractError("must not be empty", field_name=field_name)
    if len(value.encode("utf-8", errors="replace")) > MAX_SOURCE_BYTES:
        raise ContractError(
            f"exceeds {MAX_SOURCE_BYTES} bytes", field_name=field_name
        )
    return value


def _parse_doc_id(value: object) -> str | None:
    if value is None:
        return None
    if not isinstance(value, str) or not value or len(value) > 200:
        raise ContractError(
            "must be a non-empty string (<= 200 chars)", field_name="doc_id"
        )
    return value


def _parse_topic(value: object) -> str:
    if value is None:
        return DEFAULT_TOPIC
    if not isinstance(value, str) or not value.isidentifier():
        raise ContractError(
            "must be an identifier-like string", field_name="topic"
        )
    return value


def _parse_schema_version(value: object) -> int | None:
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ContractError(
            "must be a positive integer", field_name="schema_version"
        )
    return value


def _parse_fold(value: object) -> bool:
    if value is None:
        return False
    if not isinstance(value, bool):
        raise ContractError("must be a boolean", field_name="fold")
    return value


@dataclass(frozen=True)
class ConvertRequest:
    """One document to convert.

    ``fold`` folds the document's path statistics into the topic's live
    accumulator (advancing the evolving schema); ``schema_version``
    instead conforms the output against an archived schema version.
    The two are mutually exclusive: folding targets the *live* head.
    """

    source: str
    doc_id: str | None = None
    topic: str = DEFAULT_TOPIC
    fold: bool = False
    schema_version: int | None = None

    def __post_init__(self) -> None:
        if self.fold and self.schema_version is not None:
            raise ContractError(
                "fold targets the live accumulator; it cannot also pin "
                "schema_version"
            )

    @classmethod
    def parse(cls, data: object) -> "ConvertRequest":
        body = _require_mapping(data)
        return cls(
            source=_parse_source(body.get("source")),
            doc_id=_parse_doc_id(body.get("doc_id")),
            topic=_parse_topic(body.get("topic")),
            fold=_parse_fold(body.get("fold")),
            schema_version=_parse_schema_version(body.get("schema_version")),
        )

    @classmethod
    def parse_batch(cls, data: object) -> list["ConvertRequest"]:
        """Parse a batch request: ``documents`` (strings or per-document
        objects) plus batch-level ``topic``/``fold``/``schema_version``
        defaults applied to documents that do not override them."""
        body = _require_mapping(data)
        documents = body.get("documents")
        if not isinstance(documents, list) or not documents:
            raise ContractError(
                "must be a non-empty list", field_name="documents"
            )
        if len(documents) > MAX_BATCH_DOCUMENTS:
            raise ContractError(
                f"at most {MAX_BATCH_DOCUMENTS} documents per batch",
                field_name="documents",
            )
        topic = _parse_topic(body.get("topic"))
        fold = _parse_fold(body.get("fold"))
        schema_version = _parse_schema_version(body.get("schema_version"))
        requests: list[ConvertRequest] = []
        for position, entry in enumerate(documents):
            if isinstance(entry, str):
                entry = {"source": entry}
            if not isinstance(entry, dict):
                raise ContractError(
                    "entries must be HTML strings or objects",
                    field_name=f"documents[{position}]",
                )
            requests.append(
                cls(
                    source=_parse_source(entry.get("source")),
                    doc_id=_parse_doc_id(entry.get("doc_id")),
                    topic=topic,
                    fold=fold,
                    schema_version=schema_version,
                )
            )
        return requests


@dataclass
class DocumentOutcome:
    """The result of converting one document.

    Exactly one of ``xml``/``error`` is set.  ``index`` is the
    service-wide document position (the engine's ``docNNNN`` numbering);
    ``doc_id`` echoes the client's id when one was supplied.
    """

    ok: bool
    doc_id: str
    index: int
    xml: str | None = None
    error: dict | None = None
    seconds: float = 0.0
    schema_version: int | None = None
    folded: bool = False

    def to_json(self) -> dict:
        out: dict = {
            "ok": self.ok,
            "doc_id": self.doc_id,
            "index": self.index,
            "seconds": round(self.seconds, 6),
        }
        if self.ok:
            out["xml"] = self.xml
        else:
            out["error"] = self.error
        if self.schema_version is not None:
            out["schema_version"] = self.schema_version
        if self.folded:
            out["folded"] = True
        return out


@dataclass
class BatchOutcome:
    """The result of a batch request, in submission order."""

    results: list[DocumentOutcome] = field(default_factory=list)
    fold: dict | None = None

    @property
    def converted(self) -> int:
        return sum(1 for r in self.results if r.ok)

    @property
    def failed(self) -> int:
        return sum(1 for r in self.results if not r.ok)

    def to_json(self) -> dict:
        out: dict = {
            "documents": len(self.results),
            "converted": self.converted,
            "failed": self.failed,
            "results": [r.to_json() for r in self.results],
        }
        if self.fold is not None:
            out["fold"] = self.fold
        return out

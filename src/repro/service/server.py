"""The asyncio HTTP server over the warm engine pool.

Hand-rolled HTTP/1.1 on :func:`asyncio.start_server` (stdlib-only, like
everything else in the reproduction): request line + headers +
``Content-Length`` body, keep-alive by default.  Routes::

    POST /convert             one document -> one outcome
    POST /convert/batch       N documents -> N outcomes (+ fold summary)
    GET  /schemas/<topic>     evolving-schema status, current DTD
    GET  /schemas/<topic>/<v> one archived DTD version
    GET  /metrics             Prometheus 0.0.4 exposition
    GET  /healthz             liveness + worker pids + latency summary
    GET  /                    route listing

Shutdown is a graceful drain: stop accepting connections, let every
in-flight and queued request finish (the batcher flushes its lanes),
then shut the pool down with ``wait=True`` so no worker process is
orphaned.  ``run()`` wires SIGTERM/SIGINT to exactly that.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.concepts.knowledge import KnowledgeBase
from repro.convert.config import ConversionConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.quantiles import QuantileDigest
from repro.runtime.stats import EngineStats
from repro.service.batcher import (
    Lane,
    MicroBatcher,
    PendingDocument,
    ServiceDraining,
)
from repro.service.contracts import (
    BatchOutcome,
    ContractError,
    ConvertRequest,
    DocumentOutcome,
)
from repro.service.state import TopicState, UnknownSchemaVersion
from repro.service.workers import PoolClosed, WarmEnginePool

MAX_BODY_BYTES = 32 * 1024 * 1024
MAX_HEADERS = 100

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    422: "Unprocessable Entity", 431: "Request Header Fields Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}

# Metric names (service-level; engine counters share the registry).
REQUESTS = "repro_service_requests_total"
DOCUMENTS = "repro_service_documents_total"
REQUEST_SECONDS = "repro_service_request_seconds"
BATCH_DOCUMENTS = "repro_service_batch_documents"
QUEUE_WAIT_SECONDS = "repro_service_queue_wait_seconds"
INFLIGHT = "repro_service_inflight_requests"

_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class HttpError(Exception):
    """An HTTP-level failure with a status code."""

    def __init__(self, status: int, message: str) -> None:
        self.status = status
        super().__init__(message)


@dataclass
class ServiceConfig:
    """Tuning knobs of the conversion service."""

    max_workers: int | None = None
    max_batch: int = 16
    batch_wait: float = 0.005
    max_queue: int = 1024
    max_inflight: int | None = None
    publish: bool = False
    drain_timeout: float = 30.0

    def resolved_workers(self) -> int:
        if self.max_workers is None:
            import os

            return max(1, min(4, os.cpu_count() or 1))
        return max(1, self.max_workers)

    def resolved_inflight(self, workers: int) -> int:
        if self.max_inflight is None:
            return max(2, 2 * workers)
        return max(1, self.max_inflight)


class ConversionService:
    """The long-lived daemon: warm pool + batcher + topic states + HTTP."""

    def __init__(
        self,
        kb: KnowledgeBase | None = None,
        *,
        state_dir: str | Path,
        topics: dict[str, KnowledgeBase] | None = None,
        config: ServiceConfig | None = None,
        conversion: ConversionConfig | None = None,
    ) -> None:
        if topics is None:
            if kb is None:
                raise ValueError("pass a knowledge base or a topics mapping")
            topics = {"resume": kb}
        self.config = config or ServiceConfig()
        self.state_dir = Path(state_dir)
        workers = self.config.resolved_workers()
        self.registry = MetricsRegistry()
        self.stats = EngineStats(
            workers=workers, chunk_size=0, registry=self.registry
        )
        # One warm pool per topic: the converter (and its compiled
        # automaton) is knowledge-base-specific, so topics cannot share
        # worker processes.  The typical deployment serves one topic.
        self.pools = {
            name: WarmEnginePool(
                topic_kb, conversion, max_workers=workers, stats=self.stats
            )
            for name, topic_kb in topics.items()
        }
        self.topics = {
            name: TopicState(
                name, topic_kb, self.state_dir / name,
                registry=self.registry, publish=self.config.publish,
                max_workers=workers,
            )
            for name, topic_kb in topics.items()
        }
        self.batcher = MicroBatcher(
            self._dispatch,
            max_batch=self.config.max_batch,
            max_wait=self.config.batch_wait,
            max_queue=self.config.max_queue,
            max_inflight=self.config.resolved_inflight(workers),
        )
        self.latency = QuantileDigest()
        self._server: asyncio.base_events.Server | None = None
        self._connections: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        # Service-wide document numbering (the engine's docNNNN ids);
        # only touched from the event loop, so a plain counter is safe.
        self._doc_cursor = 0
        self._active_requests = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._draining = False
        self._started_at = time.monotonic()
        self._describe_metrics()

    def _describe_metrics(self) -> None:
        describe = self.registry.describe
        describe(REQUESTS, "HTTP requests served, by route and status code.")
        describe(DOCUMENTS, "Documents accepted for conversion over HTTP.")
        describe(REQUEST_SECONDS, "End-to-end request latency in seconds.")
        describe(BATCH_DOCUMENTS, "Documents per dispatched engine chunk.")
        describe(
            QUEUE_WAIT_SECONDS,
            "Seconds a document waited in the micro-batch queue.",
        )
        describe(INFLIGHT, "HTTP requests currently being processed.")

    # -- lifecycle -----------------------------------------------------------

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Warm the pools and start accepting; returns the bound address."""
        for pool in self.pools.values():
            pool.start()
        self._server = await asyncio.start_server(
            self._serve_connection, host, port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def run(
        self,
        host: str = "127.0.0.1",
        port: int = 8080,
        *,
        ready: "Callable[[str, int], None] | None" = None,
    ) -> tuple[str, int]:
        """``serve``'s main: start, wait for SIGTERM/SIGINT, drain.

        ``ready`` is called with the bound address before blocking, so
        the CLI can announce the listening URL (port 0 binds ephemeral).
        """
        address = await self.start(host, port)
        if ready is not None:
            ready(*address)
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed: list[signal.Signals] = []
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
                installed.append(sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        try:
            await stop.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.shutdown()
        return address

    async def shutdown(self) -> None:
        """Graceful drain: finish everything in flight, orphan nothing."""
        if self._draining:
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Every accepted request runs to completion: first the ones in
        # HTTP handlers (they may be waiting on batcher futures)...
        with contextlib.suppress(asyncio.TimeoutError):
            await asyncio.wait_for(
                self._idle.wait(), timeout=self.config.drain_timeout
            )
        # ...then the batcher's queues and in-flight chunks.
        await self.batcher.drain()
        # Idle keep-alive connections are blocked in readline(); closing
        # the transports lets their handler loops exit cleanly.
        for writer in list(self._connections):
            with contextlib.suppress(Exception):
                writer.close()
        if self._conn_tasks:
            await asyncio.gather(
                *list(self._conn_tasks), return_exceptions=True
            )
        # Workers exit with their pool; wait=True means no orphans.
        for pool in self.pools.values():
            pool.shutdown(wait=True)

    @property
    def draining(self) -> bool:
        return self._draining

    # -- dispatch (batcher -> engine -> topic state) -------------------------

    async def _dispatch(self, lane: Lane, batch: list[PendingDocument]) -> None:
        topic, fold = lane
        now = time.monotonic()
        wait_histogram = self.registry.histogram(QUEUE_WAIT_SECONDS)
        for pending in batch:
            wait_histogram.observe(now - pending.enqueued_at)
        self.registry.histogram(
            BATCH_DOCUMENTS, buckets=_BATCH_BUCKETS
        ).observe(len(batch))
        sources = [pending.request.source for pending in batch]
        base = self._doc_cursor
        self._doc_cursor += len(batch)
        pool = self.pools[topic]
        try:
            payload = await self._convert_with_retry(pool, sources, base)
        except Exception as exc:
            for offset, pending in enumerate(batch):
                pending.future.set_result(
                    self._engine_failure(pending, base + offset, exc)
                )
            return
        outcomes = self._split_payload(payload, base, batch)
        if fold:
            state = self.topics[topic]
            survivors = list(payload.xml)
            summary = await asyncio.get_running_loop().run_in_executor(
                None, state.fold, payload.accumulator, survivors
            )
            for outcome in outcomes:
                if outcome.ok:
                    outcome.folded = True
                    outcome.schema_version = summary["schema_version"]
        await self._apply_schema_versions(topic, batch, outcomes)
        for pending, outcome in zip(batch, outcomes):
            if not pending.future.done():
                pending.future.set_result(outcome)

    async def _convert_with_retry(
        self, pool: WarmEnginePool, sources: list[str], base: int
    ):
        try:
            return await pool.convert_chunk(sources, base)
        except BrokenProcessPool:
            # One worker died mid-chunk (OOM kill, segfault): rebuild the
            # warm pool once and retry; a second break is a real failure.
            pool.rebuild()
            return await pool.convert_chunk(sources, base)

    def _split_payload(
        self, payload, base: int, batch: list[PendingDocument]
    ) -> list[DocumentOutcome]:
        """Map a chunk payload back onto its documents: failures carry
        their corpus index, survivors' XML is in document order."""
        failures = {f.index - base: f for f in payload.failures}
        xml_iter = iter(payload.xml)
        outcomes = []
        for offset, pending in enumerate(batch):
            doc_id = pending.request.doc_id or f"doc{base + offset:04d}"
            seconds = time.monotonic() - pending.enqueued_at
            failure = failures.get(offset)
            if failure is not None:
                outcomes.append(DocumentOutcome(
                    ok=False, doc_id=doc_id, index=base + offset,
                    seconds=seconds,
                    error={
                        "stage": failure.stage,
                        "error_type": failure.error_type,
                        "message": failure.message,
                    },
                ))
            else:
                outcomes.append(DocumentOutcome(
                    ok=True, doc_id=doc_id, index=base + offset,
                    seconds=seconds, xml=next(xml_iter),
                ))
        return outcomes

    def _engine_failure(
        self, pending: PendingDocument, index: int, exc: Exception
    ) -> DocumentOutcome:
        return DocumentOutcome(
            ok=False,
            doc_id=pending.request.doc_id or f"doc{index:04d}",
            index=index,
            seconds=time.monotonic() - pending.enqueued_at,
            error={
                "stage": "engine",
                "error_type": type(exc).__name__,
                "message": str(exc),
            },
        )

    async def _apply_schema_versions(
        self,
        topic: str,
        batch: list[PendingDocument],
        outcomes: list[DocumentOutcome],
    ) -> None:
        """Conform outcomes that pinned ``schema_version`` against the
        archived DTD (validated at request time, so lookups succeed)."""
        targeted = [
            (pending.request.schema_version, outcome)
            for pending, outcome in zip(batch, outcomes)
            if outcome.ok and pending.request.schema_version is not None
        ]
        if not targeted:
            return
        state = self.topics[topic]
        loop = asyncio.get_running_loop()

        def conform_all() -> list[str]:
            return [
                state.conform_to_version(outcome.xml, version)
                for version, outcome in targeted
            ]

        conformed = await loop.run_in_executor(None, conform_all)
        for (version, outcome), xml in zip(targeted, conformed):
            outcome.xml = xml
            outcome.schema_version = version

    # -- request validation --------------------------------------------------

    def _check_request(self, request: ConvertRequest) -> None:
        state = self.topics.get(request.topic)
        if state is None:
            raise HttpError(404, f"unknown topic {request.topic!r}")
        if request.schema_version is not None:
            try:
                state.dtd_for_version(request.schema_version)
            except UnknownSchemaVersion as exc:
                raise HttpError(400, str(exc)) from exc

    # -- HTTP plumbing -------------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connections.add(writer)
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                try:
                    parsed = await _read_request(reader)
                except HttpError as exc:
                    writer.write(_response(exc.status, _error_body(exc), close=True))
                    await writer.drain()
                    return
                except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                    return
                if parsed is None:
                    return
                method, path, headers, body = parsed
                self._active_requests += 1
                self._idle.clear()
                self.registry.gauge(INFLIGHT, merge="max").set(
                    self._active_requests
                )
                started = time.monotonic()
                try:
                    status, payload = await self._route(method, path, body)
                except HttpError as exc:
                    status, payload = exc.status, _error_body(exc)
                except ContractError as exc:
                    status, payload = 400, _error_body(exc)
                except (ServiceDraining, PoolClosed) as exc:
                    status, payload = 503, _error_body(exc)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:  # pragma: no cover - defensive
                    status, payload = 500, _error_body(exc)
                finally:
                    self._active_requests -= 1
                    if self._active_requests == 0:
                        self._idle.set()
                    self.registry.gauge(INFLIGHT, merge="max").set(
                        self._active_requests
                    )
                elapsed = time.monotonic() - started
                route = _route_label(method, path)
                self.registry.counter(
                    REQUESTS, route=route, code=str(status)
                ).inc()
                self.registry.histogram(REQUEST_SECONDS).observe(elapsed)
                if path.startswith("/convert"):
                    self.latency.observe(elapsed)
                keep = (
                    not self._draining
                    and headers.get("connection", "").lower() != "close"
                )
                content_type = (
                    "text/plain; version=0.0.4; charset=utf-8"
                    if path == "/metrics" else "application/json"
                )
                writer.write(_response(
                    status, payload, close=not keep, content_type=content_type
                ))
                await writer.drain()
                if not keep:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self._connections.discard(writer)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, bytes]:
        parts = [part for part in path.split("?")[0].split("/") if part]
        if not parts:
            if method != "GET":
                raise HttpError(405, "GET only")
            return 200, _json_body(self._describe_service())
        head = parts[0]
        if head == "healthz" and len(parts) == 1:
            if method != "GET":
                raise HttpError(405, "GET only")
            report = self._health_report()
            return (503 if self._draining else 200), _json_body(report)
        if head == "metrics" and len(parts) == 1:
            if method != "GET":
                raise HttpError(405, "GET only")
            return 200, self.registry.render_prometheus().encode("utf-8")
        if head == "schemas":
            if method != "GET":
                raise HttpError(405, "GET only")
            return self._route_schemas(parts[1:])
        if head == "convert":
            if method != "POST":
                raise HttpError(405, "POST only")
            data = _parse_json(body)
            if len(parts) == 1:
                return await self._handle_convert(data)
            if len(parts) == 2 and parts[1] == "batch":
                return await self._handle_batch(data)
        raise HttpError(404, f"no route for {method} {path}")

    def _route_schemas(self, rest: list[str]) -> tuple[int, bytes]:
        if not rest:
            return 200, _json_body({"topics": sorted(self.topics)})
        state = self.topics.get(rest[0])
        if state is None:
            raise HttpError(404, f"unknown topic {rest[0]!r}")
        if len(rest) == 1:
            return 200, _json_body(state.describe())
        if len(rest) == 2:
            try:
                version = int(rest[1].lstrip("v"))
            except ValueError:
                raise HttpError(400, f"bad schema version {rest[1]!r}")
            try:
                dtd_text = state.dtd_text_for_version(version)
            except UnknownSchemaVersion as exc:
                raise HttpError(404, str(exc)) from exc
            return 200, _json_body(
                {"topic": state.topic, "version": version, "dtd": dtd_text}
            )
        raise HttpError(404, "no such schema route")

    async def _handle_convert(self, data: object) -> tuple[int, bytes]:
        request = ConvertRequest.parse(data)
        self._check_request(request)
        self.registry.counter(DOCUMENTS).inc()
        outcome = await self.batcher.submit(request)
        status = 200 if outcome.ok else 422
        return status, _json_body(outcome.to_json())

    async def _handle_batch(self, data: object) -> tuple[int, bytes]:
        requests = ConvertRequest.parse_batch(data)
        for request in requests:
            self._check_request(request)
        self.registry.counter(DOCUMENTS).inc(len(requests))
        results = await asyncio.gather(
            *(self.batcher.submit(request) for request in requests)
        )
        batch = BatchOutcome(results=list(results))
        if requests and requests[0].fold:
            state = self.topics[requests[0].topic]
            batch.fold = {
                "schema_version": state.evolving.version,
                "total_documents": state.evolving.total_documents(),
            }
        return 200, _json_body(batch.to_json())

    # -- reporting -----------------------------------------------------------

    def _health_report(self) -> dict:
        worker_pids = sorted(
            pid
            for pool in self.pools.values()
            for pid in pool.worker_pids()
        )
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_seconds": round(time.monotonic() - self._started_at, 3),
            "workers": self.config.resolved_workers(),
            "worker_pids": worker_pids,
            "documents": self.stats.documents,
            "documents_failed": self.stats.documents_failed,
            "queued": self.batcher.queued(),
            "topics": sorted(self.topics),
            "latency": self.latency.summary() if self.latency.count else None,
        }

    def _describe_service(self) -> dict:
        return {
            "service": "repro-web",
            "routes": [
                "POST /convert",
                "POST /convert/batch",
                "GET /schemas/<topic>",
                "GET /schemas/<topic>/<version>",
                "GET /metrics",
                "GET /healthz",
            ],
            "topics": sorted(self.topics),
        }


# -- wire helpers -------------------------------------------------------------


async def _read_request(
    reader: asyncio.StreamReader,
) -> tuple[str, str, dict[str, str], bytes] | None:
    """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1"):
        raise HttpError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise HttpError(400, "truncated headers")
        if len(headers) >= MAX_HEADERS:
            raise HttpError(431, "too many headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header {raw!r}")
        headers[name.strip().lower()] = value.strip()
    if headers.get("transfer-encoding"):
        raise HttpError(400, "chunked bodies are not supported")
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"bad content-length {length_text!r}")
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


def _response(
    status: int,
    body: bytes,
    *,
    close: bool = False,
    content_type: str = "application/json",
) -> bytes:
    reason = _STATUS_TEXT.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: {'close' if close else 'keep-alive'}\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def _json_body(data: dict) -> bytes:
    return (json.dumps(data) + "\n").encode("utf-8")


def _error_body(exc: Exception) -> bytes:
    return _json_body({"error": str(exc)})


def _parse_json(body: bytes) -> object:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise HttpError(400, f"invalid JSON body: {exc}") from exc


def _route_label(method: str, path: str) -> str:
    """Collapse paths to bounded route labels (no per-topic explosion)."""
    clean = path.split("?")[0]
    if clean.startswith("/schemas"):
        clean = "/schemas"
    return f"{method} {clean}"

"""Conversion-as-a-service: a long-lived async HTTP front-end over the
corpus engine.

The package splits along the request/result/artifact contract model:

* :mod:`repro.service.contracts` -- the wire schemas (requests in,
  outcomes out) with parse-time validation.
* :mod:`repro.service.workers` -- the warm engine pool: one
  :class:`~concurrent.futures.ProcessPoolExecutor` whose workers hold a
  built converter (compiled automaton + tidy tables) for the daemon's
  whole lifetime, fed chunk-at-a-time by the batcher.
* :mod:`repro.service.batcher` -- micro-batching with bounded
  backpressure: concurrent clients' documents coalesce into engine
  chunks; a full queue makes callers wait, never drops.
* :mod:`repro.service.state` -- the artifact store: per-topic
  :class:`~repro.schema.evolution.EvolvingSchema` (durable accumulator
  checkpoints, versioned DTDs) and optional
  :class:`~repro.mapping.versioned.VersionedRepository` publishing.
* :mod:`repro.service.server` -- the asyncio HTTP server itself
  (``/convert``, ``/convert/batch``, ``/schemas/<topic>``, ``/metrics``,
  ``/healthz``) with graceful SIGTERM/SIGINT drain.
* :mod:`repro.service.loadtest` -- the concurrent-client load harness
  writing latency/throughput quantiles to ``BENCH_service.json``.
"""

from repro.service.contracts import (
    BatchOutcome,
    ContractError,
    ConvertRequest,
    DocumentOutcome,
)
from repro.service.server import ConversionService, ServiceConfig

__all__ = [
    "BatchOutcome",
    "ContractError",
    "ConversionService",
    "ConvertRequest",
    "DocumentOutcome",
    "ServiceConfig",
]

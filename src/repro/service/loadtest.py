"""Load-test harness for the conversion service.

Two pieces:

* :class:`ServerThread` runs a :class:`ConversionService` on its own
  event loop in a background thread -- the way tests and benchmarks
  host a live server without blocking their own loop (or pytest).
* :func:`run_load` simulates ``clients`` concurrent keep-alive HTTP
  clients, each issuing ``requests_per_client`` single-document POSTs
  over one raw connection, and folds per-request latencies into a
  :class:`~repro.obs.quantiles.QuantileDigest`.

The harness speaks raw HTTP/1.1 over ``asyncio.open_connection`` --
no client library in the image, and a hand-rolled client doubles as a
protocol check on the hand-rolled server.

Run standalone against a live server::

    PYTHONPATH=src python -m repro.service.loadtest \\
        --clients 200 --requests 5 --out BENCH_service.json
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass, field

from repro.obs.quantiles import QuantileDigest


@dataclass
class LoadReport:
    """Aggregate outcome of one load run (JSON-ready via ``to_json``)."""

    clients: int
    requests_per_client: int
    completed: int = 0
    failed: int = 0
    converted: int = 0
    elapsed_seconds: float = 0.0
    latency: QuantileDigest = field(default_factory=QuantileDigest)
    status_counts: dict[int, int] = field(default_factory=dict)

    @property
    def attempted(self) -> int:
        return self.clients * self.requests_per_client

    @property
    def dropped(self) -> int:
        """Requests that never got an HTTP response (the acceptance
        criterion demands this stays zero: backpressure, not shedding)."""
        return self.attempted - self.completed - self.failed

    @property
    def requests_per_sec(self) -> float:
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.completed / self.elapsed_seconds

    def to_json(self) -> dict:
        return {
            "clients": self.clients,
            "requests_per_client": self.requests_per_client,
            "attempted": self.attempted,
            "completed": self.completed,
            "failed": self.failed,
            "dropped": self.dropped,
            "converted": self.converted,
            "elapsed_seconds": round(self.elapsed_seconds, 6),
            "requests_per_sec": round(self.requests_per_sec, 3),
            "status_counts": {
                str(code): count
                for code, count in sorted(self.status_counts.items())
            },
            "latency_seconds": self.latency.summary(),
        }


async def _read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict[str, str], bytes]:
    """One HTTP/1.1 response off a keep-alive stream."""
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    parts = status_line.decode("latin-1").split(" ", 2)
    status = int(parts[1])
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body


def _post(path: str, payload: dict) -> bytes:
    body = json.dumps(payload).encode("utf-8")
    head = (
        f"POST {path} HTTP/1.1\r\n"
        f"Host: loadtest\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"\r\n"
    ).encode("latin-1")
    return head + body


def _get(path: str) -> bytes:
    return (
        f"GET {path} HTTP/1.1\r\nHost: loadtest\r\n\r\n"
    ).encode("latin-1")


async def request(
    host: str, port: int, raw: bytes
) -> tuple[int, dict[str, str], bytes]:
    """One-shot request helper (opens and closes a connection)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(raw)
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def _client(
    host: str,
    port: int,
    sources: list[str],
    requests_per_client: int,
    report: LoadReport,
    gate: asyncio.Event,
    topic: str,
) -> None:
    """One simulated client: a single keep-alive connection, sequential
    requests, latencies folded into the shared report."""
    await gate.wait()
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for i in range(requests_per_client):
            payload = {
                "source": sources[i % len(sources)],
                "topic": topic,
            }
            started = time.perf_counter()
            writer.write(_post("/convert", payload))
            await writer.drain()
            status, _, body = await _read_response(reader)
            elapsed = time.perf_counter() - started
            report.latency.observe(elapsed)
            report.status_counts[status] = (
                report.status_counts.get(status, 0) + 1
            )
            if status == 200:
                report.completed += 1
                if json.loads(body).get("ok"):
                    report.converted += 1
            else:
                report.failed += 1
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def run_load(
    host: str,
    port: int,
    sources: list[str],
    *,
    clients: int = 100,
    requests_per_client: int = 1,
    topic: str = "resume",
) -> LoadReport:
    """Hammer a live service with ``clients`` concurrent connections.

    Every client connects first, then a shared gate releases them all at
    once -- the load is genuinely concurrent, not a ramp.
    """
    report = LoadReport(clients=clients, requests_per_client=requests_per_client)
    gate = asyncio.Event()
    tasks = [
        asyncio.create_task(
            _client(host, port, sources, requests_per_client, report, gate, topic)
        )
        for _ in range(clients)
    ]
    await asyncio.sleep(0)
    started = time.perf_counter()
    gate.set()
    results = await asyncio.gather(*tasks, return_exceptions=True)
    report.elapsed_seconds = time.perf_counter() - started
    for result in results:
        if isinstance(result, BaseException):
            # A client dying mid-flight (connection reset, protocol
            # error) is a harness-level failure, not a served error --
            # surface it loudly rather than folding it into the report.
            raise result
    return report


class ServerThread:
    """A live :class:`ConversionService` on a background thread.

    The service's event loop runs entirely in the thread; ``start()``
    blocks until the server is bound and returns ``(host, port)``,
    ``stop()`` runs the graceful drain and joins the thread.  Tests and
    benchmarks talk to it over real sockets from their own loops.
    """

    def __init__(self, service) -> None:
        self.service = service
        self.host = "127.0.0.1"
        self.port = 0
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = None
        self._stopped = None

    def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        import threading

        ready = threading.Event()
        failure: list[BaseException] = []

        def _run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            self._stopped = asyncio.Event()

            async def _main() -> None:
                try:
                    self.host, self.port = await self.service.start(host, port)
                except BaseException as exc:  # pragma: no cover - boot failure
                    failure.append(exc)
                    ready.set()
                    return
                ready.set()
                await self._stopped.wait()
                await self.service.shutdown()

            try:
                loop.run_until_complete(_main())
            finally:
                loop.close()

        self._thread = threading.Thread(target=_run, daemon=True, name="repro-service")
        self._thread.start()
        ready.wait(timeout=60)
        if failure:
            raise failure[0]
        if self._loop is None or not ready.is_set():  # pragma: no cover
            raise RuntimeError("service thread failed to start")
        return self.host, self.port

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is None or self._stopped is None:
            return
        self._loop.call_soon_threadsafe(self._stopped.set)
        if self._thread is not None:
            self._thread.join(timeout=timeout)
        self._loop = None

    def __enter__(self) -> "ServerThread":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def _main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="load-test a running conversion service"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--clients", type=int, default=100)
    parser.add_argument("--requests", type=int, default=5)
    parser.add_argument("--docs", type=int, default=8,
                        help="distinct synthetic resumes to cycle through")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--out", default=None,
                        help="write the JSON report here (else stdout)")
    args = parser.parse_args(argv)

    from repro.corpus.generator import ResumeCorpusGenerator

    sources = [
        doc.html
        for doc in ResumeCorpusGenerator(seed=args.seed).generate(args.docs)
    ]
    report = asyncio.run(
        run_load(
            args.host, args.port, sources,
            clients=args.clients, requests_per_client=args.requests,
        )
    )
    rendered = json.dumps(report.to_json(), indent=2, sort_keys=True)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(rendered + "\n", encoding="utf-8")
    print(rendered)
    return 0 if report.dropped == 0 and report.failed == 0 else 1


if __name__ == "__main__":  # pragma: no cover - manual harness
    raise SystemExit(_main())

"""Per-topic artifact store behind the conversion service.

Each topic owns a state directory::

    <state-dir>/<topic>/evolution/    durable accumulator checkpoint,
                                      current.dtd, dtds/vNNNN.dtd
    <state-dir>/<topic>/repository/   optional versioned XML repository

Folds go through :class:`~repro.schema.evolution.EvolvingSchema` (the
same state an offline ``repro-web evolve fold`` advances -- the
accumulator is a monoid, so folding per micro-batch converges to the
same schema as one offline fold over the same documents), and archived
``dtds/vNNNN.dtd`` files back the "convert against schema v3" request
mode.  :func:`sync_repository` is the publish step shared with the CLI.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import TYPE_CHECKING

from repro.schema.dtd import DTD
from repro.schema.evolution import EvolvingSchema

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.concepts.knowledge import KnowledgeBase
    from repro.mapping.versioned import VersionedRepository
    from repro.obs.metrics import MetricsRegistry
    from repro.schema.accumulator import PathAccumulator


class UnknownSchemaVersion(KeyError):
    """A request targeted a schema version the topic never published."""


def sync_repository(
    vrepo: "VersionedRepository",
    evolving: EvolvingSchema,
    new_xml: list[str],
    *,
    max_workers: int | None = None,
    chunk_size: int = 16,
) -> tuple[int, dict | None]:
    """Bring a versioned repository up to the evolving schema.

    Migrates the repository's existing documents when their stored DTD
    is behind the schema's current one (in parallel, through the
    tree-edit mapping layer), conforms and appends ``new_xml``, and
    publishes the combined store as the next version.  Returns the
    published version and a migration summary (``None`` when nothing
    needed migrating).  Shared by ``repro-web evolve fold --repository``
    and the service's fold lane.
    """
    from repro.dom.serialize import to_xml_document
    from repro.mapping.persistence import DTD_NAME, load_xml_document
    from repro.mapping.repository import RepositoryStats, XMLRepository
    from repro.mapping.versioned import migrate_documents

    dtd = evolving.dtd
    assert dtd is not None, "cannot publish before a schema is derivable"
    existing_xml: list[str] = []
    migration = None
    existing_conforming = 0
    existing_repaired = 0
    existing_operations = 0
    if vrepo.exists():
        existing_xml = vrepo.document_xml()
        stored_dtd = (
            vrepo.version_dir(vrepo.current_version()) / DTD_NAME
        ).read_text(encoding="utf-8")
        if stored_dtd != evolving.dtd_text:
            existing_xml, report = migrate_documents(
                existing_xml, dtd,
                max_workers=max_workers, chunk_size=chunk_size,
            )
            migration = {
                "documents": report.documents,
                "already_conforming": report.already_conforming,
                "migrated": report.migrated,
                "total_operations": report.total_operations,
                "avg_edit_distance": report.avg_edit_distance,
            }
            existing_conforming = report.already_conforming
            existing_repaired = report.migrated
            existing_operations = report.total_operations
        else:
            existing_conforming = len(existing_xml)
    inserter = XMLRepository(dtd)
    for xml in new_xml:
        inserter.insert(load_xml_document(xml))
    combined = existing_xml + [to_xml_document(doc) for doc in inserter.documents]
    stats = RepositoryStats(
        documents=len(combined),
        conforming_on_arrival=(
            existing_conforming + inserter.stats.conforming_on_arrival
        ),
        repaired=existing_repaired + inserter.stats.repaired,
        rejected=inserter.stats.rejected,
        total_repair_operations=(
            existing_operations + inserter.stats.total_repair_operations
        ),
    )
    version = vrepo.publish_xml(
        dtd, combined, stats, schema_version=evolving.version
    )
    return version, migration


class TopicState:
    """One topic's evolving schema + optional versioned repository.

    Thread-safe: folds and publishes run in executor threads under
    :attr:`lock` (the checkpoint's delta log is append-ordered), while
    read paths (`describe`, version lookups) only touch immutable
    version artifacts and atomic state snapshots.
    """

    def __init__(
        self,
        topic: str,
        kb: "KnowledgeBase",
        directory: str | Path,
        *,
        registry: "MetricsRegistry | None" = None,
        publish: bool = False,
        max_workers: int | None = None,
        chunk_size: int = 16,
    ) -> None:
        self.topic = topic
        self.kb = kb
        self.directory = Path(directory)
        self.lock = threading.Lock()
        self.max_workers = max_workers
        self.chunk_size = chunk_size
        self.evolving = EvolvingSchema(
            self.directory / "evolution", kb, registry=registry
        )
        if not self.evolving.exists():
            # Auto-init: a fresh service state dir is usable immediately
            # (the CLI's `evolve init` does the same for offline runs).
            self.evolving.save_state()
        self.repository: "VersionedRepository | None" = None
        if publish:
            from repro.mapping.versioned import VersionedRepository

            self.repository = VersionedRepository(self.directory / "repository")
        self._dtd_cache: dict[int, DTD] = {}

    # -- folding (called from executor threads) ------------------------------

    def fold(
        self, accumulator: "PathAccumulator", new_xml: list[str]
    ) -> dict:
        """Fold a micro-batch's statistics into the live accumulator;
        publish the surviving XML when a repository is configured.
        Returns the JSON summary attached to the batch outcome."""
        with self.lock:
            outcome = self.evolving.fold(accumulator)
            summary: dict = {
                "documents_folded": outcome.documents_folded,
                "total_documents": outcome.total_documents,
                "schema_version": outcome.version,
                "bumped": outcome.bumped,
            }
            if self.repository is not None and self.evolving.dtd is not None:
                version, migration = sync_repository(
                    self.repository, self.evolving, new_xml,
                    max_workers=self.max_workers, chunk_size=self.chunk_size,
                )
                summary["repository_version"] = version
                if migration is not None:
                    summary["migration"] = migration
            return summary

    # -- schema-version targeting --------------------------------------------

    def dtd_text_for_version(self, version: int) -> str:
        path = self.evolving.version_dtd_path(version)
        if not path.exists():
            raise UnknownSchemaVersion(
                f"{self.topic}: no archived schema version {version}"
            )
        return path.read_text(encoding="utf-8")

    def dtd_for_version(self, version: int) -> DTD:
        cached = self._dtd_cache.get(version)
        if cached is None:
            cached = DTD.parse(self.dtd_text_for_version(version))
            self._dtd_cache[version] = cached
        return cached

    def conform_to_version(self, xml_text: str, version: int) -> str:
        """Re-shape converted XML against an archived schema version
        (the "convert against schema v3" request mode)."""
        from repro.dom.serialize import to_xml_document
        from repro.mapping.conform import conform_document
        from repro.mapping.persistence import load_xml_document
        from repro.mapping.validate import validate_document

        dtd = self.dtd_for_version(version)
        root = load_xml_document(xml_text)
        if validate_document(root, dtd):
            conform_document(root, dtd)
        return to_xml_document(root)

    # -- reporting -----------------------------------------------------------

    def describe(self) -> dict:
        """The ``GET /schemas/<topic>`` payload."""
        evolving = self.evolving
        versions = []
        dtd_dir = self.directory / "evolution" / "dtds"
        if dtd_dir.is_dir():
            versions = sorted(
                int(p.stem[1:]) for p in dtd_dir.glob("v*.dtd")
            )
        out: dict = {
            "topic": self.topic,
            "schema_version": evolving.version,
            "documents": evolving.total_documents(),
            "dtd": evolving.dtd_text or None,
            "versions": versions,
            "history": evolving.history,
        }
        if self.repository is not None:
            out["repository_version"] = (
                self.repository.current_version()
                if self.repository.exists()
                else None
            )
        return out
